test/test_stringmatch.mli:
