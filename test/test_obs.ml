(* Observability layer tests: histogram geometry and quantile error
   bounds, exact sharded-merge semantics (the determinism contract the
   parallel mapper's metrics rely on), exporter well-formedness (Chrome
   trace JSON, Prometheus text exposition), the Query/Response and
   Mapper.options surfaces, and the legacy wrappers over them. *)

open Core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* A tiny validating JSON parser — just enough to assert the Chrome
   trace exporter always emits syntactically valid JSON without pulling
   a JSON dependency into the repo. *)

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail ()
  in
  let number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail ()
  in
  let string_lit () =
    if peek () <> '"' then fail ();
    advance ();
    let rec go () =
      if !pos >= n then fail ()
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail ();
            advance ();
            go ()
        | _ ->
            advance ();
            go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    advance ();
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        if peek () <> ':' then fail ();
        advance ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    advance ();
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* Histogram: exact aggregates and the quantile error bound             *)

let test_histogram_exact_aggregates () =
  let h = Obs.Histogram.create () in
  check int "empty count" 0 (Obs.Histogram.count h);
  check int "empty quantile" 0 (Obs.Histogram.quantile h 0.5);
  let values = [ 0; 1; 1; 7; 63; 64; 100; 1000; 123_456; 3 ] in
  List.iter (Obs.Histogram.record h) values;
  check int "count" (List.length values) (Obs.Histogram.count h);
  check int "sum" (List.fold_left ( + ) 0 values) (Obs.Histogram.sum h);
  check int "min" 0 (Obs.Histogram.min_value h);
  check int "max" 123_456 (Obs.Histogram.max_value h);
  Obs.Histogram.record h (-5);
  check int "negative clamps to 0" 0 (Obs.Histogram.min_value h);
  check int "clamped still counted" (List.length values + 1)
    (Obs.Histogram.count h)

let test_histogram_small_values_exact () =
  (* Below 64 every value has its own bucket: quantiles are exact. *)
  let h = Obs.Histogram.create () in
  for v = 0 to 63 do
    Obs.Histogram.record h v
  done;
  check int "q0 smallest" 0 (Obs.Histogram.quantile h 0.0);
  check int "median of 0..63" 31 (Obs.Histogram.quantile h 0.5);
  check int "q1 largest" 63 (Obs.Histogram.quantile h 1.0);
  List.iter
    (fun (lo, hi, c) ->
      check bool "unit bucket" true (lo = hi);
      check int "one value per bucket" 1 c)
    (Obs.Histogram.buckets h)

let prop_quantile_error_bound =
  Test_util.qtest ~count:300 "histogram quantile within 3.125% upper bound"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_bound 2_000_000))
        (int_bound 100))
    (fun (values, qpct) ->
      let q = float_of_int qpct /. 100.0 in
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.record h) values;
      let sorted = List.sort compare values in
      let count = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
      let exact = List.nth sorted (rank - 1) in
      let approx = Obs.Histogram.quantile h q in
      (* an upper bound, never above max, within 3.125% relative error *)
      approx >= exact
      && approx <= Obs.Histogram.max_value h
      && float_of_int (approx - exact) <= 0.03125 *. float_of_int (max exact 64))

let prop_histogram_sharded_merge =
  Test_util.qtest ~count:200 "sharded histogram merge = sequential, bit for bit"
    QCheck2.Gen.(
      pair (list_size (int_range 0 300) (int_bound 10_000_000)) (int_range 1 4))
    (fun (values, shards) ->
      let seq = Obs.Histogram.create () in
      List.iter (Obs.Histogram.record seq) values;
      let parts = Array.init shards (fun _ -> Obs.Histogram.create ()) in
      List.iteri
        (fun i v -> Obs.Histogram.record parts.(i mod shards) v)
        values;
      let merged = Obs.Histogram.create () in
      Array.iter (fun p -> Obs.Histogram.merge ~into:merged p) parts;
      Obs.Histogram.equal merged seq)

(* ------------------------------------------------------------------ *)
(* Sink: counters, fork/merge, span semantics                           *)

let test_sink_counters_and_merge () =
  let a = Obs.create () in
  Obs.incr a "x";
  Obs.incr ~by:4 a "x";
  Obs.add a "y" 10;
  Obs.record a "h" 5;
  let b = Obs.fork a in
  check bool "fork is active" true (Obs.enabled b);
  Obs.incr ~by:2 b "x";
  Obs.record b "h" 7;
  Obs.merge ~into:a b;
  check int "merged counter" 7 (Obs.counter_value a "x");
  check int "untouched counter" 10 (Obs.counter_value a "y");
  check int "absent counter" 0 (Obs.counter_value a "zzz");
  (match Obs.histogram a "h" with
  | None -> Alcotest.fail "histogram lost in merge"
  | Some h ->
      check int "merged histogram count" 2 (Obs.Histogram.count h);
      check int "merged histogram sum" 12 (Obs.Histogram.sum h));
  (* counters export sorted by name *)
  check bool "sorted export" true
    (List.map fst (Obs.counters a) = List.sort compare (List.map fst (Obs.counters a)))

let test_noop_is_inert () =
  check bool "noop disabled" false (Obs.enabled Obs.noop);
  check bool "noop fork is noop" false (Obs.enabled (Obs.fork Obs.noop));
  Obs.incr Obs.noop "x";
  Obs.record Obs.noop "h" 3;
  check int "noop counter stays 0" 0 (Obs.counter_value Obs.noop "x");
  check bool "noop histogram absent" true (Obs.histogram Obs.noop "h" = None);
  check int "span on noop is f ()" 41 (Obs.span Obs.noop "s" (fun () -> 41));
  check bool "noop trace still valid JSON" true
    (json_valid (Obs.to_chrome_trace Obs.noop))

let test_span_records_duration () =
  let t = Obs.create () in
  let x = Obs.span t "work" (fun () -> 7) in
  check int "span returns" 7 x;
  (match Obs.histogram t "work_ns" with
  | None -> Alcotest.fail "span did not record a histogram"
  | Some h -> check int "one duration" 1 (Obs.Histogram.count h));
  (* duration lands even when the scope raises *)
  (try Obs.span t "work" (fun () -> failwith "boom") with Failure _ -> ());
  match Obs.histogram t "work_ns" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h -> check int "raise still recorded" 2 (Obs.Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let test_chrome_trace_valid () =
  let t = Obs.create ~trace:true () in
  Obs.span t "alpha" (fun () -> ());
  Obs.span
    ~args:[ ("engine", "m-tree"); ("quote", "a\"b\\c") ]
    t "beta"
    (fun () -> ());
  Obs.event t "gamma";
  let js = Obs.to_chrome_trace ~process_name:"kmm-test" t in
  check bool "trace is valid JSON" true (json_valid js);
  let contains needle =
    let nl = String.length needle and hl = String.length js in
    let rec go i = i + nl <= hl && (String.sub js i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "events present" true
    (contains "\"alpha\"" && contains "\"beta\"" && contains "\"gamma\""
    && contains "kmm-test"
    && contains "a\\\"b\\\\c")

let test_prometheus_format () =
  let t = Obs.create () in
  Obs.incr ~by:3 t "engine.nodes";
  Obs.record t "map.read_ns" 100;
  Obs.record t "map.read_ns" 100_000;
  let text = Obs.to_prometheus t in
  check bool "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  let lines = String.split_on_char '\n' text in
  check bool "TYPE comment for counter" true
    (List.mem "# TYPE kmm_engine_nodes counter" lines);
  check bool "counter value line" true (List.mem "kmm_engine_nodes 3" lines);
  check bool "TYPE comment for histogram" true
    (List.mem "# TYPE kmm_map_read_ns histogram" lines);
  check bool "histogram count series" true (List.mem "kmm_map_read_ns_count 2" lines);
  check bool "histogram sum series" true
    (List.mem "kmm_map_read_ns_sum 100100" lines);
  (* cumulative bucket series: non-decreasing, +Inf equals _count *)
  let buckets =
    List.filter_map
      (fun l ->
        if String.length l > 24 && String.sub l 0 24 = "kmm_map_read_ns_bucket{l" then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some
                (int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      lines
  in
  check bool "has bucket series" true (buckets <> []);
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  check bool "buckets cumulative" true (non_decreasing buckets);
  check int "+Inf bucket equals count" 2 (List.nth buckets (List.length buckets - 1));
  (* custom prefix + name sanitization *)
  let t2 = Obs.create () in
  Obs.incr t2 "weird-name with spaces!";
  let text2 = Obs.to_prometheus ~prefix:"x" t2 in
  check bool "sanitized name" true
    (List.mem "x_weird_name_with_spaces_ 1" (String.split_on_char '\n' text2))

(* ------------------------------------------------------------------ *)
(* Query/Response, wrappers, and end-to-end determinism                 *)

let genome =
  lazy
    (Dna.Sequence.to_string
       (Dna.Sequence.random ~state:(Random.State.make [| 99 |]) 4_000))

let index = lazy (Kmismatch.build_index (Lazy.force genome))

let test_query_response () =
  let idx = Lazy.force index in
  let text = Lazy.force genome in
  let pattern = String.sub text 1_000 25 in
  let obs = Obs.create () in
  let q = Kmismatch.Query.make ~obs ~engine:Kmismatch.M_tree ~pattern ~k:2 () in
  let r = Kmismatch.run idx q in
  check bool "found the planted window" true
    (List.mem_assoc 1_000 r.Kmismatch.Response.hits);
  check bool "positions accessor" true
    (Kmismatch.Response.positions r = List.map fst r.Kmismatch.Response.hits);
  check bool "stats populated" true (r.Kmismatch.Response.stats.Stats.nodes > 0);
  check bool "timings has both phases" true
    (List.map fst r.Kmismatch.Response.timings = [ "normalize"; "search" ]);
  check int "query.count counter" 1 (Obs.counter_value obs "query.count");
  check int "engine.nodes counter" r.Kmismatch.Response.stats.Stats.nodes
    (Obs.counter_value obs "engine.nodes");
  check bool "query span histogram" true (Obs.histogram obs "query_ns" <> None);
  (* invalid inputs keep raising through run *)
  (match
     Kmismatch.run idx
       (Kmismatch.Query.make ~engine:Kmismatch.Naive ~pattern:"" ~k:0 ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pattern accepted");
  match
    Kmismatch.run idx
      (Kmismatch.Query.make ~engine:Kmismatch.Naive ~pattern ~k:(-1) ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative k accepted"

let test_search_wrapper_compat () =
  (* The legacy wrapper must agree with the primary path on every
     engine, and still feed the caller-supplied stats accumulator. *)
  let idx = Lazy.force index in
  let text = Lazy.force genome in
  let pattern = String.sub text 777 20 in
  List.iter
    (fun engine ->
      let stats = Stats.create () in
      let hits = Kmismatch.search ~stats idx ~engine ~pattern ~k:2 in
      let r =
        Kmismatch.run idx (Kmismatch.Query.make ~engine ~pattern ~k:2 ())
      in
      check bool
        (Kmismatch.engine_name engine ^ " wrapper = run")
        true
        (hits = r.Kmismatch.Response.hits);
      check bool
        (Kmismatch.engine_name engine ^ " wrapper stats = run stats")
        true
        (stats = r.Kmismatch.Response.stats);
      check bool
        (Kmismatch.engine_name engine ^ " positions wrapper")
        true
        (Kmismatch.positions idx ~engine ~pattern ~k:2 = List.map fst hits))
    (Kmismatch.all_engines ())

let test_mapper_options_compat () =
  let idx = Lazy.force index in
  let text = Lazy.force genome in
  let reads = List.init 12 (fun i -> (i, String.sub text (i * 300) 30)) in
  let new_hits, new_summary = Mapper.run Mapper.default idx ~reads ~k:1 in
  let stats = Stats.create () in
  let old_hits, old_summary = Mapper.map_reads ~stats idx ~reads ~k:1 in
  check bool "map_reads wrapper hits = run hits" true (new_hits = old_hits);
  check bool "map_reads wrapper summary = run summary" true
    (Mapper.deterministic_summary new_summary
    = Mapper.deterministic_summary old_summary);
  check bool "wrapper stats = summary stats" true
    (stats = old_summary.Mapper.stats);
  check bool "phase timings present" true
    (List.map fst new_summary.Mapper.timings = [ "prepare"; "search"; "merge" ])

let test_mapper_metrics_deterministic () =
  (* The acceptance contract: merged per-domain deterministic metrics
     (counters and the map.read_hits histogram) are identical across
     jobs = 1 / 2 / 4. *)
  Fmindex.Fm_index.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Fmindex.Fm_index.Telemetry.set_enabled false)
    (fun () ->
      let idx = Lazy.force index in
      let text = Lazy.force genome in
      let reads = List.init 30 (fun i -> (i, String.sub text (i * 100) 25)) in
      let observe domains =
        let obs = Obs.create () in
        let _, _ =
          Mapper.run { Mapper.default with domains; chunk_size = 3; obs } idx
            ~reads ~k:1
        in
        let deterministic_counters =
          (* pool.tasks counts per-domain pulls and is scheduling-
             independent too, but keep the check focused on the
             workload-derived metrics. *)
          List.filter (fun (name, _) -> name <> "pool.tasks") (Obs.counters obs)
        in
        let hits_hist =
          match Obs.histogram obs "map.read_hits" with
          | Some h -> Obs.Histogram.copy h
          | None -> Alcotest.fail "map.read_hits missing"
        in
        (deterministic_counters, hits_hist)
      in
      let c1, h1 = observe 1 in
      List.iter
        (fun d ->
          let cd, hd = observe d in
          check bool
            (Printf.sprintf "counters jobs=%d = jobs=1" d)
            true (cd = c1);
          check bool
            (Printf.sprintf "map.read_hits jobs=%d = jobs=1" d)
            true
            (Obs.Histogram.equal hd h1))
        [ 2; 4 ];
      check bool "fm.* counters flowed" true
        (List.mem_assoc "fm.rank_ops" c1 && List.assoc "fm.rank_ops" c1 > 0))

let test_work_pool_obs () =
  let sinks = Array.init 3 (fun _ -> Obs.create ()) in
  Work_pool.with_pool ~domains:3 (fun pool ->
      Work_pool.run ~obs:sinks pool ~tasks:10 (fun ~worker:_ ~task:_ -> ()));
  let total = Obs.create () in
  Array.iter (fun o -> Obs.merge ~into:total o) sinks;
  check int "pool.tasks counts every task" 10
    (Obs.counter_value total "pool.tasks");
  match Obs.histogram total "pool.queue_wait_ns" with
  | None -> Alcotest.fail "queue-wait histogram missing"
  | Some h -> check int "one wait per task" 10 (Obs.Histogram.count h)

let test_fm_telemetry () =
  let fm = Fmindex.Fm_index.build "acgtacgtacgtacgtacgtacgaatt" in
  Fmindex.Fm_index.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Fmindex.Fm_index.Telemetry.set_enabled false)
    (fun () ->
      let before = Fmindex.Fm_index.Telemetry.snapshot () in
      ignore (Fmindex.Fm_index.count fm "acgt");
      ignore (Fmindex.Fm_index.find_all fm "acgt");
      let d =
        Fmindex.Fm_index.Telemetry.diff ~since:before
          (Fmindex.Fm_index.Telemetry.snapshot ())
      in
      check bool "rank ops counted" true
        (d.Fmindex.Fm_index.Telemetry.rank_ops > 0);
      check bool "blocks decoded" true
        (d.Fmindex.Fm_index.Telemetry.block_decodes > 0);
      check bool "locate walks counted" true
        (d.Fmindex.Fm_index.Telemetry.locate_walks > 0);
      check bool "walks have steps" true
        (d.Fmindex.Fm_index.Telemetry.locate_steps
        >= d.Fmindex.Fm_index.Telemetry.locate_walks - 4));
  (* disabled again: the hook stays silent *)
  let before = Fmindex.Fm_index.Telemetry.snapshot () in
  ignore (Fmindex.Fm_index.count fm "acgt");
  let d =
    Fmindex.Fm_index.Telemetry.diff ~since:before
      (Fmindex.Fm_index.Telemetry.snapshot ())
  in
  check int "no rank ops when disabled" 0 d.Fmindex.Fm_index.Telemetry.rank_ops

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact aggregates" `Quick
            test_histogram_exact_aggregates;
          Alcotest.test_case "small values exact" `Quick
            test_histogram_small_values_exact;
          prop_quantile_error_bound;
          prop_histogram_sharded_merge;
        ] );
      ( "sink",
        [
          Alcotest.test_case "counters and merge" `Quick
            test_sink_counters_and_merge;
          Alcotest.test_case "noop is inert" `Quick test_noop_is_inert;
          Alcotest.test_case "span records duration" `Quick
            test_span_records_duration;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid JSON" `Quick
            test_chrome_trace_valid;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
        ] );
      ( "api",
        [
          Alcotest.test_case "query/response" `Quick test_query_response;
          Alcotest.test_case "search wrapper compat" `Quick
            test_search_wrapper_compat;
          Alcotest.test_case "mapper options compat" `Quick
            test_mapper_options_compat;
          Alcotest.test_case "metrics deterministic across domains" `Quick
            test_mapper_metrics_deterministic;
          Alcotest.test_case "work_pool obs" `Quick test_work_pool_obs;
          Alcotest.test_case "fm telemetry" `Quick test_fm_telemetry;
        ] );
    ]
