(* Load generator for the kmm serve daemon: throughput and latency
   quantiles versus concurrent connection count, plus an overload round
   that offers roughly twice the daemon's capacity against a small
   admission queue and records the shed rate.

   The server runs in-process on its own threads and Work_pool domains;
   client threads connect through the real Unix socket and speak the
   real newline-JSON protocol, so every layer a production client would
   cross (framing, admission, batching, pool fan-out, response
   encoding) is on the measured path.  Per-request latencies land in
   per-client [Obs.Histogram]s merged exactly (the PR 5 mergeable
   histograms), so p50/p99 come from the same machinery the daemon's
   own [serve.request_ns] metric uses — and they cover {e accepted}
   queries only, so a shed (which costs no search work) cannot flatter
   the latency columns.

   Correctness is never taken on faith: every accepted query's hits, as
   decoded from the wire, are compared byte-for-byte (via
   [Protocol.render_hits]) against a sequential [Kmismatch.run] of the
   same stream, at every connection count.  Shed and timed-out queries
   are excluded from the comparison (they carry no hits by design) but
   are counted per row.  A concurrency bug cannot hide behind a
   throughput number.

   One JSON record per run is appended to --out (default
   BENCH_serve.json). *)

module Client = Kmm_server.Server.Client
module Protocol = Kmm_server.Protocol

let note fmt = Printf.printf ("  # " ^^ fmt ^^ "\n%!")

(* The query stream: patterns sampled from the indexed text with 0..2
   planted substitutions, k = 2, the paper's canonical configuration. *)
let make_queries ~st ~text ~count =
  let n = String.length text in
  let bases = [| 'a'; 'c'; 'g'; 't' |] in
  Array.init count (fun _ ->
      let len = 24 + Random.State.int st 33 in
      let start = Random.State.int st (n - len) in
      let p = Bytes.of_string (String.sub text start len) in
      let muts = Random.State.int st 3 in
      for _ = 1 to muts do
        let i = Random.State.int st len in
        Bytes.set p i bases.(Random.State.int st 4)
      done;
      Bytes.to_string p)

let socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "kmm-bench-%d.sock" (Unix.getpid ()))

type row = {
  connections : int;
  qps : float;
  p50_us : float;  (** over accepted queries only *)
  p99_us : float;  (** over accepted queries only *)
  mean_us : float;  (** over accepted queries only *)
  accepted : int;
  shed : int;  (** typed Overloaded replies (code 10) *)
  timeouts : int;  (** typed Timeout replies (code 9) *)
  dropped : int;  (** connections lost mid-stream (lane abandoned) *)
  identical : bool;  (** accepted hits vs the sequential reference *)
}

(* Drive [queries] through [c] connections (query i goes to client
   i mod c) and return the measured row plus, per query, the rendered
   hits and whether it was accepted. *)
let drive ~path ~k ~queries ~c =
  let nq = Array.length queries in
  let rendered = Array.make nq "" in
  let got = Array.make nq false in
  let histograms = Array.init c (fun _ -> Obs.Histogram.create ()) in
  let failure = Atomic.make None in
  let shed = Atomic.make 0 in
  let timeouts = Atomic.make 0 in
  let dropped = Atomic.make 0 in
  let client j () =
    match Client.connect path with
    | exception e -> Atomic.set failure (Some (Printexc.to_string e))
    | conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let h = histograms.(j) in
            let i = ref j in
            let live = ref true in
            while !live && !i < nq && Atomic.get failure = None do
              let t0 = Obs.Clock.now_ns () in
              (match Client.query conn ~pattern:queries.(!i) ~k () with
              | Ok (Protocol.Hits { hits; _ }) ->
                  Obs.Histogram.record h (Obs.Clock.now_ns () - t0);
                  rendered.(!i) <- Protocol.render_hits hits;
                  got.(!i) <- true
              | Ok (Protocol.Error_reply { code = 10; _ }) -> Atomic.incr shed
              | Ok (Protocol.Error_reply { code = 9; _ }) ->
                  Atomic.incr timeouts
              | Ok (Protocol.Error_reply { message; _ }) ->
                  Atomic.set failure (Some ("server error: " ^ message))
              | Ok (Protocol.Ok_obj _) ->
                  Atomic.set failure (Some "unexpected reply shape")
              | Error (Kmm_error.Io _) ->
                  (* Connection gone (e.g. dropped as stalled): the rest
                     of this lane is unreachable — count it and stop. *)
                  Atomic.incr dropped;
                  live := false
              | Error e -> Atomic.set failure (Some (Kmm_error.to_string e)));
              i := !i + c
            done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init c (fun j -> Thread.create (client j) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (match Atomic.get failure with
  | Some m -> failwith ("serve bench: " ^ m)
  | None -> ());
  let merged = Obs.Histogram.create () in
  Array.iter (fun h -> Obs.Histogram.merge ~into:merged h) histograms;
  let accepted = Array.fold_left (fun n g -> if g then n + 1 else n) 0 got in
  let us ns = float_of_int ns /. 1e3 in
  ( {
      connections = c;
      qps = float_of_int nq /. wall;
      p50_us = us (Obs.Histogram.quantile merged 0.5);
      p99_us = us (Obs.Histogram.quantile merged 0.99);
      mean_us = Obs.Histogram.mean merged /. 1e3;
      accepted;
      shed = Atomic.get shed;
      timeouts = Atomic.get timeouts;
      dropped = Atomic.get dropped;
      identical = false (* filled by the caller against the reference *);
    },
    rendered,
    got )

let run_campaign ~idx ~queries ~k ~connections ~jobs ~batch_max ?max_queue () =
  (* Sequential ground truth for the byte-identity column. *)
  let reference =
    Array.map
      (fun pattern ->
        let r =
          Core.Kmismatch.run idx (Core.Kmismatch.Query.make ~engine:Core.Kmismatch.M_tree ~pattern ~k ())
        in
        Protocol.render_hits r.Core.Kmismatch.Response.hits)
      queries
  in
  let path = socket_path () in
  let base = Kmm_server.Server.default_config ~socket_path:path in
  let cfg =
    {
      base with
      domains = jobs;
      batch_max;
      max_queue = (match max_queue with Some q -> q | None -> base.max_queue);
    }
  in
  let server = Kmm_server.Server.start cfg (Core.Corpus.mono idx) in
  Fun.protect
    ~finally:(fun () -> Kmm_server.Server.stop server)
    (fun () ->
      List.map
        (fun c ->
          let row, rendered, got = drive ~path ~k ~queries ~c in
          let identical = ref true in
          Array.iteri
            (fun i r -> if got.(i) && r <> reference.(i) then identical := false)
            rendered;
          { row with identical = !identical })
        connections)

let print_rows rows =
  Printf.printf "  %-12s %10s %10s %10s %10s %6s %6s %5s %5s %10s\n" "connections"
    "qps" "p50 us" "p99 us" "mean us" "accept" "shed" "tout" "drop" "identical";
  Printf.printf "  %s\n" (String.make 92 '-');
  List.iter
    (fun r ->
      Printf.printf "  %-12d %10.0f %10.1f %10.1f %10.1f %6d %6d %5d %5d %10s\n"
        r.connections r.qps r.p50_us r.p99_us r.mean_us r.accepted r.shed
        r.timeouts r.dropped
        (if r.identical then "yes" else "NO(BUG)"))
    rows

let row_json r =
  Printf.sprintf
    "{\"connections\":%d,\"qps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\
     \"mean_us\":%.1f,\"accepted\":%d,\"shed\":%d,\"timeouts\":%d,\
     \"dropped\":%d,\"identical\":%b}"
    r.connections r.qps r.p50_us r.p99_us r.mean_us r.accepted r.shed
    r.timeouts r.dropped r.identical

let run ?(obs = Obs.noop) ?(out = "BENCH_serve.json") ?(size = 200_000)
    ?(seed = 42) ?(connections = [ 1; 2; 4; 8 ]) ?(queries = 2_000) ?(jobs = 0)
    () =
  let jobs = if jobs < 1 then Core.Work_pool.default_domains () else jobs in
  Printf.printf "\n==== serve: daemon throughput/latency vs connections ====\n%!";
  let st = Random.State.make [| seed |] in
  let text = Dna.Sequence.to_string (Dna.Sequence.random ~state:st size) in
  let idx = Core.Kmismatch.build_index text in
  let k = 2 in
  let qs = make_queries ~st ~text ~count:queries in
  note "%d bp index, %d queries (24-56 bp, <=2 planted substitutions), k=%d" size
    queries k;
  note "server: %d pool domain%s, newline-JSON over a Unix socket" jobs
    (if jobs = 1 then "" else "s");
  let rows =
    Obs.span obs "bench.serve" (fun () ->
        run_campaign ~idx ~queries:qs ~k ~connections ~jobs ~batch_max:64 ())
  in
  print_rows rows;
  List.iter
    (fun r ->
      Obs.record obs
        (Printf.sprintf "bench.serve.c%d.p99_us" r.connections)
        (int_of_float r.p99_us);
      Obs.record obs
        (Printf.sprintf "bench.serve.c%d.qps" r.connections)
        (int_of_float r.qps))
    rows;
  List.iter
    (fun r ->
      if not r.identical then
        failwith
          (Printf.sprintf
             "serve bench: concurrent hits diverge from sequential run at %d connections"
             r.connections))
    rows;
  (* Overload round: a deliberately small daemon (capacity = max_queue
     slots + the pool's in-flight batch, ~8 concurrent) is offered ~2x
     that many closed-loop connections.  The point of the row is that
     the shed rate absorbs the excess while p99 over the *accepted*
     queries stays bounded — the queue can never grow past max_queue, so
     accepted latency is capped by queue depth, not by offered load. *)
  let over_queue = 6 and over_jobs = 2 and over_conns = 16 in
  Printf.printf "\n  -- overload: %d connections vs max_queue=%d, %d domains --\n"
    over_conns over_queue over_jobs;
  let over_rows =
    Obs.span obs "bench.serve.overload" (fun () ->
        run_campaign ~idx ~queries:qs ~k ~connections:[ over_conns ]
          ~jobs:over_jobs ~batch_max:2 ~max_queue:over_queue ())
  in
  print_rows over_rows;
  let over = List.hd over_rows in
  let total = Array.length qs - over.dropped in
  note "shed rate %.1f%% (%d of %d offered), accepted p99 %.1f us"
    (100. *. float_of_int over.shed /. float_of_int (max 1 total))
    over.shed total over.p99_us;
  if not over.identical then
    failwith "serve bench: accepted hits diverge under overload";
  Obs.record obs "bench.serve.overload.shed" over.shed;
  Obs.record obs "bench.serve.overload.p99_us" (int_of_float over.p99_us);
  let json =
    Printf.sprintf
      "{\"bench\":\"serve\",\"meta\":%s,\"size\":%d,\"seed\":%d,\"queries\":%d,\
       \"k\":%d,\"jobs\":%d,\"results\":[%s],\"overload\":{\"max_queue\":%d,\
       \"jobs\":%d,\"row\":%s}}"
      (Bench_meta.to_json ()) size seed queries k jobs
      (String.concat "," (List.map row_json rows))
      over_queue over_jobs (row_json over)
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  output_string oc (json ^ "\n");
  close_out oc;
  note "record appended to %s" out

(* Headless smoke for [dune runtest]: tiny index, 2 connections, a few
   dozen queries, no timing output, no JSON — just the full daemon path
   (socket, framing, admission, batching, pool, response decode) plus
   the byte-identity cross-check.  Raises on any divergence. *)
let smoke ?(size = 20_000) ?(seed = 11) ?(queries = 80) () =
  let st = Random.State.make [| seed |] in
  let text = Dna.Sequence.to_string (Dna.Sequence.random ~state:st size) in
  let idx = Core.Kmismatch.build_index text in
  let qs = make_queries ~st ~text ~count:queries in
  let rows =
    run_campaign ~idx ~queries:qs ~k:2 ~connections:[ 2 ] ~jobs:2 ~batch_max:8 ()
  in
  List.iter
    (fun r ->
      if (not r.identical) || r.accepted <> queries then
        failwith "serve smoke: concurrent hits diverge from sequential run")
    rows
