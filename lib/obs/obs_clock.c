/* Monotonic clock for the observability layer.
 *
 * One tiny stub so span timers never go backwards when NTP steps the
 * wall clock.  The result is returned as a tagged OCaml int: 2^62
 * nanoseconds is ~146 years of uptime, so the value always fits and the
 * call never allocates ([@@noalloc] on the OCaml side).
 */
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

CAMLprim value kmm_obs_now_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  /* Fallback for platforms without a monotonic clock: realtime is still
   * nanosecond-resolution, merely steppable. */
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
