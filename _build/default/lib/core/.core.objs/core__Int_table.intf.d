lib/core/int_table.mli:
