examples/snp_scan.ml: Core Dna List Printf Random String Stringmatch
