lib/core/m_tree.ml: Array Dna Fmindex Hashtbl Int_table List Mismatch_array S_tree Stats String
