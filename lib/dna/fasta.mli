(** Minimal FASTA reader/writer.

    Supports multi-record files, line-wrapped sequence bodies, comments
    introduced by [;], and blank lines.  Records with characters outside the
    DNA alphabet are rejected.

    Edge-case behavior (locked in by tests):
    - CRLF ([\r\n]) line endings are accepted everywhere;
    - a final record without a trailing newline parses normally;
    - a [>] header with no sequence lines before the next header or end of
      input raises {!Parse_error} — truncated files fail loudly instead of
      yielding silent empty sequences.  (Consequently {!to_string} output
      round-trips only for records with nonempty sequences.) *)

type record = { name : string; seq : Sequence.t }

exception Parse_error of string
(** Raised on malformed input; the message contains the line number. *)

val parse_string : string -> record list
(** Parse a whole FASTA document held in memory. *)

val read_file : string -> record list
(** Parse a FASTA file from disk. *)

val try_parse_string : string -> (record list, Kmm_error.t) result
(** {!parse_string} with the failure reported as a typed error
    ([Parse_error] becomes [Bad_input]) instead of an exception. *)

val try_read_file : string -> (record list, Kmm_error.t) result
(** {!read_file} with typed errors: [Parse_error] becomes [Bad_input],
    [Sys_error] becomes [Io]. *)

val to_string : ?width:int -> record list -> string
(** Render records in FASTA format, wrapping sequence lines at [width]
    (default 70) characters. *)

val write_file : ?width:int -> string -> record list -> unit
