(* Bechamel micro-benchmarks of the core kernels: the BWT extension step,
   rank queries, R-table construction, and the merge of mismatch arrays —
   the O(k) primitive Algorithm A leans on. *)

open Bechamel
open Toolkit

let make_tests () =
  let st = Random.State.make [| 314 |] in
  let text =
    Dna.Sequence.to_string
      (Dna.Genome_gen.generate { Dna.Genome_gen.default with size = 100_000; seed = 9 })
  in
  let fm = Fmindex.Fm_index.build text in
  let pattern = String.sub text 5_000 100 in
  let k = 5 in
  let mi = Core.Mismatch_array.build pattern ~k in
  let a1 = Core.Mismatch_array.shift_table mi 3 in
  let a2 = Core.Mismatch_array.shift_table mi 7 in
  let beta x = pattern.[2 + x] and gamma x = pattern.[6 + x] in
  let los = Array.make 5 0 and his = Array.make 5 0 in
  let iv = (0, Fmindex.Fm_index.length fm + 1) in
  let random_iv =
    (* A realistic mid-search interval. *)
    match Fmindex.Fm_index.search fm (String.sub pattern 0 6) with
    | Some iv -> iv
    | None -> iv
  in
  let probe = String.sub text 42_000 12 in
  [
    Test.make ~name:"fm.extend_all (root interval)"
      (Staged.stage (fun () -> Fmindex.Fm_index.extend_all fm iv ~los ~his));
    Test.make ~name:"fm.extend_all (narrow interval)"
      (Staged.stage (fun () -> Fmindex.Fm_index.extend_all fm random_iv ~los ~his));
    Test.make ~name:"fm.count (12-mer)"
      (Staged.stage (fun () -> ignore (Fmindex.Fm_index.count fm probe)));
    Test.make ~name:"mismatch merge (paper SS:IV.B)"
      (Staged.stage (fun () ->
           ignore (Core.Mismatch_array.merge ~a1 ~a2 ~beta ~gamma ~limit:(k + 2))));
    Test.make ~name:"R_ij via table merge (derive)"
      (Staged.stage (fun () -> ignore (Core.Mismatch_array.derive mi ~i:3 ~j:7)));
    Test.make ~name:"R_ij via direct LCE"
      (Staged.stage (fun () ->
           ignore (Core.Mismatch_array.pairwise_lce mi ~i:3 ~j:7 ~limit:(k + 2))));
    Test.make ~name:"R tables build (m=100, k=5)"
      (Staged.stage (fun () -> ignore (Core.Mismatch_array.build pattern ~k)));
    Test.make ~name:"suffix array (SA-IS, 10 kbp)"
      (Staged.stage
         (let s =
            String.init 10_000 (fun _ -> [| 'a'; 'c'; 'g'; 't' |].(Random.State.int st 4))
          in
          fun () -> ignore (Suffix.Suffix_array.build s)));
    Test.make ~name:"m-tree search (m=30, k=2)"
      (Staged.stage
         (let idx = Core.Kmismatch.build_index text in
          let p = String.sub text 77_000 30 in
          fun () ->
            ignore
              (Core.Kmismatch.run idx
                 (Core.Kmismatch.Query.make ~engine:Core.Kmismatch.M_tree
                    ~pattern:p ~k:2 ()))));
  ]

let run () =
  Bench_util.section "Micro-benchmarks (Bechamel)";
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      let ols = Hashtbl.find results name in
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-42s %s/run\n" name (Bench_util.fmt_time (est *. 1e-9))
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort compare names)
