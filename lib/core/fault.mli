(** Injectable I/O faults — the test harness behind the crash-safety and
    corruption-detection guarantees of index persistence.

    Two ways to hurt a byte stream:

    - {!wrap} interposes a fault {!plan} on the {!Fmindex.Fm_index.sink}
      that [Fm_index.save ~wrap] streams through, so a save can be
      interrupted mid-write exactly as a full disk, a dying process or a
      lying controller would interrupt it;
    - {!corrupt_string} / {!corrupt_file} apply the same plans to data at
      rest, for load-path tests and the fuzz oracle.

    Injected failures raise {!Injected}, never a real [Sys_error], so
    tests can tell a simulated fault from an actual environment
    problem. *)

exception Injected of string
(** Raised by fault-injecting sinks.  The payload names the fault
    ("ENOSPC", "crash", "short write"). *)

type plan =
  | Enospc_after of int
      (** The device accepts exactly [n] bytes; the write that would
          exceed them stores its fitting prefix and raises — the
          classic disk-full torn write. *)
  | Crash_after of int
      (** The process dies after [n] bytes reach the stream: the write
          crossing the boundary stores its prefix, then every further
          operation (including the flush barrier) raises. *)
  | Short_write of int
      (** Bytes past offset [n] are silently dropped, and the loss is
          only reported at the flush/fsync barrier — the delayed-error
          semantics real [fsync] has. *)
  | Bit_flip of { offset : int; bit : int }
      (** Silent in-flight corruption: bit [bit] of the byte at absolute
          stream offset [offset] is inverted and everything "succeeds".
          The damage must be caught at load time, not save time. *)
  | Truncate_at of int
      (** Silent tail loss at rest: every byte past [offset] vanishes.
          (As a sink this behaves like {!Short_write} but never reports;
          the resulting renamed file must be rejected at load.) *)

val plan_to_string : plan -> string

val wrap : plan -> Fmindex.Fm_index.sink -> Fmindex.Fm_index.sink
(** [Fm_index.save ~wrap:(Fault.wrap plan) t path] saves through the
    fault.  Each [wrap] application carries its own mutable byte
    counter, so a plan value can be reused across saves. *)

val corrupt_string : plan -> string -> string
(** Apply a plan to an in-memory image: [Bit_flip] inverts one bit (the
    offset is reduced modulo the length, so random fuzz offsets are
    always in range); all other plans keep the prefix up to their
    boundary. *)

val corrupt_file : plan -> string -> unit
(** Read a file, {!corrupt_string} it, write it back in place
    (deliberately non-atomically — this {e is} the vandal). *)
