(* rank-locate benchmark: the packed-rank FM-index core against the
   seed's byte-scan implementation (kept verbatim as [Occ.Reference]).

   Four workloads over one random genome:

     fm.rank        single rank queries at random (code, index) points
     fm.extend_all  interval extensions (the inner loop of every engine)
     fm.count       full backward searches of sampled patterns
     fm.locate      row -> text-position resolution via sampled SA

   The seed model is reconstructed faithfully: byte-per-position BWT with
   checkpointed scans at its default rate 16, hashtable SA samples, and
   the same backward-search logic.  The packed side runs at its default
   rate 32 — coarser checkpoints and still faster, which is the point.
   Every workload cross-checks the two implementations' answers on the
   measured queries, so a speedup can never hide a wrong result.

   Besides the table, one JSON object is appended to --out (default
   BENCH_fmindex.json) per run. *)

module Fm = Fmindex.Fm_index
module Occ = Fmindex.Occ

let sigma = Dna.Alphabet.sigma

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

(* Best-of-N wall time after one untimed warmup pass.  The kernels are
   deterministic, so scheduler preemption and frequency ramps can only
   inflate a pass; the minimum is the standard low-noise estimator.
   Both sides of every comparison go through the same harness. *)
let timing_passes = 5

let time_best f =
  f ();
  let best = ref infinity in
  for _ = 1 to timing_passes do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let note fmt = Printf.printf ("  # " ^^ fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* The seed's FM-index, rebuilt on [Occ.Reference]                      *)

module Seed_model = struct
  type t = {
    occ : Occ.Reference.t;
    c_array : int array;
    samples : (int, int) Hashtbl.t;  (* sampled row -> text position *)
    codes : Bytes.t;  (* BWT character codes, byte per row *)
    len : int;  (* n + 1 *)
  }

  let build ?(occ_rate = 16) ?(sa_rate = 16) text =
    let l = Fmindex.Bwt.of_text text in
    let occ = Occ.Reference.make ~rate:occ_rate l in
    let counts = Array.make sigma 0 in
    String.iter (fun ch -> counts.(Dna.Alphabet.code ch) <- counts.(Dna.Alphabet.code ch) + 1) l;
    let c_array = Array.make sigma 0 in
    let sum = ref 0 in
    for c = 0 to sigma - 1 do
      c_array.(c) <- !sum;
      sum := !sum + counts.(c)
    done;
    let len = String.length l in
    let codes = Bytes.create len in
    for i = 0 to len - 1 do
      Bytes.unsafe_set codes i (Char.unsafe_chr (Dna.Alphabet.code l.[i]))
    done;
    (* Collect SA samples with one LF walk (positions n, n-1, ..., 0). *)
    let n = String.length text in
    let samples = Hashtbl.create 1024 in
    let row = ref 0 in
    for pos = n downto 0 do
      if pos mod sa_rate = 0 || pos = n then Hashtbl.replace samples !row pos;
      if pos > 0 then begin
        let c = Char.code (Bytes.get codes !row) in
        row := c_array.(c) + Occ.Reference.rank occ c !row
      end
    done;
    { occ; c_array; samples; codes; len }

  let rank t c i = Occ.Reference.rank t.occ c i

  let extend t c (lo, hi) =
    let lo' = t.c_array.(c) + Occ.Reference.rank t.occ c lo in
    let hi' = t.c_array.(c) + Occ.Reference.rank t.occ c hi in
    if lo' < hi' then Some (lo', hi') else None

  let extend_all t (lo, hi) ~los ~his =
    Occ.Reference.rank_all t.occ lo los;
    Occ.Reference.rank_all t.occ hi his;
    for c = 0 to sigma - 1 do
      los.(c) <- t.c_array.(c) + los.(c);
      his.(c) <- t.c_array.(c) + his.(c)
    done

  let count t pat =
    let m = String.length pat in
    let rec go i iv =
      if i < 0 then (let lo, hi = iv in hi - lo)
      else
        match extend t (Dna.Alphabet.code pat.[i]) iv with
        | None -> 0
        | Some iv' -> go (i - 1) iv'
    in
    go (m - 1) (0, t.len)

  let position_of_row t row =
    let rec walk row steps =
      match Hashtbl.find_opt t.samples row with
      | Some pos -> pos + steps
      | None ->
          let c = Char.code (Bytes.get t.codes row) in
          walk (t.c_array.(c) + Occ.Reference.rank t.occ c row) (steps + 1)
    in
    walk row 0
end

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)

type measurement = {
  label : string;
  ops : int;
  packed_s : float;
  seed_s : float;
  agree : bool;
}

let speedup m = m.seed_s /. m.packed_s
let ns_per_op s ops = s *. 1e9 /. float_of_int ops

let run ?(obs = Obs.noop) ?(out = "BENCH_fmindex.json") ?(size = 1_000_000)
    ?(seed = 42) () =
  Printf.printf "\n==== rank-locate: packed Occ kernel vs seed byte-scan ====\n%!";
  let st = Random.State.make [| seed |] in
  let text = Dna.Sequence.to_string (Dna.Sequence.random ~state:st size) in
  note "text: %d bp random genome (seed %d)" size seed;
  let fm, build_dt =
    Obs.span obs "bench.build" (fun () -> time (fun () -> Fm.build text))
  in
  note "packed build: %.2fs (occ rate 32, sa rate 16)" build_dt;
  let sm, seed_build_dt =
    Obs.span obs "bench.seed_build" (fun () ->
        time (fun () -> Seed_model.build text))
  in
  note "seed-model build: %.2fs (occ rate 16, sa rate 16)" seed_build_dt;
  let n = size in

  (* Shared query sets, generated once so both sides see identical work. *)
  let nrank = 2_000_000 in
  let rank_q =
    Array.init nrank (fun _ -> (1 + Random.State.int st 4, Random.State.int st (n + 2)))
  in
  let sample_pattern len =
    let start = Random.State.int st (n - len) in
    String.sub text start len
  in
  (* Intervals exactly as the k-mismatch engines present them: a
     mismatching-tree expansion of sampled 20-mers (the same query shape
     as fm.count) with budget k = 2, the paper's canonical configuration,
     recording every interval on which [extend_all] is invoked during the
     traversal.  The stream is dominated by deep, narrow intervals — the
     tree fans out by up to 4 per level, so almost all calls happen near
     the leaves — with the handful of whole-range roots engines touch
     once per search. *)
  let nivs = 200_000 in
  let kbudget = 2 in
  let ivs = Array.make nivs (0, n + 1) in
  (let filled = ref 0 in
   let los0 = Array.make sigma 0 and his0 = Array.make sigma 0 in
   while !filled < nivs do
     let pat = sample_pattern 20 in
     let m = String.length pat in
     let rec expand i iv mm =
       if !filled < nivs && i >= 0 then begin
         ivs.(!filled) <- iv;
         incr filled;
         Fm.extend_all fm iv ~los:los0 ~his:his0;
         let want = Dna.Alphabet.code pat.[i] in
         let children = ref [] in
         for c = sigma - 1 downto 1 do
           let lo = los0.(c) and hi = his0.(c) in
           if lo < hi then begin
             let mm' = if c = want then mm else mm + 1 in
             if mm' <= kbudget then children := (lo, hi, mm') :: !children
           end
         done;
         List.iter (fun (lo, hi, mm') -> expand (i - 1) (lo, hi) mm') !children
       end
     in
     expand (m - 1) (Fm.whole fm) 0
   done);
  let npats = 20_000 in
  let pats = Array.init npats (fun _ -> sample_pattern 20) in
  let nrows = 200_000 in
  let rows = Array.init nrows (fun _ -> Random.State.int st (n + 1)) in

  let packed_occ_bytes = List.assoc "packed bwt + rank blocks" (Fm.space_report fm) in

  (* --- fm.rank ----------------------------------------------------- *)
  let occ = Occ.make ~rate:32 (Fm.bwt fm) in
  (* (independent Occ over the same BWT: measures the kernel alone) *)
  let acc_p = ref 0 in
  let p_dt =
    time_best (fun () ->
        for q = 0 to nrank - 1 do
          let c, i = Array.unsafe_get rank_q q in
          acc_p := !acc_p + Occ.rank occ c i
        done)
  in
  let acc_s = ref 0 in
  let s_dt =
    time_best (fun () ->
        for q = 0 to nrank - 1 do
          let c, i = Array.unsafe_get rank_q q in
          acc_s := !acc_s + Seed_model.rank sm c i
        done)
  in
  let m_rank =
    { label = "fm.rank"; ops = nrank; packed_s = p_dt; seed_s = s_dt; agree = !acc_p = !acc_s }
  in

  (* --- fm.extend_all ------------------------------------------------ *)
  let los = Array.make sigma 0 and his = Array.make sigma 0 in
  let acc_p = ref 0 in
  let p_dt =
    time_best (fun () ->
        for q = 0 to nivs - 1 do
          Fm.extend_all fm (Array.unsafe_get ivs q) ~los ~his;
          acc_p := !acc_p + los.(1) + his.(2) + los.(3) + his.(4)
        done)
  in
  let acc_s = ref 0 in
  let s_dt =
    time_best (fun () ->
        for q = 0 to nivs - 1 do
          Seed_model.extend_all sm (Array.unsafe_get ivs q) ~los ~his;
          acc_s := !acc_s + los.(1) + his.(2) + los.(3) + his.(4)
        done)
  in
  let m_extend =
    { label = "fm.extend_all"; ops = nivs; packed_s = p_dt; seed_s = s_dt; agree = !acc_p = !acc_s }
  in

  (* --- fm.count ----------------------------------------------------- *)
  let acc_p = ref 0 in
  let p_dt =
    time_best (fun () ->
        for q = 0 to npats - 1 do
          acc_p := !acc_p + Fm.count fm (Array.unsafe_get pats q)
        done)
  in
  let acc_s = ref 0 in
  let s_dt =
    time_best (fun () ->
        for q = 0 to npats - 1 do
          acc_s := !acc_s + Seed_model.count sm (Array.unsafe_get pats q)
        done)
  in
  let m_count =
    { label = "fm.count"; ops = npats; packed_s = p_dt; seed_s = s_dt; agree = !acc_p = !acc_s }
  in

  (* --- fm.locate ---------------------------------------------------- *)
  let one = Array.make 1 0 in
  let acc_p = ref 0 in
  let p_dt =
    time_best (fun () ->
        for q = 0 to nrows - 1 do
          let row = Array.unsafe_get rows q in
          Fm.locate_into fm (row, row + 1) one;
          acc_p := !acc_p + one.(0)
        done)
  in
  let acc_s = ref 0 in
  let s_dt =
    time_best (fun () ->
        for q = 0 to nrows - 1 do
          acc_s := !acc_s + Seed_model.position_of_row sm (Array.unsafe_get rows q)
        done)
  in
  let m_locate =
    { label = "fm.locate"; ops = nrows; packed_s = p_dt; seed_s = s_dt; agree = !acc_p = !acc_s }
  in

  let measurements = [ m_rank; m_extend; m_count; m_locate ] in
  (* Surface the per-workload results through the sink too, so
     [kmm bench --metrics-out] expositions carry the same numbers as the
     JSON record. *)
  List.iter
    (fun m ->
      Obs.record obs
        ("bench." ^ m.label ^ ".packed_ns_per_op")
        (int_of_float (ns_per_op m.packed_s m.ops));
      Obs.record obs
        ("bench." ^ m.label ^ ".seed_ns_per_op")
        (int_of_float (ns_per_op m.seed_s m.ops));
      Obs.incr ~by:m.ops obs ("bench." ^ m.label ^ ".ops"))
    measurements;
  Printf.printf "  %-14s %12s %12s %9s %7s\n" "workload" "packed ns/op" "seed ns/op" "speedup"
    "agree";
  Printf.printf "  %s\n" (String.make 58 '-');
  List.iter
    (fun m ->
      Printf.printf "  %-14s %12.1f %12.1f %8.2fx %7s\n" m.label
        (ns_per_op m.packed_s m.ops) (ns_per_op m.seed_s m.ops) (speedup m)
        (if m.agree then "yes" else "NO(BUG)"))
    measurements;
  List.iter
    (fun m -> if not m.agree then failwith ("rank_locate: packed and seed diverge on " ^ m.label))
    measurements;

  (* --- space + persistence ------------------------------------------ *)
  let seed_rank_bytes = Occ.Reference.space_bytes sm.Seed_model.occ in
  let bits_per_base = 8.0 *. float_of_int packed_occ_bytes /. float_of_int n in
  note "rank structure: packed %d bytes (%.2f bits/base incl. checkpoints), seed %d bytes (%.1fx)"
    packed_occ_bytes bits_per_base seed_rank_bytes
    (float_of_int seed_rank_bytes /. float_of_int packed_occ_bytes);
  let tmp = Filename.temp_file "kmm-bench" ".fmi" in
  let v2_load_dt =
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        Fm.save fm tmp;
        let fm', dt = time (fun () -> Fm.load tmp) in
        assert (Fm.length fm' = n);
        dt)
  in
  note "format-v2 load: %.3fs vs %.2fs rebuild (%.0fx; adopting buffers, no reconstruction)"
    v2_load_dt build_dt (build_dt /. v2_load_dt);

  (* --- JSON record --------------------------------------------------- *)
  let json =
    Printf.sprintf
      "{\"bench\":\"rank_locate\",\"meta\":%s,\"size\":%d,\"seed\":%d,\
       \"occ_rate_packed\":32,\
       \"occ_rate_seed\":16,\"results\":[%s],\"space\":{\"packed_rank_bytes\":%d,\
       \"packed_bits_per_base\":%.3f,\"seed_rank_bytes\":%d},\"persistence\":\
       {\"build_s\":%.4f,\"v2_load_s\":%.4f}}"
      (Bench_meta.to_json ()) size seed
      (String.concat ","
         (List.map
            (fun m ->
              Printf.sprintf
                "{\"workload\":\"%s\",\"ops\":%d,\"packed_ns_per_op\":%.1f,\
                 \"seed_ns_per_op\":%.1f,\"speedup\":%.3f,\"agree\":%b}"
                m.label m.ops (ns_per_op m.packed_s m.ops) (ns_per_op m.seed_s m.ops)
                (speedup m) m.agree)
            measurements))
      packed_occ_bytes bits_per_base seed_rank_bytes build_dt v2_load_dt
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  output_string oc (json ^ "\n");
  close_out oc;
  note "record appended to %s" out

(* ------------------------------------------------------------------ *)
(* Headless parity smoke for [dune runtest]: build both models on a
   small genome and replay every workload's cross-check — no timing, no
   output, no JSON.  Raises [Failure] on the first divergence, which is
   how a kernel bug that slipped past the unit suite would surface in
   CI before anyone trusts a speedup number. *)

let parity_smoke ?(size = 20_000) ?(seed = 7) () =
  let st = Random.State.make [| seed |] in
  let text = Dna.Sequence.to_string (Dna.Sequence.random ~state:st size) in
  let fm = Fm.build text in
  let sm = Seed_model.build text in
  let n = size in
  let occ = Occ.make ~rate:32 (Fm.bwt fm) in
  for _ = 1 to 2_000 do
    let c = 1 + Random.State.int st 4 and i = Random.State.int st (n + 2) in
    if Occ.rank occ c i <> Seed_model.rank sm c i then
      failwith "rank_locate parity: fm.rank diverges"
  done;
  let los_p = Array.make sigma 0 and his_p = Array.make sigma 0 in
  let los_s = Array.make sigma 0 and his_s = Array.make sigma 0 in
  let agree_all a b = Array.for_all2 (fun x y -> x = y) a b in
  for _ = 1 to 2_000 do
    let a = Random.State.int st (n + 1) in
    let b = a + Random.State.int st (n + 2 - a) in
    Fm.extend_all fm (a, b) ~los:los_p ~his:his_p;
    Seed_model.extend_all sm (a, b) ~los:los_s ~his:his_s;
    if not (agree_all los_p los_s && agree_all his_p his_s) then
      failwith "rank_locate parity: fm.extend_all diverges"
  done;
  let sample_pattern len =
    let start = Random.State.int st (n - len) in
    String.sub text start len
  in
  for _ = 1 to 500 do
    let pat = sample_pattern (1 + Random.State.int st 24) in
    if Fm.count fm pat <> Seed_model.count sm pat then
      failwith "rank_locate parity: fm.count diverges"
  done;
  let one = Array.make 1 0 in
  for _ = 1 to 2_000 do
    let row = Random.State.int st (n + 1) in
    Fm.locate_into fm (row, row + 1) one;
    if one.(0) <> Seed_model.position_of_row sm row then
      failwith "rank_locate parity: fm.locate diverges"
  done
