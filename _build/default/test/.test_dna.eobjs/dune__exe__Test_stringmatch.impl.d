test/test_stringmatch.ml: Aho_corasick Alcotest Array Boyer_moore Hamming Kangaroo Kmp List Naive QCheck2 String Stringmatch Test_util Zalgo
