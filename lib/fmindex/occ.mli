(** Rank ("rankall") structure over a BWT string — packed-rank edition.

    This is the paper's Fig. 2 device: for each character [x], [A_x.(k)] is
    the number of occurrences of [x] in [L[0 .. k)].  The seed kept a full
    byte-per-position copy of the BWT and scanned it between checkpoints;
    this version stores the DNA payload at 2 bits per base and interleaves
    it with its checkpoints so a rank touches one compact block:

    - the BWT is split into {e blocks} of [block_lanes] bases
      ([block_lanes] is the checkpoint [rate] rounded up to a power of two
      in 32..65536, so every index computation is a shift/mask, never a
      division);
    - each block is [8 + block_lanes/4] bytes: four little-endian [uint16]
      counts (occurrences of a/c/g/t {e before} the block, relative to the
      enclosing superblock) immediately followed by the block's 2-bit
      payload — counts and payload share cache lines;
    - absolute counts live in {e superblock} counters (one [int] per code
      every 65536 bases), which is what keeps the per-block counts in 16
      bits;
    - the remainder inside a block is counted 4 lanes at a time through a
      256-entry packed-count table (a SWAR popcount over the packed word,
      processed bytewise so the hot loop allocates nothing — OCaml boxes
      [int64], so genuine 64-bit words would cost more than they save);
    - the sentinel ['$'] is not stored in the payload at all: its row
      index is kept out-of-band and rank queries adjust around it.

    The external contract is unchanged from the seed: codes are the
    {!Dna.Alphabet} codes over [$acgt] and indices are BWT positions with
    the sentinel {e included}, so every call site gets the packed kernel
    for free. *)

type t

val make : ?rate:int -> string -> t
(** [make l] preprocesses the BWT string [l] (over [$acgt], case folded).
    [rate] (default 32) is the requested checkpoint spacing; must be
    positive.  It is rounded up to a power of two in 32..65536. *)

val of_packed : ?rate:int -> ?sentinels:int array -> Packed_text.t -> t
(** [of_packed pt ~sentinels] builds the structure straight from a packed
    payload, avoiding any byte-per-base intermediate.  [sentinels] are the
    {e BWT row indices} (ascending, default none) that hold the sentinel;
    the payload holds every other row in order. *)

val rank : t -> int -> int -> int
(** [rank t c i] is the number of occurrences of character code [c] in
    [l[0 .. i)].  O(block_lanes / 4) worst case, with [i = 0] and
    [i = length t] answered from precomputed totals. *)

val rank_pair : t -> int -> int -> int -> int * int
(** [rank_pair t c lo hi] is [(rank t c lo, rank t c hi)].  Width-1
    intervals — the bulk of deep mismatching-tree traffic — are answered
    with a single block decode plus an indicator of row [lo]'s own code;
    otherwise the two decodes of a narrow interval share a cache line. *)

val rank_pair_into : t -> int -> int -> int -> int array -> unit
(** [rank_pair_into t c lo hi dst] writes [rank t c lo] to [dst.(0)] and
    [rank t c hi] to [dst.(1)] — [rank_pair] without the result tuple, for
    allocation-free backward-search loops.  [dst] needs length >= 2. *)

val rank_all : t -> int -> int array -> unit
(** [rank_all t i dst] writes [rank t c i] into [dst.(c)] for every
    character code in one block decode.  [dst] must have length [sigma]. *)

val rank_all_pair : t -> int -> int -> int array -> int array -> unit
(** [rank_all_pair t lo hi los his] = [rank_all t lo los; rank_all t hi
    his].  A width-1 interval costs a single block decode plus one
    payload read; other narrow intervals pay two decodes of the same
    cache line. *)

(** {1 Unchecked entry points}

    The same kernels with argument validation hoisted out: the caller
    guarantees [0 <= lo, hi <= length t], [0 <= c < sigma] and the
    destination sizes ([sigma] resp. [>= 2]).  {!Fm_index} validates
    once at its own API boundary and then drives these from loops that
    keep the preconditions invariant, so the per-step checks would be
    pure overhead.  Violating a precondition is undefined behaviour
    (these kernels use unchecked array access internally). *)

val rank_all_pair_unsafe : t -> int -> int -> int array -> int array -> unit
val rank_pair_into_unsafe : t -> int -> int -> int -> int array -> unit

val get : t -> int -> int
(** [get t row] is the character code of BWT position [row] — the packed
    replacement for indexing the [l] string. *)

val char_rank : t -> int -> int * int
(** [char_rank t row] is [(c, rank t c row)] for [c = get t row], decoded
    in one pass: exactly the pair an LF step needs. *)

val counts : t -> int array
(** Total occurrences of every character code in the whole BWT (a fresh
    array of length [sigma]); [C]-array construction reads this. *)

val rate : t -> int
(** The {e requested} checkpoint rate (persisted in index headers). *)

val block_lanes : t -> int
(** The effective block size in bases: [rate] rounded up to a power of
    two in 32..65536. *)

val length : t -> int
val space_bytes : t -> int
(** Exact heap footprint of the structure: the interleaved block buffer
    plus superblock counters, sentinel table and totals. *)

val to_packed : t -> Packed_text.t
(** Extract the 2-bit payload (sentinel excluded) as a fresh contiguous
    {!Packed_text.t} — what persistence serializes. *)

(** {1 Persistence hooks}

    Every on-disk format since v2 writes the interleaved buffers
    verbatim so [load] never recounts the text — and format v4 goes one
    further: the block buffer can be adopted {e in place} from an
    mmap'd section.  Treat the returned buffers as read-only. *)

val raw_blocks : t -> Storage.t
val raw_super : t -> int array

val of_raw :
  rate:int -> len:int -> sentinels:int array -> blocks:Storage.t -> super:int array -> t
(** Re-adopt buffers read (or mapped) from an index file.  Validates the
    geometry (buffer sizes for [len] and [rate], sorted sentinels),
    clears payload padding lanes, and verifies every stored checkpoint
    against one sequential table recount of the payload (a
    memory-bandwidth scan; no reconstruction of any kind); raises
    [Invalid_argument] on any mismatch. *)

val of_raw_trusted :
  rate:int ->
  len:int ->
  sentinels:int array ->
  blocks:Storage.t ->
  super:int array ->
  totals:int array ->
  t
(** {!of_raw} minus the O(n) checkpoint recount, for the mmap fast
    path: geometry and sentinel validation and padding clearing still
    happen, but the stored checkpoints are taken at face value and the
    character [totals] (length [sigma], [totals.(0)] = sentinel count,
    summing to [len]) come from the caller — in practice the v4 header,
    whose own CRC has already been checked.  A corrupted payload that
    slips past the file-level CRCs therefore yields wrong answers, not
    crashes: every offset derived from the validated geometry stays in
    bounds.  [kmm verify] re-runs the full {!of_raw} recount. *)

(** {1 Differential reference} *)

(** The seed's byte-scan implementation, kept verbatim as the oracle the
    packed kernel is tested and benchmarked against. *)
module Reference : sig
  type t

  val make : ?rate:int -> string -> t
  val rank : t -> int -> int -> int
  val rank_all : t -> int -> int array -> unit
  val rate : t -> int
  val length : t -> int
  val space_bytes : t -> int
end
