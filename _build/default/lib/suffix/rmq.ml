type t = { table : int array array; log2 : int array; n : int }

let make a =
  let n = Array.length a in
  let log2 = Array.make (n + 1) 0 in
  for i = 2 to n do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = if n = 0 then 1 else log2.(n) + 1 in
  let table = Array.make levels [||] in
  table.(0) <- Array.copy a;
  for lev = 1 to levels - 1 do
    let span = 1 lsl lev in
    let m = n - span + 1 in
    let row = Array.make (max m 0) 0 in
    let prev = table.(lev - 1) in
    for i = 0 to m - 1 do
      row.(i) <- min prev.(i) prev.(i + (span / 2))
    done;
    table.(lev) <- row
  done;
  { table; log2; n }

let min_in t i j =
  if i > j || i < 0 || j >= t.n then
    invalid_arg (Printf.sprintf "Rmq.min_in: bad range [%d, %d] (n=%d)" i j t.n);
  let lev = t.log2.(j - i + 1) in
  let span = 1 lsl lev in
  min t.table.(lev).(i) t.table.(lev).(j - span + 1)
