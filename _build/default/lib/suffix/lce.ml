type t = { s : string; rank : int array; rmq : Rmq.t }

let make s =
  let sa = Suffix_array.build s in
  let rank = Suffix_array.rank_of sa in
  let h = Lcp.of_suffix_array s sa in
  { s; rank; rmq = Rmq.make h }

let text t = t.s

let lce t i j =
  let n = String.length t.s in
  if i < 0 || j < 0 || i > n || j > n then
    invalid_arg "Lce.lce: index out of range";
  if i = j then n - i
  else if i = n || j = n then 0
  else begin
    let ri = t.rank.(i) and rj = t.rank.(j) in
    let lo = min ri rj and hi = max ri rj in
    Rmq.min_in t.rmq (lo + 1) hi
  end

type pair = { base : t; off_b : int }

let make_pair a b =
  let sep = '\001' in
  if String.contains a sep || String.contains b sep then
    invalid_arg "Lce.make_pair: strings must not contain '\\001'";
  let concat = a ^ String.make 1 sep ^ b in
  { base = make concat; off_b = String.length a + 1 }

let lce_pair p i j = lce p.base i (p.off_b + j)
