(* Multi-pattern session: amortize one index over many queries, mixing
   exact search (plain FM backward search), k-mismatch search (Algorithm
   A), and multi-string exact search (Aho-Corasick) — the library's three
   query styles side by side.

     dune exec examples/multi_pattern.exe                                *)

let () =
  let genome =
    Dna.Genome_gen.generate
      { Dna.Genome_gen.default with size = 50_000; seed = 99; repeat_fraction = 0.4 }
  in
  let text = Dna.Sequence.to_string genome in
  let index = Core.Kmismatch.build_index text in

  (* 1. Exact queries, three index families side by side (the paper's
     SS:II inventory): FM-index backward search, suffix-array binary
     search, suffix-tree walk. *)
  let fm = Fmindex.Fm_index.build text in
  let sa = Suffix.Sa_search.build text in
  let tree = Core.Kmismatch.suffix_tree index in
  let probes = [ String.sub text 1000 12; String.sub text 30_000 15; "acgtacgtacgtacg" ] in
  print_endline "exact (FM-index / suffix array / suffix tree):";
  List.iter
    (fun p ->
      Printf.printf "  %-16s fm=%d sa=%d tree=%b\n" p (Fmindex.Fm_index.count fm p)
        (Suffix.Sa_search.count sa p)
        (Suffix.Suffix_tree.contains tree p))
    probes;

  (* 2. k-mismatch queries through Algorithm A, reusing one index. *)
  print_endline "\nk-mismatch (Algorithm A):";
  List.iter
    (fun (p, k) ->
      let hits = Core.Kmismatch.search index ~engine:Core.Kmismatch.M_tree ~pattern:p ~k in
      Printf.printf "  %-20s k=%d  %d occurrence(s)\n" p k (List.length hits))
    [
      (String.sub text 1000 20, 2);
      (String.sub text 25_000 30, 3);
      ("acgtacgtacgtacgtacgt", 4);
    ];

  (* 3. Multi-string exact search in a single pass (Aho-Corasick). *)
  let motifs = [| "tataaa"; "caat"; "gggcgg" |] in
  let ac = Stringmatch.Aho_corasick.build motifs in
  let counts = Array.make (Array.length motifs) 0 in
  Stringmatch.Aho_corasick.scan ac text ~f:(fun ~pattern ~pos:_ ->
      counts.(pattern) <- counts.(pattern) + 1);
  print_endline "\nmotif counts (Aho-Corasick, one pass):";
  Array.iteri (fun i m -> Printf.printf "  %-8s %d\n" m counts.(i)) motifs
