(** Cross-engine differential fuzzing oracle.

    The library's central invariant is that every engine in
    {!Kmismatch.all_engines} returns *exactly* the same
    [(position, distance)] set for any [(text, pattern, k)] query — the
    paper's Algorithm A is only interesting because it matches the naive
    answer while doing less work.  This module enforces that invariant
    mechanically:

    - seeded {e generators} produce random and adversarial cases
      (periodic texts, homopolymer runs, [pattern] ≈ [text] length,
      [k = 0], [k >= m], single-character genomes, windows hugging the
      text boundaries, planted near-matches);
    - a {e checker} runs every engine — plus the online Kangaroo and
      bit-parallel Shift-Add baselines — against the naive Hamming
      reference and reports divergences;
    - a {e shrinker} greedily minimizes any failing case to a smallest
      reproducer;
    - a tiny {e corpus} text format ([test/corpus/*.case]) persists
      reproducers so [dune runtest] replays them deterministically
      forever after.

    The same harness backs [kmm fuzz] on the command line. *)

type case = { text : string; pattern : string; k : int }
(** One query.  Invariants (enforced by {!make_case} and the corpus
    parser): [text] and [pattern] are lowercase [acgt], [pattern] is
    nonempty and [k >= 0].  [text] may be shorter than [pattern] (all
    engines must then agree on the empty answer). *)

val make_case : text:string -> pattern:string -> k:int -> case
(** Normalizes case (upper to lower) and validates the invariants above.
    Raises [Invalid_argument] on empty patterns, [k < 0] or non-ACGT
    characters. *)

val case_to_string : case -> string
val pp_case : Format.formatter -> case -> unit

(** {1 Reference answer} *)

val reference : case -> (int * int) list
(** The naive O(mn) Hamming scan: all [(position, distance)] with
    [distance <= k], ascending by position.  Every subject must
    reproduce this list exactly. *)

(** {1 Subjects under test} *)

type subject = {
  sub_name : string;
  run : Kmismatch.index -> case -> (int * int) list option;
      (** [None] means "not applicable to this case" (e.g. the
          bit-parallel matcher when the pattern does not fit the machine
          word); the subject is then skipped, not failed.  Exceptions
          escaping [run] are recorded as divergences. *)
}

val default_subjects : unit -> subject list
(** Every engine of {!Kmismatch.all_engines} (a registry snapshot, so
    engines registered after startup join automatically) plus two
    index-free baselines —
    the online Kangaroo matcher and (when [Shift_or.fits]) the
    bit-parallel Shift-Add automaton — a [packed-verify] subject that
    answers every case by scanning all windows with the word-parallel
    kernel ({!Fmindex.Packed_text.hamming_le}), plus four
    packed-FM-index subjects: a forward-index [find_all] check on
    [k = 0] cases, a [bidir-find-all] subject that rebuilds the
    bidirectional index from the case's raw text and runs the optimum
    search schemes executor ({!Oss.search}) on every budget, a
    save/load roundtrip (current on-disk format)
    queried through the M-tree engine, and an [fm-v3-corruption]
    subject that serializes the index and verifies that each of a
    pseudo-random battery of image corruptions (bit flips, truncations,
    ENOSPC prefixes) is either rejected with a typed error or decodes
    to identical contents. *)

(** {1 Checking} *)

type outcome =
  | Hits of (int * int) list
  | Engine_error of string  (** the subject raised; message recorded *)

type divergence = {
  div_case : case;
  div_subject : string;
  expected : (int * int) list;
  got : outcome;
}

val pp_divergence : Format.formatter -> divergence -> unit

val check_case : ?subjects:subject list -> case -> divergence list
(** Build one shared index for [case.text], run every subject, and
    return all divergences from {!reference} (empty list = agreement). *)

(** {1 Case generators} *)

type gen_class =
  | Uniform  (** i.i.d. random text and pattern *)
  | Planted  (** pattern copied from the text with a few mutations *)
  | Periodic  (** text is a short unit repeated; pattern related *)
  | Homopolymer  (** long single-letter runs in text and pattern *)
  | Near_full  (** pattern length close to (or equal to, or above) [n] *)
  | Boundary  (** pattern sampled hugging position 0 or [n - m] *)
  | Zero_k  (** exact matching, [k = 0] *)
  | Big_k  (** degenerate budget, [k >= m]: every window matches *)
  | Single_char  (** single-character genome and/or pattern *)

val all_classes : gen_class list
val class_name : gen_class -> string

val generate : ?classes:gen_class list -> ?max_text:int -> Random.State.t -> case
(** Draw one case: pick a class uniformly from [classes] (default
    {!all_classes}), then sample from it.  Text length is at most
    [max_text] (default 160) and at least 0; patterns stay short enough
    to keep the naive reference fast. *)

(** {1 Shrinking} *)

val shrink : ?max_evals:int -> (case -> bool) -> case -> case
(** [shrink still_fails c] greedily minimizes [c] under the predicate:
    chunk-deletes text and pattern, lowers [k], and rewrites characters
    to ['a'], looping to a fixpoint.  [still_fails c] must hold on
    entry; the result also satisfies it.  At most [max_evals]
    (default 4000) predicate evaluations are spent. *)

val shrink_divergence : ?subjects:subject list -> divergence -> case
(** Minimize the case of a recorded divergence: shrinks under
    "the named subject still disagrees with the reference". *)

(** {1 Fuzz driver} *)

type report = {
  iters_run : int;
  by_class : (string * int) list;  (** cases drawn per generator class *)
  divergences : divergence list;
      (** shrunk; at most one per subject name (first hit wins) *)
}

val fuzz :
  ?subjects:subject list ->
  ?classes:gen_class list ->
  ?max_text:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  iters:int ->
  unit ->
  report
(** Run [iters] generated cases from the seeded PRNG.  Every divergence
    is shrunk before being reported; subjects that already diverged are
    still checked on later cases but only their first divergence is
    kept.  [progress] is called with the 1-based iteration number. *)

(** {1 Regression corpus} *)

val corpus_to_string : ?comment:string list -> case -> string
(** Serialize a case in the [.case] format: optional leading [#]
    comment lines, then [k <int>], [pattern <acgt>], [text <acgt>]
    lines ([text] may be empty).  Designed to be written by hand. *)

val corpus_of_string : string -> (case, string) result
(** Parse a [.case] document; [Error msg] on malformed input. *)

val save_case : ?comment:string list -> string -> case -> unit
(** Write a reproducer file.  The comment lines (without the leading
    [#]) are prepended. *)

val load_case : string -> case
(** Read one [.case] file.  Raises [Failure] with the parse error. *)

val replay_file : ?subjects:subject list -> string -> divergence list
(** {!load_case} then {!check_case}. *)

val replay_dir : ?subjects:subject list -> string -> (string * divergence list) list
(** Replay every [*.case] file under a directory (sorted by name);
    returns per-file divergences.  Missing directory = empty list. *)
