(** Optimum search schemes over the bidirectional FM-index.

    Kianfar & Pockrandt et al. ("Optimum Search Schemes for Approximate
    String Matching Using Bidirectional FM-Index"): split the pattern
    into [p = k + 1] pieces and run a small set of {e searches}, each a
    permutation of the pieces with cumulative lower/upper mismatch
    bounds.  Because the bidirectional index can grow a match to either
    side, a search may start from a middle piece and force it to be
    matched {e exactly} ([U_1 = 0]), which prunes the 4-way mismatch
    branching far earlier than the paper's purely backward S-/M-tree
    walk — the win grows with [k].

    {!Scheme} holds the precomputed tables (k ≤ 4) and the generic
    pigeonhole family (any k), with checkers the test suite runs
    exhaustively; {!search} executes a scheme set over a
    {!Fmindex.Bidir.t} with word-parallel verification of
    narrow-interval candidates. *)

(** Search-scheme tables.

    A {e search} over [p] pieces is [(π, L, U)]: piece processing order
    [π] (1-based piece numbers; each next piece adjacent to the span
    already processed, so the matched region stays contiguous) and
    cumulative mismatch bounds — after processing the [t]-th piece of
    the order, the total number of mismatches spent must lie in
    [L.(t), U.(t)].  A mismatch {e distribution} is the per-piece error
    count vector [a] of a real occurrence; a scheme (set of searches) is
    {e complete} for [k] when every [a] with [Σa ≤ k] is admitted by at
    least one search.  Completeness is what makes the engine exact;
    the tables below are verified complete by enumeration in the test
    suite. *)
module Scheme : sig
  type search = {
    pi : int array;  (** processing order: a permutation of [1..p] *)
    lower : int array;  (** cumulative lower bounds, one per step *)
    upper : int array;  (** cumulative upper bounds, one per step *)
  }

  val pieces : k:int -> int
  (** Number of pattern pieces used at mismatch budget [k]: [k + 1]. *)

  val for_k : k:int -> search list
  (** The scheme executed at budget [k] ([k >= 0]): hand-tuned
      precomputed tables for [k <= 4], the generic family for larger
      budgets.  Every search starts with an exact piece ([U.(0) = 0]). *)

  val generic : k:int -> i:int -> search
  (** The [i]-th member ([1 <= i <= k+1]) of the generic
      leftmost-zero-piece family: process pieces [i, i+1, ..., p] to the
      right then [i-1, ..., 1] to the left, with piece [i] exact.  The
      family is complete for every [k] by pigeonhole: an occurrence with
      [Σa ≤ k < p] has a zero piece, and the search of its {e leftmost}
      zero piece admits it. *)

  val covers : search -> int array -> bool
  (** Does this search admit the mismatch distribution [a] (length [p],
      indexed by piece number - 1)? *)

  val complete : k:int -> bool
  (** Exhaustive completeness check of [for_k ~k]: true iff every
      distribution with [Σa ≤ k] is covered.  Enumeration is
      [O((k+1)^(k+1))] — meant for tests and small [k]. *)

  val valid : k:int -> bool
  (** Structural validity of [for_k ~k]: every [π] a permutation of
      [1..p] with the contiguous-span (connectivity) property, bounds
      monotone nondecreasing with [L ≤ U] pointwise, and [U] within
      [0..k]. *)
end

val search :
  ?stats:Stats.t ->
  ?obs:Obs.t ->
  ptext:Fmindex.Packed_text.t ->
  Fmindex.Bidir.t ->
  pattern:string ->
  k:int ->
  (int * int) list
(** [search ~ptext bidir ~pattern ~k] returns every [(position,
    distance)] with [distance <= k], sorted by position — the same
    contract as every other engine.  [ptext] is the forward text 2-bit
    packed (the verification kernel's input; must match the index).

    Execution: the pattern splits into [Scheme.pieces ~k] near-equal
    pieces; each search of [Scheme.for_k ~k] grows a synchronized
    interval pair piece by piece, branching over the four bases with the
    cumulative bounds pruning.  When an interval narrows to at most two
    candidate rows, the executor leaves the index: it locates the rows
    through the reverse side's sampled SA and verifies the whole pattern
    window with the word-parallel SWAR kernel
    ({!Fmindex.Packed_text.hamming}, limit [k]).  Occurrences reached by
    several searches are deduplicated by position before the sorted
    return.

    Degenerate budgets follow the house rules: [k] is clamped to the
    pattern length; [k >= m] answers every window at its true distance;
    a pattern longer than the text has no hits.  Raises
    [Invalid_argument] on an empty pattern, non-lowercase-ACGT pattern,
    or negative [k].

    Cooperative cancellation: {!Deadline.poll} runs at every node of the
    branching walk.  [obs] receives a [bidir.explore] span and
    [bidir.extends] / [bidir.verifications] / [bidir.searches]
    counters. *)
