(* Optimum-search-schemes engine over the bidirectional FM-index.  See
   oss.mli for the scheme/completeness vocabulary and DESIGN.md
   "Bidirectional index and optimum search schemes" for the cost model. *)

module Bidir = Fmindex.Bidir
module Packed_text = Fmindex.Packed_text

module Scheme = struct
  type search = { pi : int array; lower : int array; upper : int array }

  let pieces ~k =
    if k < 0 then invalid_arg "Oss.Scheme.pieces: negative k";
    k + 1

  (* The generic leftmost-zero-piece family: search i processes pieces
     i, i+1, ..., p rightwards then i-1, ..., 1 leftwards.  Piece i is
     exact (U_1 = 0); while still inside the right run at most
     k - (i - 1) mismatches may be spent, because the searches to its
     left are reserved for distributions whose pieces 1..i-1 all carry
     at least one error (the cumulative L ramp on the left run).  An
     occurrence with sum <= k < p has a zero piece; the search of its
     leftmost zero piece admits it, so the family is complete for every
     k with p = k + 1 pieces. *)
  let generic ~k ~i =
    let p = pieces ~k in
    if i < 1 || i > p then invalid_arg "Oss.Scheme.generic: piece out of range";
    let right_run = p - i + 1 in
    let pi =
      Array.init p (fun t ->
          if t < right_run then i + t else i - 1 - (t - right_run))
    in
    let upper =
      Array.init p (fun t ->
          if t = 0 then 0 else if t < right_run then k - i + 1 else k)
    in
    let lower =
      Array.init p (fun t -> if t < right_run then 0 else t + 1 - right_run)
    in
    { pi; lower; upper }

  (* Precomputed tables for the budgets the CLI meets in practice,
     materialized so a regression in the generator cannot silently
     change the executed schemes; the completeness test enumerates every
     distribution against exactly these literals. *)
  let table_k1 =
    [
      { pi = [| 1; 2 |]; lower = [| 0; 0 |]; upper = [| 0; 1 |] };
      { pi = [| 2; 1 |]; lower = [| 0; 1 |]; upper = [| 0; 1 |] };
    ]

  let table_k2 =
    [
      { pi = [| 1; 2; 3 |]; lower = [| 0; 0; 0 |]; upper = [| 0; 2; 2 |] };
      { pi = [| 2; 3; 1 |]; lower = [| 0; 0; 1 |]; upper = [| 0; 1; 2 |] };
      { pi = [| 3; 2; 1 |]; lower = [| 0; 1; 2 |]; upper = [| 0; 2; 2 |] };
    ]

  let table_k3 =
    [
      {
        pi = [| 1; 2; 3; 4 |];
        lower = [| 0; 0; 0; 0 |];
        upper = [| 0; 3; 3; 3 |];
      };
      {
        pi = [| 2; 3; 4; 1 |];
        lower = [| 0; 0; 0; 1 |];
        upper = [| 0; 2; 2; 3 |];
      };
      {
        pi = [| 3; 4; 2; 1 |];
        lower = [| 0; 0; 1; 2 |];
        upper = [| 0; 1; 3; 3 |];
      };
      {
        pi = [| 4; 3; 2; 1 |];
        lower = [| 0; 1; 2; 3 |];
        upper = [| 0; 3; 3; 3 |];
      };
    ]

  let table_k4 =
    [
      {
        pi = [| 1; 2; 3; 4; 5 |];
        lower = [| 0; 0; 0; 0; 0 |];
        upper = [| 0; 4; 4; 4; 4 |];
      };
      {
        pi = [| 2; 3; 4; 5; 1 |];
        lower = [| 0; 0; 0; 0; 1 |];
        upper = [| 0; 3; 3; 3; 4 |];
      };
      {
        pi = [| 3; 4; 5; 2; 1 |];
        lower = [| 0; 0; 0; 1; 2 |];
        upper = [| 0; 2; 2; 4; 4 |];
      };
      {
        pi = [| 4; 5; 3; 2; 1 |];
        lower = [| 0; 0; 1; 2; 3 |];
        upper = [| 0; 1; 4; 4; 4 |];
      };
      {
        pi = [| 5; 4; 3; 2; 1 |];
        lower = [| 0; 1; 2; 3; 4 |];
        upper = [| 0; 4; 4; 4; 4 |];
      };
    ]

  let for_k ~k =
    match k with
    | _ when k < 0 -> invalid_arg "Oss.Scheme.for_k: negative k"
    | 0 -> [ generic ~k:0 ~i:1 ]
    | 1 -> table_k1
    | 2 -> table_k2
    | 3 -> table_k3
    | 4 -> table_k4
    | _ -> List.init (pieces ~k) (fun i -> generic ~k ~i:(i + 1))

  let covers s a =
    let p = Array.length s.pi in
    if Array.length a <> p then false
    else begin
      let ok = ref true in
      let sum = ref 0 in
      for t = 0 to p - 1 do
        sum := !sum + a.(s.pi.(t) - 1);
        if !sum < s.lower.(t) || !sum > s.upper.(t) then ok := false
      done;
      !ok
    end

  let complete ~k =
    let p = pieces ~k in
    let searches = for_k ~k in
    let a = Array.make p 0 in
    (* Enumerate every distribution with sum <= k; each must be admitted
       by at least one search. *)
    let rec every t budget =
      if t = p then List.exists (fun s -> covers s a) searches
      else begin
        let ok = ref true in
        for v = 0 to budget do
          a.(t) <- v;
          if not (every (t + 1) (budget - v)) then ok := false
        done;
        a.(t) <- 0;
        !ok
      end
    in
    every 0 k

  let valid_search ~k ~p s =
    Array.length s.pi = p
    && Array.length s.lower = p
    && Array.length s.upper = p
    && (let seen = Array.make (p + 1) false in
        Array.for_all
          (fun x ->
            x >= 1 && x <= p && not seen.(x) && (seen.(x) <- true; true))
          s.pi)
    && (let lo = ref s.pi.(0) and hi = ref s.pi.(0) in
        Array.for_all
          (fun x ->
            (* each next piece adjacent to the processed span *)
            if x = !lo - 1 then (lo := x; true)
            else if x = !hi + 1 then (hi := x; true)
            else x = !lo && x = !hi)
          s.pi)
    && (let mono = ref true in
        for t = 0 to p - 1 do
          if s.lower.(t) > s.upper.(t) || s.upper.(t) > k || s.lower.(t) < 0
          then mono := false;
          if t > 0 && (s.lower.(t) < s.lower.(t - 1) || s.upper.(t) < s.upper.(t - 1))
          then mono := false
        done;
        !mono)

  let valid ~k =
    let p = pieces ~k in
    List.for_all (valid_search ~k ~p) (for_k ~k)
end

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)

(* Candidate-verification cutoff: once an interval pair narrows to this
   many rows, locating the candidates and running the word-parallel
   Hamming kernel over the whole window beats continued 4-way
   branching — two SA walks plus ceil(m/28) word ops versus up to
   4 * (remaining characters) rank passes (the Giaquinta et al. packed
   cost model; same regime Hybrid switches in). *)
let verify_cutoff = 2

let search ?stats ?(obs = Obs.noop) ~ptext bidir ~pattern ~k =
  if pattern = "" then invalid_arg "Oss.search: empty pattern";
  if k < 0 then invalid_arg "Oss.search: negative k";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c && c = Dna.Alphabet.normalize c) then
        invalid_arg "Oss.search: pattern must be lowercase acgt")
    pattern;
  let m = String.length pattern in
  let k = min k m in
  let n = Bidir.length bidir in
  if Packed_text.length ptext <> n then
    invalid_arg "Oss.search: packed text and index lengths differ";
  let bump (f : Stats.t -> unit) = match stats with Some s -> f s | None -> () in
  if m > n then []
  else begin
    let pp = Packed_text.Pattern.make pattern in
    if k >= m then begin
      (* Every window is within budget at its true distance; no scheme
         can partition the pattern into k + 1 nonempty pieces. *)
      let out = ref [] in
      for w = n - m downto 0 do
        out := (w, Packed_text.hamming ptext pp ~pos:w) :: !out
      done;
      !out
    end
    else begin
      let p = Scheme.pieces ~k in
      let bounds = Array.make (p + 1) 0 in
      let base = m / p and rem = m mod p in
      for t = 1 to p do
        bounds.(t) <- bounds.(t - 1) + base + (if t <= rem then 1 else 0)
      done;
      let code = Array.init m (fun i -> Dna.Alphabet.code pattern.[i]) in
      let searches = Scheme.for_k ~k in
      let hits : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let add_hit w d = if not (Hashtbl.mem hits w) then Hashtbl.add hits w d in
      let extends = ref 0 and verifications = ref 0 in
      let locate_buf = ref [||] in
      let buf_for st =
        let cnt = Bidir.width st in
        if Array.length !locate_buf < cnt then locate_buf := Array.make cnt 0;
        !locate_buf
      in
      (* Whole pattern matched through the index: the located forward
         positions are the window starts, [e] the exact distance. *)
      let finish st e =
        bump (fun s -> s.leaves <- s.leaves + 1);
        let buf = buf_for st in
        Bidir.locate_into bidir st buf;
        for idx = 0 to Bidir.width st - 1 do
          add_hit (Array.unsafe_get buf idx) e
        done
      in
      (* Narrow interval mid-search: leave the index, verify the full
         window word-parallel.  [i] is the pattern offset of the matched
         span's left edge, so the window starts [i] characters before
         the located occurrence. *)
      let verify st i =
        incr verifications;
        bump (fun s -> s.leaves <- s.leaves + 1);
        let buf = buf_for st in
        Bidir.locate_into bidir st buf;
        for idx = 0 to Bidir.width st - 1 do
          let w = Array.unsafe_get buf idx - i in
          if w >= 0 && w + m <= n then begin
            let d = Packed_text.hamming ~limit:k ptext pp ~pos:w in
            if d <= k then add_hit w d
          end
        done
      in
      let run_search (sch : Scheme.search) =
        (* [enter t st e i j]: pieces of order positions < t are matched
           as span [i, j) with [e] mismatches; [step] consumes the
           current piece one character at a time, branching over the
           four bases from one rank-all pass per side. *)
        let rec enter t st e i j =
          if t = p then finish st e
          else begin
            let idx = sch.pi.(t) - 1 in
            let plo = bounds.(idx) and phi = bounds.(idx + 1) in
            step t st e i j ~right:(plo >= j) ~plo ~phi
          end
        and step t st e i j ~right ~plo ~phi =
          Deadline.poll ();
          if st.Bidir.len > 0 && st.Bidir.len < m && Bidir.width st <= verify_cutoff
          then verify st i
          else if (if right then j = phi else i = plo) then begin
            if e >= sch.lower.(t) then enter (t + 1) st e i j
            else bump (fun s -> s.leaves <- s.leaves + 1)
          end
          else begin
            let cur = Bidir.cursor () in
            incr extends;
            bump (fun s -> s.rank_calls <- s.rank_calls + 2);
            let pc = if right then code.(j) else code.(i - 1) in
            if right then Bidir.extend_right_all bidir st cur
            else Bidir.extend_left_all bidir st cur;
            for c = 1 to 4 do
              match Bidir.child cur st c with
              | None -> ()
              | Some st' ->
                  let e' = if c = pc then e else e + 1 in
                  if e' <= sch.upper.(t) then begin
                    bump (fun s -> s.nodes <- s.nodes + 1);
                    if right then step t st' e' i (j + 1) ~right ~plo ~phi
                    else step t st' e' (i - 1) j ~right ~plo ~phi
                  end
            done
          end
        in
        let p0 = bounds.(sch.pi.(0) - 1) in
        enter 0 (Bidir.start bidir) 0 p0 p0
      in
      Obs.span obs "bidir.explore" (fun () -> List.iter run_search searches);
      Obs.add obs "bidir.extends" !extends;
      Obs.add obs "bidir.verifications" !verifications;
      Obs.add obs "bidir.searches" (List.length searches);
      let out = Hashtbl.fold (fun w d acc -> (w, d) :: acc) hits [] in
      List.sort (fun (a, _) (b, _) -> compare a b) out
    end
  end
