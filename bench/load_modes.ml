(* Cold-start benchmark for the index load paths: format-v3 copy load
   (parse + O(n) reconstruction), format-v4 copy load (parse + CRC sweep
   + buffer adoption) and format-v4 mmap adoption (header validation
   only; the kernel pages the sections in on first touch).

   The metric that matters is daemon cold start: how long between
   [kmm serve -i ref.fmi] and the first answered query.  So besides the
   bare load call each mode also times a small probe batch — for mmap
   that is where the page faults land, and an adoption that merely
   deferred all the work would be exposed here.  Every probe answer is
   cross-checked against the freshly built index; a wrong answer fails
   the run.

   One JSON record per run is appended to --out (default
   BENCH_fmindex.json). *)

let default_sizes = [ 1_000_000; 32_000_000; 128_000_000 ]

type row = {
  size : int;
  build_s : float;
  file_bytes : int;
  v3_copy_s : float;
  v4_copy_s : float;
  v4_mmap_s : float;
  v4_mmap_probe_s : float;
  speedup : float;  (* v3 copy / v4 mmap, the PR acceptance number *)
}

let probe_patterns ~st text =
  List.init 16 (fun _ ->
      let len = 20 + Random.State.int st 21 in
      let pos = Random.State.int st (String.length text - len) in
      String.sub text pos len)

(* Best-of-[reps] wall-clock of [load ()], cross-checking every rep's
   probe answers against [expected].  Returns (load, probe) seconds. *)
let time_load ~reps ~probes ~expected load =
  let best_load = ref infinity and best_probe = ref infinity in
  for _ = 1 to reps do
    let fm, load_s = Bench_util.time load in
    let answers, probe_s =
      Bench_util.time (fun () ->
          List.map (fun p -> Fmindex.Fm_index.find_all fm p) probes)
    in
    if answers <> expected then failwith "load bench: probe answers diverge";
    best_load := min !best_load load_s;
    best_probe := min !best_probe probe_s
  done;
  (!best_load, !best_probe)

let bench_one ~st ~reps size =
  let text =
    Dna.Sequence.to_string (Dna.Sequence.random ~state:st size)
  in
  let fm, build_s = Bench_util.time (fun () -> Fmindex.Fm_index.build text) in
  Bench_util.note "%s bp: index built in %s" (Bench_util.fmt_count size)
    (Bench_util.fmt_time build_s);
  let probes = probe_patterns ~st text in
  let expected = List.map (fun p -> Fmindex.Fm_index.find_all fm p) probes in
  let tmp suffix =
    Filename.temp_file "kmm-load-bench" suffix
  in
  let v3_path = tmp ".v3.fmi" and v4_path = tmp ".v4.fmi" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ v3_path; v4_path ])
    (fun () ->
      Fmindex.Fm_index.save_v3 fm v3_path;
      Fmindex.Fm_index.save fm v4_path;
      let file_bytes = (Unix.stat v4_path).Unix.st_size in
      let v3_copy_s, _ =
        time_load ~reps ~probes ~expected (fun () -> Fmindex.Fm_index.load v3_path)
      in
      let v4_copy_s, _ =
        time_load ~reps ~probes ~expected (fun () ->
            Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Copy v4_path)
      in
      let v4_mmap_s, v4_mmap_probe_s =
        time_load ~reps ~probes ~expected (fun () ->
            Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Mmap v4_path)
      in
      {
        size;
        build_s;
        file_bytes;
        v3_copy_s;
        v4_copy_s;
        v4_mmap_s;
        v4_mmap_probe_s;
        speedup = v3_copy_s /. v4_mmap_s;
      })

let run ?(obs = Obs.noop) ?(out = "BENCH_fmindex.json") ?size ?(seed = 42) () =
  let sizes = match size with Some s -> [ s ] | None -> default_sizes in
  Bench_util.section "load-modes: v3 copy vs v4 copy vs v4 mmap cold start";
  Bench_util.note
    "per mode: best of 3 bare loads, plus a 16-query probe batch (mmap pays \
     its page faults there); every probe cross-checked against the built index";
  let st = Random.State.make [| seed |] in
  let rows =
    Obs.span obs "bench.load_modes" (fun () ->
        List.map (fun s -> bench_one ~st ~reps:3 s) sizes)
  in
  Bench_util.table
    ~header:
      [ "size"; "file"; "v3 copy"; "v4 copy"; "v4 mmap"; "mmap probe"; "v3/mmap" ]
    (List.map
       (fun r ->
         [
           Bench_util.fmt_count r.size;
           Bench_util.fmt_count r.file_bytes;
           Bench_util.fmt_time r.v3_copy_s;
           Bench_util.fmt_time r.v4_copy_s;
           Bench_util.fmt_time r.v4_mmap_s;
           Bench_util.fmt_time r.v4_mmap_probe_s;
           Printf.sprintf "%.0fx" r.speedup;
         ])
       rows);
  List.iter
    (fun r ->
      Obs.record obs
        (Printf.sprintf "bench.load.%d.v4_mmap_us" r.size)
        (int_of_float (r.v4_mmap_s *. 1e6)))
    rows;
  let json =
    Printf.sprintf "{\"bench\":\"load_modes\",\"meta\":%s,\"seed\":%d,\"results\":[%s]}"
      (Bench_meta.to_json ()) seed
      (String.concat ","
         (List.map
            (fun r ->
              Printf.sprintf
                "{\"size\":%d,\"file_bytes\":%d,\"build_s\":%.4f,\"v3_copy_s\":%.4f,\
                 \"v4_copy_s\":%.4f,\"v4_mmap_s\":%.6f,\"v4_mmap_probe_s\":%.6f,\
                 \"speedup_v3_over_mmap\":%.1f}"
                r.size r.file_bytes r.build_s r.v3_copy_s r.v4_copy_s r.v4_mmap_s
                r.v4_mmap_probe_s r.speedup)
            rows))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  output_string oc (json ^ "\n");
  close_out oc;
  Bench_util.note "record appended to %s" out
