(* Head-to-head engine campaign: every registered engine on the same
   simulated-read workload, k in {0, 1, 2, 4} crossed with read lengths
   up to 128 bp.

   Two text tiers keep the slow references honest without letting them
   dominate the wall clock:

     small   every registered engine, reference matchers included —
             the cross-check tier (all answers must be identical);
     large   only engines whose registry entry says [caps.scales] —
             the timing tier the paper-style comparison reads.

   The roster, the names and the scales gating all come from
   [Kmismatch.Engine_registry]: registering a tenth engine puts it in
   this campaign with no change here.

   Every (engine, k, length) cell's hit list is compared against the
   first engine's answer on the same reads; any divergence fails the
   run.  One JSON record per run is appended to --out (default
   BENCH_engines.json). *)

module K = Core.Kmismatch
module Registry = K.Engine_registry

let default_small = 30_000
let default_large = 1_000_000
let budgets = [ 0; 1; 2; 4 ]
let read_lens = [ 32; 64; 128 ]
let reads_per_cell = 25

(* Reads planted from the text itself with exactly [d <= k] substitutions
   each, so every budget row has true hits to find and the verify paths
   of the filter engines actually fire.  (Read_sim would give Poisson
   error counts — planting keeps the per-cell work deterministic.) *)
let plant_reads st text ~len ~k ~count =
  let n = String.length text in
  if n < len then []
  else
    List.init count (fun _ ->
        let pos = Random.State.int st (n - len + 1) in
        let read = Bytes.of_string (String.sub text pos len) in
        let d = Random.State.int st (k + 1) in
        for _ = 1 to d do
          let j = Random.State.int st len in
          let bases = "acgt" in
          let keep = Bytes.get read j in
          let rec flip () =
            let b = bases.[Random.State.int st 4] in
            if b = keep then flip () else b
          in
          Bytes.set read j (flip ())
        done;
        Bytes.unsafe_to_string read)

type row = {
  tier : string;  (* "small" | "large" *)
  size : int;
  engine : string;
  len : int;
  k : int;
  reads : int;
  avg_s : float;  (* mean wall-clock per read *)
  hits : int;  (* total hits over the read set *)
  agree : bool;  (* identical to the first engine's answer *)
}

(* One tier: build the index once, then time every admitted engine on
   every (k, len) cell over the same planted reads.  The first admitted
   engine's hit lists are the cross-check baseline. *)
let bench_tier ?(quiet = false) ~obs ~tier ~seed ~entries size =
  let st = Random.State.make [| seed; size; 0x1dc |] in
  let text =
    Dna.Sequence.to_string (Dna.Sequence.random ~state:st size)
  in
  let idx, build_s = Bench_util.time (fun () -> K.build_index text) in
  List.iter (fun e -> e.Registry.prepare idx) entries;
  if not quiet then
    Bench_util.note "%s tier: %s bp indexed in %s; engines: %s"
      tier (Bench_util.fmt_count size) (Bench_util.fmt_time build_s)
      (String.concat ", " (List.map (fun e -> e.Registry.name) entries));
  let cells =
    List.concat_map (fun len -> List.map (fun k -> (len, k)) budgets) read_lens
  in
  List.concat_map
    (fun (len, k) ->
      let reads = plant_reads st text ~len ~k ~count:reads_per_cell in
      let nreads = List.length reads in
      if nreads = 0 then []
      else
        let baseline = ref None in
        List.map
          (fun e ->
            let answers = ref [] in
            let total =
              Obs.span obs "bench.engines.cell" (fun () ->
                  Bench_util.time_unit (fun () ->
                      List.iter
                        (fun pattern ->
                          let r =
                            K.run idx
                              (K.Query.make ~engine:e.Registry.engine ~pattern
                                 ~k ())
                          in
                          answers := r.K.Response.hits :: !answers)
                        reads))
            in
            let answers = List.rev !answers in
            let agree =
              match !baseline with
              | None ->
                  baseline := Some answers;
                  true
              | Some b -> b = answers
            in
            {
              tier;
              size;
              engine = e.Registry.name;
              len;
              k;
              reads = nreads;
              avg_s = total /. float_of_int nreads;
              hits = List.fold_left (fun a h -> a + List.length h) 0 answers;
              agree;
            })
          entries)
    cells

let run ?(obs = Obs.noop) ?(out = "BENCH_engines.json") ?size ?(seed = 42) () =
  let small, large =
    match size with
    | Some s -> (min s default_small, s)
    | None -> (default_small, default_large)
  in
  let all = Registry.all () in
  let scaling = List.filter (fun e -> e.Registry.caps.Registry.scales) all in
  Bench_util.section "engines: registered engines head to head";
  Bench_util.note
    "small tier cross-checks every registered engine; large tier times the \
     [scales] subset.  Every cell's hits compared against the first engine's";
  let rows =
    Obs.span obs "bench.engines" (fun () ->
        bench_tier ~obs ~tier:"small" ~seed ~entries:all small
        @ bench_tier ~obs ~tier:"large" ~seed ~entries:scaling large)
  in
  Bench_util.table
    ~header:[ "tier"; "size"; "engine"; "m"; "k"; "reads"; "avg/read"; "hits"; "agree" ]
    (List.map
       (fun r ->
         [
           r.tier;
           Bench_util.fmt_count r.size;
           r.engine;
           string_of_int r.len;
           string_of_int r.k;
           string_of_int r.reads;
           Bench_util.fmt_time r.avg_s;
           Bench_util.fmt_count r.hits;
           (if r.agree then "yes" else "NO(BUG)");
         ])
       rows);
  List.iter
    (fun r ->
      Obs.record obs
        (Printf.sprintf "bench.engines.%s.%s.m%d.k%d.us_per_read" r.tier
           r.engine r.len r.k)
        (int_of_float (r.avg_s *. 1e6)))
    rows;
  List.iter
    (fun r ->
      if not r.agree then
        failwith
          (Printf.sprintf
             "engines bench: %s diverges from the baseline at m %d k %d (%s tier)"
             r.engine r.len r.k r.tier))
    rows;
  let json =
    Printf.sprintf
      "{\"bench\":\"engines\",\"meta\":%s,\"seed\":%d,\"results\":[%s]}"
      (Bench_meta.to_json ()) seed
      (String.concat ","
         (List.map
            (fun r ->
              Printf.sprintf
                "{\"tier\":\"%s\",\"size\":%d,\"engine\":\"%s\",\"m\":%d,\
                 \"k\":%d,\"reads\":%d,\"avg_read_s\":%.6e,\"hits\":%d,\
                 \"agree\":%b}"
                r.tier r.size r.engine r.len r.k r.reads r.avg_s r.hits r.agree)
            rows))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  output_string oc (json ^ "\n");
  close_out oc;
  Bench_util.note "record appended to %s" out

(* Headless parity smoke for [dune runtest] and [kmm bench engines
   --smoke]: the small tier's cross-check on a toy genome — every
   registered engine, no timing, no JSON. *)
let smoke ?(size = 4_000) ?(seed = 7) () =
  let rows =
    bench_tier ~quiet:true ~obs:Obs.noop ~tier:"small" ~seed
      ~entries:(Registry.all ()) size
  in
  List.iter
    (fun r ->
      if not r.agree then
        failwith
          (Printf.sprintf
             "engines smoke: %s diverges from the baseline at m %d k %d"
             r.engine r.len r.k))
    rows
