(* Bidirectional FM-index: a rank-only Occ over BWT(s) synchronized with
   the system's existing locate-capable FM-index of rev s.  See bidir.mli
   for the interval-pair invariant; DESIGN.md "Bidirectional index and
   optimum search schemes" for the derivation. *)

let sigma = Dna.Alphabet.sigma

type t = {
  n : int;
  occ_f : Occ.t;  (* rank structure over BWT(s); no SA samples *)
  c_f : int array;  (* c_f.(c) = # characters with code < c in BWT(s) *)
  fm_rev : Fm_index.t;  (* shared index of rev s: ranks + sampled SA *)
}

let c_array_of_counts counts =
  let c = Array.make sigma 0 in
  let sum = ref 0 in
  for i = 0 to sigma - 1 do
    c.(i) <- !sum;
    sum := !sum + counts.(i)
  done;
  c

let make ~text ~fm_rev =
  String.iter
    (fun ch ->
      if not (Dna.Alphabet.is_base ch) || ch <> Dna.Alphabet.normalize ch then
        invalid_arg "Bidir.make: text must be lowercase acgt")
    text;
  let n = String.length text in
  if n <> Fm_index.length fm_rev then
    invalid_arg "Bidir.make: text and reverse-index lengths differ";
  let sa = Suffix.Suffix_array.build text in
  let packed, sentinel_row = Bwt.packed_of_suffix_array text sa in
  let occ_f = Occ.of_packed ~sentinels:[| sentinel_row |] packed in
  { n; occ_f; c_f = c_array_of_counts (Occ.counts occ_f); fm_rev }

let length t = t.n
let fm_rev t = t.fm_rev

type state = { f_lo : int; f_hi : int; r_lo : int; r_hi : int; len : int }

let start t =
  let rows = t.n + 1 in
  { f_lo = 0; f_hi = rows; r_lo = 0; r_hi = rows; len = 0 }

let width st = st.f_hi - st.f_lo

(* Child intervals of one extension step, every base at once.  Both
   sides are stored as absolute row intervals; slot 0 (the sentinel) is
   never a child and holds scratch. *)
type cursor = {
  cf_lo : int array;
  cf_hi : int array;
  cr_lo : int array;
  cr_hi : int array;
  mutable clen : int;  (* parent len + 1, stamped by the last extend *)
}

let cursor () =
  {
    cf_lo = Array.make sigma 0;
    cf_hi = Array.make sigma 0;
    cr_lo = Array.make sigma 0;
    cr_hi = Array.make sigma 0;
    clen = 0;
  }

(* Prepend: a backward step over BWT(s) gives, for every code [b], the
   rank pair whose difference cnt(b) counts the occurrences of b·α.
   Those same counts re-partition the reverse interval, because within
   it rows sort by the character following rev α — i.e. the character
   preceding α in s — in code order with the sentinel first (rev α at
   the very end of rev s ⇔ α is a prefix of s, and '$' is smallest).
   So the reverse child of base c starts after the sentinel block and
   every smaller base's block. *)
let extend_left_all t st cur =
  if st.f_lo < 0 || st.f_hi < st.f_lo || st.f_hi > t.n + 1 then
    invalid_arg "Bidir.extend_left_all: interval out of range";
  Occ.rank_all_pair_unsafe t.occ_f st.f_lo st.f_hi cur.cf_lo cur.cf_hi;
  (* cf_* hold raw ranks here; cnt must be read before the C offset is
     folded in. *)
  let acc = ref (st.r_lo + (cur.cf_hi.(0) - cur.cf_lo.(0))) in
  for c = 1 to sigma - 1 do
    let cnt = cur.cf_hi.(c) - cur.cf_lo.(c) in
    cur.cr_lo.(c) <- !acc;
    cur.cr_hi.(c) <- !acc + cnt;
    acc := !acc + cnt;
    let base = t.c_f.(c) in
    cur.cf_lo.(c) <- base + cur.cf_lo.(c);
    cur.cf_hi.(c) <- base + cur.cf_hi.(c)
  done;
  cur.clen <- st.len + 1

(* Append is the mirror image through BWT(rev s); the shared
   [Fm_index.extend_all] already returns full (C-offset) intervals, and
   the forward interval re-partitions from the same counts. *)
let extend_right_all t st cur =
  Fm_index.extend_all t.fm_rev (st.r_lo, st.r_hi) ~los:cur.cr_lo
    ~his:cur.cr_hi;
  let acc = ref (st.f_lo + (cur.cr_hi.(0) - cur.cr_lo.(0))) in
  for c = 1 to sigma - 1 do
    let cnt = cur.cr_hi.(c) - cur.cr_lo.(c) in
    cur.cf_lo.(c) <- !acc;
    cur.cf_hi.(c) <- !acc + cnt;
    acc := !acc + cnt
  done;
  cur.clen <- st.len + 1

let child cur _parent c =
  if c <= 0 || c >= sigma then invalid_arg "Bidir.child: base code out of range";
  let f_lo = cur.cf_lo.(c) and f_hi = cur.cf_hi.(c) in
  if f_lo >= f_hi then None
  else
    Some
      {
        f_lo;
        f_hi;
        r_lo = cur.cr_lo.(c);
        r_hi = cur.cr_hi.(c);
        len = cur.clen;
      }

let extend_left t c st =
  let cur = cursor () in
  extend_left_all t st cur;
  child cur st c

let extend_right t c st =
  let cur = cursor () in
  extend_right_all t st cur;
  child cur st c

let locate_into t st dst =
  Fm_index.locate_into t.fm_rev (st.r_lo, st.r_hi) dst;
  for i = 0 to st.r_hi - st.r_lo - 1 do
    (* dst.(i) is where rev α starts in rev s; flip to where α starts
       in s. *)
    dst.(i) <- t.n - dst.(i) - st.len
  done
