(** The Landau-Vishkin / Galil-Giancarlo "kangaroo" method (the paper's
    refs [19]/[30]): O(kn) k-mismatch matching by jumping between mismatch
    positions with O(1) longest-common-extension queries.

    This is the strongest *online* baseline class the paper compares
    against, and the verification engine inside the Amir baseline. *)

type t

val make : pattern:string -> text:string -> t
(** Preprocess the pair (suffix array + LCP + RMQ of [pattern#text]). *)

val mismatches_at : t -> pos:int -> limit:int -> int list
(** The first [limit] mismatch offsets (0-based within the pattern) between
    the pattern and the window of text starting at [pos]; fewer are
    returned when the window has fewer mismatches.  Raises
    [Invalid_argument] when the window does not fit. *)

val distance_at : t -> pos:int -> k:int -> int option
(** [Some d] with [d <= k] if the window at [pos] has at most [k]
    mismatches, [None] otherwise.  O(k) per call. *)

val search :
  ?ptext:Fmindex.Packed_text.t ->
  pattern:string ->
  k:int ->
  string ->
  (int * int) list
(** [search ~pattern ~k text] is every [(position, mismatches)] with at
    most [k] mismatches, ascending.  O(kn) after O(m + n)
    preprocessing.  ([text] is positional so [?ptext] stays
    erasable.)

    The result is always the LCE path's; the options below only change
    its cost.  With [?ptext] (the packed form of [text]) and a
    lowercase-[acgt] pattern, windows are verified by the word-parallel
    kernel ({!Fmindex.Packed_text.hamming}) whenever the cost model
    predicts it beats LCE preprocessing; without it, patterns short
    enough that early-exit scans beat building the suffix structures
    fall back to scalar scans ({!Hamming.distance_at} with [?limit]). *)

val positions : pattern:string -> text:string -> k:int -> int list
