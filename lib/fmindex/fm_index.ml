type interval = int * int

(* The index owns no byte-per-character BWT copy: the packed payload
   lives inside [occ]'s interleaved rank blocks (2 bits/base), the
   sentinel row is tracked out-of-band, and suffix-array samples are a
   marked-row bitvector with a rank directory plus a flat array —
   [position_of_row] allocates nothing. *)
type t = {
  text : string;
  occ : Occ.t;
  c_array : int array;  (* c_array.(c) = # characters with code < c in BWT *)
  sa_rate : int;
  sentinel_row : int;
  marks : Bytes.t;  (* bit per row 0..n: row sampled? *)
  mark_cum : int array;  (* sampled rows before each 64-row chunk *)
  samples : int array;  (* text position of each sampled row, row order *)
}

let sigma = Dna.Alphabet.sigma

(* ------------------------------------------------------------------ *)
(* Marked-row bitvector                                                 *)

let pop8 = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let mark_test marks row = (Char.code (Bytes.get marks (row lsr 3)) lsr (row land 7)) land 1 = 1

let mark_set marks row =
  Bytes.set marks (row lsr 3)
    (Char.chr (Char.code (Bytes.get marks (row lsr 3)) lor (1 lsl (row land 7))))

(* Number of marked rows strictly before [row]. *)
let mark_rank t row =
  let chunk = row lsr 6 in
  let acc = ref (Array.unsafe_get t.mark_cum chunk) in
  let first_byte = chunk lsl 3 in
  for b = first_byte to (row lsr 3) - 1 do
    acc := !acc + Array.unsafe_get pop8 (Char.code (Bytes.unsafe_get t.marks b))
  done;
  let partial = row land 7 in
  if partial <> 0 then
    acc :=
      !acc
      + Array.unsafe_get pop8
          (Char.code (Bytes.unsafe_get t.marks (row lsr 3)) land ((1 lsl partial) - 1));
  !acc

(* Build the rank directory over a marks bitvector of [rows] rows and
   return the total number of marked rows. *)
let build_mark_cum marks rows =
  let nchunks = (rows + 63) / 64 in
  let cum = Array.make (max 1 nchunks) 0 in
  let total = ref 0 in
  for b = 0 to Bytes.length marks - 1 do
    if b land 7 = 0 && b lsr 3 < nchunks then cum.(b lsr 3) <- !total;
    total := !total + pop8.(Char.code (Bytes.get marks b))
  done;
  (cum, !total)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let c_array_of_counts counts =
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  c_array

let build ?(occ_rate = 32) ?(sa_rate = 16) text =
  if sa_rate <= 0 then invalid_arg "Fm_index.build: sa_rate must be positive";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c) || c <> Dna.Alphabet.normalize c then
        invalid_arg "Fm_index.build: text must be lowercase acgt")
    text;
  let n = String.length text in
  let sa = Suffix.Suffix_array.build text in
  let packed, sentinel_row = Bwt.packed_of_suffix_array text sa in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Row i of the matrix of text^"$" corresponds to suffix position:
     row 0 -> n (the sentinel suffix), row i+1 -> sa.(i).  Sample rows
     whose position is a multiple of sa_rate so any locate walk ends
     within sa_rate LF steps. *)
  let marks = Bytes.make ((n + 8) / 8) '\000' in
  mark_set marks 0;
  let nsamples = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      mark_set marks (i + 1);
      incr nsamples
    end
  done;
  let samples = Array.make !nsamples 0 in
  samples.(0) <- n;
  let j = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      samples.(!j) <- sa.(i);
      incr j
    end
  done;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  assert (total = !nsamples);
  { text; occ; c_array; sa_rate; sentinel_row; marks; mark_cum; samples }

let length t = String.length t.text
let text t = t.text
let bwt t = String.init (Occ.length t.occ) (fun row -> Dna.Alphabet.of_code (Occ.get t.occ row))
let whole t = (0, Occ.length t.occ)

(* ------------------------------------------------------------------ *)
(* Backward search                                                      *)

let extend t c (lo, hi) =
  if c <= 0 || c >= sigma then None
  else begin
    let r_lo, r_hi = Occ.rank_pair t.occ c lo hi in
    let lo' = t.c_array.(c) + r_lo in
    let hi' = t.c_array.(c) + r_hi in
    if lo' < hi' then Some (lo', hi') else None
  end

let interval_of_char t c = extend t c (whole t)

(* Character codes of a pattern, case folded; [None] when any character
   is outside ACGT (such a pattern occurs nowhere rather than raising). *)
let codes_of_pattern pat =
  let m = String.length pat in
  let codes = Array.make m 0 in
  let ok = ref true in
  for i = 0 to m - 1 do
    match Dna.Alphabet.code_opt pat.[i] with
    | Some c when c > 0 -> codes.(i) <- c
    | _ -> ok := false
  done;
  if !ok then Some codes else None

let search t pat =
  match codes_of_pattern pat with
  | None -> None
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Some (whole t)
      else begin
        let rec go i iv =
          if i < 0 then Some iv
          else match extend t codes.(i) iv with None -> None | Some iv' -> go (i - 1) iv'
        in
        go (m - 1) (whole t)
      end

(* [count] is [search] unrolled into an allocation-free loop: no interval
   options, no per-step tuples, and the shared-decode pair kernel doing
   the two rank queries of each step.  The unchecked kernel is sound
   here: [codes_of_pattern] proves every [c] is in 1..sigma-1, and the
   interval arithmetic keeps [0 <= lo <= hi <= length] invariant. *)
let count t pat =
  match codes_of_pattern pat with
  | None -> 0
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Occ.length t.occ
      else begin
        let lo = ref 0 and hi = ref (Occ.length t.occ) in
        let pr = Array.make 2 0 in
        let i = ref (m - 1) in
        while !i >= 0 && !lo < !hi do
          let c = Array.unsafe_get codes !i in
          Occ.rank_pair_into_unsafe t.occ c !lo !hi pr;
          let cc = Array.unsafe_get t.c_array c in
          lo := cc + Array.unsafe_get pr 0;
          hi := cc + Array.unsafe_get pr 1;
          decr i
        done;
        if !hi > !lo then !hi - !lo else 0
      end

let lf t row =
  let c, r = Occ.char_rank t.occ row in
  t.c_array.(c) + r

let position_of_row t row =
  let rec walk row steps =
    if mark_test t.marks row then t.samples.(mark_rank t row) + steps
    else walk (lf t row) (steps + 1)
  in
  walk row 0

let locate_into t (lo, hi) dst =
  let rows = Occ.length t.occ in
  if lo < 0 || hi > rows || lo > hi then invalid_arg "Fm_index.locate_into: bad interval";
  if Array.length dst < hi - lo then invalid_arg "Fm_index.locate_into: buffer too small";
  for row = lo to hi - 1 do
    Array.unsafe_set dst (row - lo) (position_of_row t row)
  done

let locate t (lo, hi) =
  if hi <= lo then []
  else begin
    let buf = Array.make (hi - lo) 0 in
    locate_into t (lo, hi) buf;
    Array.sort Int.compare buf;
    (* Distinct rows resolve to distinct suffix positions, so no dedup
       pass is needed. *)
    Array.to_list buf
  end

let find_all t pat =
  match search t pat with None -> [] | Some iv -> locate t iv

let space_report t =
  [
    ("packed bwt + rank blocks", Occ.space_bytes t.occ);
    ("sa marks (bitvector + rank dir)", Bytes.length t.marks + (8 * Array.length t.mark_cum));
    ("sa samples", 8 * Array.length t.samples);
    ("c array", 8 * sigma);
    ("text (1 byte/char)", String.length t.text);
  ]

let extend_all t (lo, hi) ~los ~his =
  (* One boundary check here, then the unchecked pair kernel: engines
     call this millions of times per read with intervals they derived
     from [whole]/previous extensions, so the in-range invariant holds
     and per-call revalidation inside [Occ] would be pure overhead. *)
  if lo < 0 || hi < lo || hi > Occ.length t.occ then
    invalid_arg "Fm_index.extend_all: interval out of range";
  if Array.length los <> sigma || Array.length his <> sigma then
    invalid_arg "Fm_index.extend_all: bad dst size";
  Occ.rank_all_pair_unsafe t.occ lo hi los his;
  for c = 0 to sigma - 1 do
    let base = Array.unsafe_get t.c_array c in
    Array.unsafe_set los c (base + Array.unsafe_get los c);
    Array.unsafe_set his c (base + Array.unsafe_get his c)
  done

(* --- persistence ----------------------------------------------------- *)

(* Format v2: a one-line ASCII header
       "kmm-fm-index 2 <n> <occ_rate> <sa_rate> <sentinel_row> <nsamples>
        <blocks_bytes> <super_len>\n"
   followed by five binary little-endian sections:
     1. packed text          ceil(n/4) bytes (2-bit codes, 4 bases/byte)
     2. occ blocks           <blocks_bytes> bytes (interleaved counts+payload)
     3. occ superblocks      <super_len> * 8 bytes (int64)
     4. sa marks bitvector   ceil((n+1)/8) bytes
     5. sa samples           <nsamples> * 8 bytes (int64)
   Loading adopts the buffers directly (read + structural validation);
   no BWT inversion, no recount, no LF walk.  The v1 format (header
   version "1", payload = packed BWT only) is still read, through the
   seed's reconstruction path. *)

let magic = "kmm-fm-index"

let bytes_of_ints a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.of_int v)) a;
  b

let ints_of_string s =
  Array.init (String.length s / 8) (fun i -> Int64.to_int (String.get_int64_le s (i * 8)))

let save t path =
  let n = String.length t.text in
  let blocks = Occ.raw_blocks t.occ in
  let super = Occ.raw_super t.occ in
  let oc = open_out_bin path in
  Printf.fprintf oc "%s 2 %d %d %d %d %d %d %d\n" magic n (Occ.rate t.occ) t.sa_rate
    t.sentinel_row (Array.length t.samples) (Bytes.length blocks) (Array.length super);
  output_bytes oc (Packed_text.bytes (Packed_text.of_string t.text));
  output_bytes oc blocks;
  output_bytes oc (bytes_of_ints super);
  output_bytes oc t.marks;
  output_bytes oc (bytes_of_ints t.samples);
  close_out oc

let corrupt path what = failwith (path ^ ": " ^ what)

let read_section ic path what len =
  try really_input_string ic len
  with End_of_file | Invalid_argument _ ->
    close_in ic;
    corrupt path ("truncated index " ^ what)

let finish_load ic path =
  (* The payload is the last thing in the file; trailing bytes mean the
     file was corrupted (or is not what the header claims). *)
  (match input_char ic with
  | _ ->
      close_in ic;
      corrupt path "trailing garbage after index payload"
  | exception End_of_file -> ());
  close_in ic

(* --- v1 reader (reconstructing) -------------------------------------- *)

let load_v1 ic path fields =
  let n, occ_rate, sa_rate, sentinel_row =
    match fields with
    | [ n; occ_rate; sa_rate; sentinel_row ] -> (
        try
          (int_of_string n, int_of_string occ_rate, int_of_string sa_rate,
           int_of_string sentinel_row)
        with Failure _ ->
          close_in ic;
          corrupt path "corrupt index header")
    | _ ->
        close_in ic;
        corrupt path "corrupt index header"
  in
  (* A forged or bit-flipped header must fail with the same friendly
     message as an unparsable one. *)
  if n < 0 || occ_rate <= 0 || sa_rate <= 0 || sentinel_row < 0 || sentinel_row > n
  then begin
    close_in ic;
    corrupt path "corrupt index header"
  end;
  let payload = read_section ic path "payload" ((n + 3) / 4) in
  finish_load ic path;
  let packed = Packed_text.of_bytes payload ~len:n in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Rebuild text and SA samples with one LF walk: starting from row 0
     (the row whose suffix is the bare sentinel, position n) and
     following LF visits positions n, n-1, ..., 0 in order. *)
  let text_buf = Bytes.create n in
  let pairs = ref [] in
  let npairs = ref 0 in
  let row = ref 0 in
  for pos = n downto 0 do
    if pos mod sa_rate = 0 || pos = n then begin
      pairs := (!row, pos) :: !pairs;
      incr npairs
    end;
    if pos > 0 then begin
      let c, r = Occ.char_rank occ !row in
      if c = 0 then begin
        (* The sentinel can only ever be read at position 0. *)
        corrupt path "corrupt index payload (broken LF cycle)"
      end;
      Bytes.set text_buf (pos - 1) (Dna.Alphabet.of_code c);
      row := c_array.(c) + r
    end
  done;
  let sorted = List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) !pairs in
  let marks = Bytes.make ((n + 8) / 8) '\000' in
  let samples = Array.make !npairs 0 in
  List.iteri
    (fun i (r, p) ->
      mark_set marks r;
      samples.(i) <- p)
    sorted;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> !npairs then corrupt path "corrupt index payload";
  {
    text = Bytes.unsafe_to_string text_buf;
    occ;
    c_array;
    sa_rate;
    sentinel_row;
    marks;
    mark_cum;
    samples;
  }

(* --- v2 reader (adopting) -------------------------------------------- *)

let load_v2 ic path fields =
  let n, occ_rate, sa_rate, sentinel_row, nsamples, blocks_bytes, super_len =
    match fields with
    | [ n; occ_rate; sa_rate; sentinel_row; nsamples; blocks_bytes; super_len ] -> (
        try
          ( int_of_string n, int_of_string occ_rate, int_of_string sa_rate,
            int_of_string sentinel_row, int_of_string nsamples,
            int_of_string blocks_bytes, int_of_string super_len )
        with Failure _ ->
          close_in ic;
          corrupt path "corrupt index header")
    | _ ->
        close_in ic;
        corrupt path "corrupt index header"
  in
  if
    n < 0 || occ_rate <= 0 || sa_rate <= 0 || sentinel_row < 0 || sentinel_row > n
    || nsamples < 1 || nsamples > n + 1 || blocks_bytes < 0 || super_len < 0
  then begin
    close_in ic;
    corrupt path "corrupt index header"
  end;
  let text_payload = read_section ic path "text section" ((n + 3) / 4) in
  let blocks = Bytes.of_string (read_section ic path "rank blocks" blocks_bytes) in
  let super = ints_of_string (read_section ic path "superblocks" (8 * super_len)) in
  let marks = Bytes.of_string (read_section ic path "sa marks" ((n + 8) / 8)) in
  let samples = ints_of_string (read_section ic path "sa samples" (8 * nsamples)) in
  finish_load ic path;
  let text =
    try Packed_text.to_string (Packed_text.of_bytes text_payload ~len:n)
    with Invalid_argument _ -> corrupt path "corrupt text section"
  in
  let occ =
    try Occ.of_raw ~rate:occ_rate ~len:(n + 1) ~sentinels:[| sentinel_row |] ~blocks ~super
    with Invalid_argument _ -> corrupt path "corrupt rank blocks"
  in
  (* Structural validation: the text section and the rank structure must
     agree on per-character totals (an O(n) byte scan, no reconstruction). *)
  let counts = Occ.counts occ in
  let text_counts = Array.make sigma 0 in
  String.iter
    (fun c ->
      let k = Dna.Alphabet.code c in
      text_counts.(k) <- text_counts.(k) + 1)
    text;
  for c = 1 to sigma - 1 do
    if text_counts.(c) <> counts.(c) then
      corrupt path "text and BWT sections disagree"
  done;
  (* Clear mark padding bits beyond row n, then check sampling shape. *)
  (let rows = n + 1 in
   if rows land 7 <> 0 then begin
     let last = Bytes.length marks - 1 in
     Bytes.set marks last
       (Char.chr (Char.code (Bytes.get marks last) land ((1 lsl (rows land 7)) - 1)))
   end);
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> nsamples then corrupt path "sa marks / sample count mismatch";
  if not (mark_test marks 0) then corrupt path "corrupt sa marks (row 0 unmarked)";
  if samples.(0) <> n then corrupt path "corrupt sa samples (row 0)";
  Array.iter (fun p -> if p < 0 || p > n then corrupt path "sa sample out of range") samples;
  { text; occ; c_array = c_array_of_counts counts; sa_rate; sentinel_row; marks; mark_cum; samples }

let load path =
  let ic = open_in_bin path in
  let header = try input_line ic with End_of_file -> "" in
  match String.split_on_char ' ' header with
  | m :: "1" :: fields when m = magic -> load_v1 ic path fields
  | m :: "2" :: fields when m = magic -> load_v2 ic path fields
  | _ ->
      close_in ic;
      failwith (path ^ ": not a kmm FM-index file")
