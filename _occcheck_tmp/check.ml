let () =
  let n = 60_000 in
  let text = String.make n 't' in
  let l = Fmindex.Bwt.of_text text in
  let occ = Fmindex.Occ.make ~rate:65536 l in
  (* naive rank of 't' (code 4) at i *)
  let naive c i =
    let acc = ref 0 in
    for j = 0 to i - 1 do
      if Dna.Alphabet.code l.[j] = c then incr acc
    done;
    !acc
  in
  let bad = ref 0 in
  List.iter (fun i ->
    if i <= String.length l then begin
      let got = Fmindex.Occ.rank occ 4 i in
      let want = naive 4 i in
      if got <> want then begin
        incr bad;
        if !bad <= 5 then Printf.printf "MISMATCH i=%d want=%d got=%d\n" i want got
      end
    end)
    [ 100; 32767; 32768; 32769; 33000; 40000; 50000; 60000; String.length l ];
  (* totals check via counts *)
  let counts = Fmindex.Occ.counts occ in
  Printf.printf "counts: %s (expect t=%d)\n"
    (String.concat "," (Array.to_list (Array.map string_of_int counts))) n;
  if !bad = 0 then print_endline "ALL-OK" else Printf.printf "BAD=%d\n" !bad
