type engine = M_tree | S_tree | S_tree_no_delta | Hybrid | Cole | Amir | Kangaroo | Naive

let all_engines = [ M_tree; S_tree; S_tree_no_delta; Hybrid; Cole; Amir; Kangaroo; Naive ]

let engine_name = function
  | M_tree -> "m-tree"
  | S_tree -> "s-tree"
  | S_tree_no_delta -> "s-tree-nodelta"
  | Hybrid -> "hybrid"
  | Cole -> "cole"
  | Amir -> "amir"
  | Kangaroo -> "kangaroo"
  | Naive -> "naive"

let engine_of_string s =
  List.find_opt (fun e -> engine_name e = String.lowercase_ascii s) all_engines

type index = {
  text : string;
  fm_rev : Fmindex.Fm_index.t;
  tree : Suffix.Suffix_tree.t Lazy.t;
}

let build_index ?occ_rate ?sa_rate raw =
  let text = Dna.Sequence.to_string (Dna.Sequence.of_string raw) in
  let rev = Dna.Sequence.to_string (Dna.Sequence.rev (Dna.Sequence.of_string text)) in
  {
    text;
    fm_rev = Fmindex.Fm_index.build ?occ_rate ?sa_rate rev;
    tree = lazy (Suffix.Suffix_tree.build text);
  }

let of_sequence seq = build_index (Dna.Sequence.to_string seq)
let text t = t.text
let length t = String.length t.text
let fm_rev t = t.fm_rev
let suffix_tree t = Lazy.force t.tree

let search ?stats ?config t ~engine ~pattern ~k =
  let pattern = Dna.Sequence.to_string (Dna.Sequence.of_string pattern) in
  if pattern = "" then invalid_arg "Kmismatch.search: empty pattern";
  if k < 0 then invalid_arg "Kmismatch.search: negative k";
  (* Degenerate budgets are uniform across engines: a window holds at
     most m mismatches, so k >= m answers every window position at its
     true distance.  Clamping here (and in each engine, for direct
     callers) makes that explicit and keeps k-derived arithmetic such as
     the M-tree's 2k+3 merge horizon safely inside the word. *)
  let k = min k (String.length pattern) in
  (* A pattern longer than the text can match nowhere.  Guard once for
     every engine: the tree/BWT engines are not written for this
     degenerate case and used to fall through to it. *)
  if String.length pattern > String.length t.text then []
  else
    match engine with
    | M_tree -> M_tree.search ?config ?stats t.fm_rev ~pattern ~k
    | S_tree -> S_tree.search ~use_delta:true ?stats t.fm_rev ~pattern ~k
    | S_tree_no_delta -> S_tree.search ~use_delta:false ?stats t.fm_rev ~pattern ~k
    | Hybrid -> Hybrid.search ?stats t.fm_rev ~text:t.text ~pattern ~k
    | Cole -> Cole.search ?stats (Lazy.force t.tree) ~pattern ~k
    | Amir -> Amir.search ?stats ~pattern ~k t.text
    | Kangaroo -> Stringmatch.Kangaroo.search ~pattern ~text:t.text ~k
    | Naive -> Stringmatch.Hamming.search ~pattern ~text:t.text ~k

let positions ?stats t ~engine ~pattern ~k =
  List.map fst (search ?stats t ~engine ~pattern ~k)

let save_index t path = Fmindex.Fm_index.save t.fm_rev path

let of_fm fm_rev =
  let text =
    Dna.Sequence.to_string
      (Dna.Sequence.rev (Dna.Sequence.of_string (Fmindex.Fm_index.text fm_rev)))
  in
  { text; fm_rev; tree = lazy (Suffix.Suffix_tree.build text) }

let load_index path = of_fm (Fmindex.Fm_index.load path)

let try_load_index path =
  Result.map of_fm (Fmindex.Fm_index.try_load path)
