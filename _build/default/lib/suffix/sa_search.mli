(** Exact matching by binary search over a suffix array (Manber-Myers) —
    the third index family the paper's SS:II surveys next to suffix trees
    and the BWT.

    O((m + log n) ) per query with the plain comparison-based search used
    here; mainly a reference and a cross-check for the FM-index. *)

type t

val build : string -> t
(** Build (or wrap) the suffix array of the text. *)

val of_suffix_array : string -> int array -> t
(** Wrap a precomputed suffix array (must belong to the text). *)

val range : t -> string -> (int * int) option
(** Half-open range of suffix-array entries whose suffixes start with the
    pattern; [None] when absent.  The empty pattern covers everything. *)

val count : t -> string -> int
val find_all : t -> string -> int list
(** Sorted occurrence positions. *)
