lib/dna/genome_gen.mli: Sequence
