lib/dna/fasta.mli: Sequence
