(* Bidirectional index, optimum search schemes, and the engine registry.

   - Scheme tables: structural validity and exhaustive completeness for
     every k <= 4 (every mismatch distribution with sum <= k admitted by
     some search), plus the generic pigeonhole family at k = 5, 6.
   - The bidirectional extension invariant (QCheck): growing a pattern
     from a random split point in a random left/right interleaving lands
     on exactly the intervals two independent unidirectional FM searches
     compute, and locates exactly the naive occurrence positions.
   - The Bidir engine agrees with the naive scan on random cases.
   - build_index parses its input exactly once: the indexed text is the
     normalized input byte for byte, and the reverse component is its
     exact mirror (regression for the double Dna.Sequence round-trip).
   - Registry-derived parsing: spelling-insensitive engine_of_string,
     typed engine_of_string_err rejection listing every valid name.
   - Extending the engine enum: one register call makes a stub engine
     reachable from all_engines, engine_of_string, engine_names and the
     fuzz oracle's subject list, and runnable through Kmismatch.run.
   - The engines bench cross-check smoke (kmm bench engines --smoke). *)

open Core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let hits_t = Alcotest.(list (pair int int))

(* ------------------------------------------------------------------ *)
(* Scheme tables                                                       *)

let test_schemes_complete () =
  for k = 0 to 4 do
    check bool (Printf.sprintf "valid k=%d" k) true (Oss.Scheme.valid ~k);
    check bool (Printf.sprintf "complete k=%d" k) true (Oss.Scheme.complete ~k)
  done

let test_generic_family () =
  (* k >= 5 falls back to the generic family; keep the exhaustive check
     to the sizes where enumeration stays cheap. *)
  List.iter
    (fun k ->
      check bool (Printf.sprintf "generic valid k=%d" k) true (Oss.Scheme.valid ~k);
      check bool
        (Printf.sprintf "generic complete k=%d" k)
        true (Oss.Scheme.complete ~k))
    [ 5; 6 ]

let test_scheme_exact_start () =
  (* Every search opens with an exact piece — the property the engine's
     early pruning relies on. *)
  for k = 0 to 6 do
    List.iter
      (fun s -> check int "U.(0) = 0" 0 s.Oss.Scheme.upper.(0))
      (Oss.Scheme.for_k ~k)
  done

(* ------------------------------------------------------------------ *)
(* Bidirectional extension == two unidirectional FM searches            *)

let rev_string s =
  String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

let naive_positions text pattern =
  let n = String.length text and m = String.length pattern in
  let out = ref [] in
  for i = n - m downto 0 do
    if String.sub text i m = pattern then out := i :: !out
  done;
  !out

let prop_bidir_matches_unidirectional =
  Test_util.qtest ~count:300 "bidir extension = fwd/rev FM searches"
    QCheck2.Gen.(
      triple
        (Test_util.dna_gen ~lo:1 ~hi:80 ())
        (Test_util.dna_gen ~lo:1 ~hi:12 ())
        (pair small_nat (int_bound 1000)))
    (fun (text, pattern, (split, seed)) ->
      let m = String.length pattern in
      let split = split mod (m + 1) in
      let st = Random.State.make [| seed |] in
      let fm_fwd = Fmindex.Fm_index.build text in
      let fm_rev = Fmindex.Fm_index.build (rev_string text) in
      let bd = Fmindex.Bidir.make ~text ~fm_rev in
      (* Grow pattern.[split-1 .. 0] leftward and pattern.[split .. m-1]
         rightward, interleaved at random. *)
      let l = ref split and r = ref split in
      let state = ref (Some (Fmindex.Bidir.start bd)) in
      while !state <> None && (!l > 0 || !r < m) do
        let go_left =
          !l > 0 && (!r >= m || Random.State.bool st)
        in
        match !state with
        | None -> ()
        | Some s ->
            if go_left then begin
              decr l;
              state :=
                Fmindex.Bidir.extend_left bd (Dna.Alphabet.code pattern.[!l]) s
            end
            else begin
              state :=
                Fmindex.Bidir.extend_right bd (Dna.Alphabet.code pattern.[!r]) s;
              incr r
            end
      done;
      let expected_fwd = Fmindex.Fm_index.search fm_fwd pattern in
      let expected_rev = Fmindex.Fm_index.search fm_rev (rev_string pattern) in
      match !state with
      | None ->
          (* Some prefix of the interleaving died: the full pattern must
             be absent from the text. *)
          naive_positions text pattern = []
      | Some s ->
          s.Fmindex.Bidir.len = m
          && expected_fwd = Some (s.Fmindex.Bidir.f_lo, s.Fmindex.Bidir.f_hi)
          && expected_rev = Some (s.Fmindex.Bidir.r_lo, s.Fmindex.Bidir.r_hi)
          &&
          let w = Fmindex.Bidir.width s in
          let dst = Array.make w 0 in
          Fmindex.Bidir.locate_into bd s dst;
          List.sort compare (Array.to_list dst) = naive_positions text pattern)

(* ------------------------------------------------------------------ *)
(* Oss.search vs the naive reference                                   *)

let naive_hits text pattern k =
  let n = String.length text and m = String.length pattern in
  let out = ref [] in
  for i = n - m downto 0 do
    let d = ref 0 in
    for j = 0 to m - 1 do
      if text.[i + j] <> pattern.[j] then incr d
    done;
    if !d <= k then out := (i, !d) :: !out
  done;
  !out

let prop_oss_matches_naive =
  Test_util.qtest ~count:300 "Oss.search = naive scan"
    QCheck2.Gen.(
      triple
        (Test_util.dna_gen ~lo:0 ~hi:120 ())
        (Test_util.dna_gen ~lo:1 ~hi:16 ())
        (int_bound 5))
    (fun (text, pattern, k) ->
      if text = "" then true
      else
        let bd =
          Fmindex.Bidir.make ~text
            ~fm_rev:(Fmindex.Fm_index.build (rev_string text))
        in
        let got =
          Oss.search
            ~ptext:(Fmindex.Packed_text.of_string text)
            bd ~pattern ~k
        in
        got = naive_hits text pattern k)

let test_bidir_engine_agrees () =
  let idx = Kmismatch.build_index "acagacagacttgacagacatt" in
  List.iter
    (fun (pattern, k) ->
      check hits_t
        (Printf.sprintf "bidir %s k=%d" pattern k)
        (Kmismatch.search idx ~engine:Kmismatch.Naive ~pattern ~k)
        (Kmismatch.search idx ~engine:Kmismatch.Bidir ~pattern ~k))
    [
      ("acaga", 0);
      ("acaga", 1);
      ("acaga", 2);
      ("gacag", 3);
      ("tt", 1);
      ("acagacagacttgacagacatt", 4);
      ("acagacagacttgacagacattacgt", 2);
    ]

(* ------------------------------------------------------------------ *)
(* build_index normalizes exactly once                                 *)

let test_build_index_normalization () =
  let raw = "AcGtACgTacgTGGcca" in
  let idx = Kmismatch.build_index raw in
  let expected = String.lowercase_ascii raw in
  check Alcotest.string "text is the input, normalized, byte for byte"
    expected (Kmismatch.text idx);
  (* The reverse component really indexes the mirror of that same
     string: exact occurrences of a reversed probe through fm_rev are
     the mirrored occurrences of the probe in the forward text. *)
  let probe = "acgt" in
  let m = String.length probe in
  let n = String.length expected in
  let via_rev =
    match Fmindex.Fm_index.search (Kmismatch.fm_rev idx) (rev_string probe) with
    | None -> []
    | Some iv ->
        List.sort compare
          (List.map
             (fun p -> n - p - m)
             (Fmindex.Fm_index.locate (Kmismatch.fm_rev idx) iv))
  in
  check Alcotest.(list int) "reverse component mirrors the text" via_rev
    (naive_positions expected probe)

(* ------------------------------------------------------------------ *)
(* Registry-derived parsing                                            *)

let test_engine_spellings () =
  let e =
    Alcotest.testable
      (fun ppf e -> Format.pp_print_string ppf (Kmismatch.engine_name e))
      ( == )
  in
  List.iter
    (fun (s, expected) ->
      check (Alcotest.option e) s (Some expected) (Kmismatch.engine_of_string s))
    [
      ("bidir", Kmismatch.Bidir);
      ("m-tree", Kmismatch.M_tree);
      ("m_tree", Kmismatch.M_tree);
      ("MTree", Kmismatch.M_tree);
      ("s-tree-nodelta", Kmismatch.S_tree_no_delta);
      ("s_tree_no_delta", Kmismatch.S_tree_no_delta);
      ("S-Tree-No-Delta", Kmismatch.S_tree_no_delta);
      ("KANGAROO", Kmismatch.Kangaroo);
    ];
  check bool "unknown rejected" true (Kmismatch.engine_of_string "warp" = None)

let test_engine_of_string_err () =
  match Kmismatch.engine_of_string_err "warp" with
  | Ok _ -> Alcotest.fail "unknown engine accepted"
  | Error (Kmm_error.Bad_input msg) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun name ->
          check bool (Printf.sprintf "message lists %S" name) true
            (contains msg name))
        (Kmismatch.engine_names ())
  | Error e ->
      Alcotest.failf "wrong error class: %s" (Kmm_error.to_string e)

(* ------------------------------------------------------------------ *)
(* One registration reaches every derived view                         *)

type Kmismatch.engine += Stub

let test_stub_engine_registration () =
  let naive =
    match Kmismatch.Engine_registry.find_name "naive" with
    | Some e -> e
    | None -> Alcotest.fail "naive not registered"
  in
  Kmismatch.Engine_registry.register
    {
      Kmismatch.Engine_registry.engine = Stub;
      name = "stub-demo";
      doc = "test double: delegates to the naive scan";
      caps = naive.Kmismatch.Engine_registry.caps;
      prepare = (fun _ -> ());
      run = naive.Kmismatch.Engine_registry.run;
    };
  (* ... and the single registration is visible everywhere at once. *)
  check bool "in all_engines" true
    (List.exists (fun e -> e == Stub) (Kmismatch.all_engines ()));
  check bool "parsed by engine_of_string" true
    (Kmismatch.engine_of_string "STUB_DEMO" = Some Stub);
  check Alcotest.string "named" "stub-demo" (Kmismatch.engine_name Stub);
  check bool "in engine_names (CLI help source)" true
    (List.mem "stub-demo" (Kmismatch.engine_names ()));
  check bool "in the oracle subject list" true
    (List.exists
       (fun s -> s.Oracle.sub_name = "stub-demo")
       (Oracle.default_subjects ()));
  (* Runnable through the standard dispatch, answers like any engine. *)
  let idx = Kmismatch.build_index "acagacagactt" in
  check hits_t "dispatches"
    (Kmismatch.search idx ~engine:Kmismatch.Naive ~pattern:"acaga" ~k:2)
    (Kmismatch.search idx ~engine:Stub ~pattern:"acaga" ~k:2);
  (* Duplicate registrations are rejected, by name and by engine. *)
  (match
     Kmismatch.Engine_registry.register
       { naive with Kmismatch.Engine_registry.name = "stub-demo" }
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate name accepted");
  match
    Kmismatch.Engine_registry.register
      { naive with Kmismatch.Engine_registry.name = "fresh-name" }
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate engine accepted"

(* ------------------------------------------------------------------ *)

let test_engines_bench_smoke () = Engines_bench.smoke ()

let () =
  Alcotest.run "bidir"
    [
      ( "schemes",
        [
          Alcotest.test_case "tables complete k<=4" `Quick test_schemes_complete;
          Alcotest.test_case "generic family k=5,6" `Slow test_generic_family;
          Alcotest.test_case "exact first piece" `Quick test_scheme_exact_start;
        ] );
      ( "bidir",
        [
          prop_bidir_matches_unidirectional;
          prop_oss_matches_naive;
          Alcotest.test_case "engine agrees with naive" `Quick
            test_bidir_engine_agrees;
        ] );
      ( "index",
        [
          Alcotest.test_case "build_index normalizes once" `Quick
            test_build_index_normalization;
        ] );
      ( "registry",
        [
          Alcotest.test_case "spelling-insensitive names" `Quick
            test_engine_spellings;
          Alcotest.test_case "typed unknown-engine error" `Quick
            test_engine_of_string_err;
          Alcotest.test_case "stub engine: one registration" `Quick
            test_stub_engine_registration;
        ] );
      ( "bench",
        [
          Alcotest.test_case "engines bench cross-check smoke" `Quick
            test_engines_bench_smoke;
        ] );
    ]
