bench/main.ml: Array Bench_util Experiments List Micro Printf String Sys
