(** Instrumentation counters shared by the search engines.

    The paper's complexity claims are phrased in terms of the number of
    leaf nodes of the produced tree ([n'] in O(kn' + n)) and, implicitly,
    the number of [search()] (rank) operations avoided; these counters let
    the benchmarks report exactly those quantities (Table 2). *)

type t = {
  mutable nodes : int;  (** search/mismatch-tree nodes created *)
  mutable leaves : int;  (** paths terminated during exploration *)
  mutable rank_calls : int;  (** FM-index [extend] invocations *)
  mutable derivations : int;  (** subtrees derived instead of explored *)
  mutable derived_leaves : int;  (** path terminations inside derivations *)
  mutable resumes : int;  (** real searches resumed inside derivations *)
}

val create : unit -> t

val reset : t -> unit

val merge : into:t -> t -> unit
(** [merge ~into src] adds every counter of [src] into [into].  All
    counters are sums over per-search increments, so merging per-domain
    accumulators yields exactly the counters a sequential run would have
    produced, regardless of scheduling order. *)

val total_leaves : t -> int
val pp : Format.formatter -> t -> unit
