lib/stringmatch/naive.mli:
