lib/core/s_tree.mli: Fmindex Stats
