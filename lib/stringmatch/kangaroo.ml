type t = { m : int; n : int; pair : Suffix.Lce.pair }

let make ~pattern ~text =
  {
    m = String.length pattern;
    n = String.length text;
    pair = Suffix.Lce.make_pair pattern text;
  }

let mismatches_at t ~pos ~limit =
  if pos < 0 || pos + t.m > t.n then
    invalid_arg "Kangaroo.mismatches_at: window out of range";
  let rec jump offset found count =
    if count >= limit || offset >= t.m then List.rev found
    else begin
      let l = Suffix.Lce.lce_pair t.pair offset (pos + offset) in
      let mis = offset + l in
      if mis >= t.m then List.rev found
      else jump (mis + 1) (mis :: found) (count + 1)
    end
  in
  jump 0 [] 0

let distance_at t ~pos ~k =
  let ms = mismatches_at t ~pos ~limit:(k + 1) in
  let d = List.length ms in
  if d <= k then Some d else None

let search ~pattern ~text ~k =
  if k < 0 then invalid_arg "Kangaroo.search: negative k";
  (* A window holds at most m mismatches, so any budget k >= m behaves
     exactly like k = m; clamping also keeps the k+1 jump limit below
     from overflowing for absurd budgets (the differential fuzzer caught
     [k = max_int] reporting every window at distance 0). *)
  let k = min k (String.length pattern) in
  let t = make ~pattern ~text in
  let acc = ref [] in
  for pos = t.n - t.m downto 0 do
    match distance_at t ~pos ~k with
    | Some d -> acc := (pos, d) :: !acc
    | None -> ()
  done;
  !acc

let positions ~pattern ~text ~k = List.map fst (search ~pattern ~text ~k)
