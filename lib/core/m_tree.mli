(** Algorithm A (paper §IV): k-mismatch search over a BWT array with
    mismatch-information reuse through a mismatching tree.

    The search explores the same tree as {!S_tree} but keeps every explored
    node in a hash table keyed by its pair [<x, [lo, hi]>].  When a pair
    reappears at a deeper pattern position, the subtree below it is not
    re-explored with [search()] (rank) operations; instead the stored
    subtree is *derived*: walked with O(1) character logic, using the
    mismatch information between the two pattern suffixes ([R_ij]) to skip
    collapsed match runs (the M-tree's [<-, 0>] nodes).  Occurrences found
    by derivation reuse the BWT intervals recorded on the stored nodes.

    Two refinements over the paper keep the algorithm exact:
    - stored nodes remember budget-skipped branches (with their intervals),
      so a derived path whose budget still has room can *resume* a real
      search where the stored exploration stopped (the paper's case
      "D[u] needs to be extended");
    - [R_ij] is computed with [2k+3] entries so that no surviving derived
      path can outrun the reliable horizon of the table ([k+2] entries as
      in the paper can be outrun when stored mismatches absorb entries). *)

type config = {
  chain_skip : bool;
      (** walk collapsed match runs with [R_ij] jumps instead of node by
          node (default true; false gives the plain derivation walk) *)
  use_delta : bool;
      (** prune with the delta heuristic of ref. [34] (default true).
          The paper's Algorithm A does not use delta; we add it because it
          is sound under any alignment and, at laptop-scaled targets,
          leaving it out handicaps A() against the BWT baseline (which the
          paper *does* run with delta).  Branches pruned by delta are
          remembered like budget-skipped ones, so derivations remain
          exact.  Set false for the paper-pure variant (the ablation bench
          reports both). *)
  store_width : int;
      (** minimum BWT-interval width for a node to be materialized in the
          M-tree and hash table (default 2).  Subtrees below narrower
          intervals are near-chains whose derivation could never repay the
          cost of storing them; they are explored with an allocation-free
          S-tree recursion and recorded like budget-skipped branches, so
          derivations through them stay exact.  Set 1 to materialize
          everything (the paper's literal structure). *)
}

val default_config : config

val search :
  ?config:config ->
  ?stats:Stats.t ->
  ?obs:Obs.t ->
  Fmindex.Fm_index.t ->
  pattern:string ->
  k:int ->
  (int * int) list
(** [search fm_rev ~pattern ~k] returns every [(position, distance)] with
    [distance <= k], sorted by position; [fm_rev] indexes the reverse of
    the target.  Raises [Invalid_argument] on an empty pattern, a pattern
    with characters outside lowercase [acgt], or negative [k].

    [obs] (default {!Obs.noop}) records the [mtree.delta] and
    [mtree.explore] spans plus a per-derivation [mtree.derive_ns]
    histogram; with the noop sink the instrumentation costs one branch
    per scope. *)
