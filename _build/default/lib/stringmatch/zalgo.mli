(** Z-algorithm: longest common prefix of the string with each of its own
    suffixes, in O(n). *)

val z_array : string -> int array
(** [z.(0) = n]; for [i > 0], [z.(i)] is the length of the longest common
    prefix of [s] and [s[i ..]]. *)

val find_all : pattern:string -> text:string -> int list
(** Exact matching through the Z-array of [pattern ^ "\001" ^ text]. *)
