(* Polynomial rolling hash modulo the Mersenne prime 2^31 - 1: operands
   stay below 2^31, so products fit OCaml's 63-bit integers directly.
   Collisions are harmless — every hash hit is verified. *)

let modulus = (1 lsl 31) - 1
let base = 257
let mul_mod a b = a * b mod modulus

let add_mod a b =
  let r = a + b in
  if r >= modulus then r - modulus else r

let sub_mod a b = add_mod a (modulus - b)
let hash_char c = Char.code c + 1

let hash_string s =
  let h = ref 0 in
  String.iter (fun c -> h := add_mod (mul_mod !h base) (hash_char c)) s;
  !h

let pow_base n =
  let rec go acc n = if n = 0 then acc else go (mul_mod acc base) (n - 1) in
  go 1 n

let find_all ~pattern ~text =
  let m = String.length pattern and n = String.length text in
  if m = 0 then List.init (n + 1) (fun i -> i)
  else if m > n then []
  else begin
    let target = hash_string pattern in
    let lead = pow_base (m - 1) in
    let verify i =
      let rec same j = j >= m || (pattern.[j] = text.[i + j] && same (j + 1)) in
      same 0
    in
    let acc = ref [] in
    let h = ref (hash_string (String.sub text 0 m)) in
    if !h = target && verify 0 then acc := 0 :: !acc;
    for i = 1 to n - m do
      h := sub_mod !h (mul_mod lead (hash_char text.[i - 1]));
      h := add_mod (mul_mod !h base) (hash_char text.[i + m - 1]);
      if !h = target && verify i then acc := i :: !acc
    done;
    List.rev !acc
  end

let find_all_multi ~patterns ~text =
  let count = Array.length patterns in
  if count = 0 then []
  else begin
    let m = String.length patterns.(0) in
    if m = 0 then invalid_arg "Rabin_karp.find_all_multi: empty pattern";
    Array.iter
      (fun p ->
        if String.length p <> m then
          invalid_arg "Rabin_karp.find_all_multi: patterns must share a length")
      patterns;
    let n = String.length text in
    if m > n then []
    else begin
      let table = Hashtbl.create (2 * count) in
      Array.iteri
        (fun idx p ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt table (hash_string p)) in
          Hashtbl.replace table (hash_string p) (idx :: prev))
        patterns;
      let lead = pow_base (m - 1) in
      let verify idx i =
        let p = patterns.(idx) in
        let rec same j = j >= m || (p.[j] = text.[i + j] && same (j + 1)) in
        same 0
      in
      let acc = ref [] in
      let emit i h =
        match Hashtbl.find_opt table h with
        | None -> ()
        | Some idxs ->
            List.iter (fun idx -> if verify idx i then acc := (idx, i) :: !acc) idxs
      in
      let h = ref (hash_string (String.sub text 0 m)) in
      emit 0 !h;
      for i = 1 to n - m do
        h := sub_mod !h (mul_mod lead (hash_char text.[i - 1]));
        h := add_mod (mul_mod !h base) (hash_char text.[i + m - 1]);
        emit i !h
      done;
      List.sort
        (fun (p1, h1) (p2, h2) ->
          let c = Int.compare p1 p2 in
          if c <> 0 then c else Int.compare h1 h2)
        !acc
    end
  end
