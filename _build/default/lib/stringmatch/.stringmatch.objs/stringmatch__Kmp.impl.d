lib/stringmatch/kmp.ml: Array List String
