(* 2-bit packed DNA text.  Lane i lives in byte (i lsr 2) at bit offset
   (i land 3) * 2, LSB first — the byte layout shared by the in-memory
   rank blocks and the on-disk payload of every index format.  The
   buffer is a Storage.t, so it is either heap-allocated or a view over
   an mmap'd format-v4 section; readers cannot tell the difference. *)

module A1 = Bigarray.Array1

type t = { data : Storage.t; len : int }

let empty = { data = Storage.create 0; len = 0 }
let length t = t.len
let nbytes len = (len + 3) / 4

let unsafe_get t i =
  A1.unsafe_get t.data (i lsr 2) lsr ((i land 3) * 2) land 3

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed_text.get: index out of range";
  unsafe_get t i

let init n f =
  if n < 0 then invalid_arg "Packed_text.init: negative length";
  let data = Storage.create (nbytes n) in
  for i = 0 to n - 1 do
    let d = f i in
    if d < 0 || d > 3 then invalid_arg "Packed_text.init: lane code out of range";
    let b = i lsr 2 in
    A1.unsafe_set data b (A1.unsafe_get data b lor (d lsl ((i land 3) * 2)))
  done;
  { data; len = n }

let code_of_base c =
  match c with
  | 'a' | 'A' -> Some 0
  | 'c' | 'C' -> Some 1
  | 'g' | 'G' -> Some 2
  | 't' | 'T' -> Some 3
  | _ -> None

let base_of_code d =
  match d with
  | 0 -> 'a'
  | 1 -> 'c'
  | 2 -> 'g'
  | 3 -> 't'
  | _ -> invalid_arg "Packed_text.base_of_code: lane code out of range"

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | 'a' -> 0
      | 'c' -> 1
      | 'g' -> 2
      | 't' -> 3
      | c ->
          invalid_arg
            (Printf.sprintf "Packed_text.of_string: %C is not a lowercase base" c))

let to_string t = String.init t.len (fun i -> base_of_code (unsafe_get t i))

let storage t = t.data
let payload_string t = Storage.to_string t.data

let of_storage data ~len =
  if len < 0 then invalid_arg "Packed_text.of_storage: negative length";
  if Storage.length data <> nbytes len then
    invalid_arg "Packed_text.of_storage: payload size does not match length";
  (* Clear padding lanes of the last byte so byte-parallel counts stay
     exact even on dirty input.  Mapped storage is copy-on-write, so
     this never reaches the file. *)
  (if len land 3 <> 0 then
     let last = Storage.length data - 1 in
     let keep = (1 lsl ((len land 3) * 2)) - 1 in
     A1.set data last (A1.get data last land keep));
  { data; len }

let of_bytes payload ~len =
  if len < 0 then invalid_arg "Packed_text.of_bytes: negative length";
  if String.length payload <> nbytes len then
    invalid_arg "Packed_text.of_bytes: payload size does not match length";
  of_storage (Storage.of_string payload) ~len

let rev t =
  let n = t.len in
  init n (fun i -> unsafe_get t (n - 1 - i))

(* ------------------------------------------------------------------ *)
(* SWAR count tables                                                    *)

(* lane_count_table.(byte) packs, in one int, the number of lanes of
   [byte] equal to lane code 1 (bits 0..15), 2 (bits 16..31) and 3
   (bits 32..47).  This is the Occ rank-scan table, hoisted here so the
   rank kernel and the verification kernel share one definition; Occ
   re-exports it.  Accumulating it over up to 16383 bytes keeps every
   16-bit field below 65536 — one load and one add per 4 bases. *)
let lane_count_table =
  Array.init 256 (fun byte ->
      let acc = ref 0 in
      for lane = 0 to 3 do
        match (byte lsr (lane * 2)) land 3 with
        | 0 -> ()
        | d -> acc := !acc + (1 lsl ((d - 1) * 16))
      done;
      !acc)

(* mismatch_count_table.(byte) = number of non-zero 2-bit lanes of
   [byte]: the per-byte Hamming weight of a XOR of two packed buffers.
   Derived from [lane_count_table] (sum of its three fields) so the two
   can never drift. *)
let mismatch_count_table =
  Array.map
    (fun s -> (s land 0xffff) + ((s lsr 16) land 0xffff) + ((s lsr 32) land 0xffff))
    lane_count_table

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)

(* Hot-path accounting for the verification kernel, mirroring
   Fm_index.Telemetry: counters live in domain-local storage so
   concurrent verifiers never contend and per-domain deltas merge to
   the sequential totals.  Disabled (the default), each kernel call
   pays one load-and-branch; [compiled = false] makes the hooks dead
   code. *)
module Telemetry = struct
  type counters = {
    mutable calls : int;  (* kernel invocations *)
    mutable words : int;  (* 28-lane words XOR'd + reduced *)
    mutable early_exits : int;  (* calls that stopped before the last word *)
  }

  let compiled = true
  let flag = Atomic.make false
  let set_enabled b = Atomic.set flag b
  let is_enabled () = compiled && Atomic.get flag

  let key =
    Domain.DLS.new_key (fun () -> { calls = 0; words = 0; early_exits = 0 })

  let cell () = Domain.DLS.get key

  let snapshot () =
    let c = cell () in
    { calls = c.calls; words = c.words; early_exits = c.early_exits }

  let diff ~since c =
    {
      calls = c.calls - since.calls;
      words = c.words - since.words;
      early_exits = c.early_exits - since.early_exits;
    }
end

(* ------------------------------------------------------------------ *)
(* Word-parallel Hamming kernel                                         *)

(* Geometry.  The kernel compares [word_lanes] = 28 lanes (7 packed
   bytes, 56 bits) per step.  Why not 64 bits: the packed buffer is a
   Bigarray of int8 — there is no unaligned wide load and no int8→int64
   reinterpretation in the stdlib, and OCaml's native [int] is 63 bits
   (Int64 boxes without flambda), so the widest branch-free word we can
   assemble from byte loads and still SWAR-reduce in registers is 7
   bytes.  At 56 bits per XOR this is still 28 bases per step versus 1
   for the byte-at-a-time scan. *)

let word_bytes = 7
let word_lanes = 4 * word_bytes

(* A pattern pre-packed at all four lane phases.  Phase [p] stores the
   pattern shifted up by [p] lanes, so comparing against text position
   [pos] (phase [pos land 3]) reduces to whole-byte XORs starting at
   text byte [pos lsr 2] — no cross-byte bit shuffling at query time.
   [masks] zero out the [p] leading padding lanes of the first word and
   the trailing padding lanes of the last, so there is no separate
   scalar tail: ragged edges are masked lanes (XOR result 0 = match),
   and lane code 0 never counts as a mismatch by construction. *)
module Pattern = struct
  type phase = {
    words : int array;  (* 7-byte little-endian groups of the shifted pattern *)
    masks : int array;  (* same shape; 2-bit lanes kept = 0b11, padding = 0b00 *)
    last_bytes : int;  (* payload bytes covered by the final word, 1..7 *)
  }

  type t = { m : int; phases : phase array }

  let length t = t.m

  let make_phase codes p =
    let m = Array.length codes in
    let nb = nbytes (p + m) in
    let nw = (nb + word_bytes - 1) / word_bytes in
    let pat = Bytes.make (nw * word_bytes) '\000' in
    let msk = Bytes.make (nw * word_bytes) '\000' in
    for i = 0 to m - 1 do
      let lane = p + i in
      let b = lane lsr 2 and off = (lane land 3) * 2 in
      Bytes.unsafe_set pat b
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get pat b) lor (codes.(i) lsl off)));
      Bytes.unsafe_set msk b
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get msk b) lor (3 lsl off)))
    done;
    let word_of bytes w =
      let base = w * word_bytes in
      let acc = ref 0 in
      for j = word_bytes - 1 downto 0 do
        acc := (!acc lsl 8) lor Char.code (Bytes.unsafe_get bytes (base + j))
      done;
      !acc
    in
    {
      words = Array.init nw (word_of pat);
      masks = Array.init nw (word_of msk);
      last_bytes = nb - (word_bytes * (nw - 1));
    }

  let of_codes codes =
    let m = Array.length codes in
    if m = 0 then invalid_arg "Packed_text.Pattern: empty pattern";
    Array.iter
      (fun d ->
        if d < 0 || d > 3 then
          invalid_arg "Packed_text.Pattern: lane code out of range")
      codes;
    { m; phases = Array.init 4 (make_phase codes) }

  let make s =
    of_codes
      (Array.init (String.length s) (fun i ->
           match s.[i] with
           | 'a' -> 0
           | 'c' -> 1
           | 'g' -> 2
           | 't' -> 3
           | c ->
               invalid_arg
                 (Printf.sprintf
                    "Packed_text.Pattern.make: %C is not a lowercase base" c)))

  let of_packed t ~pos ~len =
    if len <= 0 || pos < 0 || pos + len > t.len then
      invalid_arg "Packed_text.Pattern.of_packed: window out of range";
    of_codes (Array.init len (fun i -> unsafe_get t (pos + i)))
end

(* Count the non-zero 2-bit lanes of a 56-bit word: fold each lane to
   one bit (OR of its two bits, masked), then SWAR-popcount.  Every
   4-bit partial sum is <= 4 and every byte sum <= 8, so the folds never
   carry; the final multiply accumulates the 7 byte sums (total <= 28)
   into bits 56..62, safely below the 63-bit native-int width. *)
let[@inline] count_mismatch_word x =
  let y = (x lor (x lsr 1)) land 0x55555555555555 in
  let v = (y land 0x3333333333333333) + ((y lsr 2) land 0x3333333333333333) in
  let v = (v + (v lsr 4)) land 0x0f0f0f0f0f0f0f0f in
  (v * 0x0101010101010101) lsr 56

(* Little-endian load of [word_bytes] packed bytes at [b].  All seven
   loads are within the pattern's byte span except possibly in the last
   word, which uses [load_tail]. *)
let[@inline] load7 (data : Storage.t) b =
  A1.unsafe_get data b
  lor (A1.unsafe_get data (b + 1) lsl 8)
  lor (A1.unsafe_get data (b + 2) lsl 16)
  lor (A1.unsafe_get data (b + 3) lsl 24)
  lor (A1.unsafe_get data (b + 4) lsl 32)
  lor (A1.unsafe_get data (b + 5) lsl 40)
  lor (A1.unsafe_get data (b + 6) lsl 48)

(* Load only [count] (1..7) bytes at [b] — the final word of a window
   may extend past the window's last covered byte, and for an mmap'd
   buffer reading past the section is reading past the file. *)
let[@inline] load_tail (data : Storage.t) b count =
  let acc = ref 0 in
  for j = count - 1 downto 0 do
    acc := (!acc lsl 8) lor A1.unsafe_get data (b + j)
  done;
  !acc

let[@inline] telemetry_flush ~words ~early =
  if Telemetry.is_enabled () then begin
    let c = Telemetry.cell () in
    c.Telemetry.calls <- c.Telemetry.calls + 1;
    c.Telemetry.words <- c.Telemetry.words + words;
    if early then c.Telemetry.early_exits <- c.Telemetry.early_exits + 1
  end

(* The kernel.  Scans the window word by word, early-exiting as soon as
   the running mismatch count exceeds [limit].  On early exit the
   return value is some count > limit — meaningful only as "greater
   than limit", not as the exact distance. *)
let hamming ?(limit = max_int) t (pp : Pattern.t) ~pos =
  let m = pp.Pattern.m in
  if pos < 0 || pos + m > t.len then
    invalid_arg "Packed_text.hamming: window out of range";
  let ph = Array.unsafe_get pp.Pattern.phases (pos land 3) in
  let b0 = pos lsr 2 in
  let words = ph.Pattern.words and masks = ph.Pattern.masks in
  let nw = Array.length words in
  let data = t.data in
  let last = nw - 1 in
  let rec go w acc =
    if w = last then begin
      let tw = load_tail data (b0 + (word_bytes * w)) ph.Pattern.last_bytes in
      let acc =
        acc
        + count_mismatch_word
            ((tw lxor Array.unsafe_get words w) land Array.unsafe_get masks w)
      in
      telemetry_flush ~words:nw ~early:false;
      acc
    end
    else begin
      let tw = load7 data (b0 + (word_bytes * w)) in
      let acc =
        acc
        + count_mismatch_word
            ((tw lxor Array.unsafe_get words w) land Array.unsafe_get masks w)
      in
      if acc > limit then begin
        telemetry_flush ~words:(w + 1) ~early:true;
        acc
      end
      else go (w + 1) acc
    end
  in
  go 0 0

let hamming_le t pp ~pos ~k =
  if k < 0 then false
  else if k >= Pattern.length pp then (
    (* Degenerate budget: every window qualifies; still bounds-check. *)
    if pos < 0 || pos + Pattern.length pp > t.len then
      invalid_arg "Packed_text.hamming: window out of range";
    true)
  else hamming ~limit:k t pp ~pos <= k
