(** Wire protocol of the [kmm serve] daemon: newline-delimited JSON.

    One request per line, one response per line.  A frame is a single
    [\n]-terminated line of UTF-8 JSON no longer than
    {!limits.max_frame} bytes; responses never contain a raw newline
    (the encoder escapes them), so framing can never desynchronize on
    well-formed traffic, and a malformed line costs exactly one typed
    error response — never the connection, never the daemon.

    {2 Requests}

    A request is a JSON object.  [cmd] selects the operation (default
    ["query"]); [id] is an arbitrary scalar echoed verbatim in the
    response so clients may pipeline:

    {v
    {"cmd":"query","id":7,"pattern":"acgtacgt","k":2,"engine":"m-tree"}
    {"cmd":"query","id":8,"pattern":"acgtacgt","k":2,"deadline":0.25}
    {"cmd":"ping"}
    {"cmd":"metrics"}
    {"cmd":"info"}
    {"cmd":"shutdown"}
    v}

    [pattern] is required for queries; [k] defaults to [0]; [engine]
    defaults to ["m-tree"] and accepts every name of
    {!Core.Kmismatch.all_engines}.  [deadline] (optional) is the query's
    compute budget in {e relative} seconds — relative so client and
    server clocks never need to agree; the server anchors it to its own
    monotonic clock the moment the frame is admitted, and the budget
    covers queue wait as well as search.  A query whose budget expires
    answers with a typed [Timeout] error frame (code 9) and discards all
    partial work; a non-positive or non-numeric [deadline] is
    [Bad_input].

    {2 Responses}

    {v
    {"id":7,"status":"ok","count":3,"truncated":false,"hits":[[12,0],[40,2],[77,1]]}
    {"id":7,"status":"error","code":2,"error":"bad input: ..."}
    v}

    [hits] are [[position, distance]] pairs ascending by position —
    exactly {!Core.Kmismatch.Response.t.hits}.  [truncated] is [true]
    when the hit list was cut at {!limits.max_hits}.  Error responses
    carry the {!Kmm_error.exit_code} of the typed failure as [code], so
    a client can react exactly as a [kmm] CLI caller would to the
    process exit code. *)

(** A minimal JSON value, parser and printer — just enough for the wire
    protocol, so the repo stays dependency-free.  Integers are kept
    exact ([Int]); anything with a fraction or exponent parses as
    [Float].  The parser enforces a nesting-depth bound (stack safety on
    adversarial frames) and rejects trailing garbage. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped so the output never
      contains a control character (in particular, never a raw
      newline). *)

  val of_string : ?max_depth:int -> string -> (t, string) result
  (** Parse one JSON value spanning the whole input (leading/trailing
      whitespace allowed).  [max_depth] (default 64) bounds list/object
      nesting.  The error string says what failed and where. *)

  val member : string -> t -> t option
  (** [member key (Obj _)] — [None] on absent key or non-object. *)

  val equal : t -> t -> bool
end

(** {1 Admission limits} *)

type limits = {
  max_pattern : int;  (** longest admissible pattern, in bases *)
  max_k : int;  (** largest admissible mismatch budget *)
  max_hits : int;
      (** hits per response; longer hit lists are truncated and flagged *)
  max_frame : int;  (** longest admissible request line, in bytes *)
}

val default_limits : limits
(** [{ max_pattern = 4096; max_k = 64; max_hits = 100_000;
    max_frame = 65_536 }]. *)

val limits_to_json : limits -> Json.t
(** The object embedded in [info] responses. *)

(** {1 Requests} *)

type body =
  | Query of {
      pattern : string;
      k : int;
      engine : Core.Kmismatch.engine;
      deadline : float option;  (** relative seconds, validated positive *)
    }
  | Ping
  | Metrics
  | Info
  | Shutdown

type request = { id : Json.t;  (** [Null] when absent *) body : body }

val parse_request :
  limits:limits -> string -> (request, Json.t * Kmm_error.t) result
(** Parse and admit one frame.  Every failure is typed — malformed JSON,
    a non-object, a missing or mistyped field, an unknown [cmd] or
    [engine], a pattern longer than [max_pattern], [k > max_k], or a
    frame longer than [max_frame] all map to [Kmm_error.Bad_input] —
    paired with the request [id] when one could be recovered ([Null]
    otherwise), so the server can echo it on the rejection.  Validation
    the engines already own (empty pattern, non-ACGT bases, negative
    [k]) is deliberately {e not} duplicated here: those flow through
    {!Core.Kmismatch.try_run}'s typed channel. *)

(** {1 Encoding} *)

val query_request :
  ?id:Json.t ->
  ?engine:Core.Kmismatch.engine ->
  ?deadline:float ->
  pattern:string ->
  k:int ->
  unit ->
  string
(** One query frame (no trailing newline).  [deadline] is the relative
    compute budget in seconds (see the frame grammar above). *)

val command_request : ?id:Json.t -> string -> string
(** A bare-command frame: [command_request "ping"] etc. *)

val ok_hits_response :
  id:Json.t -> truncated:bool -> (int * int) list -> string

val ok_obj_response : id:Json.t -> (string * Json.t) list -> string

val error_response : id:Json.t -> Kmm_error.t -> string

(** {1 Replies (client side)} *)

type reply =
  | Hits of { id : Json.t; hits : (int * int) list; truncated : bool }
  | Ok_obj of { id : Json.t; fields : (string * Json.t) list }
  | Error_reply of { id : Json.t; code : int; message : string }

val parse_reply : string -> (reply, string) result

val render_hits : (int * int) list -> string
(** Canonical ["pos:dist pos:dist ..."] rendering — the form the
    byte-identity tests and the serve bench compare. *)
