(** Knuth-Morris-Pratt exact matching (paper §II): O(m + n) with the
    failure-function shift table. *)

val failure : string -> int array
(** [failure p] is the border table: [f.(i)] is the length of the longest
    proper border of [p[0 .. i]]. *)

val period : string -> int
(** Smallest period of the string: [len - f.(len-1)] (the whole length for
    an unbordered string).  Used by the Amir baseline's break detection. *)

val find_all : pattern:string -> text:string -> int list
