(* The sharded corpus layer: equivalence with a monolithic index,
   manifest persistence (copy and mmap adoption), typed refusals, and
   manifest corruption handling.

   The load-bearing invariant everywhere below: for any pattern up to
   [max_query], a sharded corpus — built in parallel, saved, reloaded,
   by copy or by mmap, at any domain count — answers byte-identically
   to [Kmismatch.try_run] on the one monolithic index of the same
   text.  This file is also the CI smoke for the 2-shard manifest path
   (it runs under [dune runtest]). *)

open Core

let check = Alcotest.check
let hits_t = Alcotest.(list (pair int int))

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kmm-corpus-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Fixture: long enough for several shards, with a random tail so
   repeated patterns land on both sides of shard boundaries. *)
let text =
  let st = Random.State.make [| 0xc0de |] in
  Test_util.random_dna st 9_000

let mono_idx = lazy (Kmismatch.build_index text)
let mono_corpus = lazy (Corpus.mono (Lazy.force mono_idx))

(* 9000 bp at shard_size 2000, overlap 64: 5 shards, max_query 65. *)
let shard_size = 2_000
let ovl = 64
let sharded = lazy (Corpus.build ~shard_size ~overlap:ovl ~domains:2 text)

let q ?(engine = Kmismatch.M_tree) pattern k =
  Kmismatch.Query.make ~engine ~pattern ~k ()

let hits_of = function
  | Ok r -> r.Kmismatch.Response.hits
  | Error e -> Alcotest.fail ("query failed: " ^ Kmm_error.to_string e)

(* Patterns that matter: inside a shard, exactly straddling each
   boundary, at the corpus ends, at the max_query length, mutated. *)
let probe_patterns =
  let st = Random.State.make [| 0xfeed |] in
  let sub pos len = String.sub text pos len in
  let mutated s =
    let b = Bytes.of_string s in
    Bytes.set b (Bytes.length b / 2) "acgt".[Random.State.int st 4];
    Bytes.to_string b
  in
  List.concat
    [
      [ sub 0 20; sub (String.length text - 20) 20; sub 100 (ovl + 1) ];
      (* straddle every shard boundary with the longest legal pattern *)
      List.init 4 (fun i ->
          let boundary = (i + 1) * shard_size in
          sub (boundary - ovl) (ovl + 1));
      List.init 6 (fun _ ->
          let len = 8 + Random.State.int st (ovl - 8) in
          let pos = Random.State.int st (String.length text - len) in
          let p = sub pos len in
          if Random.State.int st 2 = 0 then p else mutated p);
    ]

let assert_corpus_equals_mono ?(engines = [ Kmismatch.M_tree ]) corpus name =
  List.iter
    (fun engine ->
      List.iter
        (fun pattern ->
          List.iter
            (fun k ->
              let expected =
                hits_of (Kmismatch.try_run (Lazy.force mono_idx) (q ~engine pattern k))
              in
              let got = hits_of (Corpus.try_run corpus (q ~engine pattern k)) in
              check hits_t
                (Printf.sprintf "%s: %d bp pattern, k=%d" name (String.length pattern) k)
                expected got)
            [ 0; 2 ])
        probe_patterns)
    engines

(* --- in-memory equivalence ------------------------------------------- *)

let test_build_shape () =
  let c = Lazy.force sharded in
  check Alcotest.int "nshards" 5 (Corpus.nshards c);
  check Alcotest.int "length" (String.length text) (Corpus.length c);
  check Alcotest.(option int) "overlap" (Some ovl) (Corpus.overlap c);
  check Alcotest.int "max_query" (ovl + 1) (Corpus.max_query c);
  let m = Lazy.force mono_corpus in
  check Alcotest.int "mono nshards" 1 (Corpus.nshards m);
  check Alcotest.int "mono max_query" (String.length text) (Corpus.max_query m)

let test_sharded_equals_mono () =
  assert_corpus_equals_mono (Lazy.force sharded) "sharded"
    ~engines:[ Kmismatch.M_tree; Kmismatch.Hybrid; Kmismatch.Kangaroo ]

let test_domain_count_deterministic () =
  (* The same text built at 1 and 3 domains must answer identically —
     shard [i] lands in slot [i] whatever domain built it. *)
  let c1 = Corpus.build ~shard_size ~overlap:ovl ~domains:1 text in
  let c3 = Corpus.build ~shard_size ~overlap:ovl ~domains:3 text in
  List.iter
    (fun pattern ->
      check hits_t "domains 1 = domains 3"
        (hits_of (Corpus.try_run c1 (q pattern 2)))
        (hits_of (Corpus.try_run c3 (q pattern 2))))
    probe_patterns

let test_overlong_pattern_refused () =
  let c = Lazy.force sharded in
  match Corpus.try_run c (q (String.sub text 10 (ovl + 2)) 1) with
  | Error (Kmm_error.Bad_input msg) ->
      check Alcotest.bool "message names the limit" true
        (let needle = string_of_int (ovl + 1) in
         let n = String.length msg and l = String.length needle in
         let rec scan i = i + l <= n && (String.sub msg i l = needle || scan (i + 1)) in
         scan 0)
  | Error e -> Alcotest.fail ("expected Bad_input, got " ^ Kmm_error.to_string e)
  | Ok _ -> Alcotest.fail "boundary-straddling pattern length accepted"

let test_pattern_longer_than_corpus () =
  (* Longer than the whole corpus is an ordinary empty answer, exactly
     as for a monolithic index — not a limit error. *)
  let c = Lazy.force sharded in
  let big = String.concat "" (List.init 5 (fun _ -> text)) in
  check hits_t "empty answer" [] (hits_of (Corpus.try_run c (q big 2)))

let test_single_shard_unlimited () =
  (* One shard stores everything, so no boundary limit applies. *)
  let c = Corpus.build ~shard_size:(String.length text) ~overlap:16 text in
  check Alcotest.int "single shard" 1 (Corpus.nshards c);
  let pattern = String.sub text 500 300 in
  check hits_t "300 bp pattern on 16-overlap single shard"
    (hits_of (Kmismatch.try_run (Lazy.force mono_idx) (q pattern 1)))
    (hits_of (Corpus.try_run c (q pattern 1)))

(* --- persistence: manifest save/load, copy and mmap ------------------ *)

let saved_manifest dir =
  let path = Filename.concat dir "corpus.fmi" in
  Corpus.save (Lazy.force sharded) path;
  path

let test_manifest_roundtrip_copy_and_mmap () =
  with_temp_dir (fun dir ->
      let path = saved_manifest dir in
      check Alcotest.bool "sniffed as manifest" true (Corpus.is_manifest path);
      let copy = Corpus.load ~mode:Fmindex.Fm_index.Copy path in
      let mm = Corpus.load ~mode:Fmindex.Fm_index.Mmap path in
      check Alcotest.int "copy nshards" 5 (Corpus.nshards copy);
      check Alcotest.int "mmap nshards" 5 (Corpus.nshards mm);
      assert_corpus_equals_mono copy "copy-loaded";
      assert_corpus_equals_mono mm "mmap-loaded")

(* The CI 2-shard smoke: build, save, reload (mmap), compare — the
   acceptance path for sharded manifests in miniature. *)
let test_two_shard_smoke () =
  with_temp_dir (fun dir ->
      let two = Corpus.build ~shard_size:5_000 ~overlap:100 ~domains:2 text in
      check Alcotest.int "two shards" 2 (Corpus.nshards two);
      let path = Filename.concat dir "two.fmi" in
      Corpus.save two path;
      let loaded = Corpus.load ~mode:Fmindex.Fm_index.Mmap path in
      let pattern = String.sub text 4_950 101 (* straddles the one boundary *) in
      check hits_t "2-shard mmap = mono"
        (hits_of (Kmismatch.try_run (Lazy.force mono_idx) (q pattern 2)))
        (hits_of (Corpus.try_run loaded (q pattern 2))))

let test_read_manifest () =
  with_temp_dir (fun dir ->
      let path = saved_manifest dir in
      match Corpus.try_read_manifest path with
      | Error e -> Alcotest.fail (Kmm_error.to_string e)
      | Ok m ->
          check Alcotest.int "total" (String.length text) m.Corpus.m_total;
          check Alcotest.int "overlap" ovl m.Corpus.m_overlap;
          check Alcotest.int "entries" 5 (Array.length m.Corpus.m_entries);
          Array.iteri
            (fun i e ->
              check Alcotest.int (Printf.sprintf "shard %d offset" i)
                (i * shard_size) e.Corpus.e_off;
              check Alcotest.bool (Printf.sprintf "shard %d file exists" i) true
                (Sys.file_exists (Filename.concat dir e.Corpus.e_file)))
            m.Corpus.m_entries)

let expect_load_error ~name ~matches path =
  match Corpus.try_load path with
  | Error e when matches e -> ()
  | Error e -> Alcotest.fail (name ^ ": wrong error " ^ Kmm_error.to_string e)
  | Ok _ -> Alcotest.fail (name ^ ": accepted")

let test_manifest_corruption () =
  with_temp_dir (fun dir ->
      let path = saved_manifest dir in
      let pristine = In_channel.with_open_bin path In_channel.input_all in
      let rewrite s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      (* flip a digit in a shard line: header CRC mismatch *)
      let b = Bytes.of_string pristine in
      let off = 1 + String.index pristine '\n' + String.length "shard " in
      Bytes.set b off (if Bytes.get b off = '0' then '1' else '0');
      rewrite (Bytes.to_string b);
      expect_load_error ~name:"flipped digit"
        ~matches:(function Kmm_error.Corrupt _ -> true | _ -> false)
        path;
      (* truncated mid-line *)
      rewrite (String.sub pristine 0 (String.length pristine - 7));
      expect_load_error ~name:"truncated manifest"
        ~matches:(function
          | Kmm_error.Truncated _ | Kmm_error.Corrupt _ -> true | _ -> false)
        path;
      (* trailing garbage after the hcrc line *)
      rewrite (pristine ^ "extra\n");
      expect_load_error ~name:"trailing garbage"
        ~matches:(function Kmm_error.Corrupt _ -> true | _ -> false)
        path;
      rewrite pristine;
      (* a shard file vanishes: typed Io *)
      let shard0 = Filename.concat dir "corpus.fmi.shard000.fmi" in
      let saved_shard = In_channel.with_open_bin shard0 In_channel.input_all in
      Sys.remove shard0;
      expect_load_error ~name:"missing shard"
        ~matches:(function Kmm_error.Io _ -> true | _ -> false)
        path;
      (* a shard file truncated: the shard's own loader reports it *)
      let oc = open_out_bin shard0 in
      output_string oc (String.sub saved_shard 0 (String.length saved_shard / 2));
      close_out oc;
      expect_load_error ~name:"truncated shard"
        ~matches:(function
          | Kmm_error.Truncated _ | Kmm_error.Corrupt _ -> true | _ -> false)
        path)

(* --- the mapper over a corpus target --------------------------------- *)

let test_mapper_target_equivalence () =
  with_temp_dir (fun dir ->
      let path = saved_manifest dir in
      let mm = Corpus.load ~mode:Fmindex.Fm_index.Mmap path in
      let st = Random.State.make [| 0xabcd |] in
      let short_reads =
        List.init 24 (fun i ->
            let len = 20 + Random.State.int st 40 in
            let pos = Random.State.int st (String.length text - len) in
            (i, String.sub text pos len))
      in
      (* one read over the corpus query limit: skipped with a typed
         reason, never answered wrongly *)
      let reads = short_reads @ [ (99, String.sub text 50 (ovl + 10)) ] in
      let run_on target domains =
        Mapper.run_target { Mapper.default with domains } target ~reads:short_reads ~k:2
      in
      let render (hits, summary) =
        Mapper.to_tsv hits
        ^ Printf.sprintf "mapped %d/%d\n" summary.Mapper.mapped summary.Mapper.total
      in
      let reference = render (run_on (Corpus.target (Lazy.force mono_corpus)) 1) in
      List.iter
        (fun corpus ->
          List.iter
            (fun domains ->
              check Alcotest.string
                (Printf.sprintf "corpus mapper = mono mapper (domains=%d)" domains)
                reference
                (render (run_on (Corpus.target corpus) domains)))
            [ 1; 4 ])
        [ Lazy.force sharded; mm ];
      (* the over-long read: typed skip naming the limit, short reads
         unaffected *)
      let hits, summary =
        Mapper.run_target Mapper.default (Corpus.target mm) ~reads ~k:2
      in
      check Alcotest.bool "no hits for the skipped read" false
        (List.exists (fun h -> h.Mapper.read_id = 99) hits);
      match summary.Mapper.skipped with
      | [ (99, Kmm_error.Bad_input msg) ] ->
          check Alcotest.bool "skip reason names the limit" true
            (let needle = string_of_int (ovl + 1) in
             let n = String.length msg and l = String.length needle in
             let rec scan i = i + l <= n && (String.sub msg i l = needle || scan (i + 1)) in
             scan 0)
      | _ -> Alcotest.fail "expected exactly one typed skip for read 99")

let () =
  Random.self_init ();
  Alcotest.run "corpus"
    [
      ( "equivalence",
        [
          Alcotest.test_case "build shape" `Quick test_build_shape;
          Alcotest.test_case "sharded = mono (3 engines)" `Quick test_sharded_equals_mono;
          Alcotest.test_case "deterministic across domain counts" `Quick
            test_domain_count_deterministic;
          Alcotest.test_case "over-long pattern refused" `Quick test_overlong_pattern_refused;
          Alcotest.test_case "pattern longer than corpus" `Quick
            test_pattern_longer_than_corpus;
          Alcotest.test_case "single shard has no limit" `Quick test_single_shard_unlimited;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "roundtrip copy+mmap" `Quick test_manifest_roundtrip_copy_and_mmap;
          Alcotest.test_case "2-shard smoke" `Quick test_two_shard_smoke;
          Alcotest.test_case "read_manifest fields" `Quick test_read_manifest;
          Alcotest.test_case "corruption typed errors" `Quick test_manifest_corruption;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "corpus target = mono target" `Quick
            test_mapper_target_equivalence;
        ] );
    ]
