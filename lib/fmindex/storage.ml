module A1 = Bigarray.Array1

type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t
type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

(* Bigarray allocation leaves contents undefined; the index code relies
   on padding lanes being zero, so heap buffers are always cleared. *)
let create n =
  let a = A1.create Bigarray.int8_unsigned Bigarray.c_layout n in
  A1.fill a 0;
  a

let create_words n =
  let a = A1.create Bigarray.int64 Bigarray.c_layout n in
  A1.fill a 0L;
  a

let length (a : t) = A1.dim a
let length_words (a : words) = A1.dim a

let of_string s =
  let n = String.length s in
  let a = create n in
  for i = 0 to n - 1 do
    A1.unsafe_set a i (Char.code (String.unsafe_get s i))
  done;
  a

let to_string (a : t) =
  let n = A1.dim a in
  String.init n (fun i -> Char.unsafe_chr (A1.unsafe_get a i))

let blit (src : t) spos (dst : t) dpos len =
  if len > 0 then A1.blit (A1.sub src spos len) (A1.sub dst dpos len)

let word (a : words) i = Int64.to_int (A1.unsafe_get a i)
let set_word (a : words) i v = A1.unsafe_set a i (Int64.of_int v)

let words_to_string (a : words) =
  let n = A1.dim a in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (i * 8) (A1.get a i)
  done;
  Bytes.unsafe_to_string b

let words_of_string s =
  let len = String.length s in
  if len mod 8 <> 0 then
    invalid_arg "Storage.words_of_string: length not a multiple of 8";
  let n = len / 8 in
  let a = create_words n in
  for i = 0 to n - 1 do
    A1.set a i (String.get_int64_le s (i * 8))
  done;
  a

let map_bytes fd ~pos ~len : t =
  if len = 0 then create 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int8_unsigned
         Bigarray.c_layout false [| len |])

let map_words fd ~pos ~len : words =
  if len = 0 then create_words 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64
         Bigarray.c_layout false [| len |])

module Memo = struct
  type 'a t = { m : Mutex.t; cell : 'a option Atomic.t; f : unit -> 'a }

  let make f = { m = Mutex.create (); cell = Atomic.make None; f }

  let force t =
    match Atomic.get t.cell with
    | Some v -> v
    | None ->
        Mutex.lock t.m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.m)
          (fun () ->
            match Atomic.get t.cell with
            | Some v -> v
            | None ->
                let v = t.f () in
                Atomic.set t.cell (Some v);
                v)

  let is_forced t = Atomic.get t.cell <> None
end
