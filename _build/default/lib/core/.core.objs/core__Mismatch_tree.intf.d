lib/core/mismatch_tree.mli: Fmindex Format
