lib/suffix/suffix_tree.ml: Char Hashtbl List String
