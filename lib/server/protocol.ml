(* Newline-JSON wire protocol: see protocol.mli for the frame grammar.
   The JSON layer is hand-rolled (the repo is dependency-free by policy)
   and hardened the same way the index parser is: explicit bounds
   (depth, frame length), no exceptions escaping, and every rejection a
   typed [Kmm_error.Bad_input] the daemon can answer with. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (* --- printer ----------------------------------------------------- *)

  let escape_into buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let to_string v =
    let buf = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f ->
          (* JSON has no NaN/Inf; clamp to null like most encoders. *)
          if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
          else Buffer.add_string buf "null"
      | String s -> escape_into buf s
      | List l ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            l;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_char buf ',';
              escape_into buf k;
              Buffer.add_char buf ':';
              go x)
            fields;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  (* --- parser ------------------------------------------------------ *)

  exception Parse_error of string

  let of_string ?(max_depth = 64) s =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt =
      Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at byte %d" m !pos))) fmt
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | Some c' -> fail "expected %C, found %C" c c'
      | None -> fail "expected %C, found end of input" c
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "invalid literal"
    in
    (* Encode one code point as UTF-8 (for \uXXXX escapes). *)
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = ref 0 in
      for _ = 1 to 4 do
        let d =
          match s.[!pos] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | c -> fail "invalid hex digit %C in \\u escape" c
        in
        v := (!v * 16) + d;
        incr pos
      done;
      !v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'; incr pos
                 | '\\' -> Buffer.add_char buf '\\'; incr pos
                 | '/' -> Buffer.add_char buf '/'; incr pos
                 | 'b' -> Buffer.add_char buf '\b'; incr pos
                 | 'f' -> Buffer.add_char buf '\012'; incr pos
                 | 'n' -> Buffer.add_char buf '\n'; incr pos
                 | 'r' -> Buffer.add_char buf '\r'; incr pos
                 | 't' -> Buffer.add_char buf '\t'; incr pos
                 | 'u' ->
                     incr pos;
                     add_utf8 buf (hex4 ())
                 | c -> fail "invalid escape \\%C" c);
              go ()
          | c when Char.code c < 0x20 -> fail "raw control character in string"
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      let digits () =
        let d0 = !pos in
        while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
          incr pos
        done;
        if !pos = d0 then fail "invalid number"
      in
      digits ();
      let fractional = ref false in
      if peek () = Some '.' then begin
        fractional := true;
        incr pos;
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
          fractional := true;
          incr pos;
          (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
          digits ()
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if !fractional then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text) (* out of int range *)
    in
    let rec parse_value depth =
      if depth > max_depth then fail "nesting deeper than %d" max_depth;
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> lit "null" Null
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let items = ref [] in
            let rec go () =
              items := parse_value (depth + 1) :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; go ()
              | Some ']' -> incr pos
              | _ -> fail "expected ',' or ']'"
            in
            go ();
            List (List.rev !items)
          end
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec go () =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value (depth + 1) in
              fields := (key, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; go ()
              | Some '}' -> incr pos
              | _ -> fail "expected ',' or '}'"
            in
            go ();
            Obj (List.rev !fields)
          end
      | Some c -> fail "unexpected character %C" c
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Float x, Float y -> x = y
    | String x, String y -> String.equal x y
    | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
    | Obj x, Obj y -> (
        try List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
        with Invalid_argument _ -> false)
    | _ -> false
end

(* ------------------------------------------------------------------ *)

type limits = { max_pattern : int; max_k : int; max_hits : int; max_frame : int }

let default_limits =
  { max_pattern = 4096; max_k = 64; max_hits = 100_000; max_frame = 65_536 }

let limits_to_json l =
  Json.Obj
    [
      ("max_pattern", Json.Int l.max_pattern);
      ("max_k", Json.Int l.max_k);
      ("max_hits", Json.Int l.max_hits);
      ("max_frame", Json.Int l.max_frame);
    ]

type body =
  | Query of {
      pattern : string;
      k : int;
      engine : Core.Kmismatch.engine;
      deadline : float option;
    }
  | Ping
  | Metrics
  | Info
  | Shutdown

type request = { id : Json.t; body : body }

let bad fmt = Printf.ksprintf (fun m -> Kmm_error.Bad_input m) fmt


let parse_request ~limits line =
  if String.length line > limits.max_frame then
    Error
      ( Json.Null,
        bad "frame of %d bytes exceeds max_frame %d" (String.length line)
          limits.max_frame )
  else
    match Json.of_string line with
    | Error m -> Error (Json.Null, bad "malformed request: %s" m)
    | Ok (Json.Obj _ as obj) -> (
        let id = Option.value ~default:Json.Null (Json.member "id" obj) in
        let reject e = Error (id, e) in
        let cmd =
          match Json.member "cmd" obj with
          | None -> Ok "query"
          | Some (Json.String c) -> Ok c
          | Some _ -> Error (bad "\"cmd\" must be a string")
        in
        match cmd with
        | Error e -> reject e
        | Ok "ping" -> Ok { id; body = Ping }
        | Ok "metrics" -> Ok { id; body = Metrics }
        | Ok "info" -> Ok { id; body = Info }
        | Ok "shutdown" -> Ok { id; body = Shutdown }
        | Ok "query" -> (
            match Json.member "pattern" obj with
            | None -> reject (bad "missing \"pattern\"")
            | Some (Json.String pattern) -> (
                if String.length pattern > limits.max_pattern then
                  reject
                    (bad "pattern of %d bp exceeds max_pattern %d"
                       (String.length pattern) limits.max_pattern)
                else
                  let k =
                    match Json.member "k" obj with
                    | None -> Ok 0
                    | Some (Json.Int k) -> Ok k
                    | Some _ -> Error (bad "\"k\" must be an integer")
                  in
                  match k with
                  | Error e -> reject e
                  | Ok k when k > limits.max_k ->
                      reject (bad "k=%d exceeds max_k %d" k limits.max_k)
                  | Ok k -> (
                      (* Relative compute budget in seconds; the server
                         anchors it to its monotonic clock at admission.
                         Relative (not absolute wall time) so client and
                         server clocks never need to agree. *)
                      let deadline =
                        match Json.member "deadline" obj with
                        | None -> Ok None
                        | Some (Json.Int s) when s > 0 ->
                            Ok (Some (float_of_int s))
                        | Some (Json.Float s) when s > 0. && Float.is_finite s
                          ->
                            Ok (Some s)
                        | Some (Json.Int _ | Json.Float _) ->
                            Error (bad "\"deadline\" must be positive")
                        | Some _ ->
                            Error
                              (bad "\"deadline\" must be a number of seconds")
                      in
                      match deadline with
                      | Error e -> reject e
                      | Ok deadline -> (
                          match Json.member "engine" obj with
                          | None ->
                              Ok
                                {
                                  id;
                                  body =
                                    Query
                                      {
                                        pattern;
                                        k;
                                        engine = Core.Kmismatch.M_tree;
                                        deadline;
                                      };
                                }
                          | Some (Json.String name) -> (
                              (* Typed rejection straight from the
                                 registry: the message lists every
                                 valid name, and [-]/[_] spellings are
                                 both accepted. *)
                              match Core.Kmismatch.engine_of_string_err name with
                              | Ok engine ->
                                  Ok
                                    {
                                      id;
                                      body =
                                        Query { pattern; k; engine; deadline };
                                    }
                              | Error e -> reject e)
                          | Some _ -> reject (bad "\"engine\" must be a string"))))
            | Some _ -> reject (bad "\"pattern\" must be a string"))
        | Ok other ->
            reject
              (bad "unknown cmd %S (expected one of: query, ping, metrics, info, shutdown)"
                 other))
    | Ok _ -> Error (Json.Null, bad "request must be a JSON object")

(* --- encoding ------------------------------------------------------ *)

let with_id id fields =
  match id with Json.Null -> fields | id -> ("id", id) :: fields

let query_request ?(id = Json.Null) ?engine ?deadline ~pattern ~k () =
  let engine_field =
    match engine with
    | None -> []
    | Some e -> [ ("engine", Json.String (Core.Kmismatch.engine_name e)) ]
  in
  let deadline_field =
    match deadline with
    | None -> []
    | Some s -> [ ("deadline", Json.Float s) ]
  in
  Json.to_string
    (Json.Obj
       (with_id id
          ([ ("pattern", Json.String pattern); ("k", Json.Int k) ]
          @ deadline_field @ engine_field)))

let command_request ?(id = Json.Null) cmd =
  Json.to_string (Json.Obj (with_id id [ ("cmd", Json.String cmd) ]))

let ok_hits_response ~id ~truncated hits =
  Json.to_string
    (Json.Obj
       (with_id id
          [
            ("status", Json.String "ok");
            ("count", Json.Int (List.length hits));
            ("truncated", Json.Bool truncated);
            ( "hits",
              Json.List
                (List.map (fun (p, d) -> Json.List [ Json.Int p; Json.Int d ]) hits) );
          ]))

let ok_obj_response ~id fields =
  Json.to_string (Json.Obj (with_id id (("status", Json.String "ok") :: fields)))

let error_response ~id e =
  Json.to_string
    (Json.Obj
       (with_id id
          [
            ("status", Json.String "error");
            ("code", Json.Int (Kmm_error.exit_code e));
            ("error", Json.String (Kmm_error.to_string e));
          ]))

(* --- replies ------------------------------------------------------- *)

type reply =
  | Hits of { id : Json.t; hits : (int * int) list; truncated : bool }
  | Ok_obj of { id : Json.t; fields : (string * Json.t) list }
  | Error_reply of { id : Json.t; code : int; message : string }

let parse_reply line =
  match Json.of_string line with
  | Error m -> Error (Printf.sprintf "malformed reply: %s" m)
  | Ok (Json.Obj fields as obj) -> (
      let id = Option.value ~default:Json.Null (Json.member "id" obj) in
      match Json.member "status" obj with
      | Some (Json.String "error") ->
          let code =
            match Json.member "code" obj with Some (Json.Int c) -> c | _ -> 8
          in
          let message =
            match Json.member "error" obj with
            | Some (Json.String m) -> m
            | _ -> "unknown error"
          in
          Ok (Error_reply { id; code; message })
      | Some (Json.String "ok") -> (
          match Json.member "hits" obj with
          | Some (Json.List items) -> (
              let truncated =
                match Json.member "truncated" obj with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let hit = function
                | Json.List [ Json.Int p; Json.Int d ] -> Some (p, d)
                | _ -> None
              in
              match
                List.fold_right
                  (fun item acc ->
                    match (acc, hit item) with
                    | Some tl, Some h -> Some (h :: tl)
                    | _ -> None)
                  items (Some [])
              with
              | Some hits -> Ok (Hits { id; hits; truncated })
              | None -> Error "malformed hit entry in reply")
          | Some _ -> Error "\"hits\" must be a list"
          | None ->
              Ok
                (Ok_obj
                   {
                     id;
                     fields =
                       List.filter (fun (k, _) -> k <> "status" && k <> "id") fields;
                   }))
      | _ -> Error "reply carries no \"status\"")
  | Ok _ -> Error "reply is not a JSON object"

let render_hits hits =
  String.concat " " (List.map (fun (p, d) -> Printf.sprintf "%d:%d" p d) hits)
