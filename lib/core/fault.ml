exception Injected of string

type plan =
  | Enospc_after of int
  | Crash_after of int
  | Short_write of int
  | Bit_flip of { offset : int; bit : int }
  | Truncate_at of int

let plan_to_string = function
  | Enospc_after n -> Printf.sprintf "enospc-after-%d" n
  | Crash_after n -> Printf.sprintf "crash-after-%d" n
  | Short_write n -> Printf.sprintf "short-write-at-%d" n
  | Bit_flip { offset; bit } -> Printf.sprintf "bit-flip-%d.%d" offset bit
  | Truncate_at n -> Printf.sprintf "truncate-at-%d" n

let flip_byte s ~offset ~bit =
  let b = Bytes.of_string s in
  Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

(* Split [chunk] around the absolute stream boundary [limit], given that
   [written] bytes went before it: the part that still fits, and whether
   the chunk crosses the boundary. *)
let prefix_upto ~written ~limit chunk =
  if written >= limit then ("", String.length chunk > 0)
  else if written + String.length chunk <= limit then (chunk, false)
  else (String.sub chunk 0 (limit - written), true)

let wrap plan (base : Fmindex.Fm_index.sink) : Fmindex.Fm_index.sink =
  let written = ref 0 in
  let lost = ref false in
  let write_counted s =
    base.Fmindex.Fm_index.sink_write s;
    written := !written + String.length s
  in
  match plan with
  | Enospc_after limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then raise (Injected "ENOSPC"));
        sink_flush = base.sink_flush;
      }
  | Crash_after limit ->
      {
        sink_write =
          (fun chunk ->
            if !lost then raise (Injected "crash");
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then begin
              lost := true;
              raise (Injected "crash")
            end);
        sink_flush =
          (fun () -> if !lost then raise (Injected "crash") else base.sink_flush ());
      }
  | Short_write limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then lost := true);
        sink_flush =
          (fun () ->
            base.sink_flush ();
            if !lost then raise (Injected "short write"));
      }
  | Bit_flip { offset; bit } ->
      {
        sink_write =
          (fun chunk ->
            let start = !written in
            let chunk =
              if offset >= start && offset < start + String.length chunk then
                flip_byte chunk ~offset:(offset - start) ~bit
              else chunk
            in
            write_counted chunk);
        sink_flush = base.sink_flush;
      }
  | Truncate_at limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, _ = prefix_upto ~written:!written ~limit chunk in
            base.Fmindex.Fm_index.sink_write keep;
            (* count the bytes the writer believes it wrote *)
            written := !written + String.length chunk);
        sink_flush = base.sink_flush;
      }

let corrupt_string plan s =
  let len = String.length s in
  match plan with
  | Bit_flip { offset; bit } ->
      if len = 0 then s
      else flip_byte s ~offset:(((offset mod len) + len) mod len) ~bit:(bit land 7)
  | Enospc_after n | Crash_after n | Short_write n | Truncate_at n ->
      String.sub s 0 (max 0 (min n len))

let corrupt_file plan path =
  let image =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (corrupt_string plan image))
