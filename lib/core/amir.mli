(** Amir-style k-mismatch baseline (paper ref. [2]): mark-and-verify.

    The pattern is cut into [2k] blocks ("breaks"); every exact occurrence
    of a block in the text (found with one Aho-Corasick pass) marks the
    implied candidate start; a window with at most [k] mismatches must
    exact-match at least [k] of the [2k] blocks, so candidates marked fewer
    than [k] times are discarded and the survivors are verified with O(k)
    kangaroo jumps.  When the pattern is too short to cut into [2k] useful
    blocks, every position is verified directly (Amir's algorithm also
    special-cases such patterns).  See DESIGN.md for the fidelity notes. *)

val blocks : pattern:string -> k:int -> (int * string) list
(** The [(offset, block)] decomposition used for filtering; exposed for
    tests.  Empty when the filter is not applicable. *)

val search :
  ?stats:Stats.t ->
  ?ptext:Fmindex.Packed_text.t ->
  pattern:string ->
  k:int ->
  string ->
  (int * int) list
(** [search ~pattern ~k text] returns all [(position, distance)] with [distance <= k], ascending.  Raises
    [Invalid_argument] on an empty pattern or negative [k].

    With [?ptext] (the packed form of [text]; must be the same length,
    or [Invalid_argument]) surviving candidates are verified by the
    word-parallel kernel ({!Fmindex.Packed_text.hamming}) instead of a
    scalar scan; the hits are identical either way. *)
