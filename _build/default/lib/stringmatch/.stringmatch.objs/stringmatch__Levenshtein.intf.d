lib/stringmatch/levenshtein.mli:
