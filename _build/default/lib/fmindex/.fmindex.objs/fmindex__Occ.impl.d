lib/fmindex/occ.ml: Array Bytes Char Dna String
