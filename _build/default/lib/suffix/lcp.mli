(** Longest-common-prefix arrays (Kasai's algorithm). *)

val of_suffix_array : string -> int array -> int array
(** [of_suffix_array s sa] is the LCP array [h] with [h.(0) = 0] and
    [h.(i) = lcp (s[sa.(i-1) ..]) (s[sa.(i) ..])] for [i > 0].
    Runs in O(n). *)

val naive_lcp : string -> int -> int -> int
(** Direct character-by-character LCP of two suffixes; for tests. *)
