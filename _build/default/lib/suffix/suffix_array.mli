(** Suffix-array construction.

    Two builders are provided: the linear-time SA-IS algorithm (used
    everywhere in production) and a simple prefix-doubling builder kept as an
    independently-written cross-check for tests.

    The suffix array of [s] is the permutation [sa] of [0 .. n-1] such that
    the suffix [s[sa.(i) ..]] is the [i]-th smallest suffix in plain
    lexicographic order (a proper prefix sorts before its extensions). *)

val build : string -> int array
(** Linear-time SA-IS construction over the byte alphabet. *)

val build_doubling : string -> int array
(** O(n log^2 n) prefix-doubling construction; reference implementation for
    cross-checking. *)

val build_naive : string -> int array
(** O(n^2 log n) sort of explicit suffixes; only for tiny test inputs. *)

val rank_of : int array -> int array
(** [rank_of sa] is the inverse permutation: [rank.(sa.(i)) = i]. *)

val is_valid : string -> int array -> bool
(** Full validity check (permutation + sortedness); for tests. *)
