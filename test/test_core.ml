open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let hits = Alcotest.(list (pair int int))

(* ------------------------------------------------------------------ *)
(* Mismatch arrays                                                     *)

let test_r_tables_paper_example () =
  (* Fig. 4: r = tcacg.  R_1 = mismatches of tcac vs cacg = every
     position; R_2 = tca vs acg = {1, 3}; R_3 = tc vs cg = {1, 2};
     R_4 = t vs g = {1}. *)
  let t = Mismatch_array.build "tcacg" ~k:3 in
  check (Alcotest.array int) "R1" [| 1; 2; 3; 4 |] (Mismatch_array.shift_table t 1);
  check (Alcotest.array int) "R2" [| 1; 3 |] (Mismatch_array.shift_table t 2);
  check (Alcotest.array int) "R3" [| 1; 2 |] (Mismatch_array.shift_table t 3);
  check (Alcotest.array int) "R4" [| 1 |] (Mismatch_array.shift_table t 4);
  check (Alcotest.array int) "R0 empty" [||] (Mismatch_array.shift_table t 0)

let test_r_tables_limit () =
  (* Tables hold at most k+2 entries. *)
  let t = Mismatch_array.build "tttttttttt" ~k:1 in
  (* shift 1 over aaaa... all-equal: no mismatches at all. *)
  check (Alcotest.array int) "periodic: none" [||] (Mismatch_array.shift_table t 1);
  let t2 = Mismatch_array.build "tgtgtgtgtg" ~k:1 in
  check int "capped at k+2" 3 (Array.length (Mismatch_array.shift_table t2 1))

let naive_shift r i ~limit =
  let m = String.length r in
  Mismatch_array.naive_pairwise (String.sub r 0 (m - i)) (String.sub r i (m - i)) ~limit

let prop_r_tables =
  Test_util.qtest ~count:300 "R_i = naive shift mismatches"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:2 ~hi:80 ()) (int_range 0 5))
    (fun (r, k) ->
      let t = Mismatch_array.build r ~k in
      let ok = ref true in
      for i = 1 to String.length r - 1 do
        if Mismatch_array.shift_table t i <> naive_shift r i ~limit:(k + 2) then
          ok := false
      done;
      !ok)

let test_merge_paper_example () =
  (* §IV.B: A1 = R_1 = [1;2;3;4], A2 = R_3... the paper merges
     A1 = [1;2;3;4], A2 = [1;3] with beta = cacg, gamma = acg (overlap 3),
     yielding the mismatches of beta vs gamma over the joint coordinates.
     Here we check merge on the two full arrays exactly as printed:
     result [1;2;3;4] capped to the overlap handled by the caller. *)
  let beta x = "cacg".[x - 1] and gamma x = "acgg".[x - 1] in
  let merged =
    Mismatch_array.merge ~a1:[| 1; 2; 3; 4 |] ~a2:[| 1; 3 |] ~beta ~gamma ~limit:10
  in
  check (Alcotest.array int) "merge" [| 1; 2; 3; 4 |] merged

let test_merge_cancellation () =
  (* A position in both arrays where beta and gamma agree must vanish. *)
  let beta x = "aa".[x - 1] and gamma x = "aa".[x - 1] in
  let merged = Mismatch_array.merge ~a1:[| 1; 2 |] ~a2:[| 1; 2 |] ~beta ~gamma ~limit:10 in
  check (Alcotest.array int) "cancel" [||] merged

let prop_merge =
  (* alpha, beta, gamma random of equal length: merging the full mismatch
     arrays of (alpha,beta) and (alpha,gamma) gives those of (beta,gamma). *)
  Test_util.qtest ~count:400 "merge correctness"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:1 ~hi:60 ()) (Test_util.dna_gen ~lo:1 ~hi:60 ())
        (Test_util.dna_gen ~lo:1 ~hi:60 ()))
    (fun (a, b, c) ->
      let n = min (String.length a) (min (String.length b) (String.length c)) in
      let a = String.sub a 0 n and b = String.sub b 0 n and c = String.sub c 0 n in
      let full x y = Mismatch_array.naive_pairwise x y ~limit:n in
      let beta x = b.[x - 1] and gamma x = c.[x - 1] in
      Mismatch_array.merge ~a1:(full a b) ~a2:(full a c) ~beta ~gamma ~limit:n
      = full b c)

let prop_derive_rij =
  (* derive (the paper's R_ij via merge of truncated tables, plus our exact
     completion) must equal the direct computation. *)
  Test_util.qtest ~count:400 "derive = pairwise"
    QCheck2.Gen.(tup3 (Test_util.dna_gen ~lo:3 ~hi:60 ()) (int_range 0 4) (pair small_nat small_nat))
    (fun (r, k, (i0, j0)) ->
      let m = String.length r in
      let i = i0 mod (m - 1) in
      let j = i + 1 + (j0 mod (m - 1 - i)) in
      let t = Mismatch_array.build r ~k in
      Mismatch_array.derive t ~i ~j
      = Mismatch_array.pairwise_lce t ~i ~j ~limit:(k + 2))

let test_mismatch_array_validation () =
  (match Mismatch_array.build "" ~k:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pattern");
  (match Mismatch_array.build "acg" ~k:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative k");
  let t = Mismatch_array.build "acg" ~k:1 in
  match Mismatch_array.shift_table t 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shift out of range"

(* ------------------------------------------------------------------ *)
(* Engine agreement                                                    *)

let oracle ~pattern ~text ~k = Stringmatch.Hamming.search ~pattern ~text ~k

let paper_target = "acagaca"
let paper_index = lazy (Kmismatch.build_index paper_target)

let test_paper_running_example () =
  (* §IV.A: r = tcaca, s = acagaca, k = 2 has exactly the two occurrences
     s[1..5] and s[3..7] (1-based), i.e. 0-based positions 0 and 2. *)
  let idx = Lazy.force paper_index in
  List.iter
    (fun engine ->
      let got = Kmismatch.search idx ~engine ~pattern:"tcaca" ~k:2 in
      check hits
        ("paper example via " ^ Kmismatch.engine_name engine)
        [ (0, 2); (2, 2) ] got)
    (Kmismatch.all_engines ())

let test_intro_example () =
  (* §I: r = aaaaacaaac in s = ccacacagaagcc at position 2 (0-based) with
     exactly 4 mismatches. *)
  let idx = Kmismatch.build_index "ccacacagaagcc" in
  List.iter
    (fun engine ->
      let got = Kmismatch.search idx ~engine ~pattern:"aaaaacaaac" ~k:4 in
      check bool
        ("intro example via " ^ Kmismatch.engine_name engine)
        true
        (List.mem (2, 4) got))
    (Kmismatch.all_engines ())

let engines_under_test = (Kmismatch.all_engines ())

let agreement_case ~count ~tlo ~thi ~plo ~phi ~kmax name =
  let gen =
    QCheck2.Gen.(
      tup3
        (Test_util.dna_gen ~lo:tlo ~hi:thi ())
        (Test_util.dna_gen ~lo:plo ~hi:phi ())
        (int_range 0 kmax))
  in
  List.map
    (fun engine ->
      Test_util.qtest ~count
        (Printf.sprintf "%s: %s = oracle" name (Kmismatch.engine_name engine))
        gen
        (fun (text, pattern, k) ->
          let idx = Kmismatch.build_index text in
          Kmismatch.search idx ~engine ~pattern ~k = oracle ~pattern ~text ~k))
    engines_under_test

(* Planted occurrences: mutate a window of the text into the pattern with
   <= k errors so that matches are guaranteed to exist. *)
let gen_planted =
  QCheck2.Gen.(
    tup4 (Test_util.dna_gen ~lo:30 ~hi:300 ()) (int_range 5 20) (int_range 0 5)
      (pair small_nat small_nat)
    >|= fun (text, m, k, (pos0, seed)) ->
    let n = String.length text in
    let m = min m n in
    let pos = pos0 mod (n - m + 1) in
    let st = Random.State.make [| seed |] in
    let pat = Bytes.of_string (String.sub text pos m) in
    let errors = if k = 0 then 0 else Random.State.int st (k + 1) in
    for _ = 1 to errors do
      let off = Random.State.int st m in
      Bytes.set pat off [| 'a'; 'c'; 'g'; 't' |].(Random.State.int st 4)
    done;
    (text, Bytes.to_string pat, k))

let planted_agreement =
  List.map
    (fun engine ->
      Test_util.qtest ~count:200
        (Printf.sprintf "planted: %s = oracle" (Kmismatch.engine_name engine))
        gen_planted
        (fun (text, pattern, k) ->
          let idx = Kmismatch.build_index text in
          Kmismatch.search idx ~engine ~pattern ~k = oracle ~pattern ~text ~k))
    engines_under_test

(* Repetitive texts are where derivations actually fire; build them from a
   small alphabet of repeated unit strings. *)
let gen_repetitive =
  QCheck2.Gen.(
    tup4 (Test_util.dna_gen ~lo:2 ~hi:6 ()) (int_range 5 40)
      (Test_util.dna_gen ~lo:3 ~hi:12 ())
      (int_range 0 4)
    >|= fun (unit_str, reps, pattern, k) ->
    let text = String.concat "" (List.init reps (fun _ -> unit_str)) in
    (text, pattern, k))

let repetitive_agreement =
  List.map
    (fun engine ->
      Test_util.qtest ~count:300
        (Printf.sprintf "repetitive: %s = oracle" (Kmismatch.engine_name engine))
        gen_repetitive
        (fun (text, pattern, k) ->
          let idx = Kmismatch.build_index text in
          Kmismatch.search idx ~engine ~pattern ~k = oracle ~pattern ~text ~k))
    engines_under_test

let test_edge_cases () =
  let idx = Kmismatch.build_index "acgtacgt" in
  List.iter
    (fun engine ->
      let name = Kmismatch.engine_name engine in
      (* pattern longer than text *)
      check hits (name ^ ": long pattern") []
        (Kmismatch.search idx ~engine ~pattern:"acgtacgtacgt" ~k:3);
      (* k = 0 equals exact matching *)
      check hits (name ^ ": k=0") [ (0, 0); (4, 0) ]
        (Kmismatch.search idx ~engine ~pattern:"acgt" ~k:0);
      (* k >= m: every window matches *)
      check int (name ^ ": k>=m") 6
        (List.length (Kmismatch.search idx ~engine ~pattern:"ttt" ~k:3));
      (* whole text as pattern *)
      check hits (name ^ ": whole text") [ (0, 0) ]
        (Kmismatch.search idx ~engine ~pattern:"acgtacgt" ~k:1))
    (Kmismatch.all_engines ())

let test_validation () =
  let idx = Kmismatch.build_index "acgt" in
  List.iter
    (fun engine ->
      (match Kmismatch.search idx ~engine ~pattern:"" ~k:1 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "empty pattern accepted");
      (match Kmismatch.search idx ~engine ~pattern:"ac" ~k:(-1) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative k accepted");
      match Kmismatch.search idx ~engine ~pattern:"anc" ~k:1 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad character accepted")
    (Kmismatch.all_engines ())

let test_pattern_case_normalized () =
  let idx = Kmismatch.build_index "ACGTacgt" in
  check hits "uppercase pattern" [ (0, 0); (4, 0) ]
    (Kmismatch.search idx ~engine:Kmismatch.M_tree ~pattern:"ACGT" ~k:0)

(* ------------------------------------------------------------------ *)
(* M-tree specifics                                                    *)

let test_m_tree_chain_skip_equivalence =
  Test_util.qtest ~count:300 "m-tree: chain_skip on = off" gen_repetitive
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      let with_skip =
        Kmismatch.search ~config:{ M_tree.default_config with M_tree.chain_skip = true } idx
          ~engine:Kmismatch.M_tree ~pattern ~k
      in
      let without =
        Kmismatch.search ~config:{ M_tree.default_config with M_tree.chain_skip = false } idx
          ~engine:Kmismatch.M_tree ~pattern ~k
      in
      with_skip = without)

let test_m_tree_derivations_fire () =
  (* On a repetitive genome the hash table must hit: derivations > 0. *)
  let text = String.concat "" (List.init 60 (fun _ -> "acgtagct")) in
  let idx = Kmismatch.build_index text in
  let stats = Stats.create () in
  ignore (Kmismatch.search ~stats idx ~engine:Kmismatch.M_tree ~pattern:"acgtagctacgt" ~k:2);
  check bool "derivations fired" true (stats.Stats.derivations > 0)

let test_m_tree_cheaper_than_s_tree () =
  (* The headline claim: Algorithm A spends fewer rank operations than the
     plain BWT search on repetitive texts. *)
  let text =
    String.concat "" (List.init 100 (fun i -> if i mod 7 = 0 then "acgtacct" else "acgtagct"))
  in
  let idx = Kmismatch.build_index text in
  let pattern = "acgtagctacgtagct" in
  let s_stats = Stats.create () and m_stats = Stats.create () in
  let s_res = Kmismatch.search ~stats:s_stats idx ~engine:Kmismatch.S_tree_no_delta ~pattern ~k:3 in
  let m_res = Kmismatch.search ~stats:m_stats idx ~engine:Kmismatch.M_tree ~pattern ~k:3 in
  check hits "same results" s_res m_res;
  check bool
    (Printf.sprintf "fewer rank calls (m=%d s=%d)" m_stats.Stats.rank_calls
       s_stats.Stats.rank_calls)
    true
    (m_stats.Stats.rank_calls < s_stats.Stats.rank_calls)

let test_s_tree_delta_soundness =
  (* The delta heuristic must never prune a real occurrence. *)
  Test_util.qtest ~count:200 "delta pruning sound" gen_planted
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      Kmismatch.search idx ~engine:Kmismatch.S_tree ~pattern ~k
      = Kmismatch.search idx ~engine:Kmismatch.S_tree_no_delta ~pattern ~k)

let test_delta_heuristic_paper_example () =
  (* §IV.A: r = tcaca over s = acagaca: delta(1) = 2 (t absent; cac
     absent), delta(3) = 0 (every substring of aca occurs). *)
  let idx = Kmismatch.build_index "acagaca" in
  let delta = S_tree.delta_heuristic (Kmismatch.fm_rev idx) ~pattern:"tcaca" in
  check int "delta(1)" 2 delta.(1);
  check int "delta(3)" 0 delta.(3)

(* ------------------------------------------------------------------ *)
(* Amir specifics                                                      *)

let test_amir_blocks () =
  let bs = Amir.blocks ~pattern:"acgtacgtacgtacgt" ~k:2 in
  check int "2k blocks" 4 (List.length bs);
  List.iter (fun (_, b) -> check int "block length" 4 (String.length b)) bs;
  check (Alcotest.list int) "offsets" [ 0; 4; 8; 12 ] (List.map fst bs);
  (* Too short for useful blocks: fall back. *)
  check int "fallback" 0 (List.length (Amir.blocks ~pattern:"acg" ~k:2))

(* ------------------------------------------------------------------ *)
(* Read-mapping integration                                            *)

let test_read_mapping_end_to_end () =
  (* Simulate reads; every read with <= k errors must be recovered at its
     origin by every engine. *)
  let genome =
    Dna.Genome_gen.generate { Dna.Genome_gen.default with size = 4000; seed = 77 }
  in
  let idx = Kmismatch.of_sequence genome in
  let reads =
    Dna.Read_sim.simulate
      { Dna.Read_sim.default with count = 40; len = 60; error_rate = 0.03; seed = 8 }
      genome
  in
  let k = 4 in
  List.iter
    (fun r ->
      if r.Dna.Read_sim.errors <= k then begin
        let pattern = Dna.Sequence.to_string (Dna.Read_sim.forward_pattern r) in
        List.iter
          (fun engine ->
            let found = Kmismatch.search idx ~engine ~pattern ~k in
            check bool
              (Printf.sprintf "read %d found by %s" r.Dna.Read_sim.id
                 (Kmismatch.engine_name engine))
              true
              (List.mem_assoc r.Dna.Read_sim.origin found
              && List.assoc r.Dna.Read_sim.origin found = r.Dna.Read_sim.errors))
          [ Kmismatch.M_tree; Kmismatch.S_tree; Kmismatch.Cole; Kmismatch.Amir ]
      end)
    reads

let () =
  Alcotest.run "core"
    [
      ( "mismatch_array",
        [
          Alcotest.test_case "paper R tables" `Quick test_r_tables_paper_example;
          Alcotest.test_case "table limits" `Quick test_r_tables_limit;
          Alcotest.test_case "merge paper example" `Quick test_merge_paper_example;
          Alcotest.test_case "merge cancellation" `Quick test_merge_cancellation;
          Alcotest.test_case "validation" `Quick test_mismatch_array_validation;
          prop_r_tables;
          prop_merge;
          prop_derive_rij;
        ] );
      ( "paper_examples",
        [
          Alcotest.test_case "running example (tcaca)" `Quick test_paper_running_example;
          Alcotest.test_case "intro example" `Quick test_intro_example;
          Alcotest.test_case "delta heuristic" `Quick test_delta_heuristic_paper_example;
        ] );
      ("agreement_random", agreement_case ~count:150 ~tlo:0 ~thi:200 ~plo:1 ~phi:12 ~kmax:4 "random");
      ("agreement_planted", planted_agreement);
      ("agreement_repetitive", repetitive_agreement);
      ( "edge_cases",
        [
          Alcotest.test_case "edges" `Quick test_edge_cases;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "case normalization" `Quick test_pattern_case_normalized;
        ] );
      ( "m_tree",
        [
          test_m_tree_chain_skip_equivalence;
          Alcotest.test_case "derivations fire" `Quick test_m_tree_derivations_fire;
          Alcotest.test_case "fewer rank calls" `Quick test_m_tree_cheaper_than_s_tree;
          test_s_tree_delta_soundness;
        ] );
      ("amir", [ Alcotest.test_case "blocks" `Quick test_amir_blocks ]);
      ( "integration",
        [ Alcotest.test_case "read mapping end to end" `Quick test_read_mapping_end_to_end ] );
    ]
