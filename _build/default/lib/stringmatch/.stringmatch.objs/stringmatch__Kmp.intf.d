lib/stringmatch/kmp.mli:
