(* Experiment harness.  With no argument every experiment runs in paper
   order; otherwise each argument names one experiment:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table2 fig11a   # a selection

   Machine-runnable benchmarks (rank-locate, map-throughput, serve) come
   from [Bench_registry] — the same dispatch table `kmm bench` uses — so
   the two entry points can never drift apart; the paper-reproduction
   experiments and the bechamel micro suite stay local to this harness. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("index-size", Experiments.index_size);
    ("table2", Experiments.table2);
    ("fig11a", Experiments.fig11a);
    ("fig11b", Experiments.fig11b);
    ("fig12", Experiments.fig12);
    ("fig13", Experiments.fig13);
    ("ablation", Experiments.ablation);
    ("deriv-stress", Experiments.deriv_stress);
    ("micro", Micro.run);
  ]
  @ List.map
      (fun e ->
        ( e.Bench_registry.name,
          fun () -> e.Bench_registry.run Bench_registry.default_ctx ))
      Bench_registry.all

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" name
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf
    "BWT Arrays and Mismatching Trees (ICDE'17) - experiment harness\n";
  Printf.printf "(laptop-scaled synthetic workloads; see DESIGN.md and EXPERIMENTS.md)\n";
  List.iter
    (fun (name, f) ->
      let dt = Bench_util.time_unit f in
      Printf.printf "  [%s finished in %s]\n%!" name (Bench_util.fmt_time dt))
    selected
