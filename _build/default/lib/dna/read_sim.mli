(** wgsim-style read simulation.

    The paper simulates reads with the [wgsim] program from SAMtools
    ("default model for single reads").  This module reproduces that model's
    essentials: reads sampled uniformly from the genome, a per-base
    substitution-error rate (wgsim default 2%), and an optional
    reverse-complement strand flip. *)

type read = {
  id : int;
  seq : Sequence.t;  (** the read as sequenced (possibly revcomp'd) *)
  origin : int;  (** 0-based start position on the forward strand *)
  forward : bool;  (** true if sampled from the forward strand *)
  errors : int;  (** number of substitution errors injected *)
}

type config = {
  count : int;  (** number of reads *)
  len : int;  (** read length *)
  error_rate : float;  (** per-base substitution probability *)
  both_strands : bool;  (** sample reverse-complement reads too *)
  seed : int;
}

val default : config
(** 500 reads of length 100, 2% errors, forward strand only, seed 7. *)

val simulate : config -> Sequence.t -> read list
(** [simulate cfg genome] draws [cfg.count] reads.  Raises
    [Invalid_argument] if the genome is shorter than the read length or the
    configuration is nonsensical. *)

val forward_pattern : read -> Sequence.t
(** The read expressed on the forward strand, i.e. the pattern whose
    occurrence at [origin] has exactly [errors] mismatches. *)
