lib/fmindex/occ.mli:
