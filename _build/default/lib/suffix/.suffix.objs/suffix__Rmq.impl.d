lib/suffix/rmq.ml: Array Printf
