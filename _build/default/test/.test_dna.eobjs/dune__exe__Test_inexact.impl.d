test/test_inexact.ml: Alcotest Array Hamming Levenshtein List Naive QCheck2 Rabin_karp Shift_or String Stringmatch Test_util Wildcard
