(* kmm — k-mismatch matcher: command-line front end for the library.

   Subcommands:
     generate   synthesize a genome (FASTA)
     simulate   sample wgsim-style reads from a genome (FASTA)
     index      build and save an FM-index of a genome
     verify     check an index file's integrity (typed exit codes)
     search     find a pattern in a genome with at most k mismatches
     map        map a read file against a genome
     serve      long-running query daemon on a Unix socket
     client     query a running kmm serve daemon
     fuzz       differential-fuzz all engines against the naive oracle
     bench      micro-benchmarks (shared dispatch table with bench/main.exe)
     bwt        print the BWT of a text (demonstration)                 *)

open Cmdliner

(* Typed failures carry their own process exit code (see
   [Kmm_error.exit_code]), so scripts can distinguish a corrupt index
   (6) from a truncated one (5) or a malformed FASTA file (2). *)
let fail_typed ?path e =
  Format.eprintf "kmm: %s%s@."
    (match path with None -> "" | Some p -> p ^ ": ")
    (Kmm_error.to_string e);
  exit (Kmm_error.exit_code e)

let read_genome path =
  match Dna.Fasta.try_read_file path with
  | Error e -> fail_typed ~path e
  | Ok [] -> fail_typed ~path (Kmm_error.Bad_input "no FASTA records")
  | Ok (r :: _) -> r.Dna.Fasta.seq

(* Every record of a FASTA file, concatenated — the corpus view a
   sharded index is built over. *)
let read_genome_all path =
  match Dna.Fasta.try_read_file path with
  | Error e -> fail_typed ~path e
  | Ok [] -> fail_typed ~path (Kmm_error.Bad_input "no FASTA records")
  | Ok records ->
      String.concat ""
        (List.map (fun r -> Dna.Sequence.to_string r.Dna.Fasta.seq) records)

(* Either a FASTA genome (indexed on the fly) or a prebuilt .fmi index /
   .fmi manifest; [--mmap] adopts prebuilt index files in place. *)
let obtain_corpus ~mmap ~genome ~index_file =
  let mode = if mmap then Some Fmindex.Fm_index.Mmap else None in
  match (genome, index_file) with
  | _, Some path -> (
      match Core.Corpus.try_load ?mode path with
      | Ok c -> c
      | Error e -> fail_typed ~path e)
  | Some path, None ->
      Core.Corpus.mono (Core.Kmismatch.of_sequence (read_genome path))
  | None, None -> failwith "one of --genome or --index is required"

(* --- observability plumbing ----------------------------------------- *)

(* [--trace FILE] and [--metrics-out FILE] arm an active sink (and the
   FM-index telemetry hook) for the duration of the command and write
   the exporters on the way out — even if the command raises.  Without
   either flag the command runs on [Obs.noop] and pays nothing. *)
let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (load it in \
           Perfetto or about://tracing).")

let metrics_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write counters and latency histograms to $(docv) in the Prometheus \
           text exposition format.")

let with_obs ~trace ~metrics_out f =
  match (trace, metrics_out) with
  | None, None -> f Obs.noop
  | _ ->
      let obs = Obs.create ~trace:(trace <> None) () in
      Fmindex.Fm_index.Telemetry.set_enabled true;
      Fmindex.Packed_text.Telemetry.set_enabled true;
      let finish () =
        Fmindex.Fm_index.Telemetry.set_enabled false;
        Fmindex.Packed_text.Telemetry.set_enabled false;
        Option.iter (Obs.write_chrome_trace ~process_name:"kmm" obs) trace;
        Option.iter (Obs.write_prometheus obs) metrics_out
      in
      Fun.protect ~finally:finish (fun () -> f obs)

let pp_timings ppf timings =
  List.iter (fun (name, s) -> Format.fprintf ppf " %s=%.4fs" name s) timings

let genome_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "g"; "genome" ] ~docv:"FASTA" ~doc:"Genome FASTA file.")

let index_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "i"; "index" ] ~docv:"FMI"
        ~doc:"Prebuilt index or shard manifest (see kmm index).")

let mmap_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "mmap" ]
        ~doc:
          "Memory-map a prebuilt --index instead of copying it to the heap: \
           cold start skips the O(n) payload verification and the OS shares \
           the pages across processes.  Run kmm verify when integrity must \
           be proven.  Ignored without --index (and for v1-v3 files, which \
           load by copy).")

(* --- generate ------------------------------------------------------- *)

let generate_cmd =
  let run size seed repeat_fraction repeat_unit divergence rec_name out =
    let profile =
      {
        Dna.Genome_gen.size;
        repeat_fraction;
        repeat_unit_len = repeat_unit;
        divergence;
        seed;
      }
    in
    let genome = Dna.Genome_gen.generate profile in
    let record = { Dna.Fasta.name = rec_name; seq = genome } in
    (match out with
    | None -> print_string (Dna.Fasta.to_string [ record ])
    | Some path -> Dna.Fasta.write_file path [ record ]);
    `Ok ()
  in
  let size =
    Arg.(value & opt int 100_000 & info [ "size" ] ~docv:"N" ~doc:"Genome length.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let rf =
    Arg.(
      value & opt float 0.3
      & info [ "repeat-fraction" ] ~doc:"Fraction covered by planted repeats.")
  in
  let ru =
    Arg.(value & opt int 300 & info [ "repeat-unit" ] ~doc:"Repeat unit length.")
  in
  let div =
    Arg.(value & opt float 0.02 & info [ "divergence" ] ~doc:"Repeat copy divergence.")
  in
  let rec_name = Arg.(value & opt string "synthetic" & info [ "name" ] ~doc:"Record name.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output FASTA.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a repeat-bearing genome")
    Term.(ret (const run $ size $ seed $ rf $ ru $ div $ rec_name $ out))

(* --- simulate ------------------------------------------------------- *)

let simulate_cmd =
  let run genome count len error_rate both seed out =
    let g = read_genome genome in
    let cfg = { Dna.Read_sim.count; len; error_rate; both_strands = both; seed } in
    let reads = Dna.Read_sim.simulate cfg g in
    let records =
      List.map
        (fun r ->
          {
            Dna.Fasta.name =
              Printf.sprintf "read%d origin=%d strand=%c errors=%d" r.Dna.Read_sim.id
                r.Dna.Read_sim.origin
                (if r.Dna.Read_sim.forward then '+' else '-')
                r.Dna.Read_sim.errors;
            seq = r.Dna.Read_sim.seq;
          })
        reads
    in
    (match out with
    | None -> print_string (Dna.Fasta.to_string records)
    | Some path -> Dna.Fasta.write_file path records);
    `Ok ()
  in
  let genome =
    Arg.(required & opt (some string) None & info [ "g"; "genome" ] ~docv:"FASTA" ~doc:"Genome.")
  in
  let count = Arg.(value & opt int 500 & info [ "n"; "count" ] ~doc:"Number of reads.") in
  let len = Arg.(value & opt int 100 & info [ "l"; "length" ] ~doc:"Read length.") in
  let er = Arg.(value & opt float 0.02 & info [ "e"; "error-rate" ] ~doc:"Substitution rate.") in
  let both = Arg.(value & flag & info [ "both-strands" ] ~doc:"Sample both strands.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output FASTA.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate wgsim-style reads")
    Term.(ret (const run $ genome $ count $ len $ er $ both $ seed $ out))

(* --- search --------------------------------------------------------- *)

let engine_conv =
  (* The accepted spellings and the error text both come from the engine
     registry, so a newly registered engine is immediately usable on the
     command line with no change here. *)
  let parse s =
    match Core.Kmismatch.engine_of_string_err s with
    | Ok e -> Ok e
    | Error err -> Error (`Msg (Kmm_error.to_string err))
  in
  Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (Core.Kmismatch.engine_name e))

let engine_arg =
  let doc =
    Printf.sprintf "Search engine; one of %s (dashes and underscores both accepted)."
      (String.concat ", " (Core.Kmismatch.engine_names ()))
  in
  Arg.(value & opt engine_conv Core.Kmismatch.M_tree & info [ "engine" ] ~doc)

let search_cmd =
  let run genome index_file mmap pattern k engine verbose trace metrics_out =
    let corpus = obtain_corpus ~mmap ~genome ~index_file in
    with_obs ~trace ~metrics_out (fun obs ->
        let r =
          (* The typed channel: an empty/non-ACGT pattern, k < 0, or a
             pattern exceeding a sharded corpus's query limit exits with
             the Bad_input code (2) instead of an uncaught exception
             backtrace. *)
          match
            Core.Corpus.try_run corpus
              (Core.Kmismatch.Query.make ~obs ~engine ~pattern ~k ())
          with
          | Ok r -> r
          | Error e -> fail_typed e
        in
        let hits = r.Core.Kmismatch.Response.hits in
        List.iter (fun (pos, d) -> Printf.printf "%d\t%d\n" pos d) hits;
        if verbose then
          Format.eprintf "engine=%s hits=%d%a %a@."
            (Core.Kmismatch.engine_name engine)
            (List.length hits) pp_timings r.Core.Kmismatch.Response.timings
            Core.Stats.pp r.Core.Kmismatch.Response.stats);
    `Ok ()
  in
  let pattern =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATTERN" ~doc:"Pattern (ACGT).")
  in
  let k = Arg.(value & opt int 0 & info [ "k" ] ~doc:"Mismatch budget.") in
  let engine = engine_arg in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print statistics.") in
  Cmd.v
    (Cmd.info "search" ~doc:"String matching with k mismatches")
    Term.(
      ret
        (const run $ genome_arg $ index_arg $ mmap_arg $ pattern $ k $ engine
       $ verbose $ trace_arg $ metrics_arg))

(* --- map ------------------------------------------------------------ *)

let map_cmd =
  let run genome index_file mmap reads k engine both_strands best jobs trace
      metrics_out =
    if jobs < 1 then failwith "--jobs must be >= 1";
    let corpus = obtain_corpus ~mmap ~genome ~index_file in
    let records =
      match Dna.Fasta.try_read_file reads with
      | Ok rs -> rs
      | Error e -> fail_typed ~path:reads e
    in
    let inputs =
      List.mapi (fun i r -> (i, Dna.Sequence.to_string r.Dna.Fasta.seq)) records
    in
    with_obs ~trace ~metrics_out (fun obs ->
        let options =
          { Core.Mapper.default with engine; both_strands; domains = jobs; obs }
        in
        let hits, summary =
          Core.Mapper.run_target options (Core.Corpus.target corpus)
            ~reads:inputs ~k
        in
        let hits = if best then Core.Mapper.best_hits hits else hits in
        print_string (Core.Mapper.to_tsv hits);
        Format.eprintf
          "mapped %d/%d reads (%d unique, %d ambiguous, %d skipped; k=%d, \
           engine=%s, jobs=%d;%a)@."
          summary.Core.Mapper.mapped summary.Core.Mapper.total
          summary.Core.Mapper.unique summary.Core.Mapper.ambiguous
          (List.length summary.Core.Mapper.skipped)
          k
          (Core.Kmismatch.engine_name engine)
          jobs pp_timings summary.Core.Mapper.timings;
        (* Fail-soft: bad reads are reported, not fatal. *)
        List.iter
          (fun (id, e) ->
            Format.eprintf "skipped read %d: %s@." id (Kmm_error.to_string e))
          summary.Core.Mapper.skipped);
    `Ok ()
  in
  let reads =
    Arg.(required & opt (some string) None & info [ "r"; "reads" ] ~docv:"FASTA" ~doc:"Reads.")
  in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Mismatch budget.") in
  let engine = engine_arg in
  let both =
    Arg.(value & opt bool true & info [ "both-strands" ] ~doc:"Search both strands.")
  in
  let best = Arg.(value & flag & info [ "best" ] ~doc:"Keep only minimal-distance hits.") in
  let jobs =
    Arg.(
      value
      & opt int (Core.Work_pool.default_domains ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains to map with (default: the number of cores). Output \
             is byte-identical for every N; N=1 is the sequential path.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Map a read set against a genome")
    Term.(
      ret
        (const run $ genome_arg $ index_arg $ mmap_arg $ reads $ k $ engine
       $ both $ best $ jobs $ trace_arg $ metrics_arg))

(* --- index ---------------------------------------------------------- *)

let index_cmd =
  let run genome out shard_size overlap jobs =
    if jobs < 1 then failwith "--jobs must be >= 1";
    (match shard_size with
    | Some s when s < 1 -> failwith "--shard-size must be >= 1"
    | _ -> ());
    if overlap < 0 then failwith "--shard-overlap must be >= 0";
    let corpus =
      match shard_size with
      | None ->
          Core.Corpus.mono (Core.Kmismatch.of_sequence (read_genome genome))
      | Some _ ->
          (* Sharded corpora index every FASTA record, concatenated. *)
          Core.Corpus.build ?shard_size ~overlap ~domains:jobs
            (read_genome_all genome)
    in
    Core.Corpus.save corpus out;
    (match Core.Corpus.overlap corpus with
    | None ->
        Format.eprintf "indexed %d bp -> %s@." (Core.Corpus.length corpus) out
    | Some ov ->
        Format.eprintf "indexed %d bp -> %s (%d shard%s, overlap %d)@."
          (Core.Corpus.length corpus)
          out
          (Core.Corpus.nshards corpus)
          (if Core.Corpus.nshards corpus = 1 then "" else "s")
          ov);
    `Ok ()
  in
  let genome =
    Arg.(required & opt (some string) None & info [ "g"; "genome" ] ~docv:"FASTA" ~doc:"Genome.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FMI"
          ~doc:"Index file (with --shard-size: the manifest; shard files land beside it).")
  in
  let shard_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-size" ] ~docv:"N"
          ~doc:
            "Split the corpus into shards of $(docv) bp, indexed in parallel \
             and tied together by a manifest.  Every FASTA record is indexed \
             (concatenated); without this flag only the first record is, as \
             a single monolithic index.")
  in
  let overlap =
    Arg.(
      value
      & opt int Core.Corpus.default_overlap
      & info [ "shard-overlap" ] ~docv:"N"
          ~doc:
            "Bases each shard stores beyond its own range so boundary-straddling \
             matches are found; queries longer than N+1 bp are refused.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Core.Work_pool.default_domains ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains building shards (default: the number of cores).")
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build and save an FM-index of a genome"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the FM-index and writes it in the current on-disk format \
              (v4: 8-byte-aligned CRC-guarded sections, loadable by copy or by \
              mmap).  With --shard-size the corpus is cut into overlapping \
              shards built in parallel across --jobs domains and saved as one \
              index file per shard plus a manifest; search/map/serve accept \
              the manifest wherever they accept an index.";
         ])
    Term.(ret (const run $ genome $ out $ shard_size $ overlap $ jobs))

(* --- verify --------------------------------------------------------- *)

let verify_cmd =
  let verify_plain path quiet =
    match Fmindex.Fm_index.try_load path with
    | Error e -> fail_typed ~path e
    | Ok fm ->
        if not quiet then begin
          Printf.printf "%s: ok (%d bp)\n" path (Fmindex.Fm_index.length fm);
          List.iter
            (fun (what, bytes) -> Printf.printf "  %-26s %d bytes\n" what bytes)
            (Fmindex.Fm_index.space_report fm)
        end
  in
  let verify_manifest path quiet =
    match Core.Corpus.try_read_manifest path with
    | Error e -> fail_typed ~path e
    | Ok m ->
        let dir = Filename.dirname path in
        if not quiet then
          Printf.printf "%s: manifest ok (%d bp corpus, %d shard%s, overlap %d)\n"
            path m.Core.Corpus.m_total
            (Array.length m.Core.Corpus.m_entries)
            (if Array.length m.Core.Corpus.m_entries = 1 then "" else "s")
            m.Core.Corpus.m_overlap;
        Array.iteri
          (fun i e ->
            let file = Filename.concat dir e.Core.Corpus.e_file in
            let image =
              match In_channel.with_open_bin file In_channel.input_all with
              | s -> s
              | exception (Sys_error _ as exn) ->
                  fail_typed ~path:file (Kmm_error.Io exn)
            in
            (* The manifest's own CRC of the shard image: catches a shard
               file swapped or rewritten behind the manifest's back, which
               the shard's internal CRCs alone cannot. *)
            if Fmindex.Crc32.string image <> e.Core.Corpus.e_crc then
              fail_typed ~path:file
                (Kmm_error.Corrupt
                   ( Kmm_error.Header,
                     "shard image checksum disagrees with the manifest" ));
            match Fmindex.Fm_index.try_of_string image with
            | Error err -> fail_typed ~path:file err
            | Ok fm ->
                if Fmindex.Fm_index.length fm <> e.Core.Corpus.e_stored then
                  fail_typed ~path:file
                    (Kmm_error.Corrupt
                       ( Kmm_error.Header,
                         "shard length disagrees with the manifest" ));
                if not quiet then
                  Printf.printf "  shard %03d: ok (%d bp at offset %d, %s)\n" i
                    e.Core.Corpus.e_stored e.Core.Corpus.e_off
                    e.Core.Corpus.e_file)
          m.Core.Corpus.m_entries
  in
  let run index_file quiet =
    if Core.Corpus.is_manifest index_file then verify_manifest index_file quiet
    else verify_plain index_file quiet;
    `Ok ()
  in
  let index_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FMI" ~doc:"Index file or shard manifest.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Exit code only.") in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check an index or manifest file's integrity"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Loads the index by copy, checking magic, version, header sanity, \
              per-section CRC-32 checksums, the whole-file trailer and the \
              structural recount (format v4; v1-v3 files are validated by their \
              own formats' checks) — everything an mmap load deliberately skips. \
              Given a shard manifest, validates the manifest (header CRC, shard \
              geometry) and then every shard file against both the manifest's \
              recorded CRC-32 and the shard's own internal checks.  Prints a \
              space report on success.  The exit code distinguishes the failure: \
              0 ok, 3 not an index file, 4 unsupported version, 5 truncated, 6 \
              corrupt, 7 I/O error.";
         ])
    Term.(ret (const run $ index_file $ quiet))

(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let run seed iters max_text replay corpus_out verbose =
    let module O = Core.Oracle in
    (* 1. Replay the regression corpus (if present / requested). *)
    let replay_failures =
      match replay with
      | None -> 0
      | Some dir ->
          let per_file = O.replay_dir dir in
          List.iter
            (fun (path, divs) ->
              if divs = [] then begin
                if verbose then Format.eprintf "replay %s: ok@." path
              end
              else
                List.iter
                  (fun d -> Format.eprintf "replay %s:@ %a@." path O.pp_divergence d)
                  divs)
            per_file;
          Format.eprintf "replayed %d corpus case(s), %d divergence(s)@."
            (List.length per_file)
            (List.fold_left (fun a (_, ds) -> a + List.length ds) 0 per_file);
          List.fold_left (fun a (_, ds) -> a + List.length ds) 0 per_file
    in
    (* 2. Fresh fuzzing. *)
    let progress =
      if verbose then
        Some (fun i -> if i mod 500 = 0 then Format.eprintf "... %d iterations@." i)
      else None
    in
    let t0 = Unix.gettimeofday () in
    let report = O.fuzz ?progress ~seed ~iters ~max_text () in
    let dt = Unix.gettimeofday () -. t0 in
    if verbose then
      List.iter
        (fun (cls, n) -> Format.eprintf "  class %-12s %d case(s)@." cls n)
        report.O.by_class;
    List.iter
      (fun d ->
        Format.printf "%a@." O.pp_divergence d;
        match corpus_out with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let file =
              Filename.concat dir
                (Printf.sprintf "shrunk-%s-%08x.case" d.O.div_subject
                   (Hashtbl.hash (d.O.div_case, seed)))
            in
            O.save_case
              ~comment:
                [
                  Printf.sprintf "shrunk reproducer: engine %s (kmm fuzz --seed %d --iters %d)"
                    d.O.div_subject seed iters;
                ]
              file d.O.div_case;
            Format.eprintf "wrote %s@." file)
      report.O.divergences;
    Format.eprintf "fuzz: %d iteration(s), %d divergence(s), seed %d, %.2fs@."
      report.O.iters_run
      (List.length report.O.divergences)
      seed dt;
    if report.O.divergences = [] && replay_failures = 0 then `Ok ()
    else `Error (false, "engines diverge from the naive oracle (see above)")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (runs are reproducible).") in
  let iters = Arg.(value & opt int 2000 & info [ "iters" ] ~doc:"Number of generated cases.") in
  let max_text =
    Arg.(value & opt int 160 & info [ "max-text" ] ~docv:"N" ~doc:"Maximum generated text length.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR" ~doc:"Replay every *.case file in $(docv) first.")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-out" ] ~docv:"DIR"
          ~doc:"Write shrunk reproducers of any divergence to $(docv) as .case files.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress and class counts.") in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: every engine vs. the naive oracle"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generates seeded random and adversarial (text, pattern, k) cases \
              (periodic texts, homopolymer runs, near-full-length patterns, k = 0, \
              k >= m, single-character genomes, boundary-hugging windows, huge \
              budgets), runs every engine plus the online Kangaroo and bit-parallel \
              Shift-Add baselines, and compares against the naive O(mn) reference. \
              Any divergence is automatically shrunk to a minimal reproducer; use \
              --corpus-out to persist it for test/corpus replay.";
         ])
    Term.(ret (const run $ seed $ iters $ max_text $ replay $ corpus_out $ verbose))

(* --- bench ----------------------------------------------------------- *)

(* One dispatch table — [Bench_registry.all] — is shared with the
   bench/main.exe harness, and the "available:" text is derived from it,
   so the two entry points cannot drift apart again. *)
let bench_cmd =
  let run which out size seed connections queries jobs smoke trace metrics_out =
    match Bench_registry.find which with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown benchmark %S (available: %s)" which
              (Bench_registry.available ()) )
    | Some entry ->
        with_obs ~trace ~metrics_out (fun obs ->
            entry.Bench_registry.run
              {
                Bench_registry.obs;
                out;
                size;
                seed;
                connections;
                queries;
                jobs;
                smoke;
              });
        `Ok ()
  in
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH"
          ~doc:
            (Printf.sprintf "Benchmark to run (%s)." (Bench_registry.available ())))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "JSON log to append the record to (default: the benchmark's own \
             BENCH_*.json).")
  in
  let size =
    Arg.(
      value
      & opt (some int) None
      & info [ "size" ] ~docv:"N"
          ~doc:"Text length in bp (default: the benchmark's own).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let connections =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "connections" ] ~docv:"N,N,..."
          ~doc:"serve: concurrent connection counts to sweep.")
  in
  let queries =
    Arg.(
      value
      & opt int 2_000
      & info [ "queries" ] ~docv:"N" ~doc:"serve: queries per sweep point.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"serve: worker domains of the daemon (0 = all cores).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Headless parity mode: replay the benchmark's cross-checks only, \
             with no timing and no JSON record (honored by verify; other \
             benchmarks ignore it).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Micro-benchmarks with machine-readable logs"
       ~man:
         ([
            `S Manpage.s_description;
            `P
              "Benchmarks with machine-readable JSON logs, each cross-checking \
               its answers so a speedup can never hide a wrong result.  The \
               same dispatch table drives the bench/main.exe harness.";
          ]
         @ List.map
             (fun e ->
               `P
                 (Printf.sprintf "%s: %s" e.Bench_registry.name e.Bench_registry.doc))
             Bench_registry.all))
    Term.(
      ret
        (const run $ which $ out $ size $ seed $ connections $ queries $ jobs
       $ smoke $ trace_arg $ metrics_arg))

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let run genome index_file mmap socket jobs batch_max max_queue send_timeout
      max_pattern max_k max_hits max_frame quiet trace metrics_out =
    if jobs < 1 then failwith "--jobs must be >= 1";
    let corpus = obtain_corpus ~mmap ~genome ~index_file in
    let limits =
      { Kmm_server.Protocol.max_pattern; max_k; max_hits; max_frame }
    in
    let cfg =
      {
        (Kmm_server.Server.default_config ~socket_path:socket) with
        domains = jobs;
        batch_max;
        max_queue;
        send_timeout;
        limits;
        trace = trace <> None;
        log = (if quiet then ignore else fun line -> Format.eprintf "kmm serve: %s@." line);
      }
    in
    (match
       Kmm_server.Server.serve ?trace_out:trace ?metrics_out:metrics_out cfg
         corpus
     with
    | () -> ()
    | exception Kmm_error.Error e -> fail_typed e);
    `Ok ()
  in
  let socket =
    Arg.(
      value & opt string "kmm.sock"
      & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Core.Work_pool.default_domains ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains answering queries (default: the number of cores).")
  in
  let batch_max =
    Arg.(
      value & opt int 64
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Most queued queries dispatched onto the pool as one batch.")
  in
  let max_queue =
    Arg.(
      value & opt int 1024
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Bound on the admission queue; beyond it queries are shed \
             immediately with a typed \"server overloaded\" frame (code 10) \
             instead of growing the queue without limit.")
  in
  let send_timeout =
    Arg.(
      value & opt float 10.0
      & info [ "send-timeout" ] ~docv:"SEC"
          ~doc:
            "Whole-response send budget: a client that stops reading and \
             fails to drain a response within $(docv) seconds is dropped \
             (its connection only — the daemon keeps serving).")
  in
  let d = Kmm_server.Protocol.default_limits in
  let max_pattern =
    Arg.(
      value & opt int d.Kmm_server.Protocol.max_pattern
      & info [ "max-pattern" ] ~docv:"N" ~doc:"Reject patterns longer than $(docv) bp.")
  in
  let max_k =
    Arg.(
      value & opt int d.Kmm_server.Protocol.max_k
      & info [ "max-k" ] ~docv:"N" ~doc:"Reject mismatch budgets above $(docv).")
  in
  let max_hits =
    Arg.(
      value & opt int d.Kmm_server.Protocol.max_hits
      & info [ "max-hits" ] ~docv:"N"
          ~doc:"Truncate responses to $(docv) hits (flagged in the response).")
  in
  let max_frame =
    Arg.(
      value & opt int d.Kmm_server.Protocol.max_frame
      & info [ "max-frame" ] ~docv:"N" ~doc:"Reject request lines longer than $(docv) bytes.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No log lines on stderr.") in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve k-mismatch queries from a long-running daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Loads the index once and answers newline-JSON queries over a Unix \
              domain socket until SIGINT/SIGTERM (clean drain) — see the README \
              \"Serving\" section for the wire protocol.  Every request is \
              admitted against --max-pattern/--max-k/--max-hits/--max-frame and \
              rejected with a typed error frame instead of a crash; a client \
              disconnecting mid-response costs only that connection.  Queued \
              queries are batched across --jobs worker domains.  The \"metrics\" \
              command exposes live Prometheus metrics; --trace/--metrics-out \
              also write them on exit.";
         ])
    Term.(
      ret
        (const run $ genome_arg $ index_arg $ mmap_arg $ socket $ jobs
       $ batch_max $ max_queue $ send_timeout $ max_pattern $ max_k $ max_hits
       $ max_frame $ quiet $ trace_arg $ metrics_arg))

(* --- client ----------------------------------------------------------- *)

let client_cmd =
  let run socket pattern k engine ping metrics info shutdown timeout retries
      deadline verbose =
    let module C = Kmm_server.Server.Client in
    let module P = Kmm_server.Protocol in
    (* One full connect+request round.  With --retries > 0 the whole
       round — reconnect included — is retried on transient errors only
       (connection-level Io, typed Overloaded sheds), with capped
       jittered exponential backoff; Bad_input and Timeout never
       retry. *)
    let attempt op () =
      match C.try_connect ?timeout socket with
      | Error e -> Error e
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> C.close conn)
            (fun () ->
              match op conn with
              | Ok (P.Error_reply { code = 10; message; _ }) ->
                  (* A server-side shed becomes a typed Overloaded value
                     so the retry loop treats it exactly like a refused
                     connect. *)
                  Error (Kmm_error.Overloaded message)
              | r -> r)
    in
    let rpc op =
      let result =
        if retries > 0 then C.with_retry ~attempts:(retries + 1) (attempt op)
        else attempt op ()
      in
      match result with
      | Error e -> fail_typed e
      | Ok (P.Error_reply { code; message; _ }) ->
          Format.eprintf "kmm client: %s@." message;
          exit code
      | Ok r -> r
    in
    let field name fields =
      match List.assoc_opt name fields with
      | Some (P.Json.String s) -> s
      | _ -> ""
    in
    if ping then begin
      let t0 = Unix.gettimeofday () in
      match rpc (fun conn -> C.command conn "ping") with
      | P.Ok_obj _ ->
          Printf.printf "pong (%.2f ms)\n" ((Unix.gettimeofday () -. t0) *. 1e3);
          `Ok ()
      | _ -> `Error (false, "unexpected reply")
    end
    else if metrics then begin
      match rpc (fun conn -> C.command conn "metrics") with
      | P.Ok_obj { fields; _ } ->
          print_string (field "metrics" fields);
          `Ok ()
      | _ -> `Error (false, "unexpected reply")
    end
    else if info then begin
      match rpc (fun conn -> C.command conn "info") with
      | P.Ok_obj { fields; _ } ->
          print_endline (P.Json.to_string (P.Json.Obj fields));
          `Ok ()
      | _ -> `Error (false, "unexpected reply")
    end
    else if shutdown then begin
      match rpc (fun conn -> C.command conn "shutdown") with
      | P.Ok_obj _ ->
          if verbose then Format.eprintf "daemon is draining@.";
          `Ok ()
      | _ -> `Error (false, "unexpected reply")
    end
    else
      match pattern with
      | None ->
          `Error
            (false, "PATTERN is required unless --ping/--metrics/--info/--shutdown")
      | Some pattern -> (
          match rpc (fun conn -> C.query conn ~engine ?deadline ~pattern ~k ()) with
          | P.Hits { hits; truncated; _ } ->
              List.iter (fun (pos, d) -> Printf.printf "%d\t%d\n" pos d) hits;
              if truncated then
                Format.eprintf "kmm client: hit list truncated by the server@.";
              if verbose then
                Format.eprintf "engine=%s hits=%d@."
                  (Core.Kmismatch.engine_name engine)
                  (List.length hits);
              `Ok ()
          | _ -> `Error (false, "unexpected reply"))
  in
  let socket =
    Arg.(
      value & opt string "kmm.sock"
      & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Socket of the running daemon.")
  in
  let pattern =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PATTERN" ~doc:"Pattern (ACGT).")
  in
  let k = Arg.(value & opt int 0 & info [ "k" ] ~doc:"Mismatch budget.") in
  let engine = engine_arg in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip check.") in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the daemon's live Prometheus metrics.")
  in
  let info_flag = Arg.(value & flag & info [ "info" ] ~doc:"Print daemon info (JSON).") in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Client-side I/O budget in seconds: bounds the connect and each \
             reply read/send.  Expiry exits with the typed timeout code (9); \
             without it the client blocks indefinitely.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry the whole request (reconnect included) up to $(docv) extra \
             times on transient errors — connection refused/reset/closed and \
             typed \"server overloaded\" replies — with capped jittered \
             exponential backoff.  Bad input and timeouts never retry.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Server-side compute budget in relative seconds (the wire \
             \"deadline\" field): the daemon abandons the query once the \
             budget is spent — queue wait included — and answers a typed \
             timeout frame (code 9).  Independent of --timeout.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty stderr.") in
  Cmd.v
    (Cmd.info "client" ~doc:"Query a running kmm serve daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Speaks the newline-JSON protocol of kmm serve.  On a server-side \
              error the daemon's typed error code becomes this process's exit \
              code — the same contract as the offline commands.  --timeout \
              bounds client-side waiting, --deadline bounds server-side \
              compute, and --retries adds backoff-and-retry on transient \
              failures (never on bad input).";
         ])
    Term.(
      ret
        (const run $ socket $ pattern $ k $ engine $ ping $ metrics $ info_flag
       $ shutdown $ timeout $ retries $ deadline $ verbose))

(* --- bwt ------------------------------------------------------------ *)

let bwt_cmd =
  let run text =
    print_endline (Fmindex.Bwt.of_text (Dna.Sequence.to_string (Dna.Sequence.of_string text)));
    `Ok ()
  in
  let text = Arg.(required & pos 0 (some string) None & info [] ~docv:"TEXT" ~doc:"Text.") in
  Cmd.v (Cmd.info "bwt" ~doc:"Print BWT(text$)") Term.(ret (const run $ text))

let () =
  let doc = "string matching with k mismatches over BWT arrays (ICDE'17 reproduction)" in
  let info = Cmd.info "kmm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            simulate_cmd;
            index_cmd;
            verify_cmd;
            search_cmd;
            map_cmd;
            fuzz_cmd;
            bench_cmd;
            serve_cmd;
            client_cmd;
            bwt_cmd;
          ]))
