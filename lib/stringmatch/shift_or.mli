(** Bit-parallel matching (Baeza-Yates-Gonnet Shift-Or and its
    counting-mismatch extension).

    For patterns up to the machine word size (63 characters here), exact
    matching runs one logical operation per text character, and the
    k-mismatch variant keeps one counter automaton per allowed error.
    These are the practical work-horses for short patterns and serve as
    yet another independent oracle in the test suite. *)

val max_pattern_length : int
(** 63 on a 64-bit OCaml runtime. *)

val find_all : pattern:string -> text:string -> int list
(** Exact occurrences, ascending.  Raises [Invalid_argument] if the
    pattern is empty or longer than {!max_pattern_length}. *)

val search : pattern:string -> text:string -> k:int -> (int * int) list
(** Shift-Add style matching with up to [k] mismatches: all
    [(position, distance)] pairs, ascending.  The per-position mismatch
    counters are kept in [ceil(log2 (k+2))]-bit fields, so the constraint
    is [m * bits <= 63]; raises [Invalid_argument] when the pattern does
    not fit, is empty, or [k < 0]. *)

val fits : m:int -> k:int -> bool
(** Whether a pattern of length [m] with budget [k] fits the word.
    Overflow-safe for any [m] and [k] (budgets of [2^61 - 1] and beyond,
    [max_int] included, never fit: their counter fields would need more
    than the 62 usable bits). *)
