test/test_core.ml: Alcotest Amir Array Bytes Core Dna Kmismatch Lazy List M_tree Mismatch_array Printf QCheck2 Random S_tree Stats String Stringmatch Test_util
