test/test_inexact.mli:
