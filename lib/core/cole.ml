module St = Suffix.Suffix_tree

let search ?stats tree ~pattern ~k =
  if pattern = "" then invalid_arg "Cole.search: empty pattern";
  if k < 0 then invalid_arg "Cole.search: negative k";
  let m = String.length pattern in
  let k = min k m in
  (* budgets beyond m behave exactly like k = m *)
  let text = St.text tree in
  let bump (f : Stats.t -> unit) = match stats with Some s -> f s | None -> () in
  let results = ref [] in
  let report node q =
    (* Every leaf below the locus starts an occurrence of the (mutated)
       window; the sentinel guarantees the window fits in the text. *)
    List.iter (fun p -> results := (p, q) :: !results) (St.leaves_below tree node)
  in
  (* [descend node off i q]: [off] characters of the edge into [node] are
     consumed, [i] pattern characters matched so far, [q] mismatches. *)
  let rec descend node off i q =
    Deadline.poll ();
    if i = m then begin
      bump (fun s -> s.leaves <- s.leaves + 1);
      report node q
    end
    else begin
      let start, len = St.edge tree node in
      if off < len then begin
        let c = text.[start + off] in
        (* The sentinel marks the end of the text: no window can cross
           it. *)
        if c <> '$' then begin
          let q' = if c = pattern.[i] then q else q + 1 in
          if q' <= k then descend node (off + 1) (i + 1) q'
          else bump (fun s -> s.leaves <- s.leaves + 1)
        end
      end
      else begin
        List.iter
          (fun (c, child) ->
            if c <> '$' then begin
              bump (fun s -> s.nodes <- s.nodes + 1);
              descend child 0 i q
            end)
          (St.children tree node)
      end
    end
  in
  descend (St.root tree) 0 0 0;
  List.sort Hit.compare !results
