(** DNA alphabet used throughout the library.

    Characters are ordered [$ < a < c < g < t] as in the paper: the sentinel
    [$] terminates every indexed text and is alphabetically smallest.  All
    functions are case-insensitive on input and produce lowercase output. *)

val sigma : int
(** Number of distinct codes, sentinel included (5). *)

val sentinel : char
(** The terminator character [$]. *)

val sentinel_code : int
(** Code of the sentinel (0). *)

val code : char -> int
(** [code c] is the integer code of [c]: [$ -> 0], [a -> 1], [c -> 2],
    [g -> 3], [t -> 4].  Raises [Invalid_argument] on any other character. *)

val code_opt : char -> int option
(** Like {!code} but returns [None] instead of raising. *)

val of_code : int -> char
(** Inverse of {!code}.  Raises [Invalid_argument] if the code is out of
    range. *)

val is_base : char -> bool
(** [is_base c] is true iff [c] is one of [acgt] (either case). *)

val normalize : char -> char
(** Lowercase a base; raises [Invalid_argument] for non-bases other than the
    sentinel. *)

val complement : char -> char
(** Watson-Crick complement of a base ([a<->t], [c<->g]). *)

val bases : char array
(** The four bases in alphabetical order, [| 'a'; 'c'; 'g'; 't' |]. *)

val base_codes : int array
(** Codes of the four bases, [| 1; 2; 3; 4 |]. *)
