type profile = {
  size : int;
  repeat_fraction : float;
  repeat_unit_len : int;
  divergence : float;
  seed : int;
}

let default =
  {
    size = 100_000;
    repeat_fraction = 0.3;
    repeat_unit_len = 300;
    divergence = 0.02;
    seed = 42;
  }

let mutate st divergence buf =
  for i = 0 to Bytes.length buf - 1 do
    if Random.State.float st 1.0 < divergence then begin
      (* Replace with a uniformly random *different* base. *)
      let old = Alphabet.code (Bytes.get buf i) in
      let shift = 1 + Random.State.int st 3 in
      let fresh = ((old - 1 + shift) mod 4) + 1 in
      Bytes.set buf i (Alphabet.of_code fresh)
    end
  done

let generate p =
  if p.size <= 0 then invalid_arg "Genome_gen.generate: size must be positive";
  if p.repeat_fraction < 0.0 || p.repeat_fraction > 0.9 then
    invalid_arg "Genome_gen.generate: repeat_fraction outside [0, 0.9]";
  if p.repeat_fraction > 0.0 && p.repeat_unit_len > p.size then
    invalid_arg "Genome_gen.generate: repeat unit longer than genome";
  let st = Random.State.make [| p.seed |] in
  let genome = Bytes.create p.size in
  for i = 0 to p.size - 1 do
    Bytes.set genome i Alphabet.bases.(Random.State.int st 4)
  done;
  if p.repeat_fraction > 0.0 && p.repeat_unit_len > 0 then begin
    let unit_len = min p.repeat_unit_len p.size in
    let copies =
      int_of_float (p.repeat_fraction *. float_of_int p.size)
      / max 1 unit_len
    in
    (* A small family of master units; interspersed copies of each. *)
    let families = max 1 (copies / 8) in
    let masters =
      Array.init families (fun _ ->
          let src = Random.State.int st (p.size - unit_len + 1) in
          Bytes.sub genome src unit_len)
    in
    for _ = 1 to copies do
      let master = masters.(Random.State.int st families) in
      let copy = Bytes.copy master in
      mutate st p.divergence copy;
      let dst = Random.State.int st (p.size - unit_len + 1) in
      Bytes.blit copy 0 genome dst unit_len
    done
  end;
  Sequence.of_string (Bytes.unsafe_to_string genome)

let paper_table1 =
  let p size seed =
    { default with size; seed; repeat_fraction = 0.35; repeat_unit_len = 250 }
  in
  [
    ("Rat (Rnor_6.0)", p 2_900_000 101);
    ("Zebrafish (GRCz10)", p 1_460_000 102);
    ("Rat chr1 (Rnor_6.0)", p 290_000 103);
    ("C. elegans (WBcel235)", p 100_000 104);
    ("C. merolae (ASM9120v1)", p 16_700 105);
  ]
