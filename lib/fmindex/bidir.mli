(** Bidirectional FM-index: synchronized forward and reverse SA-intervals
    over one 2-bit packed payload pair.

    A unidirectional FM-index extends a match in one direction only (the
    paper's [search()] prepends characters).  The bidirectional index of
    Lam et al. keeps {e two} intervals in lockstep for the matched
    substring α of the text [s]:

    - the {e forward} interval: rows of the BWT matrix of [s ^ "$"] whose
      suffix starts with α;
    - the {e reverse} interval: rows of the BWT matrix of [rev s ^ "$"]
      whose suffix starts with [rev α].

    Both intervals always have the same width (each counts the
    occurrences of α in [s]), and either can be updated after an
    extension of α on {e either} side from one rank-all pass:
    prepending a character narrows the forward interval by a classic
    backward step over [BWT(s)], and the reverse interval is re-derived
    from the per-character occurrence counts of that same pass, because
    inside the reverse interval rows are grouped by the character that
    {e follows} [rev α] — in code order, sentinel first.  Appending is
    the mirror image through [BWT(rev s)].

    This is the primitive under optimum search schemes ({!Core.Oss}
    executes them): a pattern piece in the middle can be matched first
    and then grown to the left and right in any order, which is what
    lets a scheme force early exact pieces and prune mismatch branching
    far earlier than any unidirectional walk.

    The reverse side reuses the index the rest of the system already
    has — {!Fm_index.t} of the reversed text, SA samples included, so
    candidate occurrences are located through the existing sampled-SA
    walk.  The forward side is rank-only (an {!Occ} over [BWT(s)] plus
    its C array): it never locates, so it carries no SA samples. *)

type t

val make : text:string -> fm_rev:Fm_index.t -> t
(** [make ~text ~fm_rev] builds the forward rank side over [text]
    (lowercase [acgt]) and pairs it with [fm_rev], the existing index of
    the {e reversed} text.  Raises [Invalid_argument] if [text] is not
    lowercase ACGT or the lengths disagree.  Cost: one suffix-array
    construction of [text] plus the interleaved rank blocks (~0.6
    bytes/base); the reverse side is shared, not copied. *)

val length : t -> int
(** Length of the indexed text. *)

val fm_rev : t -> Fm_index.t
(** The shared reverse-text index (the locate-capable side). *)

type state = {
  f_lo : int;
  f_hi : int;  (** forward interval [f_lo, f_hi): rows of suffixes of [s]
                   starting with the matched substring α *)
  r_lo : int;
  r_hi : int;  (** reverse interval: rows of suffixes of [rev s] starting
                   with [rev α]; always the same width as the forward one *)
  len : int;  (** |α|: characters matched so far *)
}
(** A synchronized interval pair.  Nonempty iff [f_lo < f_hi]. *)

val start : t -> state
(** The empty match: both intervals cover every row, [len = 0]. *)

val width : state -> int
(** Number of occurrences of the matched substring ([f_hi - f_lo]). *)

(** {1 Extension}

    The rank-all form mirrors {!Fm_index.extend_all}: one call derives
    the child states of all four bases at once from a single rank-all
    pass per side, into caller-owned scratch. *)

type cursor
(** Scratch holding the four children of one extension step. *)

val cursor : unit -> cursor

val extend_left_all : t -> state -> cursor -> unit
(** Fill the cursor with the children of prepending each base to α
    (one rank-all pair over [BWT(s)]). *)

val extend_right_all : t -> state -> cursor -> unit
(** Fill the cursor with the children of appending each base to α
    (one rank-all pair over [BWT(rev s)], through the shared
    {!Fm_index.extend_all} — its telemetry counts these). *)

val child : cursor -> state -> int -> state option
(** [child cur parent c] is the child state for base code [c]
    ({!Dna.Alphabet} codes 1..4) from the last [extend_*_all] on [cur],
    or [None] when that extension is empty.  Raises [Invalid_argument]
    on a code outside 1..4. *)

val extend_left : t -> int -> state -> state option
(** One-character convenience over {!extend_left_all} (allocates a
    cursor; the executors keep their own). *)

val extend_right : t -> int -> state -> state option

val locate_into : t -> state -> int array -> unit
(** [locate_into t st dst] writes the {e forward} text position of the
    matched substring's occurrence for each row of the reverse interval:
    [dst.(i)] is the start of α in [s] for row [r_lo + i], unsorted.
    Resolved through the reverse side's sampled SA ([pos = n - p_rev -
    len]).  Raises [Invalid_argument] if [dst] is shorter than the
    interval width. *)
