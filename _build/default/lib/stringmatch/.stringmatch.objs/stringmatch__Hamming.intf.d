lib/stringmatch/hamming.mli:
