lib/core/amir.mli: Stats
