(** Unified front door for string matching with k mismatches.

    An {!index} is built once per target and shared by all engines; each
    engine then answers queries [(pattern, k)] with the full list of
    [(position, distance)] occurrences.  All engines return identical
    results — they differ only in cost:

    - [M_tree]: the paper's Algorithm A, O(kn' + n + m log m);
    - [S_tree]: the BWT baseline of ref. [34] with the delta heuristic;
    - [Cole]: suffix-tree brute force (ref. [14]);
    - [Amir]: online mark-and-verify (ref. [2]);
    - [Hybrid]: FM search to a unique row, then direct verification (an
      extension beyond the paper, in the style of practical aligners);
    - [Kangaroo]: online O(kn) Landau-Vishkin;
    - [Naive]: online O(mn) scanning. *)

type engine = M_tree | S_tree | S_tree_no_delta | Hybrid | Cole | Amir | Kangaroo | Naive

val all_engines : engine list
val engine_name : engine -> string
val engine_of_string : string -> engine option

type index

val build_index : ?occ_rate:int -> ?sa_rate:int -> string -> index
(** Build the shared index of a target text (lowercase [acgt]; validated).
    The FM-index of the reversed text is built eagerly; the suffix tree
    (used only by [Cole]) lazily. *)

val of_sequence : Dna.Sequence.t -> index
val text : index -> string
val length : index -> int
val fm_rev : index -> Fmindex.Fm_index.t
val suffix_tree : index -> Suffix.Suffix_tree.t

val search :
  ?stats:Stats.t ->
  ?config:M_tree.config ->
  index ->
  engine:engine ->
  pattern:string ->
  k:int ->
  (int * int) list
(** All [(position, distance)] with [distance <= k], ascending by
    position.  The pattern is normalized (case); raises [Invalid_argument]
    if it is empty, contains non-ACGT characters, or [k < 0].

    Degenerate budgets are uniform across engines: any [k >= length
    pattern] is equivalent to [k = length pattern] (every window position
    is returned at its true distance), and the budget is clamped there
    internally, so even [k = max_int] is safe. *)

val positions :
  ?stats:Stats.t -> index -> engine:engine -> pattern:string -> k:int -> int list
(** Positions only. *)

val save_index : index -> string -> unit
(** Persist the index (its FM component; ~n/4 bytes).  The suffix tree is
    rebuilt lazily on demand after {!load_index}. *)

val load_index : string -> index
(** Reload an index written by {!save_index}.  Raises [Failure] on
    invalid files. *)

val try_load_index : string -> (index, Kmm_error.t) result
(** {!load_index} with the failure reported as a typed error (see
    {!Fmindex.Fm_index.try_load}): corruption, truncation, version and
    I/O problems each get their own constructor instead of a [Failure]
    message. *)
