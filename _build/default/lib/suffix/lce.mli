(** Constant-time longest-common-extension queries.

    Built from a suffix array, its LCP array (Kasai) and a sparse-table RMQ.
    This is the O(1)-per-jump primitive behind the "kangaroo" method of
    Landau-Vishkin / Galil-Giancarlo, and behind the paper's R-table
    construction. *)

type t

val make : string -> t
(** Preprocess one string for same-string LCE queries. *)

val text : t -> string

val lce : t -> int -> int -> int
(** [lce t i j] is the length of the longest common prefix of the suffixes
    starting at [i] and [j].  Out-of-range indices (== length) yield 0. *)

type pair

val make_pair : string -> string -> pair
(** Preprocess two strings [a] and [b] for cross-string queries.  The
    strings must not contain the byte ['\001'] (our DNA alphabet never
    does). *)

val lce_pair : pair -> int -> int -> int
(** [lce_pair p i j] is the LCE of [a[i ..]] versus [b[j ..]]. *)
