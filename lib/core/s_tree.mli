(** The BWT-based baseline (the paper's "BWT method", ref. [34]): a
    brute-force search tree over BWT intervals.

    The pattern is consumed left to right, each step extending the current
    BWT interval of [rev s] by one character — the matching character for
    free, every mismatching character against the budget [k].  Optionally
    the delta-heuristic of [34] prunes branches: [delta.(i)] is the number
    of consecutive disjoint substrings of [r[i ..]] absent from [s]; a
    branch whose remaining budget is below it cannot reach an occurrence. *)

val delta_heuristic : Fmindex.Fm_index.t -> pattern:string -> int array
(** [delta_heuristic fm_rev ~pattern] computes the 1-based array
    [delta.(1 .. m+1)] over the FM-index of [rev s] ([delta.(m+1) = 0]).
    Exposed for tests and benchmarks. *)

val search :
  ?use_delta:bool ->
  ?stats:Stats.t ->
  ?obs:Obs.t ->
  Fmindex.Fm_index.t ->
  pattern:string ->
  k:int ->
  (int * int) list
(** [search fm_rev ~pattern ~k] returns every [(position, distance)] with
    [distance <= k], sorted by position, where [fm_rev] indexes the
    *reverse* of the target.  [use_delta] (default true) switches the
    pruning heuristic.  Raises [Invalid_argument] on an empty pattern or
    negative [k].

    [obs] (default {!Obs.noop}) records the [stree.delta] and
    [stree.explore] spans. *)
