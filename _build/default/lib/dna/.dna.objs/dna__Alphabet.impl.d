lib/dna/alphabet.ml: Printf
