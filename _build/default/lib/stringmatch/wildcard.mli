(** String matching with don't-care symbols (paper SS:II's third kind of
    inexact matching).

    A wildcard matches any single character, including another wildcard.
    As the paper notes, the match relation is then no longer transitive,
    which rules out KMP/Boyer-Moore shift tables; the general methods are
    quadratic, which is what we provide (plus a linear special case for
    patterns whose wildcards form one consecutive run, in the spirit of
    the suffix-array trick the paper cites). *)

val find_all :
  ?wildcard:char -> pattern:string -> text:string -> unit -> int list
(** All positions where [pattern] matches [text], treating [wildcard]
    (default ['n'], the IUPAC "any base") in *either* string as matching
    anything.  O(mn).  The empty pattern matches everywhere. *)

val find_all_single_gap :
  ?wildcard:char -> pattern:string -> text:string -> unit -> int list
(** Same answer for patterns whose wildcards form one consecutive run
    (e.g. [acgnnnnta]) and a wildcard-free text, computed by exact-matching
    the two solid flanks (KMP) and intersecting.  O(n + m).  Raises
    [Invalid_argument] if the pattern has scattered wildcards or the text
    contains wildcards. *)
