type read = {
  id : int;
  seq : Sequence.t;
  origin : int;
  forward : bool;
  errors : int;
}

type config = {
  count : int;
  len : int;
  error_rate : float;
  both_strands : bool;
  seed : int;
}

let default =
  { count = 500; len = 100; error_rate = 0.02; both_strands = false; seed = 7 }

let simulate cfg genome =
  if cfg.count < 0 then invalid_arg "Read_sim.simulate: negative count";
  if cfg.len <= 0 then invalid_arg "Read_sim.simulate: nonpositive length";
  if cfg.error_rate < 0.0 || cfg.error_rate >= 1.0 then
    invalid_arg "Read_sim.simulate: error_rate outside [0, 1)";
  let n = Sequence.length genome in
  if n < cfg.len then
    invalid_arg "Read_sim.simulate: genome shorter than read length";
  let st = Random.State.make [| cfg.seed |] in
  let draw id =
    let origin = Random.State.int st (n - cfg.len + 1) in
    let buf =
      Bytes.of_string (Sequence.to_string (Sequence.sub genome ~pos:origin ~len:cfg.len))
    in
    let errors = ref 0 in
    for i = 0 to cfg.len - 1 do
      if Random.State.float st 1.0 < cfg.error_rate then begin
        let old = Alphabet.code (Bytes.get buf i) in
        let shift = 1 + Random.State.int st 3 in
        Bytes.set buf i (Alphabet.of_code (((old - 1 + shift) mod 4) + 1));
        incr errors
      end
    done;
    let fwd_seq = Sequence.of_string (Bytes.unsafe_to_string buf) in
    let forward = (not cfg.both_strands) || Random.State.bool st in
    let seq = if forward then fwd_seq else Sequence.revcomp fwd_seq in
    { id; seq; origin; forward; errors = !errors }
  in
  List.init cfg.count draw

let forward_pattern r = if r.forward then r.seq else Sequence.revcomp r.seq
