type t = int * int

let compare (p1, d1) (p2, d2) =
  let c = Int.compare p1 p2 in
  if c <> 0 then c else Int.compare d1 d2
