(* The single dispatch table behind both benchmark entry points.

   `kmm bench NAME` (bin/kmm.ml) and `dune exec bench/main.exe NAME`
   (bench/main.ml) used to keep separate hardcoded lists, and they
   drifted: the CLI only knew rank-locate while the harness alone
   registered map-throughput, and each error message hardcoded its own
   "available:" text.  Every machine-runnable benchmark now registers
   here exactly once; both front ends dispatch over [all] and derive
   their "available:" strings from it, so the two can never disagree
   again.  (The paper-reproduction experiments — table1, fig11a, ... —
   and the bechamel micro suite stay local to bench/main.exe: they are
   harness workloads, not CLI benchmarks.) *)

type ctx = {
  obs : Obs.t;  (* active when the CLI passed --trace/--metrics-out *)
  out : string option;  (* JSON log override; each bench has its own default *)
  size : int option;  (* text size override, ditto *)
  seed : int;
  connections : int list;  (* serve: connection counts to sweep *)
  queries : int;  (* serve: queries per sweep point *)
  jobs : int;  (* serve: pool domains; 0 = all cores *)
  smoke : bool;
      (* replay the benchmark's cross-checks only — no timing, no JSON.
         Honored by benches with a headless parity mode (verify). *)
}

let default_ctx =
  {
    obs = Obs.noop;
    out = None;
    size = None;
    seed = 42;
    connections = [ 1; 2; 4; 8 ];
    queries = 2_000;
    jobs = 0;
    smoke = false;
  }

type entry = { name : string; doc : string; run : ctx -> unit }

let all =
  [
    {
      name = "rank-locate";
      doc =
        "packed-rank FM-index kernel vs. the seed byte-scan on rank, extend_all, \
         count and locate workloads (cross-checked; appends to BENCH_fmindex.json)";
      run =
        (fun c -> Rank_locate.run ~obs:c.obs ?out:c.out ?size:c.size ~seed:c.seed ());
    };
    {
      name = "map-throughput";
      doc =
        "parallel batch mapper reads/sec vs. domain count on a 100 kbp genome \
         (byte-identity re-checked; appends to BENCH_map.json; fixed workload — \
         ignores --size/--seed)";
      run = (fun _ -> Map_throughput.run ());
    };
    {
      name = "load-modes";
      doc =
        "index cold start: v3 copy reconstruction vs v4 copy vs v4 mmap \
         adoption at 1/32/128 Mbp (probe answers cross-checked; appends to \
         BENCH_fmindex.json; --size narrows to one size)";
      run =
        (fun c -> Load_modes.run ~obs:c.obs ?out:c.out ?size:c.size ~seed:c.seed ());
    };
    {
      name = "verify";
      doc =
        "word-parallel SWAR Hamming kernel vs. the byte-scan reference on \
         planted true hits (full-scan regime) and random windows (early-exit \
         regime), m in 16..512, k in 0..16, at 1/32/128 Mbp (every call \
         cross-checked; appends to BENCH_verify.json; --size narrows to one \
         size; --smoke replays the cross-checks only)";
      run =
        (fun c ->
          if c.smoke then Verify_bench.parity_smoke ?size:c.size ~seed:c.seed ()
          else
            Verify_bench.run ~obs:c.obs ?out:c.out ?size:c.size ~seed:c.seed ());
    };
    {
      name = "engines";
      doc =
        "every registered k-mismatch engine head to head on planted reads, \
         k in {0,1,2,4} x m in {32,64,128}: all engines cross-checked on a \
         small text, the [scales] subset timed on a large one (appends to \
         BENCH_engines.json; --size sets the large tier; --smoke replays the \
         cross-checks only)";
      run =
        (fun c ->
          if c.smoke then Engines_bench.smoke ?size:c.size ~seed:c.seed ()
          else
            Engines_bench.run ~obs:c.obs ?out:c.out ?size:c.size ~seed:c.seed ());
    };
    {
      name = "serve";
      doc =
        "kmm serve daemon: throughput and p50/p99 latency vs. concurrent \
         connections over the Unix-socket JSON protocol, byte-identical to a \
         sequential run (appends to BENCH_serve.json)";
      run =
        (fun c ->
          Serve_bench.run ~obs:c.obs ?out:c.out ?size:c.size ~seed:c.seed
            ~connections:c.connections ~queries:c.queries ~jobs:c.jobs ());
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

let available () = String.concat ", " (names ())
