(* Good-suffix preprocessing via the classic border-position construction
   (Crochemore & Rytter): [shift.(j)] is how far to slide the window when a
   mismatch occurs with suffix p[j ..] already matched. *)

let good_suffix p =
  let m = String.length p in
  let shift = Array.make (m + 1) 0 in
  let border = Array.make (m + 1) 0 in
  let i = ref m and j = ref (m + 1) in
  border.(m) <- m + 1;
  while !i > 0 do
    while !j <= m && p.[!i - 1] <> p.[!j - 1] do
      if shift.(!j) = 0 then shift.(!j) <- !j - !i;
      j := border.(!j)
    done;
    decr i;
    decr j;
    border.(!i) <- !j
  done;
  let j = ref border.(0) in
  for i = 0 to m do
    if shift.(i) = 0 then shift.(i) <- !j;
    if i = !j then j := border.(!j)
  done;
  shift

let bad_character p =
  let last = Array.make 256 (-1) in
  String.iteri (fun i c -> last.(Char.code c) <- i) p;
  last

let find_all ~pattern ~text =
  let m = String.length pattern and n = String.length text in
  if m = 0 then List.init (n + 1) (fun i -> i)
  else begin
    let shift = good_suffix pattern in
    let last = bad_character pattern in
    let acc = ref [] in
    let s = ref 0 in
    while !s <= n - m do
      let j = ref (m - 1) in
      while !j >= 0 && pattern.[!j] = text.[!s + !j] do
        decr j
      done;
      if !j < 0 then begin
        acc := !s :: !acc;
        s := !s + shift.(0)
      end
      else begin
        let bc = !j - last.(Char.code text.[!s + !j]) in
        s := !s + max shift.(!j + 1) (max bc 1)
      end
    done;
    List.rev !acc
  end
