open Dna

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Alphabet                                                            *)

let test_codes_roundtrip () =
  for k = 0 to Alphabet.sigma - 1 do
    check int "code/of_code roundtrip" k (Alphabet.code (Alphabet.of_code k))
  done

let test_order () =
  (* $ < a < c < g < t, as required by the paper's BWT construction. *)
  check bool "sentinel smallest" true (Alphabet.sentinel_code = 0);
  check int "a" 1 (Alphabet.code 'a');
  check int "c" 2 (Alphabet.code 'c');
  check int "g" 3 (Alphabet.code 'g');
  check int "t" 4 (Alphabet.code 't')

let test_case_insensitive () =
  check int "A = a" (Alphabet.code 'a') (Alphabet.code 'A');
  check int "T = t" (Alphabet.code 't') (Alphabet.code 'T')

let test_invalid_char () =
  Alcotest.check_raises "code 'n'" (Invalid_argument "Alphabet.code: 'n' is not in {$acgt}")
    (fun () -> ignore (Alphabet.code 'n'))

let test_complement () =
  check string "complements" "tgca"
    (String.init 4 (fun i -> Alphabet.complement "acgt".[i]));
  (* Complement is an involution. *)
  String.iter
    (fun c ->
      check int "involution" (Alphabet.code c)
        (Alphabet.code (Alphabet.complement (Alphabet.complement c))))
    "acgt"

(* ------------------------------------------------------------------ *)
(* Sequence                                                            *)

let test_sequence_normalizes () =
  check string "lowercased" "acgt" (Sequence.to_string (Sequence.of_string "AcGt"))

let test_sequence_rejects () =
  check bool "reject N" true (Sequence.of_string_opt "acgnt" = None);
  check bool "reject $" true (Sequence.of_string_opt "ac$t" = None)

let test_revcomp () =
  let s = Sequence.of_string "aaccggtt" in
  check string "revcomp" "aaccggtt" (Sequence.to_string (Sequence.revcomp s));
  let s2 = Sequence.of_string "acg" in
  check string "revcomp acg" "cgt" (Sequence.to_string (Sequence.revcomp s2))

let test_hamming () =
  check int "equal" 0
    (Sequence.hamming (Sequence.of_string "acgt") (Sequence.of_string "acgt"));
  check int "one diff" 1
    (Sequence.hamming (Sequence.of_string "acgt") (Sequence.of_string "aggt"));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Sequence.hamming: length mismatch") (fun () ->
      ignore (Sequence.hamming (Sequence.of_string "ac") (Sequence.of_string "a")))

let prop_revcomp_involution =
  Test_util.qtest "revcomp involution" (Test_util.dna_gen ~hi:200 ()) (fun s ->
      let seq = Sequence.of_string s in
      Sequence.equal seq (Sequence.revcomp (Sequence.revcomp seq)))

let prop_rev_involution =
  Test_util.qtest "rev involution" (Test_util.dna_gen ~hi:200 ()) (fun s ->
      let seq = Sequence.of_string s in
      Sequence.equal seq (Sequence.rev (Sequence.rev seq)))

(* ------------------------------------------------------------------ *)
(* Fasta                                                               *)

let test_fasta_roundtrip () =
  let records =
    [
      { Fasta.name = "chr1"; seq = Sequence.of_string "acgtacgtacgt" };
      { Fasta.name = "chr2 extra words"; seq = Sequence.of_string "ttttt" };
    ]
  in
  let parsed = Fasta.parse_string (Fasta.to_string ~width:5 records) in
  check int "record count" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      check string "name" a.Fasta.name b.Fasta.name;
      check string "seq" (Sequence.to_string a.Fasta.seq) (Sequence.to_string b.Fasta.seq))
    records parsed

let test_fasta_wrapping_and_comments () =
  let doc = ">r1\n; a comment line\nACGT\nacgt\n\n>r2\naa\n" in
  match Fasta.parse_string doc with
  | [ r1; r2 ] ->
      check string "r1" "acgtacgt" (Sequence.to_string r1.Fasta.seq);
      check string "r2" "aa" (Sequence.to_string r2.Fasta.seq)
  | _ -> Alcotest.fail "expected two records"

let test_fasta_errors () =
  let expect_fail doc =
    match Fasta.parse_string doc with
    | exception Fasta.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_fail "acgt\n>r1\nacgt\n";
  expect_fail ">\nacgt\n";
  expect_fail ">r1\nacgnt\n"

let test_fasta_crlf_and_final_newline () =
  (* Locked-in edge-case behavior: CRLF documents parse (per-line trim),
     and the final record may end without a trailing newline. *)
  (match Fasta.parse_string ">r1\r\nACGT\r\nacgt\r\n>r2 desc\r\naa" with
  | [ r1; r2 ] ->
      check string "r1 name" "r1" r1.Fasta.name;
      check string "r1 seq joined across CRLF lines" "acgtacgt"
        (Sequence.to_string r1.Fasta.seq);
      check string "r2 name keeps description" "r2 desc" r2.Fasta.name;
      check string "r2 seq without trailing newline" "aa"
        (Sequence.to_string r2.Fasta.seq)
  | _ -> Alcotest.fail "expected two records");
  match Fasta.parse_string ">only\nacgt" with
  | [ r ] ->
      check string "single record, no final newline" "acgt"
        (Sequence.to_string r.Fasta.seq)
  | _ -> Alcotest.fail "expected one record"

let test_fasta_empty_body_rejected () =
  (* A header with no sequence lines is a truncation signal, not an empty
     sequence; every such shape must raise Parse_error. *)
  let expect_fail doc =
    match Fasta.parse_string doc with
    | exception Fasta.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted empty-bodied doc %S" doc
  in
  expect_fail ">a\n>b\nacgt\n";
  (* empty body mid-file *)
  expect_fail ">a\nacgt\n>b\n";
  (* empty body at end of file *)
  expect_fail ">a\n";
  expect_fail ">a";
  (* header followed only by blanks/comments is still empty *)
  expect_fail ">a\n; only a comment\n";
  expect_fail ">a\n\r\n\n"

let test_fasta_file_roundtrip () =
  let path = Filename.temp_file "repro" ".fa" in
  let records = [ { Fasta.name = "g"; seq = Sequence.random ~state:(Random.State.make [| 3 |]) 137 } ] in
  Fasta.write_file path records;
  let back = Fasta.read_file path in
  Sys.remove path;
  match back with
  | [ r ] ->
      check string "roundtrip through disk"
        (Sequence.to_string (List.hd records).Fasta.seq)
        (Sequence.to_string r.Fasta.seq)
  | _ -> Alcotest.fail "expected one record"

(* ------------------------------------------------------------------ *)
(* Genome generation                                                   *)

let test_genome_size () =
  let g = Genome_gen.generate { Genome_gen.default with size = 5000 } in
  check int "size honored" 5000 (Sequence.length g)

let test_genome_deterministic () =
  let p = { Genome_gen.default with size = 2000; seed = 9 } in
  check string "same seed, same genome"
    (Sequence.to_string (Genome_gen.generate p))
    (Sequence.to_string (Genome_gen.generate p))

let test_genome_seed_matters () =
  let p = { Genome_gen.default with size = 2000 } in
  let a = Genome_gen.generate { p with seed = 1 } in
  let b = Genome_gen.generate { p with seed = 2 } in
  check bool "different seeds differ" false (Sequence.equal a b)

let test_genome_has_repeats () =
  (* With 30% planted repeats of length 300, some 40-mer must occur more
     than once; in a 100kb i.i.d. genome a repeated 40-mer is essentially
     impossible (4^40 >> 1e10 pairs). *)
  let g =
    Genome_gen.generate
      { Genome_gen.default with size = 50_000; divergence = 0.0; seed = 5 }
  in
  let s = Sequence.to_string g in
  let seen = Hashtbl.create 1024 in
  let dup = ref false in
  let step = 7 in
  let i = ref 0 in
  while (not !dup) && !i <= String.length s - 40 do
    let kmer = String.sub s !i 40 in
    if Hashtbl.mem seen kmer then dup := true else Hashtbl.add seen kmer ();
    i := !i + step
  done;
  check bool "repeated 40-mer found" true !dup

let test_genome_validation () =
  let expect_invalid p =
    match Genome_gen.generate p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { Genome_gen.default with size = 0 };
  expect_invalid { Genome_gen.default with repeat_fraction = 1.5 };
  expect_invalid { Genome_gen.default with size = 10; repeat_unit_len = 100 }

(* ------------------------------------------------------------------ *)
(* Read simulation                                                     *)

let genome_for_reads =
  lazy (Genome_gen.generate { Genome_gen.default with size = 20_000; seed = 11 })

let test_reads_basic () =
  let g = Lazy.force genome_for_reads in
  let cfg = { Read_sim.default with count = 100; len = 50; seed = 1 } in
  let reads = Read_sim.simulate cfg g in
  check int "count" 100 (List.length reads);
  List.iter
    (fun r ->
      check int "length" 50 (Sequence.length r.Read_sim.seq);
      check bool "origin in range" true
        (r.Read_sim.origin >= 0 && r.Read_sim.origin + 50 <= Sequence.length g))
    reads

let test_reads_error_consistency () =
  (* The forward pattern differs from the genome window in exactly
     [errors] positions. *)
  let g = Lazy.force genome_for_reads in
  let cfg = { Read_sim.default with count = 200; len = 80; error_rate = 0.05; seed = 2 } in
  let reads = Read_sim.simulate cfg g in
  List.iter
    (fun r ->
      let window = Sequence.sub g ~pos:r.Read_sim.origin ~len:80 in
      check int "hamming = errors" r.Read_sim.errors
        (Sequence.hamming window (Read_sim.forward_pattern r)))
    reads

let test_reads_error_free () =
  let g = Lazy.force genome_for_reads in
  let cfg = { Read_sim.default with count = 50; len = 60; error_rate = 0.0; seed = 3 } in
  List.iter
    (fun r -> check int "no errors" 0 r.Read_sim.errors)
    (Read_sim.simulate cfg g)

let test_reads_both_strands () =
  let g = Lazy.force genome_for_reads in
  let cfg =
    { Read_sim.default with count = 200; len = 40; both_strands = true; seed = 4 }
  in
  let reads = Read_sim.simulate cfg g in
  let fwd = List.length (List.filter (fun r -> r.Read_sim.forward) reads) in
  check bool "both strands sampled" true (fwd > 20 && fwd < 180);
  (* forward_pattern must still align to the forward strand. *)
  List.iter
    (fun r ->
      let window = Sequence.sub g ~pos:r.Read_sim.origin ~len:40 in
      check int "revcomp handled" r.Read_sim.errors
        (Sequence.hamming window (Read_sim.forward_pattern r)))
    reads

let test_reads_validation () =
  let g = Lazy.force genome_for_reads in
  let expect_invalid cfg =
    match Read_sim.simulate cfg g with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { Read_sim.default with len = 0 };
  expect_invalid { Read_sim.default with len = 1_000_000 };
  expect_invalid { Read_sim.default with error_rate = 1.0 };
  expect_invalid { Read_sim.default with count = -1 }

let () =
  Alcotest.run "dna"
    [
      ( "alphabet",
        [
          Alcotest.test_case "codes roundtrip" `Quick test_codes_roundtrip;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "case insensitive" `Quick test_case_insensitive;
          Alcotest.test_case "invalid char" `Quick test_invalid_char;
          Alcotest.test_case "complement" `Quick test_complement;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "normalizes" `Quick test_sequence_normalizes;
          Alcotest.test_case "rejects bad chars" `Quick test_sequence_rejects;
          Alcotest.test_case "revcomp" `Quick test_revcomp;
          Alcotest.test_case "hamming" `Quick test_hamming;
          prop_revcomp_involution;
          prop_rev_involution;
        ] );
      ( "fasta",
        [
          Alcotest.test_case "roundtrip" `Quick test_fasta_roundtrip;
          Alcotest.test_case "wrapping and comments" `Quick test_fasta_wrapping_and_comments;
          Alcotest.test_case "malformed inputs" `Quick test_fasta_errors;
          Alcotest.test_case "CRLF and final newline" `Quick test_fasta_crlf_and_final_newline;
          Alcotest.test_case "empty bodies rejected" `Quick test_fasta_empty_body_rejected;
          Alcotest.test_case "file roundtrip" `Quick test_fasta_file_roundtrip;
        ] );
      ( "genome_gen",
        [
          Alcotest.test_case "size" `Quick test_genome_size;
          Alcotest.test_case "deterministic" `Quick test_genome_deterministic;
          Alcotest.test_case "seed matters" `Quick test_genome_seed_matters;
          Alcotest.test_case "has repeats" `Quick test_genome_has_repeats;
          Alcotest.test_case "validation" `Quick test_genome_validation;
        ] );
      ( "read_sim",
        [
          Alcotest.test_case "basic" `Quick test_reads_basic;
          Alcotest.test_case "errors consistent" `Quick test_reads_error_consistency;
          Alcotest.test_case "error free" `Quick test_reads_error_free;
          Alcotest.test_case "both strands" `Quick test_reads_both_strands;
          Alcotest.test_case "validation" `Quick test_reads_validation;
        ] );
    ]
