(* Tests for index persistence and the batch read mapper. *)

open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_temp f =
  let path = Filename.temp_file "kmm" ".fmi" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* FM-index save/load                                                   *)

let prop_fm_roundtrip =
  Test_util.qtest ~count:100 "fm save/load roundtrip"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:300 ()) (Test_util.dna_gen ~lo:1 ~hi:6 ()))
    (fun (text, pattern) ->
      with_temp (fun path ->
          let fm = Fmindex.Fm_index.build text in
          Fmindex.Fm_index.save fm path;
          let fm' = Fmindex.Fm_index.load path in
          Fmindex.Fm_index.text fm' = text
          && Fmindex.Fm_index.bwt fm' = Fmindex.Fm_index.bwt fm
          && Fmindex.Fm_index.find_all fm' pattern = Fmindex.Fm_index.find_all fm pattern))

let prop_fm_roundtrip_rates =
  Test_util.qtest ~count:50 "roundtrip preserves nondefault rates"
    (Test_util.dna_gen ~lo:10 ~hi:200 ())
    (fun text ->
      with_temp (fun path ->
          let fm = Fmindex.Fm_index.build ~occ_rate:7 ~sa_rate:5 text in
          Fmindex.Fm_index.save fm path;
          let fm' = Fmindex.Fm_index.load path in
          let probe = String.sub text 0 (min 4 (String.length text)) in
          Fmindex.Fm_index.find_all fm' probe = Fmindex.Fm_index.find_all fm probe))

let test_fm_roundtrip_one_char () =
  with_temp (fun path ->
      let fm = Fmindex.Fm_index.build "a" in
      Fmindex.Fm_index.save fm path;
      let fm' = Fmindex.Fm_index.load path in
      check string "1-char text survives" "a" (Fmindex.Fm_index.text fm');
      check bool "1-char locate" true (Fmindex.Fm_index.find_all fm' "a" = [ 0 ]))

let test_fm_roundtrip_rates_exceed_text () =
  (* checkpoint / sample rates larger than the text: one checkpoint
     block, one sampled row — still a faithful roundtrip *)
  with_temp (fun path ->
      let text = "acgtacgt" in
      let fm = Fmindex.Fm_index.build ~occ_rate:1000 ~sa_rate:1000 text in
      Fmindex.Fm_index.save fm path;
      let fm' = Fmindex.Fm_index.load path in
      check string "text" text (Fmindex.Fm_index.text fm');
      check bool "find_all agrees" true
        (Fmindex.Fm_index.find_all fm' "acgt" = Fmindex.Fm_index.find_all fm "acgt"))

let expect_load_failure ~containing path =
  match Fmindex.Fm_index.load path with
  | exception Failure msg ->
      check bool
        (Printf.sprintf "message %S mentions %S" msg containing)
        true
        (let len = String.length containing in
         let n = String.length msg in
         let rec scan i = i + len <= n && (String.sub msg i len = containing || scan (i + 1)) in
         scan 0)
  | _ -> Alcotest.fail "corrupt file accepted"

let test_fm_load_negative_n () =
  (* a negative length in the header must be the friendly header error,
     not a raw Invalid_argument from Bytes.create *)
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "kmm-fm-index 1 -5 16 16 0\n";
      close_out oc;
      expect_load_failure ~containing:"corrupt index header" path)

let test_fm_load_bad_rates () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "kmm-fm-index 1 8 0 16 0\nxx";
      close_out oc;
      expect_load_failure ~containing:"corrupt index header" path)

let test_fm_load_trailing_garbage () =
  with_temp (fun path ->
      let fm = Fmindex.Fm_index.build "acgtacgtacgtacgtacgt" in
      Fmindex.Fm_index.save fm path;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "Z";
      close_out oc;
      expect_load_failure ~containing:"trailing garbage" path)

let test_fm_load_garbage () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "definitely not an index\nxxxx";
      close_out oc;
      match Fmindex.Fm_index.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_fm_load_truncated () =
  with_temp (fun path ->
      let fm = Fmindex.Fm_index.build "acgtacgtacgtacgtacgt" in
      Fmindex.Fm_index.save fm path;
      let content = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub content 0 (String.length content - 3));
      close_out oc;
      match Fmindex.Fm_index.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "truncated file accepted")

let test_index_file_size () =
  (* Format v4 serializes the index's own buffers — packed text (n/4),
     interleaved rank blocks (~n/2 at rate 32), SA marks (~n/8) and
     samples (~n/2 at rate 16) plus ~260 bytes of header, section table
     and checksums — trading ~1.4 bytes/base of file for a load that
     performs no reconstruction at all. *)
  with_temp (fun path ->
      let text = Dna.Sequence.to_string (Dna.Sequence.random ~state:(Random.State.make [| 4 |]) 10_000) in
      Fmindex.Fm_index.save (Fmindex.Fm_index.build text) path;
      let size = (Unix.stat path).Unix.st_size in
      check bool "about 1.4 n" true (size < 14_500 && size > 13_000))

let test_v4_header () =
  (* [save] writes the current format: other tools (and these tests) may
     rely on the version token. *)
  with_temp (fun path ->
      Fmindex.Fm_index.save (Fmindex.Fm_index.build "acgtacgt") path;
      let line = In_channel.with_open_bin path In_channel.input_line in
      match line with
      | Some l ->
          check bool "v4 magic" true
            (String.length l > 14 && String.sub l 0 14 = "kmm-fm-index 4")
      | None -> Alcotest.fail "empty index file")

let test_v4_section_corruption () =
  (* Flip bytes inside the binary sections of a saved file; every
     corruption must be rejected (in v4 by the per-section CRCs and the
     whole-file trailer CRC), never loaded quietly. *)
  with_temp (fun path ->
      let st = Random.State.make [| 9 |] in
      let text = Test_util.random_dna st 400 in
      let fm = Fmindex.Fm_index.build text in
      Fmindex.Fm_index.save fm path;
      let content = In_channel.with_open_bin path In_channel.input_all in
      let header_len = 1 + String.index content '\n' in
      let corrupt_at off =
        let b = Bytes.of_string content in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        match Fmindex.Fm_index.load path with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail (Printf.sprintf "corruption at byte %d accepted" off)
      in
      (* A byte of the section-offset table: caught by the header CRC. *)
      corrupt_at header_len;
      (* Last byte is part of the trailer CRC itself. *)
      corrupt_at (String.length content - 1);
      (* A byte in the binary sections: per-section CRC mismatch. *)
      corrupt_at (header_len + 300 + 8))

let test_v4_truncated_sections () =
  (* Truncate at several byte counts spanning every section boundary. *)
  with_temp (fun path ->
      let text = Test_util.random_dna (Random.State.make [| 11 |]) 300 in
      Fmindex.Fm_index.save (Fmindex.Fm_index.build text) path;
      let content = In_channel.with_open_bin path In_channel.input_all in
      let n = String.length content in
      List.iter
        (fun keep ->
          if keep < n then begin
            let oc = open_out_bin path in
            output_string oc (String.sub content 0 keep);
            close_out oc;
            match Fmindex.Fm_index.load path with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail (Printf.sprintf "truncation to %d bytes accepted" keep)
          end)
        [ 0; 10; 40; 100; 200; 400; 600; n - 1 ])

let test_saved_file_permissions () =
  (* [write_atomic] builds the file under a 0o600 temp name; the final
     index must still be world-readable (0o644 masked by the process
     umask), or every build-as-root / serve-as-daemon split breaks. *)
  with_temp (fun path ->
      Fmindex.Fm_index.save (Fmindex.Fm_index.build "acgtacgtacgt") path;
      let um = Unix.umask 0 in
      ignore (Unix.umask um);
      let expected = 0o644 land lnot um in
      check int "mode is 0o644 & ~umask" expected
        ((Unix.stat path).Unix.st_perm land 0o777))

let test_load_proc_style_file () =
  (* Regression: the loader must not trust a stat/channel-length size
     probe.  /proc files report st_size = 0 while holding real content;
     a size-trusting reader sees an empty image (Truncated), the chunked
     reader reads the actual bytes and reports them for what they are:
     not an index at all (Bad_magic).  Either way the failure is a typed
     result, never a stray [End_of_file]. *)
  let path = "/proc/self/status" in
  if Sys.file_exists path then
    match Fmindex.Fm_index.try_load path with
    | Error Kmm_error.Bad_magic -> ()
    | Error e ->
        Alcotest.fail
          ("proc file content was not read: " ^ Kmm_error.to_string e)
    | Ok _ -> Alcotest.fail "proc file accepted as an index"

let test_load_directory_is_typed_io () =
  match Fmindex.Fm_index.try_load "." with
  | Error (Kmm_error.Io _) -> ()
  | Error e -> Alcotest.fail ("expected Io, got " ^ Kmm_error.to_string e)
  | Ok _ -> Alcotest.fail "directory accepted as an index"

let test_load_missing_is_typed_io () =
  match Fmindex.Fm_index.try_load "/nonexistent/kmm/index.fmi" with
  | Error (Kmm_error.Io _) -> ()
  | Error e -> Alcotest.fail ("expected Io, got " ^ Kmm_error.to_string e)
  | Ok _ -> Alcotest.fail "missing file accepted as an index"

(* ------------------------------------------------------------------ *)
(* Mmap adoption: byte-identical answers to the copy loader. *)

let prop_mmap_equals_copy =
  Test_util.qtest ~count:60 "mmap load = copy load"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:400 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))
    (fun (text, pattern) ->
      with_temp (fun path ->
          let fm = Fmindex.Fm_index.build text in
          Fmindex.Fm_index.save fm path;
          let heap = Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Copy path in
          let mm = Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Mmap path in
          Fmindex.Fm_index.text mm = Fmindex.Fm_index.text heap
          && Fmindex.Fm_index.bwt mm = Fmindex.Fm_index.bwt heap
          && Fmindex.Fm_index.find_all mm pattern = Fmindex.Fm_index.find_all heap pattern
          && Fmindex.Fm_index.count mm pattern = Fmindex.Fm_index.count heap pattern))

let test_mmap_falls_back_on_pre_v4 () =
  (* Pre-v4 layouts are unaligned, so Mmap mode adopts them by copy:
     the file still loads and answers exactly like the Copy path. *)
  let heap = Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Copy "fixtures/v1-random211.fmi" in
  let mm = Fmindex.Fm_index.load ~mode:Fmindex.Fm_index.Mmap "fixtures/v1-random211.fmi" in
  check string "text" (Fmindex.Fm_index.text heap) (Fmindex.Fm_index.text mm);
  check Alcotest.(list int) "find_all" (Fmindex.Fm_index.find_all heap "acg")
    (Fmindex.Fm_index.find_all mm "acg")

let test_mmap_detects_truncation_and_header_damage () =
  (* The mmap loader skips payload CRCs by design, but size/geometry and
     header-CRC checks must still catch truncation and header bytes. *)
  with_temp (fun path ->
      let text = Test_util.random_dna (Random.State.make [| 31 |]) 500 in
      Fmindex.Fm_index.save (Fmindex.Fm_index.build text) path;
      let content = In_channel.with_open_bin path In_channel.input_all in
      let rewrite s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      rewrite (String.sub content 0 (String.length content - 5));
      (match Fmindex.Fm_index.try_load ~mode:Fmindex.Fm_index.Mmap path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated file accepted by the mmap loader");
      let b = Bytes.of_string content in
      Bytes.set b 20 'Z' (* inside the L1 header line *);
      rewrite (Bytes.to_string b);
      match Fmindex.Fm_index.try_load ~mode:Fmindex.Fm_index.Mmap path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "header damage accepted by the mmap loader")

(* ------------------------------------------------------------------ *)
(* Committed v1 fixtures: files written by the previous release must
   keep loading byte-for-byte. *)

let test_v1_fixture_paper () =
  let fm = Fmindex.Fm_index.load "fixtures/v1-paper.fmi" in
  check string "paper text" "acagaca" (Fmindex.Fm_index.text fm);
  check Alcotest.(list int) "paper search" [ 0; 4 ] (Fmindex.Fm_index.find_all fm "aca")

let test_v1_fixture_random () =
  let expected =
    In_channel.with_open_bin "fixtures/v1-random211.txt" In_channel.input_all
  in
  let fm = Fmindex.Fm_index.load "fixtures/v1-random211.fmi" in
  check string "fixture text" expected (Fmindex.Fm_index.text fm);
  (* The v1 file was written with occ_rate 7 / sa_rate 5; answers must
     match a freshly built index. *)
  let fresh = Fmindex.Fm_index.build expected in
  List.iter
    (fun pat ->
      check Alcotest.(list int) ("fixture find_all " ^ pat)
        (Fmindex.Fm_index.find_all fresh pat) (Fmindex.Fm_index.find_all fm pat))
    [ "a"; "tt"; "acg"; "gatc"; String.sub expected 100 7 ]

let test_v1_fixture_resave_is_v4 () =
  (* Loading a v1 file and saving it again migrates to the current
     format (v4). *)
  with_temp (fun path ->
      let fm = Fmindex.Fm_index.load "fixtures/v1-random211.fmi" in
      Fmindex.Fm_index.save fm path;
      let line = In_channel.with_open_bin path In_channel.input_line in
      (match line with
      | Some l -> check bool "resave v4" true (String.sub l 0 14 = "kmm-fm-index 4")
      | None -> Alcotest.fail "empty resave");
      let fm' = Fmindex.Fm_index.load path in
      check string "text survives migration" (Fmindex.Fm_index.text fm)
        (Fmindex.Fm_index.text fm');
      check bool "search survives migration" true
        (Fmindex.Fm_index.find_all fm' "acg" = Fmindex.Fm_index.find_all fm "acg"))

(* ------------------------------------------------------------------ *)
(* Committed v2 fixtures: files written by the previous release (before
   checksums) must keep loading byte-for-byte. *)

let test_v2_fixture_paper () =
  let fm = Fmindex.Fm_index.load "fixtures/v2-paper.fmi" in
  check string "paper text" "acagaca" (Fmindex.Fm_index.text fm);
  check Alcotest.(list int) "paper search" [ 0; 4 ] (Fmindex.Fm_index.find_all fm "aca")

let test_v2_fixture_random () =
  let expected =
    In_channel.with_open_bin "fixtures/v2-random317.txt" In_channel.input_all
  in
  let fm = Fmindex.Fm_index.load "fixtures/v2-random317.fmi" in
  check string "fixture text" expected (Fmindex.Fm_index.text fm);
  (* The v2 file was written with occ_rate 7 / sa_rate 5; answers must
     match a freshly built index. *)
  let fresh = Fmindex.Fm_index.build expected in
  List.iter
    (fun pat ->
      check Alcotest.(list int) ("fixture find_all " ^ pat)
        (Fmindex.Fm_index.find_all fresh pat) (Fmindex.Fm_index.find_all fm pat))
    [ "a"; "tt"; "acg"; "gatc"; String.sub expected 150 7 ]

let test_save_v2_loads () =
  (* The v2 writer is kept for fixture (re)generation and downgrade
     paths; its output must stay loadable. *)
  with_temp (fun path ->
      let text = Test_util.random_dna (Random.State.make [| 23 |]) 500 in
      let fm = Fmindex.Fm_index.build text in
      Fmindex.Fm_index.save_v2 fm path;
      let line = In_channel.with_open_bin path In_channel.input_line in
      (match line with
      | Some l -> check bool "v2 magic" true (String.sub l 0 14 = "kmm-fm-index 2")
      | None -> Alcotest.fail "empty v2 file");
      let fm' = Fmindex.Fm_index.load path in
      check string "text" text (Fmindex.Fm_index.text fm');
      check bool "find_all agrees" true
        (Fmindex.Fm_index.find_all fm' (String.sub text 17 5)
        = Fmindex.Fm_index.find_all fm (String.sub text 17 5)))

let prop_kmismatch_index_roundtrip =
  Test_util.qtest ~count:50 "kmismatch index roundtrip"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:20 ~hi:300 ()) (Test_util.dna_gen ~lo:1 ~hi:10 ())
        (int_range 0 3))
    (fun (text, pattern, k) ->
      with_temp (fun path ->
          let idx = Kmismatch.build_index text in
          Kmismatch.save_index idx path;
          let idx' = Kmismatch.load_index path in
          Kmismatch.text idx' = text
          && Kmismatch.search idx' ~engine:Kmismatch.M_tree ~pattern ~k
             = Kmismatch.search idx ~engine:Kmismatch.M_tree ~pattern ~k))

(* ------------------------------------------------------------------ *)
(* Mapper                                                               *)

let genome =
  lazy (Dna.Genome_gen.generate { Dna.Genome_gen.default with size = 8_000; seed = 21 })

let test_mapper_finds_planted_reads () =
  let g = Lazy.force genome in
  let idx = Kmismatch.of_sequence g in
  let reads =
    Dna.Read_sim.simulate
      { Dna.Read_sim.count = 30; len = 50; error_rate = 0.02;
        both_strands = true; seed = 5 }
      g
  in
  let k = 3 in
  let inputs =
    List.map (fun r -> (r.Dna.Read_sim.id, Dna.Sequence.to_string r.Dna.Read_sim.seq)) reads
  in
  let hits, summary = Mapper.map_reads idx ~reads:inputs ~k in
  check int "total" 30 summary.Mapper.total;
  List.iter
    (fun r ->
      if r.Dna.Read_sim.errors <= k then begin
        let expected_strand = if r.Dna.Read_sim.forward then `Forward else `Reverse in
        check bool
          (Printf.sprintf "read %d found at origin" r.Dna.Read_sim.id)
          true
          (List.exists
             (fun h ->
               h.Mapper.read_id = r.Dna.Read_sim.id
               && h.Mapper.pos = r.Dna.Read_sim.origin
               && h.Mapper.strand = expected_strand
               && h.Mapper.distance = r.Dna.Read_sim.errors)
             hits)
      end)
    reads

let test_mapper_single_strand () =
  let g = Lazy.force genome in
  let idx = Kmismatch.of_sequence g in
  let seq = Dna.Sequence.to_string (Dna.Sequence.sub g ~pos:100 ~len:40) in
  let rc = Dna.Sequence.to_string (Dna.Sequence.revcomp (Dna.Sequence.of_string seq)) in
  let hits_fwd, _ = Mapper.map_reads ~both_strands:false idx ~reads:[ (0, rc) ] ~k:0 in
  check int "revcomp invisible on one strand" 0 (List.length hits_fwd);
  let hits_both, _ = Mapper.map_reads ~both_strands:true idx ~reads:[ (0, rc) ] ~k:0 in
  check bool "found via reverse strand" true
    (List.exists (fun h -> h.Mapper.pos = 100 && h.Mapper.strand = `Reverse) hits_both)

let test_mapper_summary_consistency () =
  let g = Lazy.force genome in
  let idx = Kmismatch.of_sequence g in
  let reads =
    [ (0, "acgtacgtacgtacgtacgtacgtacgtacgtacgtacgt"); (1, Dna.Sequence.to_string (Dna.Sequence.sub g ~pos:0 ~len:40)) ]
  in
  let _, summary = Mapper.map_reads idx ~reads ~k:1 in
  check int "total" 2 summary.Mapper.total;
  check int "mapped = unique + ambiguous" summary.Mapper.mapped
    (summary.Mapper.unique + summary.Mapper.ambiguous)

let test_best_hits () =
  let mk read_id pos distance = { Mapper.read_id; pos; strand = `Forward; distance } in
  let hits = [ mk 0 5 2; mk 0 9 1; mk 0 12 1; mk 1 3 0 ] in
  let best = Mapper.best_hits hits in
  check int "count" 3 (List.length best);
  check bool "distance-2 hit dropped" true
    (not (List.exists (fun h -> h.Mapper.pos = 5) best))

let test_to_tsv () =
  let hits = [ { Mapper.read_id = 3; pos = 7; strand = `Reverse; distance = 2 } ] in
  check string "tsv line" "3\t7\t-\t2\n" (Mapper.to_tsv hits)

let prop_mapper_matches_engine =
  Test_util.qtest ~count:100 "mapper fwd-only = raw engine"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:20 ~hi:200 ()) (Test_util.dna_gen ~lo:1 ~hi:10 ())
        (int_range 0 3))
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      let hits, _ = Mapper.map_reads ~both_strands:false idx ~reads:[ (7, pattern) ] ~k in
      List.map (fun h -> (h.Mapper.pos, h.Mapper.distance)) hits
      = Kmismatch.search idx ~engine:Kmismatch.M_tree ~pattern ~k)

let () =
  Alcotest.run "persist"
    [
      ( "fm_serialization",
        [
          Alcotest.test_case "garbage rejected" `Quick test_fm_load_garbage;
          Alcotest.test_case "truncation rejected" `Quick test_fm_load_truncated;
          Alcotest.test_case "1-char genome roundtrip" `Quick test_fm_roundtrip_one_char;
          Alcotest.test_case "rates exceeding text" `Quick test_fm_roundtrip_rates_exceed_text;
          Alcotest.test_case "negative n rejected" `Quick test_fm_load_negative_n;
          Alcotest.test_case "bad rates rejected" `Quick test_fm_load_bad_rates;
          Alcotest.test_case "trailing garbage rejected" `Quick test_fm_load_trailing_garbage;
          Alcotest.test_case "file size ~ 1.4 n" `Quick test_index_file_size;
          Alcotest.test_case "v4 header written" `Quick test_v4_header;
          Alcotest.test_case "v4 section corruption rejected" `Quick test_v4_section_corruption;
          Alcotest.test_case "v4 truncated sections rejected" `Quick test_v4_truncated_sections;
          Alcotest.test_case "saved file is world-readable" `Quick test_saved_file_permissions;
          Alcotest.test_case "proc-style file read to EOF" `Quick test_load_proc_style_file;
          Alcotest.test_case "directory gives typed Io" `Quick test_load_directory_is_typed_io;
          Alcotest.test_case "missing file gives typed Io" `Quick test_load_missing_is_typed_io;
          Alcotest.test_case "mmap adopts pre-v4 by copy" `Quick test_mmap_falls_back_on_pre_v4;
          Alcotest.test_case "mmap catches truncation/header damage" `Quick
            test_mmap_detects_truncation_and_header_damage;
          prop_mmap_equals_copy;
          Alcotest.test_case "v1 fixture: paper text" `Quick test_v1_fixture_paper;
          Alcotest.test_case "v1 fixture: random211" `Quick test_v1_fixture_random;
          Alcotest.test_case "v1 fixture: resave migrates to v4" `Quick test_v1_fixture_resave_is_v4;
          Alcotest.test_case "v2 fixture: paper text" `Quick test_v2_fixture_paper;
          Alcotest.test_case "v2 fixture: random317" `Quick test_v2_fixture_random;
          Alcotest.test_case "save_v2 output loads" `Quick test_save_v2_loads;
          prop_fm_roundtrip;
          prop_fm_roundtrip_rates;
          prop_kmismatch_index_roundtrip;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "planted reads" `Quick test_mapper_finds_planted_reads;
          Alcotest.test_case "strand handling" `Quick test_mapper_single_strand;
          Alcotest.test_case "summary consistency" `Quick test_mapper_summary_consistency;
          Alcotest.test_case "best hits" `Quick test_best_hits;
          Alcotest.test_case "tsv" `Quick test_to_tsv;
          prop_mapper_matches_engine;
        ] );
    ]
