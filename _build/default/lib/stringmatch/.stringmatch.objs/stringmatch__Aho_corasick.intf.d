lib/stringmatch/aho_corasick.mli:
