lib/stringmatch/boyer_moore.mli:
