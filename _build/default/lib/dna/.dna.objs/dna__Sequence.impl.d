lib/dna/sequence.ml: Alphabet Array Bytes Format Printf Random String
