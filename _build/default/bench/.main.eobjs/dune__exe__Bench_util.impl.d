bench/bench_util.ml: Core Dna Hashtbl List Printf String Unix
