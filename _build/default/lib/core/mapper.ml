type hit = {
  read_id : int;
  pos : int;
  strand : [ `Forward | `Reverse ];
  distance : int;
}

type summary = { total : int; mapped : int; unique : int; ambiguous : int }

let map_reads ?(engine = Kmismatch.M_tree) ?(both_strands = true) index ~reads ~k =
  let hits = ref [] in
  let mapped = ref 0 and unique = ref 0 and ambiguous = ref 0 in
  List.iter
    (fun (read_id, sequence) ->
      let search strand pattern =
        List.map
          (fun (pos, distance) -> { read_id; pos; strand; distance })
          (Kmismatch.search index ~engine ~pattern ~k)
      in
      let fwd = search `Forward sequence in
      let rev =
        if both_strands then begin
          let rc =
            Dna.Sequence.to_string
              (Dna.Sequence.revcomp (Dna.Sequence.of_string sequence))
          in
          (* A palindromic read would report each site twice. *)
          if rc = sequence then [] else search `Reverse rc
        end
        else []
      in
      let all = fwd @ rev in
      (match all with
      | [] -> ()
      | [ _ ] ->
          incr mapped;
          incr unique
      | _ :: _ :: _ ->
          incr mapped;
          incr ambiguous);
      hits := all @ !hits)
    reads;
  let hits =
    List.sort
      (fun a b -> compare (a.read_id, a.pos, a.strand) (b.read_id, b.pos, b.strand))
      !hits
  in
  (hits, { total = List.length reads; mapped = !mapped; unique = !unique; ambiguous = !ambiguous })

let best_hits hits =
  let best = Hashtbl.create 64 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt best h.read_id with
      | Some d when d <= h.distance -> ()
      | _ -> Hashtbl.replace best h.read_id h.distance)
    hits;
  List.filter (fun h -> Hashtbl.find best h.read_id = h.distance) hits

let to_tsv hits =
  let buf = Buffer.create 256 in
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%c\t%d\n" h.read_id h.pos
           (match h.strand with `Forward -> '+' | `Reverse -> '-')
           h.distance))
    hits;
  Buffer.contents buf
