type t = {
  r : string;
  k : int;
  tables : int array array;
  lce : Suffix.Lce.t;
}

(* First [limit] mismatch positions x (1-based, x <= ov) between
   r[i+1 ..] and r[j+1 ..], scanning from [from], found with O(1) LCE
   jumps. *)
let kangaroo_from lce ~i ~j ~ov ~from ~limit =
  let rec go x acc count =
    if count >= limit || x > ov then List.rev acc
    else begin
      let l = Suffix.Lce.lce lce (i + x - 1) (j + x - 1) in
      let mis = x + l in
      if mis > ov then List.rev acc else go (mis + 1) (mis :: acc) (count + 1)
    end
  in
  go from [] 0

let build r ~k =
  if r = "" then invalid_arg "Mismatch_array.build: empty pattern";
  if k < 0 then invalid_arg "Mismatch_array.build: negative k";
  let m = String.length r in
  (* An overlap holds at most m mismatches, so any k >= m stores the
     complete R arrays; clamping keeps the k+2 limit overflow-safe. *)
  let k = min k m in
  let lce = Suffix.Lce.make r in
  let tables =
    Array.init m (fun i ->
        if i = 0 then [||]
        else
          Array.of_list
            (kangaroo_from lce ~i:0 ~j:i ~ov:(m - i) ~from:1 ~limit:(k + 2)))
  in
  { r; k; tables; lce }

let shift_table t i =
  if i < 0 || i >= Array.length t.tables then
    invalid_arg "Mismatch_array.shift_table: shift out of range";
  t.tables.(i)

let naive_pairwise a b ~limit =
  if String.length a <> String.length b then
    invalid_arg "Mismatch_array.naive_pairwise: length mismatch";
  let acc = ref [] and count = ref 0 in
  let i = ref 0 in
  while !i < String.length a && !count < limit do
    if a.[!i] <> b.[!i] then begin
      acc := (!i + 1) :: !acc;
      incr count
    end;
    incr i
  done;
  Array.of_list (List.rev !acc)

let merge ~a1 ~a2 ~beta ~gamma ~limit =
  let n1 = Array.length a1 and n2 = Array.length a2 in
  let out = ref [] and emitted = ref 0 in
  let emit pos =
    out := pos :: !out;
    incr emitted
  in
  let rec go p q =
    if !emitted >= limit then ()
    else if p >= n1 && q >= n2 then ()
    else if q >= n2 || (p < n1 && a1.(p) < a2.(q)) then begin
      (* alpha <> beta and alpha = gamma there, hence beta <> gamma. *)
      emit a1.(p);
      go (p + 1) q
    end
    else if p >= n1 || a2.(q) < a1.(p) then begin
      emit a2.(q);
      go p (q + 1)
    end
    else begin
      (* Both disagree with alpha at this position: compare directly. *)
      if beta a1.(p) <> gamma a1.(p) then emit a1.(p);
      go (p + 1) (q + 1)
    end
  in
  go 0 0;
  Array.of_list (List.rev !out)

let pairwise_lce t ~i ~j ~limit =
  let m = String.length t.r in
  if i < 0 || j < 0 || i >= m || j >= m then
    invalid_arg "Mismatch_array.pairwise_lce: shift out of range";
  let ov = m - max i j in
  Array.of_list (kangaroo_from t.lce ~i ~j ~ov ~from:1 ~limit)

let derive t ~i ~j =
  let m = String.length t.r in
  if not (0 <= i && i < j && j <= m - 1) then
    invalid_arg "Mismatch_array.derive: need 0 <= i < j <= m-1";
  let limit = t.k + 2 in
  let ov = m - j in
  let a1 = t.tables.(i) and a2 = t.tables.(j) in
  (* A truncated table is only complete up to its last entry; cap the merge
     at the smaller reliable horizon and finish with direct LCE jumps. *)
  let horizon a len_a =
    if Array.length a < limit then len_a else min len_a a.(Array.length a - 1)
  in
  let reliable = min ov (min (horizon a1 (m - i)) (horizon a2 (m - j))) in
  let keep a = Array.of_list (List.filter (fun x -> x <= reliable) (Array.to_list a)) in
  let beta x = t.r.[i + x - 1] and gamma x = t.r.[j + x - 1] in
  let merged = merge ~a1:(keep a1) ~a2:(keep a2) ~beta ~gamma ~limit in
  let n_merged = Array.length merged in
  if n_merged >= limit || reliable >= ov then merged
  else begin
    let tail =
      kangaroo_from t.lce ~i ~j ~ov ~from:(reliable + 1) ~limit:(limit - n_merged)
    in
    Array.append merged (Array.of_list tail)
  end
