examples/read_mapping.ml: Core Dna Filename List Printf Sys Unix
