examples/multi_pattern.mli:
