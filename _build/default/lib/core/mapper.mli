(** Batch read mapping on top of the k-mismatch engines — the paper's
    end-to-end workload (locate every read of a sequencing run in the
    genome, both strands, despite up to [k] mismatches). *)

type hit = {
  read_id : int;
  pos : int;  (** 0-based start on the forward strand *)
  strand : [ `Forward | `Reverse ];
      (** strand of the read that produced the hit *)
  distance : int;
}

type summary = {
  total : int;
  mapped : int;  (** reads with at least one hit *)
  unique : int;  (** reads with exactly one hit *)
  ambiguous : int;  (** reads with several hits *)
}

val map_reads :
  ?engine:Kmismatch.engine ->
  ?both_strands:bool ->
  Kmismatch.index ->
  reads:(int * string) list ->
  k:int ->
  hit list * summary
(** Map every [(id, sequence)] read; with [both_strands] (default true)
    the reverse complement is searched too and hits are reported on the
    forward coordinate system.  Hits are sorted by read id, then
    position.  Engine defaults to [M_tree]. *)

val best_hits : hit list -> hit list
(** Keep only minimal-distance hits per read (ties all kept). *)

val to_tsv : hit list -> string
(** One [read_id <tab> pos <tab> strand <tab> distance] line per hit. *)
