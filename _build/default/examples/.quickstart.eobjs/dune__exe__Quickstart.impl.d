examples/quickstart.ml: Core Fmindex Format List Printf String
