(* 2-bit packed DNA text.  Lane i lives in byte (i lsr 2) at bit offset
   (i land 3) * 2, LSB first — the byte layout shared by the in-memory
   rank blocks and the on-disk payload of every index format.  The
   buffer is a Storage.t, so it is either heap-allocated or a view over
   an mmap'd format-v4 section; readers cannot tell the difference. *)

module A1 = Bigarray.Array1

type t = { data : Storage.t; len : int }

let empty = { data = Storage.create 0; len = 0 }
let length t = t.len
let nbytes len = (len + 3) / 4

let unsafe_get t i =
  A1.unsafe_get t.data (i lsr 2) lsr ((i land 3) * 2) land 3

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed_text.get: index out of range";
  unsafe_get t i

let init n f =
  if n < 0 then invalid_arg "Packed_text.init: negative length";
  let data = Storage.create (nbytes n) in
  for i = 0 to n - 1 do
    let d = f i in
    if d < 0 || d > 3 then invalid_arg "Packed_text.init: lane code out of range";
    let b = i lsr 2 in
    A1.unsafe_set data b (A1.unsafe_get data b lor (d lsl ((i land 3) * 2)))
  done;
  { data; len = n }

let code_of_base c =
  match c with
  | 'a' | 'A' -> Some 0
  | 'c' | 'C' -> Some 1
  | 'g' | 'G' -> Some 2
  | 't' | 'T' -> Some 3
  | _ -> None

let base_of_code d =
  match d with
  | 0 -> 'a'
  | 1 -> 'c'
  | 2 -> 'g'
  | 3 -> 't'
  | _ -> invalid_arg "Packed_text.base_of_code: lane code out of range"

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | 'a' -> 0
      | 'c' -> 1
      | 'g' -> 2
      | 't' -> 3
      | c ->
          invalid_arg
            (Printf.sprintf "Packed_text.of_string: %C is not a lowercase base" c))

let to_string t = String.init t.len (fun i -> base_of_code (unsafe_get t i))

let storage t = t.data
let payload_string t = Storage.to_string t.data

let of_storage data ~len =
  if len < 0 then invalid_arg "Packed_text.of_storage: negative length";
  if Storage.length data <> nbytes len then
    invalid_arg "Packed_text.of_storage: payload size does not match length";
  (* Clear padding lanes of the last byte so byte-parallel counts stay
     exact even on dirty input.  Mapped storage is copy-on-write, so
     this never reaches the file. *)
  (if len land 3 <> 0 then
     let last = Storage.length data - 1 in
     let keep = (1 lsl ((len land 3) * 2)) - 1 in
     A1.set data last (A1.get data last land keep));
  { data; len }

let of_bytes payload ~len =
  if len < 0 then invalid_arg "Packed_text.of_bytes: negative length";
  if String.length payload <> nbytes len then
    invalid_arg "Packed_text.of_bytes: payload size does not match length";
  of_storage (Storage.of_string payload) ~len
