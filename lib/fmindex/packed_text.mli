(** 2-bit packed DNA text: the shared payload representation of the
    FM-index core.

    A {!t} stores a sequence of {e lane codes} 0..3 (['a'] = 0, ['c'] = 1,
    ['g'] = 2, ['t'] = 3 — i.e. {!Dna.Alphabet} codes shifted down by one,
    with the sentinel excluded) at four lanes per byte: lane [i] lives in
    byte [i / 4] at bit offset [(i mod 4) * 2], least significant bits
    first.  This is exactly the byte layout of the on-disk index payload
    (both format v1 and v2), so persistence is a [Bytes] copy, and it is
    the layout {!Occ} interleaves with its rank checkpoints.

    Unused lanes in the final byte are always zero — builders guarantee
    it and {!of_bytes} enforces it — so word/byte-parallel population
    counts over whole bytes never see garbage lanes. *)

type t

val empty : t

val length : t -> int
(** Number of lanes (bases). *)

val get : t -> int -> int
(** [get t i] is the lane code (0..3) at position [i].
    Raises [Invalid_argument] when out of range. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check. *)

val init : int -> (int -> int) -> t
(** [init n f] packs lane codes [f 0 .. f (n-1)]; each must be in 0..3
    (raises [Invalid_argument] otherwise). *)

val of_string : string -> t
(** Pack a lowercase [acgt] string.  Raises [Invalid_argument] on any
    other character (including the sentinel and uppercase). *)

val to_string : t -> string
(** Unpack back to a lowercase [acgt] string. *)

val bytes : t -> Bytes.t
(** The underlying packed buffer, [ceil (length / 4)] bytes.  Shared,
    not copied: treat as read-only. *)

val of_bytes : string -> len:int -> t
(** [of_bytes payload ~len] adopts a packed payload (as produced by
    {!bytes} or read from an index file) holding [len] lanes.  Raises
    [Invalid_argument] if [payload] is not exactly [ceil (len / 4)]
    bytes.  Trailing lanes of the final byte are cleared, so a file
    whose padding bits are dirty still yields a canonical value. *)

val base_of_code : int -> char
(** [base_of_code d] is the base character of lane code [d] (0..3). *)

val code_of_base : char -> int option
(** Lane code of a base character; [None] for non-ACGT (case folded). *)
