(* One experiment per table/figure of the paper's evaluation (§V).  Every
   experiment prints the same rows/series the paper reports, on the
   laptop-scaled synthetic stand-ins documented in DESIGN.md. *)

open Bench_util

(* --- Table 1: characteristics of genomes -------------------------------- *)

let table1 () =
  section "Table 1: characteristics of genomes (synthetic stand-ins, ~1/1000 scale)";
  let rows =
    List.map
      (fun (name, profile) ->
        let g, dt = time (fun () -> genome name) in
        ignore profile;
        [ name; string_of_int (Dna.Sequence.length g); fmt_time dt ])
      Dna.Genome_gen.paper_table1
  in
  table ~header:[ "Genome"; "Genome size (bp)"; "gen time" ] rows;
  note "paper sizes: 2,909,701,677 / 1,464,443,456 / 290,094,217 / 103,022,290 / 16,728,967";
  note "ours are scaled by ~1/1000 with the same ordering and ratios"

(* --- index size (paper SS:II claims: BWT 0.5-2 B/char, suffix tree 12-17) *)

let index_size () =
  section "Index sizes: BWT (three rankall compression rates) vs suffix tree";
  note "packed-equivalent accounting as in the paper: 2-bit characters,";
  note "32-bit rankall checkpoints and SA samples, 20 B per suffix-tree node";
  let rows =
    List.map
      (fun (name, _) ->
        let g = genome name in
        let text = Dna.Sequence.to_string g in
        let n = String.length text in
        (* BWT index, packed: 2 bits/char for L, sigma-1 32-bit counters
           every [rate] positions, one 32-bit SA sample every 16 rows. *)
        let bwt_bytes rate =
          let l = n / 4 in
          let rankall = 4 * 4 * (n / rate) in
          let samples = 4 * (n / 16) in
          float_of_int (l + rankall + samples) /. float_of_int n
        in
        (* Suffix tree, packed: measured node count (built on the smaller
           genomes, extrapolated as 1.7 n nodes otherwise) at 20 B/node
           (start, end, child, sibling, suffix link as 32-bit fields). *)
        let st_nodes =
          if n <= 300_000 then
            float_of_int (Suffix.Suffix_tree.count_nodes (Suffix.Suffix_tree.build text))
          else 1.7 *. float_of_int n
        in
        let st_cell =
          Printf.sprintf "%.1f B/char%s"
            (st_nodes *. 20.0 /. float_of_int n)
            (if n <= 300_000 then "" else " (extrapolated)")
        in
        [
          name;
          string_of_int n;
          Printf.sprintf "%.2f B/char" (bwt_bytes 4);
          Printf.sprintf "%.2f B/char" (bwt_bytes 16);
          Printf.sprintf "%.2f B/char" (bwt_bytes 128);
          st_cell;
        ])
      Dna.Genome_gen.paper_table1
  in
  table
    ~header:[ "Genome"; "bp"; "BWT rate=4"; "BWT rate=16"; "BWT rate=128"; "suffix tree" ]
    rows;
  note "paper SS:II: suffix trees 12-17 bytes/char, BWT 0.5-2 bytes/char";
  note "expected shape: BWT an order of magnitude smaller, shrinking with";
  note "sparser rankalls (our OCaml runtime representations are fatter; the";
  note "packed numbers above are what the stored structures would occupy)"

(* --- Table 2: number of leaf nodes of the trees produced by A() --------- *)

let table2 () =
  section "Table 2: leaf nodes of trees created during search (M-tree vs S-tree)";
  let name = "C. elegans (WBcel235)" in
  let idx = index name in
  note "target: %s stand-in (%d bp), 10 reads per cell (paper: 500 on Rat, 2.9 Gbp)"
    name (Core.Kmismatch.length idx);
  let cells = [ (2, 50); (3, 100); (4, 150); (5, 200) ] in
  note "paper cells k/len = 5/50, 10/100, 20/150, 30/200; ours scale k to the";
  note "error rates reachable at 1/1000 genome scale, keeping the k-and-len growth";
  let rows =
    List.map
      (fun (k, len) ->
        let rs = reads ~name ~count:10 ~len ~seed:(100 + k) () in
        let accumulate engine into =
          List.iter
            (fun pattern ->
              let r =
                Core.Kmismatch.run idx
                  (Core.Kmismatch.Query.make ~engine ~pattern ~k ())
              in
              Core.Stats.merge ~into r.Core.Kmismatch.Response.stats)
            rs
        in
        let m_stats = Core.Stats.create () in
        accumulate Core.Kmismatch.M_tree m_stats;
        let s_stats = Core.Stats.create () in
        accumulate Core.Kmismatch.S_tree s_stats;
        [
          Printf.sprintf "%d/%d" k len;
          fmt_count (Core.Stats.total_leaves m_stats);
          fmt_count m_stats.Core.Stats.derivations;
          fmt_count (Core.Stats.total_leaves s_stats);
        ])
      cells
  in
  table
    ~header:[ "k/len"; "M-tree leaves (A())"; "derivations"; "S-tree leaves (BWT)" ]
    rows;
  note "paper Table 2 (S-trees): 12K / 1.7M / 6.5M / 1000M - growing with k and len";
  note "expected shape: leaf counts grow steeply with k and len.  The paper's";
  note "n' << n gap needs the 10^6-10^9-leaf trees of a Gbp-scale target; at";
  note "1/1000 scale the delta-pruned trees are small enough that pair";
  note "repetitions (hence M-tree collapses) are rare and the counts coincide"

(* --- Fig 11(a): average time vs k ---------------------------------------- *)

let fig11a () =
  section "Fig 11(a): average matching time vs k (reads of length 100)";
  let idx = index main_target in
  note "target: %s stand-in (%d bp); 15 reads/point (paper: 500 reads, 2.9 Gbp Rat)"
    main_target (Core.Kmismatch.length idx);
  let ks = [ 1; 2; 3; 4; 5 ] in
  let rs = reads ~count:15 ~len:100 ~seed:11 () in
  let rows =
    List.map
      (fun k ->
        string_of_int k
        :: List.map
             (fun (_, engine) -> fmt_time (avg_search_time idx engine ~reads:rs ~k))
             paper_engines)
      ks
  in
  table ~header:("k" :: List.map fst paper_engines) rows;
  note "paper Fig 11a: A() fastest at every k; Amir's second; BWT and Cole's";
  note "comparable with a small-k/large-k crossover.  At 1/1000 scale the";
  note "delta-pruned trees are ~10^4 smaller and pair repetitions are rare, so";
  note "A() tracks BWT within a small constant instead of beating it; the";
  note "deriv-stress experiment isolates the regime where derivations do fire"

(* --- Fig 11(b): average time vs read length ------------------------------ *)

let fig11b () =
  section "Fig 11(b): average matching time vs read length (k = 5)";
  let idx = index main_target in
  let k = 5 in
  let lens = [ 100; 150; 200; 250; 300 ] in
  note "target: %s stand-in; 10 reads/point, k=%d; error rate scaled to 3/len"
    main_target k;
  note "so reads of every length carry ~3 expected errors (iso-difficulty;";
  note "at wgsim's fixed 2%% rate, 250+ bp reads would exceed the k budget)";
  let rows =
    List.map
      (fun len ->
        let rs = reads ~count:10 ~len ~error_rate:(3.0 /. float_of_int len)
                   ~seed:(200 + len) () in
        string_of_int len
        :: List.map
             (fun (_, engine) -> fmt_time (avg_search_time idx engine ~reads:rs ~k))
             paper_engines)
      lens
  in
  table ~header:("read length" :: List.map fst paper_engines) rows;
  note "paper Fig 11b: only BWT and Cole's are sensitive to read length;";
  note "Amir's and A() stay nearly flat (ours: A() inherits BWT's mild growth";
  note "at this scale, Amir's per-read cost is dominated by the O(n) scan)"

(* --- Fig 12: total time vs number of reads ------------------------------- *)

let fig12 () =
  section "Fig 12: total matching time vs number of reads (len=100, k=5)";
  let idx = index main_target in
  let k = 5 in
  let counts = [ 10; 20; 30; 40; 50 ] in
  note "target: %s stand-in (paper sweeps 100..500 reads; scaled 1/10)" main_target;
  let all = reads ~count:50 ~len:100 ~seed:31 () in
  let rows =
    List.map
      (fun count ->
        let rs = List.filteri (fun i _ -> i < count) all in
        string_of_int count
        :: List.map
             (fun (_, engine) ->
               fmt_time
                 (time_unit (fun () ->
                      List.iter
                        (fun pattern ->
                          ignore
                            (Core.Kmismatch.run idx
                               (Core.Kmismatch.Query.make ~engine ~pattern ~k
                                  ())))
                        rs)))
             paper_engines)
      counts
  in
  table ~header:("reads" :: List.map fst paper_engines) rows;
  note "expected shape: linear growth for every method, same ordering as Fig 11(a)"

(* --- Fig 13: across genomes ---------------------------------------------- *)

let fig13 () =
  section "Fig 13: average matching time across genomes (len=100, k=5)";
  let k = 5 in
  note "10 reads per genome; suffix-tree (Cole's) skipped above 300 kbp for memory";
  let rows =
    List.map
      (fun (name, _) ->
        let idx = index name in
        let n = Core.Kmismatch.length idx in
        let rs = reads ~name ~count:10 ~len:(min 100 n) ~seed:41 () in
        [ name; fmt_count n ]
        @ List.map
            (fun (label, engine) ->
              if label = "Cole's" && n > 300_000 then "(skipped)"
              else fmt_time (avg_search_time idx engine ~reads:rs ~k))
            paper_engines)
      Dna.Genome_gen.paper_table1
  in
  table ~header:([ "Genome"; "bp" ] @ List.map fst paper_engines) rows;
  note "expected shape: times grow with genome size; A() fastest on each genome"

(* --- ablations ------------------------------------------------------------ *)

let ablation () =
  section "Ablations: the design choices called out in DESIGN.md";
  let idx = index main_target in
  let k = 5 in
  let rs = reads ~count:10 ~len:150 ~seed:51 () in

  (* 1. M-tree derivation machinery: chain skipping on/off, and the value
     of derivations at all (S-tree without the delta heuristic is exactly
     the M-tree with derivations disabled). *)
  let m_skip =
    avg_search_time ~stats:(Core.Stats.create ()) idx Core.Kmismatch.M_tree ~reads:rs ~k
  in
  let m_noskip =
    let total =
      time_unit (fun () ->
          List.iter
            (fun pattern ->
              ignore
                (Core.Kmismatch.run idx
                   (Core.Kmismatch.Query.make
                      ~config:
                        {
                          Core.M_tree.default_config with
                          Core.M_tree.chain_skip = false;
                        }
                      ~engine:Core.Kmismatch.M_tree ~pattern ~k ())))
            rs)
    in
    total /. float_of_int (List.length rs)
  in
  let s_plain = avg_search_time idx Core.Kmismatch.S_tree_no_delta ~reads:rs ~k in
  let s_delta = avg_search_time idx Core.Kmismatch.S_tree ~reads:rs ~k in
  let hybrid = avg_search_time idx Core.Kmismatch.Hybrid ~reads:rs ~k in
  table
    ~header:[ "variant"; "avg time/read" ]
    [
      [ "A() full (R_ij chain skip)"; fmt_time m_skip ];
      [ "A() node-by-node derivation"; fmt_time m_noskip ];
      [ "S-tree + delta heuristic"; fmt_time s_delta ];
      [ "S-tree plain (no reuse at all)"; fmt_time s_plain ];
      [ "Hybrid FM+verify (extension)"; fmt_time hybrid ];
    ];

  (* 2. rankall compression rate: space/time trade-off of SS:III.A.
     The packed Occ rounds the rate up to a power of two in 32..65536
     (one interleaved block per checkpoint), so the sweep starts at the
     finest representable geometry instead of the old byte-scan's 4. *)
  let text = Dna.Sequence.to_string (genome main_target) in
  let rev_text = Dna.Sequence.to_string (Dna.Sequence.rev (genome main_target)) in
  let rows =
    List.map
      (fun rate ->
        let fm = Fmindex.Fm_index.build ~occ_rate:rate rev_text in
        let space =
          List.fold_left (fun a (_, b) -> a + b) 0 (Fmindex.Fm_index.space_report fm)
        in
        let rs' = List.filteri (fun i _ -> i < 5) rs in
        let dt =
          time_unit (fun () ->
              List.iter
                (fun pattern ->
                  ignore (Core.M_tree.search fm ~pattern ~k))
                rs')
        in
        [
          string_of_int rate;
          Printf.sprintf "%.2f B/char" (float_of_int space /. float_of_int (String.length text));
          fmt_time (dt /. 5.0);
        ])
      [ 32; 64; 256; 1024 ]
  in
  section "Ablation: rankall checkpoint rate (space vs time)";
  table ~header:[ "occ rate"; "index size"; "avg time/read" ] rows


(* --- derivation stress: the regime the paper's mechanism targets -------- *)

let deriv_stress () =
  section "Derivation stress: reads spanning short tandem repeats";
  note "target: 100 kbp random + 40 kbp STR region (20 bp unit, 3%% divergence)";
  note "+ 100 kbp random; read of length 100 drawn inside the STR.  Here the";
  note "same <x, [lo, hi]> pairs recur at shifted pattern offsets, so Algorithm";
  note "A's hash table hits and subtrees are derived rather than re-searched.";
  let st = Random.State.make [| 5 |] in
  let rand len = String.init len (fun _ -> [| 'a'; 'c'; 'g'; 't' |].(Random.State.int st 4)) in
  let mutate rate str =
    String.map
      (fun c ->
        if Random.State.float st 1.0 < rate then
          [| 'a'; 'c'; 'g'; 't' |].(Random.State.int st 4)
        else c)
      str
  in
  let unit_str = rand 20 in
  let str_region = String.concat "" (List.init 2000 (fun _ -> mutate 0.03 unit_str)) in
  let genome = rand 100_000 ^ str_region ^ rand 100_000 in
  let idx = Core.Kmismatch.build_index genome in
  let fm = Core.Kmismatch.fm_rev idx in
  let pattern = String.sub genome 120_037 100 in
  let rows =
    List.concat_map
      (fun k ->
        let run name f =
          let stats = Core.Stats.create () in
          let hits, dt = time (fun () -> f stats) in
          [
            string_of_int k;
            name;
            fmt_time dt;
            string_of_int (List.length hits);
            fmt_count stats.Core.Stats.rank_calls;
            fmt_count stats.Core.Stats.derivations;
            fmt_count (Core.Stats.total_leaves stats);
          ]
        in
        [
          run "BWT (S-tree)" (fun stats -> Core.S_tree.search ~stats fm ~pattern ~k);
          run "A() store_width=1" (fun stats ->
              Core.M_tree.search ~stats
                ~config:{ Core.M_tree.default_config with store_width = 1 }
                fm ~pattern ~k);
          run "A() default" (fun stats -> Core.M_tree.search ~stats fm ~pattern ~k);
          run "Hybrid (extension)" (fun stats ->
              Core.Hybrid.search ~stats fm ~text:genome ~pattern ~k);
        ])
      [ 2; 4; 6 ]
  in
  table
    ~header:[ "k"; "method"; "time"; "hits"; "rank calls"; "derivations"; "leaves" ]
    rows;
  note "expected shape: with store_width=1, A()'s derivations fire by the";
  note "thousands and its rank-call count drops 10-20%% below BWT's - the";
  note "paper's O(kn'+n) operation-count advantage.  At this n, rank calls";
  note "are cache-resident and cheap while node materialization is not, so";
  note "the operation savings do not yet convert into wall-clock savings;";
  note "at the paper's 2.9 Gbp scale the balance tips the other way."
