(** Unified front door for string matching with k mismatches.

    An {!index} is built once per target and shared by all engines; each
    engine then answers queries [(pattern, k)] with the full list of
    [(position, distance)] occurrences.  All engines return identical
    results — they differ only in cost:

    - [M_tree]: the paper's Algorithm A, O(kn' + n + m log m);
    - [S_tree]: the BWT baseline of ref. [34] with the delta heuristic;
    - [Cole]: suffix-tree brute force (ref. [14]);
    - [Amir]: online mark-and-verify (ref. [2]);
    - [Hybrid]: FM search to a unique row, then direct verification (an
      extension beyond the paper, in the style of practical aligners);
    - [Kangaroo]: online O(kn) Landau-Vishkin;
    - [Naive]: online O(mn) scanning;
    - [Bidir]: bidirectional FM-index executing optimum search schemes
      (Kianfar & Pockrandt; see {!Oss}) — the state of the art at
      [k >= 2]. *)

type engine = ..
(** An engine is an open enumeration: the built-in constructors below
    ship with the library, and any module can add one with
    [type Kmismatch.engine += Mine] plus a single
    {!Engine_registry.register} call — that one registration makes the
    new engine reachable from {!engine_of_string}, the [kmm --engine]
    help text, the fuzz oracle's subject list and every dispatch site.
    An engine value that was never registered is rejected by {!try_run}
    as [Bad_input]. *)

type engine +=
  | M_tree
  | S_tree
  | S_tree_no_delta
  | Hybrid
  | Cole
  | Amir
  | Kangaroo
  | Naive
  | Bidir
      (** The built-in engines, pre-registered in declaration order.
          (Formerly the closed [type engine] variant; kept as ordinary
          constructors so existing matches and expressions compile
          unchanged.) *)

type index

(** {1 The engine registry}

    One table drives everything that enumerates or dispatches engines.
    Mirrors [Bench_registry]: an entry carries the engine value, its
    wire/CLI name, a one-line doc string, capability flags, a
    pre-forcing hook for the mapper's parallel fan-out, and the search
    function itself.  {!all_engines}, {!engine_name},
    {!engine_of_string}, the CLI's [--engine] help, the server's
    engine parsing and the oracle's subject list are all derived views
    of this table. *)
module Engine_registry : sig
  type caps = {
    online : bool;
        (** scans the unpacked text string (its [prepare] forces it) *)
    needs_tree : bool;  (** requires the suffix tree (Cole) *)
    scales : bool;
        (** cheap enough per query to join large-text benchmark
            campaigns (excludes the O(mn)/O(kn)-per-window references) *)
  }

  type run_args = {
    pattern : string;  (** validated, normalized, nonempty *)
    k : int;  (** clamped to the pattern length, nonnegative *)
    stats : Stats.t;  (** per-query counter sink *)
    obs : Obs.t;  (** per-query observability sink *)
    config : M_tree.config option;  (** engine tuning; most ignore it *)
  }
  (** What {!Kmismatch.run} hands an engine: the validated query plus
      the per-query sinks. *)

  type entry = {
    engine : engine;  (** the (nullary) constructor this entry answers *)
    name : string;
        (** wire/CLI name, lowercase with [-] separators; looked up
            spelling-insensitively (see {!Kmismatch.engine_of_string}) *)
    doc : string;  (** one line for [--engine] help *)
    caps : caps;
    prepare : index -> unit;
        (** force the derived index components this engine reads, so a
            parallel fan-out does not serialize on the first query *)
    run : index -> run_args -> (int * int) list;
        (** answer one validated query: every [(position, distance)]
            with [distance <= k], ascending by position *)
  }

  val register : entry -> unit
  (** Append an entry to the table.  Raises [Invalid_argument] if the
      name (after spelling normalization) or the engine value is already
      registered. *)

  val all : unit -> entry list
  (** Every entry, in registration order (built-ins first). *)

  val find : engine -> entry option
  val find_name : string -> entry option
  (** Lookup by engine value / by name ([-]/[_]-insensitive, case
      folded). *)

  val names : unit -> string list
end

val all_engines : unit -> engine list
(** Registered engines in registration order — a derived view of
    {!Engine_registry.all}, so it includes engines registered after
    startup. *)

val engine_name : engine -> string
(** The registry name of an engine ("m-tree", "bidir", ...);
    ["unregistered-engine"] for a value never registered. *)

val engine_of_string : string -> engine option
(** Parse an engine name.  Case-insensitive, and [-]/[_] are
    interchangeable (and optional): ["s-tree-nodelta"],
    ["s_tree_no_delta"] and ["STreeNoDelta"] all name [S_tree_no_delta]. *)

val engine_of_string_err : string -> (engine, Kmm_error.t) result
(** {!engine_of_string} with a typed rejection: an unknown name comes
    back as [Error (Bad_input _)] whose message lists every valid
    registry name. *)

val engine_names : unit -> string list
(** The registered names, registration order ({!Engine_registry.names}). *)

val build_index : ?occ_rate:int -> ?sa_rate:int -> string -> index
(** Build the shared index of a target text (lowercase [acgt]; validated
    and normalized exactly once — the reverse is derived from the parsed
    sequence, not re-parsed).  The FM-index of the reversed text is built
    eagerly; the suffix tree (used only by [Cole]) and the bidirectional
    index (used only by [Bidir]) lazily. *)

val of_sequence : Dna.Sequence.t -> index

val text : index -> string
(** The forward target text.  For a loaded index this is derived from
    the FM component on first use and cached behind a domain-safe memo
    (so an mmap'd load stays O(1) until an engine actually needs the
    string). *)

val length : index -> int
(** Target length, answered from the FM component without materializing
    the text. *)

val fm_rev : index -> Fmindex.Fm_index.t

val suffix_tree : index -> Suffix.Suffix_tree.t
(** The suffix tree of the forward text, built on first use (domain-safe
    memo). *)

val packed_text : index -> Fmindex.Packed_text.t
(** The forward text 2-bit packed — what the word-parallel verifiers
    ({!Fmindex.Packed_text.hamming_le}) run against.  Derived on first
    use by reversing the FM component's packed payload (n/4 bytes, no
    string round-trip) and cached behind a domain-safe memo. *)

val bidir : index -> Fmindex.Bidir.t
(** The bidirectional index (forward rank side paired with the shared
    reverse FM component), built on first use behind a domain-safe memo.
    Only the [Bidir] engine forces it. *)

val flush_verify : Obs.t -> Fmindex.Packed_text.Telemetry.counters -> unit
(** Record a verification-telemetry delta as [verify.calls] /
    [verify.words] / [verify.early_exits] counters.  Used by {!run}
    around each query and by the mapper around its hit re-checking, so
    both report under the same names. *)

(** {1 Queries and responses}

    The primary entry point is {!run}: a {!Query.t} names the engine,
    pattern, budget and (optionally) an observability sink; the
    {!Response.t} carries the hits together with the engine counters and
    per-phase wall-clock timings of exactly that query.  {!search} and
    {!positions} are thin compatibility wrappers over {!run}. *)

module Query : sig
  type t = {
    engine : engine;  (** which algorithm answers the query *)
    pattern : string;  (** raw pattern; normalized (case) by {!run} *)
    k : int;  (** mismatch budget; clamped to [length pattern] *)
    config : M_tree.config option;
        (** [M_tree] tuning; ignored by other engines *)
    obs : Obs.t;
        (** sink receiving the [query] span, [engine.*]/[fm.*] counters
            and engine-internal spans; {!Obs.noop} disables all of it *)
    deadline : Deadline.t;
        (** the query's compute budget as an absolute monotonic instant;
            {!Deadline.none} (the default) runs to completion.  Enforced
            cooperatively: the engines poll it in their hot loops, and
            an expired query comes back from {!try_run} as
            [Error (Timeout _)] with all partial work discarded. *)
  }

  val make :
    ?config:M_tree.config ->
    ?obs:Obs.t ->
    ?deadline:Deadline.t ->
    engine:engine ->
    pattern:string ->
    k:int ->
    unit ->
    t
  (** Build a query.  [obs] defaults to {!Obs.noop}, [config] to the
      engine's own default, [deadline] to {!Deadline.none}. *)
end

module Response : sig
  type t = {
    hits : (int * int) list;
        (** every [(position, distance)] with [distance <= k], ascending
            by position *)
    stats : Stats.t;
        (** engine counters of this query alone (fresh, not shared) *)
    timings : (string * float) list;
        (** per-phase wall-clock seconds, in execution order:
            [("normalize", _); ("search", _)] *)
  }

  val positions : t -> int list
  (** The hit positions only. *)
end

val try_run : index -> Query.t -> (Response.t, Kmm_error.t) result
(** Execute one query, reporting validation failures as values: an
    empty pattern, a non-ACGT character, [k < 0], or an engine value
    that was never registered comes back as
    [Error (Kmm_error.Bad_input _)] (message identical to the
    [Invalid_argument] that {!run} would raise) instead of an exception.
    This is the entry point for long-running callers — the [kmm serve]
    daemon and the CLI — that must answer a bad query, not crash on it.
    A valid query behaves exactly as under {!run}.

    The query's [deadline] is enforced here: a budget already expired on
    entry is answered [Error (Timeout _)] without touching the index,
    and one that expires mid-search (detected by the engines'
    cooperative {!Deadline.poll} checkpoints, within
    {!Deadline.poll_stride} hot-loop iterations) comes back as
    [Error (Timeout _)] with the partial hit set discarded — a timed-out
    query never returns a truncated answer. *)

val run : index -> Query.t -> Response.t
(** Execute one query.  The pattern is normalized (case); raises
    [Invalid_argument] if it is empty, contains non-ACGT characters, or
    [k < 0] — a thin raising wrapper over {!try_run}.

    Degenerate budgets are uniform across engines: any [k >= length
    pattern] is equivalent to [k = length pattern] (every window position
    is returned at its true distance), and the budget is clamped there
    internally, so even [k = max_int] is safe.

    When the query's [obs] sink is active, [run] records a ["query"] span
    (with engine, [k] and [m] as trace args), bumps [query.count] and
    [query.hits], and flushes the engine's {!Stats} into [engine.*]
    counters; if {!Fmindex.Fm_index.Telemetry} is also armed, the
    rank-layer effort of the query lands in [fm.*] counters.  All of
    these are per-record sums, so per-domain sinks {!Obs.merge} to the
    sequential totals. *)

val search :
  ?stats:Stats.t ->
  ?config:M_tree.config ->
  index ->
  engine:engine ->
  pattern:string ->
  k:int ->
  (int * int) list
(** Compatibility wrapper: [run] with a throwaway query, returning the
    hits and (when [stats] is given) merging the query's counters into
    it.  Same validation and clamping as {!run}. *)

val positions :
  ?stats:Stats.t -> index -> engine:engine -> pattern:string -> k:int -> int list
(** Positions only (wrapper over {!search}). *)

val save_index : index -> string -> unit
(** Persist the index (its FM component; ~n/4 bytes).  The suffix tree is
    rebuilt lazily on demand after {!load_index}. *)

val load_index : ?mode:Fmindex.Fm_index.mode -> string -> index
(** Reload an index written by {!save_index}.  Raises [Failure] on
    invalid files.  [mode] (default [Copy]) is forwarded to
    {!Fmindex.Fm_index.load}: [Mmap] adopts the bulk sections in place
    for O(1) cold start. *)

val try_load_index :
  ?mode:Fmindex.Fm_index.mode -> string -> (index, Kmm_error.t) result
(** {!load_index} with the failure reported as a typed error (see
    {!Fmindex.Fm_index.try_load}): corruption, truncation, version and
    I/O problems each get their own constructor instead of a [Failure]
    message. *)
