lib/stringmatch/boyer_moore.ml: Array Char List String
