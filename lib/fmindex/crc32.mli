(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320], reflected, init/xorout
    [0xFFFFFFFF]) — the checksum guarding every section of the on-disk
    index format v3.

    The implementation is the standard byte-at-a-time table walk; values
    are plain non-negative [int]s in [0, 2^32) (OCaml ints are 63-bit).
    Matches the reference implementation used by zlib/PNG, so fixtures
    can be cross-checked with external tools. *)

val string : ?init:int -> string -> int
(** CRC of a whole string.  [init] (default 0) is a previous CRC to
    continue from, so [string ~init:(string a) b = string (a ^ b)]. *)

val sub : ?init:int -> string -> pos:int -> len:int -> int
(** CRC of a substring, without copying.
    @raise Invalid_argument on an out-of-range slice. *)

val bytes : ?init:int -> Bytes.t -> int
