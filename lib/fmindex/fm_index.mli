(** FM-index: BWT-based full-text index with backward search and locate.

    Rows of the conceptual Burrows-Wheeler matrix of [s ^ "$"] are numbered
    [0 .. n], and an interval is a half-open row range [(lo, hi)].  Backward
    search extends a matched string one character *to the left*; this is the
    paper's [search(z, L_v)] primitive. *)

type t

type interval = int * int
(** Half-open row range [lo, hi); nonempty iff [lo < hi]. *)

val build : ?occ_rate:int -> ?sa_rate:int -> string -> t
(** Index the DNA text [s] (lowercase [acgt]; the sentinel is appended
    internally).  [occ_rate] is the rank checkpoint spacing (default 32,
    quantized by {!Occ} to a power of two); [sa_rate] the suffix-array
    sampling rate for {!locate} (default 16). *)

val length : t -> int
(** Length of the indexed text (sentinel excluded). *)

val text : t -> string
(** The indexed text.  The index keeps the text 2-bit packed; the
    unpacked string is materialized on first use and cached behind a
    domain-safe memo, so the call is O(n) once and O(1) after, from any
    number of domains. *)

val packed_text : t -> Packed_text.t
(** The indexed text in its native 2-bit packed form — shared with the
    index (possibly an mmap'd view), never copied.  This is what the
    word-parallel verifiers ({!Packed_text.hamming_le}) run against. *)

val bwt : t -> string

val whole : t -> interval
(** The interval of every row, [(0, n+1)]. *)

val extend : t -> int -> interval -> interval option
(** [extend t c (lo, hi)] narrows the interval by prepending character code
    [c]: the result covers exactly the rows whose suffix starts with [c]
    followed by the previous match.  [None] if the extension is empty. *)

val interval_of_char : t -> int -> interval option
(** Rows whose first character is the given code — the paper's [F_x]. *)

val search : t -> string -> interval option
(** Backward search of a pattern; [None] when absent.  Patterns are case
    folded ([ACGT] matches [acgt]); a pattern containing any character
    outside ACGT occurs nowhere and yields [None] rather than raising. *)

val count : t -> string -> int
(** Number of occurrences of a pattern in the text.  Same pattern
    normalization as {!search}: invalid patterns count 0. *)

val locate : t -> interval -> int list
(** Sorted 0-based starting positions of the suffixes in the interval.
    Rows are resolved through the sampled suffix array by LF-walking. *)

val locate_into : t -> interval -> int array -> unit
(** [locate_into t (lo, hi) dst] writes the position of row [lo + i] into
    [dst.(i)] for [i < hi - lo], unsorted and without allocating — the
    batched primitive under {!locate}.  Raises [Invalid_argument] if the
    interval is out of range or [dst] is shorter than [hi - lo]. *)

val find_all : t -> string -> int list
(** [search] then [locate]; sorted positions of the pattern.  Invalid
    patterns (outside ACGT after case folding) yield []. *)

(** {1 Telemetry}

    Hot-path counters for the observability layer ([lib/obs]): rank
    primitives executed, interleaved Occ blocks decoded, and LF-walk
    effort spent by locate.  Counters are kept in {e domain-local}
    storage so concurrent engines never contend and per-domain deltas
    merge to the sequential totals.  The hook is disabled by default;
    when disabled, every instrumented entry point pays one
    load-and-branch (measured < 2% end to end, see EXPERIMENTS.md), and
    flipping the [compiled] constant in the implementation removes even
    that. *)
module Telemetry : sig
  type counters = {
    mutable rank_ops : int;
        (** rank primitives: one per {!extend}/{!extend_all} call, one
            per backward-search step of {!count}, one per LF step of a
            locate walk *)
    mutable block_decodes : int;
        (** interleaved Occ blocks decoded (width-1 intervals decode one
            block, general intervals two) *)
    mutable locate_walks : int;  (** {!locate}d rows (LF walks started) *)
    mutable locate_steps : int;  (** total LF steps across those walks *)
  }

  val set_enabled : bool -> unit
  (** Globally enable/disable the hook.  Set it {e before} spawning
      worker domains; the flag is a process-wide atomic. *)

  val is_enabled : unit -> bool

  val snapshot : unit -> counters
  (** A copy of the calling domain's counters.  Callers measure a region
      by taking a snapshot before and after and {!diff}ing. *)

  val diff : since:counters -> counters -> counters
  (** [diff ~since now] is the per-field difference [now - since]. *)
end

val space_report : t -> (string * int) list
(** Named byte sizes of the index components, one entry per owned buffer
    (packed rank blocks, SA mark bitvector + rank directory, SA samples,
    C array, and the 2-bit packed text); entries sum to the index's
    resident footprint, with no component counted twice.  (A text string
    forced through {!text} is a cache, not an owned component, and is
    not listed.) *)

val extend_all : t -> interval -> los:int array -> his:int array -> unit
(** One-pass variant of {!extend} for every character code at once:
    afterwards the extension of the interval by code [c] is
    [(los.(c), his.(c))], nonempty iff [los.(c) < his.(c)].  Both arrays
    must have length 5 (the alphabet size).  Costs two block scans
    instead of eight. *)

(** {1 Persistence}

    The on-disk format is {b v4}: a CRC-guarded ASCII header carrying a
    section-offset table, then the 2-bit packed text, the interleaved
    rank blocks, the superblock counters, and the SA mark bitvector and
    samples — the index's own buffers written verbatim at 8-byte-aligned
    offsets — plus an 8-byte trailer ([kmm4] + the CRC-32 of the whole
    preceding file).  The alignment and offset table exist so the bulk
    sections can be adopted {e in place} from [Unix.map_file]: see
    {!mode}.  Any single-byte corruption or truncation of a v4 file is
    detected by the Copy-mode reader with a typed {!Kmm_error.t}.
    v1–v3 files from earlier releases are still read (guarded by
    committed fixtures). *)

type sink = {
  sink_write : string -> unit;  (** append a chunk; may raise *)
  sink_flush : unit -> unit;  (** flush + fsync barrier before rename; may raise *)
}
(** The byte stream [save] writes through.  Test harnesses interpose on
    it (via the [wrap] argument) to inject I/O faults — ENOSPC, crashes,
    short or corrupted writes — without touching the production path. *)

val serialize : t -> string
(** The complete v4 file image in memory — what {!save} writes and
    {!try_of_string} parses.  Separated from file I/O so corruption
    sweeps and fuzzers can work on images directly. *)

val serialize_v3 : t -> string
(** The legacy v3 image (one header line, unaligned sections, same
    CRC-32s and trailer), kept so compatibility tests and benchmarks can
    produce fresh v3 files. *)

val save : ?fsync:bool -> ?wrap:(sink -> sink) -> t -> string -> unit
(** Persist the index to [path] in format v4, {b atomically}: the image
    is streamed to a fresh temp file in the same directory, flushed and
    fsynced ([fsync] defaults to [true]), and renamed over [path] only
    then.  If anything fails mid-save — disk full, a crash simulated by
    a [wrap]-injected fault, an exception from the OS — the temp file is
    removed and [path] keeps its previous contents (or stays absent);
    all fds are released via [Fun.protect] on every path.  The saved
    file is readable by other users: the temp file's 0o600 creation mode
    is widened to 0o644 masked by the process umask before the data is
    written. *)

val save_v3 : ?fsync:bool -> ?wrap:(sink -> sink) -> t -> string -> unit
(** Atomic writer for {!serialize_v3}. *)

val save_v2 : ?fsync:bool -> ?wrap:(sink -> sink) -> t -> string -> unit
(** The legacy v2 writer (no checksums), kept so compatibility tests can
    produce fresh v2 files.  Same atomic protocol as {!save}. *)

val write_atomic : ?fsync:bool -> ?wrap:(sink -> sink) -> string -> string -> unit
(** [write_atomic image path]: the atomic temp-file + fsync + rename
    protocol of {!save}, for any byte image.  The corpus manifest writer
    reuses it so shard files and manifests get the same crash-safety and
    permission guarantees as index files. *)

val try_of_string : string -> (t, Kmm_error.t) result
(** Parse an index image of any supported version.  A v2/v3/v4 file is
    adopted directly (structural validation, no reconstruction); v1 goes
    through the original rebuild path.  Never raises on bad input: a
    forged header, flipped byte, truncation or trailing garbage comes
    back as [Error] with the failing section attributed — and never as
    [Out_of_memory], [End_of_file] or a silently wrong index. *)

type mode =
  | Copy  (** read the whole file and adopt heap copies (any version) *)
  | Mmap
      (** map the file and adopt the bulk sections in place (v4; earlier
          versions silently fall back to [Copy]) *)

val try_load : ?mode:mode -> string -> (t, Kmm_error.t) result
(** Read and parse a file: {!try_of_string} plus an [Error (Io _)] for
    filesystem failures.  The fd is released on every path (an mmap'd
    index keeps its pages alive without the fd).

    [mode] (default [Copy]) selects the adoption strategy.  [Copy] runs
    the full verification: header CRC, per-section CRCs, whole-file
    trailer CRC and the structural recount.  [Mmap] validates the
    header (CRC + geometry), the exact file size and the trailer magic —
    so truncation and header corruption are still typed errors — but
    trusts the bulk payloads, skipping everything O(n): cold-start
    becomes O(header + superblocks + marks) and the OS shares the
    mapped pages across processes.  Run [kmm verify] (or a [Copy] load)
    when payload integrity must be proven.  A v1–v3 file requested as
    [Mmap] is loaded by copy. *)

val load : ?mode:mode -> string -> t
(** Raising wrapper over {!try_load}, kept for callers that prefer
    exceptions: raises [Failure] with a descriptive message on a file
    that is not a valid index, and re-raises the original exception
    ([Sys_error]/[Unix_error]) when the file cannot be read at all. *)
