bench/main.mli:
