lib/core/mismatch_array.ml: Array List String Suffix
