(** FM-index: BWT-based full-text index with backward search and locate.

    Rows of the conceptual Burrows-Wheeler matrix of [s ^ "$"] are numbered
    [0 .. n], and an interval is a half-open row range [(lo, hi)].  Backward
    search extends a matched string one character *to the left*; this is the
    paper's [search(z, L_v)] primitive. *)

type t

type interval = int * int
(** Half-open row range [lo, hi); nonempty iff [lo < hi]. *)

val build : ?occ_rate:int -> ?sa_rate:int -> string -> t
(** Index the DNA text [s] (lowercase [acgt]; the sentinel is appended
    internally).  [occ_rate] is the rank checkpoint spacing (default 16);
    [sa_rate] the suffix-array sampling rate for {!locate} (default 16). *)

val length : t -> int
(** Length of the indexed text (sentinel excluded). *)

val text : t -> string
val bwt : t -> string

val whole : t -> interval
(** The interval of every row, [(0, n+1)]. *)

val extend : t -> int -> interval -> interval option
(** [extend t c (lo, hi)] narrows the interval by prepending character code
    [c]: the result covers exactly the rows whose suffix starts with [c]
    followed by the previous match.  [None] if the extension is empty. *)

val interval_of_char : t -> int -> interval option
(** Rows whose first character is the given code — the paper's [F_x]. *)

val search : t -> string -> interval option
(** Backward search of a pattern; [None] when absent. *)

val count : t -> string -> int
(** Number of occurrences of a pattern in the text. *)

val locate : t -> interval -> int list
(** Sorted 0-based starting positions of the suffixes in the interval.
    Rows are resolved through the sampled suffix array by LF-walking. *)

val find_all : t -> string -> int list
(** [search] then [locate]; sorted positions of the pattern. *)

val space_report : t -> (string * int) list
(** Named byte-size estimates of the index components. *)

val extend_all : t -> interval -> los:int array -> his:int array -> unit
(** One-pass variant of {!extend} for every character code at once:
    afterwards the extension of the interval by code [c] is
    [(los.(c), his.(c))], nonempty iff [los.(c) < his.(c)].  Both arrays
    must have length 5 (the alphabet size).  Costs two block scans
    instead of eight. *)

val save : t -> string -> unit
(** Persist the index to a file.  The format stores the 2-bit-packed BWT
    (plus the sentinel position and the checkpoint/sampling rates); the
    derived structures are rebuilt on load, so the file costs ~n/4 bytes. *)

val load : string -> t
(** Reload an index written by {!save}.  Raises [Failure] on a file that
    is not a valid index. *)
