type node = {
  id : int;
  children : (char, node) Hashtbl.t;
  mutable fail : node option;  (* None only before BFS / at the root *)
  mutable out : (int * int) list;  (* (pattern index, pattern length) *)
}

type t = { root : node; n_states : int }

let build patterns =
  Array.iter
    (fun p -> if p = "" then invalid_arg "Aho_corasick.build: empty pattern")
    patterns;
  let next_id = ref 0 in
  let new_node () =
    let node =
      { id = !next_id; children = Hashtbl.create 4; fail = None; out = [] }
    in
    incr next_id;
    node
  in
  let root = new_node () in
  Array.iteri
    (fun idx p ->
      let node = ref root in
      String.iter
        (fun c ->
          match Hashtbl.find_opt !node.children c with
          | Some child -> node := child
          | None ->
              let child = new_node () in
              Hashtbl.replace !node.children c child;
              node := child)
        p;
      !node.out <- (idx, String.length p) :: !node.out)
    patterns;
  (* Breadth-first failure links; outputs are merged down the links. *)
  let queue = Queue.create () in
  Hashtbl.iter
    (fun _c child ->
      child.fail <- Some root;
      Queue.add child queue)
    root.children;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Hashtbl.iter
      (fun c child ->
        let rec resolve f =
          match Hashtbl.find_opt f.children c with
          | Some s -> s
          | None -> ( match f.fail with None -> f | Some f' -> resolve f')
        in
        let target = resolve (Option.get u.fail) in
        let target = if target == child then root else target in
        child.fail <- Some target;
        child.out <- child.out @ target.out;
        Queue.add child queue)
      u.children
  done;
  { root; n_states = !next_id }

let step t node c =
  let rec go u =
    match Hashtbl.find_opt u.children c with
    | Some v -> v
    | None -> ( match u.fail with None -> t.root | Some f -> go f)
  in
  go node

let scan t text ~f =
  let state = ref t.root in
  String.iteri
    (fun i c ->
      state := step t !state c;
      List.iter
        (fun (pattern, len) -> f ~pattern ~pos:(i - len + 1))
        !state.out)
    text

let find_all t text =
  let acc = ref [] in
  scan t text ~f:(fun ~pattern ~pos -> acc := (pattern, pos) :: !acc);
  List.rev !acc
