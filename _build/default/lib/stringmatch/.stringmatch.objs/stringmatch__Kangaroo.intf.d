lib/stringmatch/kangaroo.mli:
