(* Robustness suite: the crash-safety and self-verification guarantees
   of the v3 on-disk format, the fault-injection harness behind them,
   and the fail-soft behavior of the batch layers.

   The contracts under test:

   - {e detection}: every single-byte corruption (and every single-bit
     flip) of a saved v3 index is rejected by [try_of_string] with a
     typed error — never accepted with wrong contents, never an untyped
     exception;
   - {e truncation}: every strict prefix of a saved index (v2 and v3)
     is rejected with [Truncated], [Corrupt] or [Bad_magic] — never
     [Out_of_memory], [End_of_file] or a quiet wrong answer;
   - {e atomicity}: a save that fails partway (ENOSPC, crash, short
     write) leaves the target either absent or byte-identical to its
     previous contents, and leaves no temp file behind; a save whose
     bytes are silently corrupted in flight produces a file that load
     rejects;
   - {e fail-soft}: a bad read degrades to a typed [skipped] entry
     without perturbing the rest of the batch, identically at every
     [domains]/[chunk_size]; a raising pool task surfaces as
     [Task_failed] with its task id after the job drains, at
     [domains = 1] and [domains > 1] alike. *)

open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fm_of_seed ?occ_rate ?sa_rate ~len seed =
  Fmindex.Fm_index.build ?occ_rate ?sa_rate
    (Test_util.random_dna (Random.State.make [| seed |]) len)

(* A human-readable tag for assertion messages. *)
let error_tag = function
  | Kmm_error.Bad_magic -> "bad-magic"
  | Kmm_error.Unsupported_version _ -> "unsupported-version"
  | Kmm_error.Truncated _ -> "truncated"
  | Kmm_error.Corrupt _ -> "corrupt"
  | Kmm_error.Io _ -> "io"
  | Kmm_error.Bad_input _ -> "bad-input"
  | Kmm_error.Internal _ -> "internal"
  | Kmm_error.Timeout _ -> "timeout"
  | Kmm_error.Overloaded _ -> "overloaded"

(* ------------------------------------------------------------------ *)
(* Detection: exhaustive single-byte and single-bit corruption          *)

let test_v3_byte_sweep () =
  let fm = fm_of_seed ~len:151 5 in
  let image = Fmindex.Fm_index.serialize fm in
  let n = String.length image in
  let bad = ref 0 in
  for off = 0 to n - 1 do
    let corrupted =
      Fault.corrupt_string (Fault.Bit_flip { offset = off; bit = 0 }) image
    in
    (* bit 0 only warms up; the 0xff flip below covers all bits at once *)
    (match Fmindex.Fm_index.try_of_string corrupted with
    | Error _ -> ()
    | Ok _ -> incr bad);
    let b = Bytes.of_string image in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
    match Fmindex.Fm_index.try_of_string (Bytes.unsafe_to_string b) with
    | Error _ -> ()
    | Ok _ ->
        incr bad;
        Printf.eprintf "byte %d of %d: 0xff flip accepted\n" off n
  done;
  check int (Printf.sprintf "all %d byte corruptions rejected" n) 0 !bad

let test_v3_bit_sweep () =
  (* Every single-bit flip on a smaller image: the finest-grained
     corruption a disk or wire can inflict. *)
  let fm = fm_of_seed ~occ_rate:7 ~sa_rate:5 ~len:67 6 in
  let image = Fmindex.Fm_index.serialize fm in
  let n = String.length image in
  let bad = ref 0 in
  for off = 0 to n - 1 do
    for bit = 0 to 7 do
      let corrupted = Fault.corrupt_string (Fault.Bit_flip { offset = off; bit }) image in
      match Fmindex.Fm_index.try_of_string corrupted with
      | Error _ -> ()
      | Ok _ ->
          incr bad;
          Printf.eprintf "bit %d of byte %d (of %d) accepted\n" bit off n
    done
  done;
  check int (Printf.sprintf "all %d bit flips rejected" (8 * n)) 0 !bad

let test_error_messages_typed () =
  (* A few spot checks that the right constructor comes back. *)
  let fm = fm_of_seed ~len:120 7 in
  let image = Fmindex.Fm_index.serialize fm in
  (match Fmindex.Fm_index.try_of_string "" with
  | Error (Kmm_error.Truncated _ | Kmm_error.Bad_magic) -> ()
  | Error e ->
      Alcotest.fail ("empty file: expected truncated/bad-magic, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "empty file accepted");
  (match Fmindex.Fm_index.try_of_string "not an index\nxxxx" with
  | Error Kmm_error.Bad_magic -> ()
  | Error e -> Alcotest.fail ("garbage: expected bad-magic, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Fmindex.Fm_index.try_of_string "kmm-fm-index 9 1 1 1 0\nx" with
  | Error (Kmm_error.Unsupported_version 9) -> ()
  | Error e -> Alcotest.fail ("v9: expected unsupported-version, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "v9 accepted");
  (* flip a byte in the middle of the image: some section CRC trips *)
  let mid = String.length image / 2 in
  match
    Fmindex.Fm_index.try_of_string
      (Fault.corrupt_string (Fault.Bit_flip { offset = mid; bit = 3 }) image)
  with
  | Error (Kmm_error.Corrupt _ | Kmm_error.Truncated _) -> ()
  | Error e -> Alcotest.fail ("mid flip: expected corrupt, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "mid flip accepted"

(* ------------------------------------------------------------------ *)
(* Truncation: every strict prefix of v2 and v3 images is rejected      *)

let acceptable_truncation = function
  | Kmm_error.Truncated _ | Kmm_error.Corrupt _ | Kmm_error.Bad_magic -> true
  | Kmm_error.Unsupported_version _ | Kmm_error.Io _ | Kmm_error.Bad_input _
  | Kmm_error.Internal _ | Kmm_error.Timeout _ | Kmm_error.Overloaded _ ->
      false

let truncation_rejected image keep =
  match Fmindex.Fm_index.try_of_string (String.sub image 0 keep) with
  | Error e -> acceptable_truncation e
  | Ok _ -> false

let test_every_truncation_rejected () =
  (* Exhaustive over both formats on small indexes. *)
  let fm = fm_of_seed ~occ_rate:7 ~sa_rate:5 ~len:83 8 in
  List.iter
    (fun image ->
      for keep = 0 to String.length image - 1 do
        if not (truncation_rejected image keep) then
          Alcotest.failf "truncation to %d of %d bytes accepted" keep
            (String.length image)
      done)
    [
      Fmindex.Fm_index.serialize fm;
      (let path = Filename.temp_file "kmmrob" ".fmi" in
       Fun.protect
         ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
         (fun () ->
           Fmindex.Fm_index.save_v2 fm path;
           In_channel.with_open_bin path In_channel.input_all));
    ]

let prop_truncation_rejected =
  Test_util.qtest ~count:60 "random prefix of random index rejected (v2+v3)"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:1 ~hi:260 ()) (int_range 0 1_000_000) bool)
    (fun (text, cut, use_v2) ->
      let fm = Fmindex.Fm_index.build text in
      let image =
        if use_v2 then begin
          let path = Filename.temp_file "kmmrob" ".fmi" in
          Fun.protect
            ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
            (fun () ->
              Fmindex.Fm_index.save_v2 fm path;
              In_channel.with_open_bin path In_channel.input_all)
        end
        else Fmindex.Fm_index.serialize fm
      in
      let keep = cut mod String.length image in
      truncation_rejected image keep)

(* ------------------------------------------------------------------ *)
(* The mmap reader's (weaker, but still closed) detection contract:
   every corruption of the CRC-guarded header region and every
   truncation is rejected; a payload corruption may load — the payload
   CRC sweep is deliberately skipped, that is the cold-start win — but
   geometry validation must keep queries from ever crashing on it.     *)

let test_v4_mmap_header_sweep () =
  let fm = fm_of_seed ~len:151 5 in
  let image = Fmindex.Fm_index.serialize fm in
  (* L1 line + 184-byte section table + 14-byte hcrc line *)
  let hdr_len = String.index image '\n' + 1 + 184 + 14 in
  let path = Filename.temp_file "kmmrob" ".fmi" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let write s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      let bad = ref 0 in
      for off = 0 to hdr_len - 1 do
        let b = Bytes.of_string image in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
        write (Bytes.unsafe_to_string b);
        match Fmindex.Fm_index.try_load ~mode:Fmindex.Fm_index.Mmap path with
        | Error _ -> ()
        | Ok _ ->
            incr bad;
            Printf.eprintf "mmap: header byte %d of %d: 0xff flip accepted\n" off hdr_len
      done;
      check int (Printf.sprintf "all %d header corruptions rejected" hdr_len) 0 !bad;
      (* every strict prefix *)
      for keep = 0 to String.length image - 1 do
        write (String.sub image 0 keep);
        match Fmindex.Fm_index.try_load ~mode:Fmindex.Fm_index.Mmap path with
        | Error e when acceptable_truncation e -> ()
        | Error e -> Alcotest.failf "mmap: truncation to %d: wrong error %s" keep (error_tag e)
        | Ok _ -> Alcotest.failf "mmap: truncation to %d of %d accepted" keep (String.length image)
      done;
      (* Payload flips: the mmap loader accepts them by design (no O(n)
         CRC sweep).  The containment contract is weaker but real:
         queries on the corrupted index terminate with an answer —
         possibly wrong — or a clean bounds/walk exception; never
         memory-unsafety, never a hang (the LF walk is bounded by
         sa_rate steps).  [kmm verify] is the tool that detects this. *)
      let n = String.length image in
      List.iter
        (fun off ->
          let b = Bytes.of_string image in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
          write (Bytes.unsafe_to_string b);
          match Fmindex.Fm_index.try_load ~mode:Fmindex.Fm_index.Mmap path with
          | Error _ -> ()
          | Ok fm' ->
              List.iter
                (fun p ->
                  match Fmindex.Fm_index.find_all fm' p with
                  | _ -> ()
                  | exception (Invalid_argument _ | Failure _) -> ())
                [ "a"; "acgt"; "ttttttttt" ])
        [ hdr_len + 8; (hdr_len + n) / 2; n - 9 ])

(* ------------------------------------------------------------------ *)
(* Atomicity: failed saves leave the old file (or nothing), no temp     *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kmmrob-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let no_stray_files ~dir ~expect =
  let actual = List.sort compare (Array.to_list (Sys.readdir dir)) in
  check bool
    (Printf.sprintf "no stray files (found: %s)" (String.concat ", " actual))
    true
    (actual = List.sort compare expect)

let test_failed_save_preserves_old () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "idx.fmi" in
      let fm_old = fm_of_seed ~len:200 10 in
      let fm_new = fm_of_seed ~len:300 11 in
      Fmindex.Fm_index.save fm_old path;
      let old_bytes = read_file path in
      let image_len = String.length (Fmindex.Fm_index.serialize fm_new) in
      let offsets = [ 0; 1; 17; 100; image_len / 2; image_len - 1 ] in
      List.iter
        (fun off ->
          List.iter
            (fun plan ->
              (match
                 Fmindex.Fm_index.save ~wrap:(Fault.wrap plan) fm_new path
               with
              | () ->
                  Alcotest.failf "save survived %s" (Fault.plan_to_string plan)
              | exception Fault.Injected _ -> ());
              check bool
                (Printf.sprintf "old file intact after %s"
                   (Fault.plan_to_string plan))
                true
                (read_file path = old_bytes);
              no_stray_files ~dir ~expect:[ "idx.fmi" ])
            [ Fault.Enospc_after off; Fault.Crash_after off; Fault.Short_write off ])
        offsets;
      (* and the old index still loads fine *)
      match Fmindex.Fm_index.try_load path with
      | Ok fm -> check bool "old index still loads" true (Fmindex.Fm_index.length fm = 200)
      | Error e -> Alcotest.fail ("old index unreadable: " ^ Kmm_error.to_string e))

let test_failed_save_fresh_target_absent () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fresh.fmi" in
      let fm = fm_of_seed ~len:150 12 in
      (match Fmindex.Fm_index.save ~wrap:(Fault.wrap (Fault.Enospc_after 40)) fm path with
      | () -> Alcotest.fail "save survived injected ENOSPC"
      | exception Fault.Injected _ -> ());
      check bool "target never appeared" false (Sys.file_exists path);
      no_stray_files ~dir ~expect:[])

let test_bitflip_during_save_detected () =
  (* A save whose stream is silently corrupted completes (nothing to
     observe at write time) — the damage must then be caught at load. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "flipped.fmi" in
      let fm = fm_of_seed ~len:180 13 in
      let image_len = String.length (Fmindex.Fm_index.serialize fm) in
      List.iter
        (fun off ->
          Fmindex.Fm_index.save
            ~wrap:(Fault.wrap (Fault.Bit_flip { offset = off; bit = off mod 8 }))
            fm path;
          match Fmindex.Fm_index.try_load path with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "bit flip at offset %d survived load" off)
        [ 0; 3; 50; image_len / 2; image_len - 1 ])

let test_truncate_wrap_detected () =
  (* A silently-truncating sink (lost tail, no error reported): rename
     still happens, load must reject. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "short.fmi" in
      let fm = fm_of_seed ~len:140 14 in
      let image_len = String.length (Fmindex.Fm_index.serialize fm) in
      List.iter
        (fun keep ->
          Fmindex.Fm_index.save ~wrap:(Fault.wrap (Fault.Truncate_at keep)) fm path;
          match Fmindex.Fm_index.try_load path with
          | Error e ->
              check bool "typed truncation error" true (acceptable_truncation e)
          | Ok _ -> Alcotest.failf "truncation to %d bytes survived load" keep)
        [ 0; 25; image_len / 2; image_len - 1 ])

let test_corrupt_file_roundtrip () =
  (* [Fault.corrupt_file] — the post-hoc flavor used by CLI-level tests —
     must agree with [corrupt_string]. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "c.fmi" in
      let fm = fm_of_seed ~len:90 15 in
      Fmindex.Fm_index.save fm path;
      Fault.corrupt_file (Fault.Bit_flip { offset = 33; bit = 2 }) path;
      match Fmindex.Fm_index.try_load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt_file output accepted")

(* ------------------------------------------------------------------ *)
(* Work_pool: fault propagation at domains = 1 and domains = 4          *)

let pool_fault_case ~domains () =
  Work_pool.with_pool ~domains (fun pool ->
      let ran = Array.make 16 false in
      (match
         Work_pool.run pool ~tasks:16 (fun ~worker:_ ~task ->
             ran.(task) <- true;
             if task = 9 then raise Exit)
       with
      | () -> Alcotest.fail "exception swallowed"
      | exception Work_pool.Task_failed { task; exn = Exit } ->
          check int "failing task id" 9 task
      | exception e -> Alcotest.fail ("unexpected " ^ Printexc.to_string e));
      (* the job drained: every task ran despite the failure *)
      Array.iteri
        (fun i r -> check bool (Printf.sprintf "task %d ran" i) true r)
        ran;
      (* the pool survives a failed job *)
      let out = Work_pool.map_array pool ~f:succ [| 10; 20 |] in
      check bool "pool alive" true (out = [| 11; 21 |]))

let test_pool_fault_seq () = pool_fault_case ~domains:1 ()
let test_pool_fault_par () = pool_fault_case ~domains:4 ()

let test_pool_first_failure_reported () =
  (* Sequential path: with several failing tasks, the lowest task id is
     the one reported (deterministic by construction). *)
  Work_pool.with_pool ~domains:1 (fun pool ->
      match
        Work_pool.run pool ~tasks:8 (fun ~worker:_ ~task ->
            if task mod 3 = 2 then failwith (string_of_int task))
      with
      | () -> Alcotest.fail "exception swallowed"
      | exception Work_pool.Task_failed { task; exn = Failure msg } ->
          check int "first failing task" 2 task;
          check Alcotest.string "its message" "2" msg
      | exception e -> Alcotest.fail ("unexpected " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Mapper: fail-soft batches                                            *)

let mapper_genome =
  lazy
    (Dna.Genome_gen.generate { Dna.Genome_gen.default with size = 3_000; seed = 44 })

let mapper_index = lazy (Kmismatch.of_sequence (Lazy.force mapper_genome))

let planted pos len =
  Dna.Sequence.to_string (Dna.Sequence.sub (Lazy.force mapper_genome) ~pos ~len)

let test_mapper_fail_soft () =
  let idx = Lazy.force mapper_index in
  let n = Kmismatch.length idx in
  let good0 = planted 100 40 and good4 = planted 900 40 in
  let reads =
    [
      (0, good0);
      (1, "acgnacgt");               (* non-ACGT base *)
      (2, "");                       (* empty *)
      (3, String.make (n + 5) 'a');  (* longer than the reference *)
      (4, good4);
    ]
  in
  let hits, summary = Mapper.map_reads idx ~reads ~k:1 in
  check int "total" 5 summary.Mapper.total;
  check int "three reads skipped" 3 (List.length summary.Mapper.skipped);
  List.iter
    (fun (id, e) ->
      check bool
        (Printf.sprintf "read %d skipped with bad-input (%s)" id (error_tag e))
        true
        (error_tag e = "bad-input"))
    summary.Mapper.skipped;
  check bool "skipped ids in batch order" true
    (List.map fst summary.Mapper.skipped = [ 1; 2; 3 ]);
  (* surviving reads are exactly as if the bad reads never existed *)
  let clean_hits, clean_summary =
    Mapper.map_reads idx ~reads:[ (0, good0); (4, good4) ] ~k:1
  in
  check bool "surviving hits identical" true (hits = clean_hits);
  check int "mapped matches clean batch" clean_summary.Mapper.mapped
    summary.Mapper.mapped;
  (* no hit carries a skipped read's id *)
  List.iter
    (fun h ->
      check bool "hit from surviving read" true
        (h.Mapper.read_id = 0 || h.Mapper.read_id = 4))
    hits

let test_mapper_fail_soft_deterministic () =
  (* The skipped list and hits are byte-identical across every
     domains/chunk_size combination. *)
  let idx = Lazy.force mapper_index in
  let reads =
    List.init 23 (fun i ->
        if i mod 5 = 2 then (i, "nnn")
        else (i, planted ((i * 131) mod 2_000) 30))
  in
  let det (hits, summary) = (hits, Mapper.deterministic_summary summary) in
  let base = Mapper.map_reads ~domains:1 idx ~reads ~k:1 in
  List.iter
    (fun (domains, chunk_size) ->
      let got = Mapper.map_reads ~domains ~chunk_size idx ~reads ~k:1 in
      check bool
        (Printf.sprintf "domains=%d chunk=%d identical" domains chunk_size)
        true
        (det got = det base))
    [ (1, 1); (2, 3); (3, 1); (4, 7); (4, 64) ];
  let _, summary = base in
  check int "skipped count" 5 (List.length summary.Mapper.skipped)

let test_mapper_all_reads_bad () =
  let idx = Lazy.force mapper_index in
  let hits, summary = Mapper.map_reads idx ~reads:[ (7, ""); (8, "xyz") ] ~k:0 in
  check int "no hits" 0 (List.length hits);
  check int "all skipped" 2 (List.length summary.Mapper.skipped);
  check int "none mapped" 0 summary.Mapper.mapped

(* ------------------------------------------------------------------ *)
(* Typed error channels: Fasta, Kmismatch, exit codes                   *)

let test_fasta_typed_errors () =
  (match Dna.Fasta.try_parse_string ">r1\nacgtqq\n" with
  | Error (Kmm_error.Bad_input msg) ->
      check bool "mentions the record" true
        (String.length msg > 0)
  | Error e -> Alcotest.fail ("expected bad-input, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "invalid FASTA accepted");
  (match Dna.Fasta.try_parse_string ">ok\nacgt\n" with
  | Ok [ r ] -> check Alcotest.string "name" "ok" r.Dna.Fasta.name
  | Ok _ -> Alcotest.fail "wrong record count"
  | Error e -> Alcotest.fail ("valid FASTA rejected: " ^ Kmm_error.to_string e));
  match Dna.Fasta.try_read_file "/nonexistent/kmm-no-such-file.fa" with
  | Error (Kmm_error.Io _) -> ()
  | Error e -> Alcotest.fail ("expected io, got " ^ error_tag e)
  | Ok _ -> Alcotest.fail "missing file read"

let test_kmismatch_try_load () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "k.fmi" in
      let idx = Kmismatch.build_index "acgtacgtacgtacgt" in
      Kmismatch.save_index idx path;
      (match Kmismatch.try_load_index path with
      | Ok idx' ->
          check Alcotest.string "text survives" (Kmismatch.text idx)
            (Kmismatch.text idx')
      | Error e -> Alcotest.fail ("roundtrip failed: " ^ Kmm_error.to_string e));
      Fault.corrupt_file (Fault.Truncate_at 60) path;
      (match Kmismatch.try_load_index path with
      | Error e -> check bool "typed error" true (acceptable_truncation e)
      | Ok _ -> Alcotest.fail "truncated index accepted");
      match Kmismatch.try_load_index (Filename.concat dir "absent.fmi") with
      | Error (Kmm_error.Io _) -> ()
      | Error e -> Alcotest.fail ("expected io, got " ^ error_tag e)
      | Ok _ -> Alcotest.fail "absent index loaded")

let test_exit_codes_distinct () =
  let errors =
    [
      Kmm_error.Bad_input "x";
      Kmm_error.Bad_magic;
      Kmm_error.Unsupported_version 9;
      Kmm_error.Truncated "x";
      Kmm_error.Corrupt (Kmm_error.Header, "x");
      Kmm_error.Io Not_found;
      Kmm_error.Internal "x";
    ]
  in
  let codes = List.map Kmm_error.exit_code errors in
  check int "all distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c ->
      check bool (Printf.sprintf "code %d reserved-free" c) true (c > 1 && c < 125))
    codes

let () =
  Random.self_init ();
  Alcotest.run "robustness"
    [
      ( "detection",
        [
          Alcotest.test_case "v3 exhaustive byte sweep" `Quick test_v3_byte_sweep;
          Alcotest.test_case "v3 exhaustive bit sweep" `Quick test_v3_bit_sweep;
          Alcotest.test_case "typed constructors" `Quick test_error_messages_typed;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "v4 mmap header sweep + prefixes" `Quick
            test_v4_mmap_header_sweep;
          Alcotest.test_case "every prefix rejected (v2+v3)" `Quick
            test_every_truncation_rejected;
          prop_truncation_rejected;
        ] );
      ( "atomic_save",
        [
          Alcotest.test_case "failed save preserves old file" `Quick
            test_failed_save_preserves_old;
          Alcotest.test_case "failed save: fresh target absent" `Quick
            test_failed_save_fresh_target_absent;
          Alcotest.test_case "in-flight bit flip detected at load" `Quick
            test_bitflip_during_save_detected;
          Alcotest.test_case "silent truncation detected at load" `Quick
            test_truncate_wrap_detected;
          Alcotest.test_case "corrupt_file detected" `Quick test_corrupt_file_roundtrip;
        ] );
      ( "work_pool_faults",
        [
          Alcotest.test_case "task failure, domains=1" `Quick test_pool_fault_seq;
          Alcotest.test_case "task failure, domains=4" `Quick test_pool_fault_par;
          Alcotest.test_case "first failure reported" `Quick
            test_pool_first_failure_reported;
        ] );
      ( "mapper_fail_soft",
        [
          Alcotest.test_case "bad reads skipped, batch survives" `Quick
            test_mapper_fail_soft;
          Alcotest.test_case "deterministic across domains" `Quick
            test_mapper_fail_soft_deterministic;
          Alcotest.test_case "all reads bad" `Quick test_mapper_all_reads_bad;
        ] );
      ( "typed_errors",
        [
          Alcotest.test_case "fasta" `Quick test_fasta_typed_errors;
          Alcotest.test_case "kmismatch try_load_index" `Quick test_kmismatch_try_load;
          Alcotest.test_case "exit codes distinct" `Quick test_exit_codes_distinct;
        ] );
    ]
