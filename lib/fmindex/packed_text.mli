(** 2-bit packed DNA text: the shared payload representation of the
    FM-index core.

    A {!t} stores a sequence of {e lane codes} 0..3 (['a'] = 0, ['c'] = 1,
    ['g'] = 2, ['t'] = 3 — i.e. {!Dna.Alphabet} codes shifted down by one,
    with the sentinel excluded) at four lanes per byte: lane [i] lives in
    byte [i / 4] at bit offset [(i mod 4) * 2], least significant bits
    first.  This is exactly the byte layout of the on-disk index payload
    (every format version), so persistence is a flat copy — or, for
    format v4, no copy at all: {!of_storage} adopts an mmap'd section in
    place.

    Unused lanes in the final byte are always zero — builders guarantee
    it and the adopting constructors enforce it — so word/byte-parallel
    population counts over whole bytes never see garbage lanes. *)

type t

val empty : t

val length : t -> int
(** Number of lanes (bases). *)

val get : t -> int -> int
(** [get t i] is the lane code (0..3) at position [i].
    Raises [Invalid_argument] when out of range. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check. *)

val init : int -> (int -> int) -> t
(** [init n f] packs lane codes [f 0 .. f (n-1)]; each must be in 0..3
    (raises [Invalid_argument] otherwise). *)

val of_string : string -> t
(** Pack a lowercase [acgt] string.  Raises [Invalid_argument] on any
    other character (including the sentinel and uppercase). *)

val to_string : t -> string
(** Unpack back to a lowercase [acgt] string. *)

val storage : t -> Storage.t
(** The underlying packed buffer, [ceil (length / 4)] bytes.  Shared,
    not copied: treat as read-only. *)

val payload_string : t -> string
(** The packed buffer copied out as a string (the on-disk section
    payload). *)

val of_storage : Storage.t -> len:int -> t
(** [of_storage data ~len] adopts a packed buffer — heap or mmap'd —
    holding [len] lanes, without copying.  Raises [Invalid_argument] if
    [data] is not exactly [ceil (len / 4)] bytes.  Trailing lanes of
    the final byte are cleared in place (copy-on-write for mapped
    storage), so a file whose padding bits are dirty still yields a
    canonical value. *)

val of_bytes : string -> len:int -> t
(** [of_bytes payload ~len] copies a packed payload string into a fresh
    heap buffer and adopts it; same contract as {!of_storage}. *)

val base_of_code : int -> char
(** [base_of_code d] is the base character of lane code [d] (0..3). *)

val code_of_base : char -> int option
(** Lane code of a base character; [None] for non-ACGT (case folded). *)

val rev : t -> t
(** [rev t] is a fresh packed text holding the lanes of [t] in reverse
    order — e.g. the forward genome recovered from an index built over
    the reversed text, without materializing either as a string. *)

(** {1 SWAR count tables}

    Shared 256-entry per-byte lookup tables for byte- and word-parallel
    lane counting.  [Occ] aliases {!lane_count_table} as its rank scan
    table, so the rank kernel and the verification kernel can never
    drift. *)

val lane_count_table : int array
(** [lane_count_table.(byte)] packs the number of lanes of [byte] equal
    to lane code 1 (bits 0..15), 2 (bits 16..31) and 3 (bits 32..47).
    The count of code 0 is derivable as [lanes - c1 - c2 - c3], which
    makes zero-padding lanes harmless. *)

val mismatch_count_table : int array
(** [mismatch_count_table.(byte)] is the number of non-zero 2-bit lanes
    of [byte] — the per-byte Hamming weight of a XOR of two packed
    payloads.  Derived from {!lane_count_table}. *)

(** {1 Word-parallel Hamming verification}

    The filter-and-verify hot path: compare a pre-packed pattern
    against any window of the packed text 28 bases per word operation
    (7-byte XOR + SWAR 2-bit-lane popcount), early-exiting once a
    mismatch budget is blown.  See DESIGN.md "Word-parallel
    verification". *)

val word_lanes : int
(** Lanes compared per kernel word operation (28: 7 packed bytes — the
    widest branch-free load+reduce expressible over a byte Bigarray
    within OCaml's 63-bit native [int]). *)

type packed := t

(** A pattern pre-packed at all four lane phases.  Phase [p] stores the
    pattern shifted up by [p] lanes with first/last-word padding masks,
    so verifying against text position [pos] reduces to whole-byte
    loads starting at byte [pos / 4] — alignment-free and mmap-safe. *)
module Pattern : sig
  type t

  val make : string -> t
  (** Pack a lowercase [acgt] pattern.  Raises [Invalid_argument] on an
      empty string or any other character. *)

  val of_codes : int array -> t
  (** Pack an array of lane codes 0..3.  Raises [Invalid_argument] on
      an empty array or out-of-range code. *)

  val of_packed : packed -> pos:int -> len:int -> t
  (** [of_packed t ~pos ~len] packs the window [pos, pos+len) of an
      existing packed text.  Raises [Invalid_argument] when the window
      is out of range or empty. *)

  val length : t -> int
end

val hamming : ?limit:int -> t -> Pattern.t -> pos:int -> int
(** [hamming ?limit t p ~pos] is the Hamming distance between pattern
    [p] and the text window starting at lane [pos], scanning word by
    word and stopping as soon as the running count exceeds [limit]
    (default: no limit).  After an early exit the result is only
    meaningful as "greater than [limit]" — it counts the scanned prefix
    only.  Raises [Invalid_argument] when the window does not fit. *)

val hamming_le : t -> Pattern.t -> pos:int -> k:int -> bool
(** [hamming_le t p ~pos ~k] is [hamming t p ~pos <= k], with the
    early-exit limit set to [k].  [k < 0] is [false]; [k >= length p]
    is [true].  Raises [Invalid_argument] when the window does not
    fit. *)

(** Domain-local counters for the verification kernel, mirroring
    {!Fm_index.Telemetry}: armed globally by the CLI, read as
    snapshot/diff pairs around a unit of work, merged across domains by
    summing. *)
module Telemetry : sig
  type counters = {
    mutable calls : int;  (** kernel invocations *)
    mutable words : int;  (** 28-lane words XOR'd and reduced *)
    mutable early_exits : int;  (** calls stopped before the last word *)  }

  val compiled : bool
  val set_enabled : bool -> unit
  val is_enabled : unit -> bool
  val snapshot : unit -> counters
  val diff : since:counters -> counters -> counters
end
