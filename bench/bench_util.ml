(* Shared plumbing for the experiment harness: wall-clock timing, table
   rendering, and cached genomes/read sets so that experiments sharing a
   target build its index once. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let time_unit f = snd (time f)

(* --- output ----------------------------------------------------------- *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let note fmt = Printf.printf ("  # " ^^ fmt ^^ "\n%!")

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> Printf.printf "  %-*s" (w + 2) cell) widths row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let fmt_time secs =
  if secs < 1e-3 then Printf.sprintf "%.1fus" (secs *. 1e6)
  else if secs < 1.0 then Printf.sprintf "%.2fms" (secs *. 1e3)
  else Printf.sprintf "%.2fs" secs

let fmt_count n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 1_000 then Printf.sprintf "%.1fK" (float_of_int n /. 1e3)
  else string_of_int n

(* --- cached targets ---------------------------------------------------- *)

(* The experiments run on laptop-scaled stand-ins (sizes roughly 1/1000 of
   the paper's Table 1 genomes; see DESIGN.md).  The main timing target is
   the "Rat chr1" stand-in. *)

let genome_cache : (string, Dna.Sequence.t) Hashtbl.t = Hashtbl.create 8
let index_cache : (string, Core.Kmismatch.index) Hashtbl.t = Hashtbl.create 8

let genome name =
  match Hashtbl.find_opt genome_cache name with
  | Some g -> g
  | None ->
      let profile = List.assoc name Dna.Genome_gen.paper_table1 in
      let g = Dna.Genome_gen.generate profile in
      Hashtbl.add genome_cache name g;
      g

let index name =
  match Hashtbl.find_opt index_cache name with
  | Some idx -> idx
  | None ->
      let idx = Core.Kmismatch.of_sequence (genome name) in
      Hashtbl.add index_cache name idx;
      idx

let main_target = "Rat chr1 (Rnor_6.0)"

let reads ?(name = main_target) ?(error_rate = 0.02) ~count ~len ~seed () =
  let g = genome name in
  let cfg = { Dna.Read_sim.default with count; len; error_rate; seed } in
  List.map
    (fun r -> Dna.Sequence.to_string r.Dna.Read_sim.seq)
    (Dna.Read_sim.simulate cfg g)

(* --- measurement -------------------------------------------------------- *)

(* Average per-read search time of an engine over a read set. *)
let avg_search_time ?stats idx engine ~reads:rs ~k =
  let total =
    time_unit (fun () ->
        List.iter
          (fun pattern ->
            let r =
              Core.Kmismatch.run idx
                (Core.Kmismatch.Query.make ~engine ~pattern ~k ())
            in
            match stats with
            | Some into ->
                Core.Stats.merge ~into r.Core.Kmismatch.Response.stats
            | None -> ())
          rs)
  in
  total /. float_of_int (List.length rs)

(* The four methods of the paper's §V, in its order and naming. *)
let paper_engines =
  [
    ("BWT", Core.Kmismatch.S_tree);
    ("Amir's", Core.Kmismatch.Amir);
    ("Cole's", Core.Kmismatch.Cole);
    ("A()", Core.Kmismatch.M_tree);
  ]
