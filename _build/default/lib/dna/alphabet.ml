let sigma = 5
let sentinel = '$'
let sentinel_code = 0

let code_opt c =
  match c with
  | '$' -> Some 0
  | 'a' | 'A' -> Some 1
  | 'c' | 'C' -> Some 2
  | 'g' | 'G' -> Some 3
  | 't' | 'T' -> Some 4
  | _ -> None

let code c =
  match code_opt c with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Alphabet.code: %C is not in {$acgt}" c)

let of_code k =
  match k with
  | 0 -> '$'
  | 1 -> 'a'
  | 2 -> 'c'
  | 3 -> 'g'
  | 4 -> 't'
  | _ -> invalid_arg (Printf.sprintf "Alphabet.of_code: %d out of range" k)

let is_base c =
  match c with
  | 'a' | 'A' | 'c' | 'C' | 'g' | 'G' | 't' | 'T' -> true
  | _ -> false

let normalize c =
  match c with
  | '$' -> '$'
  | c when is_base c -> of_code (code c)
  | c -> invalid_arg (Printf.sprintf "Alphabet.normalize: %C is not a base" c)

let complement c =
  match c with
  | 'a' | 'A' -> 't'
  | 'c' | 'C' -> 'g'
  | 'g' | 'G' -> 'c'
  | 't' | 'T' -> 'a'
  | c -> invalid_arg (Printf.sprintf "Alphabet.complement: %C is not a base" c)

let bases = [| 'a'; 'c'; 'g'; 't' |]
let base_codes = [| 1; 2; 3; 4 |]
