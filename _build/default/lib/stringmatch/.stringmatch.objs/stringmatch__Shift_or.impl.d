lib/stringmatch/shift_or.ml: Array Char List String
