type engine = M_tree | S_tree | S_tree_no_delta | Hybrid | Cole | Amir | Kangaroo | Naive

let all_engines = [ M_tree; S_tree; S_tree_no_delta; Hybrid; Cole; Amir; Kangaroo; Naive ]

let engine_name = function
  | M_tree -> "m-tree"
  | S_tree -> "s-tree"
  | S_tree_no_delta -> "s-tree-nodelta"
  | Hybrid -> "hybrid"
  | Cole -> "cole"
  | Amir -> "amir"
  | Kangaroo -> "kangaroo"
  | Naive -> "naive"

let engine_of_string s =
  List.find_opt (fun e -> engine_name e = String.lowercase_ascii s) all_engines

(* The forward text and the suffix tree are derived views: the FM-index
   of the reversed text is the only component persisted, and an index
   loaded by mmap should not pay O(n) string materialization up front.
   Both memos are domain-safe ([Storage.Memo], not [Lazy.t], whose
   concurrent forcing is undefined), so a mapper fan-out may race on the
   first force without corruption. *)
type index = {
  text : string Fmindex.Storage.Memo.t;
  fm_rev : Fmindex.Fm_index.t;
  tree : Suffix.Suffix_tree.t Fmindex.Storage.Memo.t;
  pforward : Fmindex.Packed_text.t Fmindex.Storage.Memo.t;
      (* forward text, 2-bit packed: what the word-parallel verifiers
         run against.  Derived by reversing the FM component's packed
         payload — n/4 bytes, never the unpacked string. *)
}

let make_index ~text_memo fm_rev =
  let tree =
    Fmindex.Storage.Memo.make (fun () ->
        Suffix.Suffix_tree.build (Fmindex.Storage.Memo.force text_memo))
  in
  let pforward =
    Fmindex.Storage.Memo.make (fun () ->
        Fmindex.Packed_text.rev (Fmindex.Fm_index.packed_text fm_rev))
  in
  { text = text_memo; fm_rev; tree; pforward }

let build_index ?occ_rate ?sa_rate raw =
  let text = Dna.Sequence.to_string (Dna.Sequence.of_string raw) in
  let rev = Dna.Sequence.to_string (Dna.Sequence.rev (Dna.Sequence.of_string text)) in
  make_index
    ~text_memo:(Fmindex.Storage.Memo.make (fun () -> text))
    (Fmindex.Fm_index.build ?occ_rate ?sa_rate rev)

let of_sequence seq = build_index (Dna.Sequence.to_string seq)
let text t = Fmindex.Storage.Memo.force t.text
let length t = Fmindex.Fm_index.length t.fm_rev
let fm_rev t = t.fm_rev
let suffix_tree t = Fmindex.Storage.Memo.force t.tree
let packed_text t = Fmindex.Storage.Memo.force t.pforward

module Query = struct
  type t = {
    engine : engine;
    pattern : string;
    k : int;
    config : M_tree.config option;
    obs : Obs.t;
    deadline : Deadline.t;
  }

  let make ?config ?(obs = Obs.noop) ?(deadline = Deadline.none) ~engine
      ~pattern ~k () =
    { engine; pattern; k; config; obs; deadline }
end

module Response = struct
  type t = {
    hits : (int * int) list;
    stats : Stats.t;
    timings : (string * float) list;
  }

  let positions r = List.map fst r.hits
end

(* Flush per-query engine work into the sink's counters (counters v2:
   the [Stats] fields become [engine.*] counters, and — when the
   FM-index telemetry hook is armed — rank-layer effort becomes [fm.*]
   counters).  All of these are per-record sums, so per-domain sinks
   merge to exactly the sequential totals. *)
(* Word-parallel verification effort as [verify.*] counters — shared
   with the mapper, whose hit re-checking runs the kernel outside any
   query span. *)
let flush_verify obs (v : Fmindex.Packed_text.Telemetry.counters) =
  Obs.add obs "verify.calls" v.calls;
  Obs.add obs "verify.words" v.words;
  Obs.add obs "verify.early_exits" v.early_exits

let flush_counters obs (s : Stats.t) fm_delta verify_delta =
  Obs.add obs "engine.nodes" s.nodes;
  Obs.add obs "engine.leaves" s.leaves;
  Obs.add obs "engine.rank_calls" s.rank_calls;
  Obs.add obs "engine.derivations" s.derivations;
  Obs.add obs "engine.derived_leaves" s.derived_leaves;
  Obs.add obs "engine.resumes" s.resumes;
  (match verify_delta with None -> () | Some v -> flush_verify obs v);
  match fm_delta with
  | None -> ()
  | Some (d : Fmindex.Fm_index.Telemetry.counters) ->
      Obs.add obs "fm.rank_ops" d.rank_ops;
      Obs.add obs "fm.block_decodes" d.block_decodes;
      Obs.add obs "fm.locate_walks" d.locate_walks;
      Obs.add obs "fm.locate_steps" d.locate_steps

(* Validation is the typed half of the entry point: every reason a query
   cannot run maps to [Kmm_error.Bad_input] carrying the same message the
   raising path has always used, so [run] can rebuild the historical
   [Invalid_argument]s verbatim and long-running callers (the server, the
   mapper) get a [result] they can answer with instead of a crash. *)
let validate (q : Query.t) =
  match
    try Ok (Dna.Sequence.to_string (Dna.Sequence.of_string q.pattern))
    with Invalid_argument msg -> Error msg
  with
  | Error msg -> Error (Kmm_error.Bad_input msg)
  | Ok "" -> Error (Kmm_error.Bad_input "Kmismatch.search: empty pattern")
  | Ok _ when q.k < 0 ->
      Error (Kmm_error.Bad_input "Kmismatch.search: negative k")
  | Ok pattern -> Ok pattern

let run_validated t (q : Query.t) ~obs ~t0 ~pattern =
  (* Degenerate budgets are uniform across engines: a window holds at
     most m mismatches, so k >= m answers every window position at its
     true distance.  Clamping here (and in each engine, for direct
     callers) makes that explicit and keeps k-derived arithmetic such as
     the M-tree's 2k+3 merge horizon safely inside the word. *)
  let k = min q.k (String.length pattern) in
  let t1 = Obs.Clock.now_ns () in
  let stats = Stats.create () in
  let telemetry =
    Obs.enabled obs && Fmindex.Fm_index.Telemetry.is_enabled ()
  in
  let tele_before =
    if telemetry then Some (Fmindex.Fm_index.Telemetry.snapshot ()) else None
  in
  let vtele =
    Obs.enabled obs && Fmindex.Packed_text.Telemetry.is_enabled ()
  in
  let vtele_before =
    if vtele then Some (Fmindex.Packed_text.Telemetry.snapshot ()) else None
  in
  let hits =
    Obs.span obs "query"
      ~args:
        [
          ("engine", engine_name q.engine);
          ("k", string_of_int k);
          ("m", string_of_int (String.length pattern));
        ]
      (fun () ->
        (* A pattern longer than the text can match nowhere.  Guard once
           for every engine: the tree/BWT engines are not written for
           this degenerate case and used to fall through to it. *)
        if String.length pattern > length t then []
        else
          let config = q.config and fm = t.fm_rev in
          match q.engine with
          | M_tree -> M_tree.search ?config ~stats ~obs fm ~pattern ~k
          | S_tree -> S_tree.search ~use_delta:true ~stats ~obs fm ~pattern ~k
          | S_tree_no_delta ->
              S_tree.search ~use_delta:false ~stats ~obs fm ~pattern ~k
          | Hybrid ->
              Hybrid.search ~stats ~ptext:(packed_text t) fm ~text:(text t)
                ~pattern ~k
          | Cole -> Cole.search ~stats (suffix_tree t) ~pattern ~k
          | Amir -> Amir.search ~stats ~ptext:(packed_text t) ~pattern ~k (text t)
          | Kangaroo ->
              Stringmatch.Kangaroo.search ~ptext:(packed_text t) ~pattern ~k
                (text t)
          | Naive -> Stringmatch.Hamming.search ~pattern ~text:(text t) ~k)
  in
  let t2 = Obs.Clock.now_ns () in
  if Obs.enabled obs then begin
    let fm_delta =
      match tele_before with
      | None -> None
      | Some since ->
          Some
            (Fmindex.Fm_index.Telemetry.diff ~since
               (Fmindex.Fm_index.Telemetry.snapshot ()))
    in
    let verify_delta =
      match vtele_before with
      | None -> None
      | Some since ->
          Some
            (Fmindex.Packed_text.Telemetry.diff ~since
               (Fmindex.Packed_text.Telemetry.snapshot ()))
    in
    flush_counters obs stats fm_delta verify_delta;
    Obs.incr obs "query.count";
    Obs.add obs "query.hits" (List.length hits)
  end;
  let s ns = float_of_int ns *. 1e-9 in
  {
    Response.hits;
    stats;
    timings = [ ("normalize", s (t1 - t0)); ("search", s (t2 - t1)) ];
  }

let try_run t (q : Query.t) =
  let t0 = Obs.Clock.now_ns () in
  match validate q with
  | Error e -> Error e
  | Ok pattern ->
      if Deadline.expired q.deadline then
        (* Admission check: an already-expired budget is answered without
           touching the index at all (the server relies on this to shed
           queries that aged out in its queue). *)
        Error (Kmm_error.Timeout "deadline expired before the search started")
      else (
        (* The engines poll [Deadline.poll] in their hot loops; install
           the query's budget as the ambient deadline so those polls see
           it without any signature change.  [Deadline.none] (the
           default) makes every poll a compare-and-return. *)
        match
          Deadline.with_ambient q.deadline (fun () ->
              run_validated t q ~obs:q.obs ~t0 ~pattern)
        with
        | r -> Ok r
        | exception Deadline.Expired ->
            Error
              (Kmm_error.Timeout
                 "deadline expired during the search; partial work discarded"))

let run t q =
  match try_run t q with
  | Ok r -> r
  | Error (Kmm_error.Bad_input msg) ->
      (* The historical raising contract, message included: direct
         callers and tests pattern-match on these strings. *)
      invalid_arg msg
  | Error e -> Kmm_error.raise_error e

let search ?stats ?config t ~engine ~pattern ~k =
  let r = run t (Query.make ?config ~engine ~pattern ~k ()) in
  (match stats with Some into -> Stats.merge ~into r.Response.stats | None -> ());
  r.Response.hits

let positions ?stats t ~engine ~pattern ~k =
  List.map fst (search ?stats t ~engine ~pattern ~k)

let save_index t path = Fmindex.Fm_index.save t.fm_rev path

let of_fm fm_rev =
  (* Loaded indexes derive the forward text on demand: the FM-index keeps
     only the 2-bit packed reverse, and an mmap'd load must stay O(1). *)
  make_index
    ~text_memo:
      (Fmindex.Storage.Memo.make (fun () ->
           Dna.Sequence.to_string
             (Dna.Sequence.rev
                (Dna.Sequence.of_string (Fmindex.Fm_index.text fm_rev)))))
    fm_rev

let load_index ?mode path = of_fm (Fmindex.Fm_index.load ?mode path)

let try_load_index ?mode path =
  Result.map of_fm (Fmindex.Fm_index.try_load ?mode path)
