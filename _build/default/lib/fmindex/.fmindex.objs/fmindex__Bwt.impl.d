lib/fmindex/bwt.ml: Array Bytes Dna String Suffix
