lib/core/hybrid.mli: Fmindex Stats
