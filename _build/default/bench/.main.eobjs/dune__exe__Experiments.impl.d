bench/experiments.ml: Array Bench_util Core Dna Fmindex List Printf Random String Suffix
