lib/stringmatch/levenshtein.ml: Array List String
