(* Throughput experiment for the parallel batch mapper: reads/sec versus
   number of domains on a 100 kbp genome, the ROADMAP's first scaling
   axis.  Besides the human-readable table, the run appends a
   machine-readable record to BENCH_map.json so successive PRs can track
   the scaling curve.

   The mapper guarantees byte-identical output at every domain count;
   this experiment re-checks that guarantee on the measured workload
   (column "identical") so a scheduling regression can never hide behind
   a throughput win. *)

open Bench_util

let json_path = "BENCH_map.json"

let run () =
  section "Map throughput: reads/sec vs domains (100 kbp genome batch)";
  let genome_bp = 100_000 and nreads = 200 and read_len = 100 and k = 2 in
  let cores = Core.Work_pool.default_domains () in
  let genome =
    Dna.Genome_gen.generate { Dna.Genome_gen.default with size = genome_bp; seed = 77 }
  in
  let idx = Core.Kmismatch.of_sequence genome in
  let reads =
    List.map
      (fun r -> (r.Dna.Read_sim.id, Dna.Sequence.to_string r.Dna.Read_sim.seq))
      (Dna.Read_sim.simulate
         { Dna.Read_sim.default with count = nreads; len = read_len; seed = 9 }
         genome)
  in
  note "%d reads of length %d, k=%d, engine=m-tree, both strands" nreads read_len k;
  note "this machine reports %d core%s (Domain.recommended_domain_count)" cores
    (if cores = 1 then "" else "s");
  let map domains =
    time (fun () ->
        Core.Mapper.run { Core.Mapper.default with domains } idx ~reads ~k)
  in
  (* Timings in the summary are wall clock; strip them before the
     byte-identity check (everything else must match exactly). *)
  let det (hits, summary) = (hits, Core.Mapper.deterministic_summary summary) in
  (* Warm up (forces any lazy structure, touches the index once). *)
  ignore (Core.Mapper.run Core.Mapper.default idx ~reads:[ (0, "acgtacgt") ] ~k);
  let (baseline, baseline_dt) = map 1 in
  let domain_counts =
    List.sort_uniq compare [ 1; 2; 4; cores ] |> List.filter (fun d -> d >= 1)
  in
  let measured =
    List.map
      (fun domains ->
        let result, dt = if domains = 1 then (baseline, baseline_dt) else map domains in
        let identical = det result = det baseline in
        let rps = float_of_int nreads /. dt in
        (domains, dt, rps, baseline_dt /. dt, identical))
      domain_counts
  in
  table
    ~header:[ "domains"; "time"; "reads/sec"; "speedup vs 1"; "identical" ]
    (List.map
       (fun (d, dt, rps, speedup, identical) ->
         [
           string_of_int d;
           fmt_time dt;
           Printf.sprintf "%.0f" rps;
           Printf.sprintf "%.2fx" speedup;
           (if identical then "yes" else "NO (BUG)");
         ])
       measured);
  List.iter
    (fun (_, _, _, _, identical) ->
      if not identical then
        failwith "map_throughput: parallel output diverged from sequential")
    measured;
  note "speedup needs real cores: with more domains than cores the curve";
  note "degrades (every minor GC is a stop-the-world rendezvous, and a";
  note "descheduled domain stalls it); at >= 4 cores the 4-domain row is";
  note "the >1.5x reads/sec target of ISSUE 1";
  (* Machine-readable record (one JSON object per line, appended). *)
  let json =
    Printf.sprintf
      "{\"bench\":\"map_throughput\",\"meta\":%s,\"genome_bp\":%d,\"reads\":%d,\
       \"read_len\":%d,\
       \"k\":%d,\"engine\":\"m-tree\",\"cores\":%d,\"results\":[%s],\
       \"deterministic\":true}"
      (Bench_meta.to_json ()) genome_bp nreads read_len k cores
      (String.concat ","
         (List.map
            (fun (d, dt, rps, speedup, _) ->
              Printf.sprintf
                "{\"domains\":%d,\"seconds\":%.6f,\"reads_per_sec\":%.1f,\
                 \"speedup\":%.3f}"
                d dt rps speedup)
            measured))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 json_path in
  output_string oc (json ^ "\n");
  close_out oc;
  note "record appended to %s" json_path
