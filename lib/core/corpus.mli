(** A searchable reference corpus: one monolithic {!Kmismatch.index}, or
    a set of overlapping per-shard indexes tied together by a manifest.

    {b Why shards.}  A monolithic FM-index must be built (and rebuilt) in
    one piece; shards of a bounded size are built {e in parallel} on a
    {!Work_pool}, saved as independent files, and loaded — by copy or by
    mmap — one by one.  Queries fan out across the shards and merge into
    the same global coordinates a monolithic index would report.

    {b Coverage.}  Shard [i] {e owns} the global range
    [[off_i, off_i + owned_i)] and {e stores} [owned_i + overlap] bases
    (clipped at the corpus end).  A match of length [m <= overlap + 1]
    starting at an owned position therefore lies entirely inside the
    shard's stored text, and every match is reported by exactly one
    shard — the one owning its start.  Conversely a query longer than
    [overlap + 1] could straddle a boundary invisibly, so it is refused
    with a typed {!Kmm_error.Bad_input} instead of answered wrongly
    (unless the corpus has a single shard, which stores everything).

    {b Manifest format} (version 1, ASCII, CRC-guarded):
    {v
    kmm-manifest 1 <nshards> <total> <overlap>
    shard <off> <owned> <stored> <crc32> <file>     (one line per shard)
    hcrc <crc32>
    v}
    [<file>] is relative to the manifest's directory; [<crc32>] on a
    shard line is the CRC-32 of that shard's index file image (checked
    by [kmm verify], not on load — a load already has the index file's
    own internal CRCs, and an mmap load must stay O(1)); [hcrc] guards
    every preceding manifest byte. *)

type t

val mono : Kmismatch.index -> t
(** Wrap a monolithic index as a corpus. *)

val build :
  ?occ_rate:int ->
  ?sa_rate:int ->
  ?shard_size:int ->
  ?overlap:int ->
  ?domains:int ->
  string ->
  t
(** Index a text.  Without [shard_size] this is a monolithic
    {!Kmismatch.build_index}.  With [shard_size] the text is cut into
    [ceil (n / shard_size)] shards (even just one — the sharded layout
    is kept so a small corpus exercises the same code paths), each
    storing its owned range plus [overlap] (default
    {!default_overlap}) trailing bases, and the per-shard indexes are
    built in parallel on [domains] (default 1) OCaml domains.  Shard
    [task] lands in slot [task] whatever domain built it, so the corpus
    is deterministic at any domain count.
    @raise Invalid_argument on [shard_size < 1], [overlap < 0],
    [domains < 1], or a non-ACGT character in the text. *)

val default_overlap : int
(** Default shard overlap (1023): queries up to 1 KiB never hit the
    boundary limit. *)

val length : t -> int
(** Total corpus length in bases. *)

val nshards : t -> int
(** Number of shards; 1 for a monolithic corpus. *)

val overlap : t -> int option
(** The shard overlap; [None] for a monolithic corpus. *)

val max_query : t -> int
(** Longest pattern the corpus can answer exactly: the text length for a
    monolithic or single-shard corpus, [overlap + 1] otherwise. *)

val try_run : t -> Kmismatch.Query.t -> (Kmismatch.Response.t, Kmm_error.t) result
(** Answer one query.  Monolithic corpora delegate to
    {!Kmismatch.try_run} unchanged.  Sharded corpora fan the query out
    over the shards {e sequentially} (a per-query fan-out must never
    re-enter the {!Work_pool} the mapper may already be running on),
    keep each hit only in the shard owning its start, and shift it to
    global coordinates; shard-order concatenation is globally sorted by
    position, byte-identical to a monolithic index of the same text.
    Engine counters are merged and per-phase timings summed across
    shards.  A pattern longer than {!max_query} (but not longer than the
    corpus — that is an ordinary empty answer, as for a monolithic
    index) is [Error (Bad_input _)] naming the limit. *)

val run : t -> Kmismatch.Query.t -> Kmismatch.Response.t
(** Raising wrapper over {!try_run} with the {!Kmismatch.run}
    contract: [Bad_input] becomes [Invalid_argument]. *)

val target : t -> Mapper.target
(** The corpus as a mapper target: reads up to {!max_query} are
    answered in global coordinates; longer reads are skipped with a
    typed reason naming the limit. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Persist to [path].  A monolithic corpus writes a plain index file
    ({!Kmismatch.save_index}).  A sharded corpus writes one index file
    per shard ([path ^ ".shardNNN.fmi"], atomically, in manifest order)
    and then the manifest at [path] — manifest last, so a crash
    mid-save never leaves a manifest naming missing or half-written
    shard files. *)

val try_load : ?mode:Fmindex.Fm_index.mode -> string -> (t, Kmm_error.t) result
(** Load [path], sniffing its type: a manifest loads every shard (with
    [mode] forwarded to {!Fmindex.Fm_index.try_load} — [Mmap] makes
    corpus cold-start O(shards), not O(n)); anything else is treated as
    a plain index file.  Manifest failures are typed: a forged or
    truncated manifest, a bad shard geometry, a shard file whose length
    disagrees with its manifest line, or any per-shard load failure. *)

val load : ?mode:Fmindex.Fm_index.mode -> string -> t
(** Raising wrapper over {!try_load} (the {!Fmindex.Fm_index.load}
    contract: [Failure] on invalid files, the original exception on
    I/O failure). *)

val is_manifest : string -> bool
(** Whether the file at [path] starts with the manifest magic (false on
    any I/O failure — the caller's load will report it properly). *)

(** {1 Manifest introspection}

    [kmm verify] checks what a load (deliberately) does not: that every
    shard file's bytes still hash to the CRC recorded in the manifest. *)

type entry = {
  e_off : int;
  e_owned : int;
  e_stored : int;
  e_crc : int;  (** CRC-32 of the shard's index file image *)
  e_file : string;  (** relative to the manifest's directory *)
}

type manifest = { m_total : int; m_overlap : int; m_entries : entry array }

val try_read_manifest : string -> (manifest, Kmm_error.t) result
(** Parse and validate a manifest file (header CRC + shard geometry)
    without loading any shard. *)
