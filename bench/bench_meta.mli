(** Provenance stamp for benchmark JSON records.

    Every [BENCH_*.json] line carries a [meta] object naming the commit,
    compiler, host, UTC instant and domain count that produced it, so
    numbers from different machines or PRs are never silently compared.
    All probes are fail-soft: in an environment without git or a
    hostname they degrade to ["unknown"] instead of failing the bench. *)

val git_rev : unit -> string
(** Short hash of [HEAD], or ["unknown"] outside a git checkout. *)

val hostname : unit -> string
(** The machine's hostname, or ["unknown"]. *)

val timestamp_utc : unit -> string
(** The current instant as ISO-8601 UTC, e.g. ["2026-08-06T12:34:56Z"]. *)

val to_json : unit -> string
(** The complete meta object:
    [{"git_rev":..., "ocaml":..., "hostname":..., "timestamp_utc":...,
    "domains":...}] with every string JSON-escaped.  Intended to be
    spliced into a bench record as its ["meta"] field. *)
