lib/stringmatch/rabin_karp.mli:
