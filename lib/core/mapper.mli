(** Batch read mapping on top of the k-mismatch engines — the paper's
    end-to-end workload (locate every read of a sequencing run in the
    genome, both strands, despite up to [k] mismatches). *)

type hit = {
  read_id : int;
  pos : int;  (** 0-based start on the forward strand *)
  strand : [ `Forward | `Reverse ];
      (** strand of the read that produced the hit *)
  distance : int;
}

type summary = {
  total : int;
  mapped : int;  (** reads with at least one hit *)
  unique : int;  (** reads with exactly one hit *)
  ambiguous : int;  (** reads with several hits *)
  skipped : (int * Kmm_error.t) list;
      (** reads the batch could not process — [(read id, reason)] in
          batch order.  A fault in one read (non-ACGT base, empty or
          oversize sequence, or an engine exception) lands here instead
          of aborting the whole batch; the surviving reads' hits are
          unaffected. *)
  stats : Stats.t;
      (** engine counters summed over the whole batch; per-domain
          accumulators merged in worker order, equal to a sequential
          run's totals *)
  timings : (string * float) list;
      (** per-phase wall-clock seconds, in execution order:
          [("prepare", _); ("search", _); ("merge", _)].  Wall-clock
          values vary between runs — strip them with
          {!deterministic_summary} before byte-identity comparisons. *)
}

val deterministic_summary : summary -> summary
(** The summary with its (nondeterministic) [timings] dropped; every
    remaining field is identical across all [domains]/[chunk_size]
    combinations, so this is the form the seq≡par tests compare. *)

val default_chunk_size : int
(** Reads per pool task when sharding a batch (currently 16): small
    enough to load-balance engines whose per-read cost varies, large
    enough to amortize queue traffic. *)

(** {1 Options and the primary entry point} *)

type options = {
  engine : Kmismatch.engine;  (** search engine; [M_tree] in {!default} *)
  both_strands : bool;
      (** also search the reverse complement (default true) *)
  domains : int;  (** {!Work_pool} size; 1 = sequential (default) *)
  chunk_size : int;  (** reads per pool task *)
  obs : Obs.t;
      (** observability sink; {!Obs.noop} (the default) disables all
          recording at the cost of one branch per read *)
  deadline : Deadline.t;
      (** compute budget for the whole batch ({!Deadline.none}, the
          default, runs to completion).  Once it expires the batch
          drains fast instead of aborting: reads not yet started are
          skipped with a typed [Timeout] (whole pending pool chunks are
          skipped via [Work_pool.run ?cancel]), reads in flight are cut
          at the engines' next cooperative poll and skipped likewise,
          and everything finished before expiry keeps its hits — the
          summary stays fail-soft, it just attributes the unfinished
          tail to the deadline.  Which reads land on each side of the
          cut depends on timing, so a deadline forfeits the seq≡par
          byte-identity guarantee (only {!Deadline.none} keeps it). *)
}

val default : options
(** [{ engine = M_tree; both_strands = true; domains = 1; chunk_size =
    default_chunk_size; obs = Obs.noop; deadline = Deadline.none }] —
    override fields with [{ default with ... }]. *)

(** {1 Map targets}

    The mapper's fan-out/merge machinery is written once against an
    abstract {!target} — what to search, how long a read it can answer,
    and what to force before spawning workers.  {!target_of_index} wraps
    a monolithic index; [Corpus.target] wraps a sharded corpus. *)

type target = {
  tgt_length : int;  (** total reference length *)
  tgt_max_read : int;
      (** longest read the target can answer; anything longer becomes a
          typed [skipped] entry *)
  tgt_limit_msg : int -> string;
      (** [tgt_limit_msg m] is the skip reason for an [m] bp oversize
          read *)
  tgt_prepare : Kmismatch.engine -> unit;
      (** called once before fan-out (when [domains > 1]) to force
          derived state — suffix tree, unpacked text — the given engine
          will need, so workers don't serialize on its first use *)
  tgt_run : Kmismatch.Query.t -> (Kmismatch.Response.t, Kmm_error.t) result;
      (** answer one query with hits in global coordinates; must be safe
          to call from any domain.  An [Error] skips the read (typed),
          never aborts the batch. *)
  tgt_packed : unit -> Fmindex.Packed_text.t option;
      (** the packed text in the target's own coordinate space, if it
          has one: every hit is then re-checked with the word-parallel
          kernel ({!Fmindex.Packed_text.hamming}), and a refuted hit
          skips its read with a typed [Internal] error.  [None] (e.g. a
          sharded corpus, whose global positions span shard boundaries)
          disables re-checking. *)
}

val target_of_index : Kmismatch.index -> target
(** The monolithic target: queries go to {!Kmismatch.try_run}, the read
    limit is the text length. *)

val run_target :
  options -> target -> reads:(int * string) list -> k:int -> hit list * summary
(** {!run} against an abstract {!target}; all guarantees of {!run}
    (determinism, fail-soft, observability) hold unchanged. *)

val run :
  options ->
  Kmismatch.index ->
  reads:(int * string) list ->
  k:int ->
  hit list * summary
(** Map every [(id, sequence)] read; with [both_strands] the reverse
    complement is searched too and hits are reported on the forward
    coordinate system.  Hits are sorted by read id, then position.

    [domains] shards the batch across a {!Work_pool} of that many OCaml
    domains in [chunk_size]-read chunks.  The FM-index is immutable, so
    workers share it without copying.  {b Determinism guarantee:} hits
    and {!deterministic_summary} are byte-identical for every
    [domains]/[chunk_size] combination — each read's hits land in a slot
    indexed by read position and the merge never depends on scheduling;
    [domains = 1] {e is} the sequential path (no domain is spawned).

    {b Observability:} when [obs] is active, every worker records into
    its own {!Obs.fork} of the sink, merged back in worker-index order
    after the pool joins.  Per read: a [map.read_ns] latency histogram
    entry, a [map.read_hits] histogram entry (hit multiplicity — a
    function of the input alone, so it merges bit-for-bit across any
    domain count, as do the [map.reads]/[map.reads_skipped]/
    [map.reads_failed] and [engine.*]/[fm.*] counters), plus the
    {!Work_pool} [pool.*] metrics and whole-batch [map.prepare_ns]/
    [map.search_ns]/[map.merge_ns] phase histograms.

    {b Fail-soft:} a read the engines cannot process is recorded in
    [summary.skipped] with a typed reason and costs nothing but itself —
    the batch never aborts, the per-read slots of the surviving reads
    are byte-identical to a run without the bad read, and the skipped
    list itself is deterministic across every [domains]/[chunk_size]
    combination.
    @raise Invalid_argument if [domains < 1] or [chunk_size < 1]. *)

val map_reads :
  ?engine:Kmismatch.engine ->
  ?both_strands:bool ->
  ?domains:int ->
  ?chunk_size:int ->
  ?stats:Stats.t ->
  Kmismatch.index ->
  reads:(int * string) list ->
  k:int ->
  hit list * summary
(** Compatibility wrapper over {!run} with the pre-{!options} optional
    arguments ([domains] defaults to 1, [engine] to [M_tree]); [stats]
    (when given) receives the batch's merged counters in addition to
    [summary.stats].  Semantics otherwise identical to {!run} with no
    sink. *)

val best_hits : hit list -> hit list
(** Keep only minimal-distance hits per read (ties all kept). *)

val to_tsv : hit list -> string
(** One [read_id <tab> pos <tab> strand <tab> distance] line per hit. *)
