open Fmindex

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let int_list = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* BWT                                                                 *)

let test_bwt_paper_example () =
  (* Paper §III.A: s = acagaca, BWT(s) = acg$caaa. *)
  check string "acagaca" "acg$caaa" (Bwt.of_text "acagaca")

let test_bwt_empty () = check string "empty" "$" (Bwt.of_text "")

let test_bwt_inverse_paper () =
  check string "inverse of paper example" "acagaca" (Bwt.inverse "acg$caaa")

let prop_bwt_roundtrip =
  Test_util.qtest ~count:300 "inverse . of_text = id" (Test_util.dna_gen ~hi:300 ())
    (fun s -> Bwt.inverse (Bwt.of_text s) = s)

let test_bwt_inverse_rejects () =
  let expect_invalid l =
    match Bwt.inverse l with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid "acgt";
  expect_invalid "a$c$"

let test_bwt_is_permutation () =
  let s = "gattacagattaca" in
  let l = Bwt.of_text s in
  let sorted x = List.sort compare (List.init (String.length x) (String.get x)) in
  check bool "permutation of s$" true (sorted l = sorted (s ^ "$"))

(* ------------------------------------------------------------------ *)
(* Occ / rankall                                                       *)

let naive_rank l c i =
  let count = ref 0 in
  for j = 0 to i - 1 do
    if Dna.Alphabet.code l.[j] = c then incr count
  done;
  !count

let test_occ_matches_naive () =
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun rate ->
      let s = Test_util.random_dna st 500 in
      let l = Bwt.of_text s in
      let occ = Occ.make ~rate l in
      for i = 0 to String.length l do
        for c = 0 to Dna.Alphabet.sigma - 1 do
          check int
            (Printf.sprintf "rank rate=%d c=%d i=%d" rate c i)
            (naive_rank l c i) (Occ.rank occ c i)
        done
      done)
    [ 1; 3; 64; 1000 ]

let test_occ_validation () =
  let l = Bwt.of_text "acgt" in
  (match Occ.make ~rate:0 l with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  let occ = Occ.make l in
  (match Occ.rank occ 9 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad code");
  match Occ.rank occ 1 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad index"

(* ------------------------------------------------------------------ *)
(* FM-index                                                            *)

let test_fm_paper_search () =
  (* Paper §III.A: searching aca in acagaca$ yields two occurrences. *)
  let fm = Fm_index.build "acagaca" in
  check int "count aca" 2 (Fm_index.count fm "aca");
  check int_list "positions" [ 0; 4 ] (Fm_index.find_all fm "aca")

let test_fm_empty_pattern () =
  let fm = Fm_index.build "acgt" in
  check int "empty pattern counts all rows" 5 (Fm_index.count fm "")

let test_fm_absent () =
  let fm = Fm_index.build "aaaa" in
  check int "absent" 0 (Fm_index.count fm "c");
  check int_list "absent positions" [] (Fm_index.find_all fm "ct")

let test_fm_longer_than_text () =
  let fm = Fm_index.build "acg" in
  check int "too long" 0 (Fm_index.count fm "acgt")

let prop_fm_equals_naive =
  Test_util.qtest ~count:300 "find_all = naive"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:250 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))
    (fun (text, pattern) ->
      let fm = Fm_index.build text in
      Fm_index.find_all fm pattern = Stringmatch.Naive.find_all ~pattern ~text)

let prop_fm_sampling_rates =
  Test_util.qtest ~count:100 "locate independent of sa_rate"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:4 ~hi:150 ()) (Test_util.dna_gen ~lo:1 ~hi:4 ()))
    (fun (text, pattern) ->
      let a = Fm_index.build ~sa_rate:1 text in
      let b = Fm_index.build ~sa_rate:7 text in
      let c = Fm_index.build ~sa_rate:1000 text in
      Fm_index.find_all a pattern = Fm_index.find_all b pattern
      && Fm_index.find_all b pattern = Fm_index.find_all c pattern)

let test_fm_extend_steps_follow_paper () =
  (* Reproduce the three-step example of §III.A for r = aca over
     s = acagaca: the interval sizes are 4, 2, 2. *)
  let fm = Fm_index.build "acagaca" in
  let iv0 = Option.get (Fm_index.interval_of_char fm (Dna.Alphabet.code 'a')) in
  check int "F_a size" 4 (snd iv0 - fst iv0);
  let iv1 = Option.get (Fm_index.extend fm (Dna.Alphabet.code 'c') iv0) in
  check int "c-extension size" 2 (snd iv1 - fst iv1);
  let iv2 = Option.get (Fm_index.extend fm (Dna.Alphabet.code 'a') iv1) in
  check int "a-extension size" 2 (snd iv2 - fst iv2)

let test_fm_empty_text () =
  let fm = Fm_index.build "" in
  check int "length" 0 (Fm_index.length fm);
  check string "bwt" "$" (Fm_index.bwt fm);
  check int "no occurrences" 0 (Fm_index.count fm "a");
  check int_list "empty pattern row" [ 0 ] (Fm_index.locate fm (Fm_index.whole fm))

let test_fm_rejects_bad_text () =
  match Fm_index.build "acgn" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_fm_occ_rates_agree () =
  let st = Random.State.make [| 13 |] in
  let text = Test_util.random_dna st 400 in
  let pattern = String.sub text 100 5 in
  let a = Fm_index.build ~occ_rate:1 text in
  let b = Fm_index.build ~occ_rate:200 text in
  check int_list "occ rate does not change answers" (Fm_index.find_all a pattern)
    (Fm_index.find_all b pattern)

let test_fm_space_report () =
  let fm = Fm_index.build (Test_util.random_dna (Random.State.make [| 1 |]) 1000) in
  let report = Fm_index.space_report fm in
  check bool "has bwt entry" true (List.mem_assoc "bwt (1 byte/char)" report);
  List.iter (fun (_, v) -> check bool "positive" true (v > 0)) report;
  (* The rank structure's accounting must cover its per-position codes
     byte table (n+1 bytes incl. sentinel), not just the checkpoints. *)
  check bool "rank entry counts the codes table" true
    (List.assoc "rank checkpoints" report >= 1001)

let () =
  Alcotest.run "fmindex"
    [
      ( "bwt",
        [
          Alcotest.test_case "paper example" `Quick test_bwt_paper_example;
          Alcotest.test_case "empty" `Quick test_bwt_empty;
          Alcotest.test_case "inverse paper" `Quick test_bwt_inverse_paper;
          Alcotest.test_case "inverse rejects" `Quick test_bwt_inverse_rejects;
          Alcotest.test_case "is permutation" `Quick test_bwt_is_permutation;
          prop_bwt_roundtrip;
        ] );
      ( "occ",
        [
          Alcotest.test_case "matches naive at all rates" `Quick test_occ_matches_naive;
          Alcotest.test_case "validation" `Quick test_occ_validation;
        ] );
      ( "fm_index",
        [
          Alcotest.test_case "paper search" `Quick test_fm_paper_search;
          Alcotest.test_case "empty pattern" `Quick test_fm_empty_pattern;
          Alcotest.test_case "absent pattern" `Quick test_fm_absent;
          Alcotest.test_case "pattern longer than text" `Quick test_fm_longer_than_text;
          Alcotest.test_case "paper extend steps" `Quick test_fm_extend_steps_follow_paper;
          Alcotest.test_case "rejects bad text" `Quick test_fm_rejects_bad_text;
          Alcotest.test_case "empty text" `Quick test_fm_empty_text;
          Alcotest.test_case "occ rates agree" `Quick test_fm_occ_rates_agree;
          Alcotest.test_case "space report" `Quick test_fm_space_report;
          prop_fm_equals_naive;
          prop_fm_sampling_rates;
        ] );
    ]
