test/test_props.ml: Alcotest Array Core Dna Fmindex Hashtbl Hybrid Int_table Kmismatch List M_tree Mismatch_tree QCheck2 S_tree Stats String Stringmatch Test_util
