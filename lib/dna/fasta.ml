type record = { name : string; seq : Sequence.t }

exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let records = ref [] in
  let name = ref None in
  let body = Buffer.create 256 in
  let lineno = ref 0 in
  let flush_record () =
    match !name with
    | None ->
        if Buffer.length body > 0 then
          fail !lineno "sequence data before any '>' header"
    | Some n ->
        (* A header with no sequence lines before the next header (or end
           of input) is almost always a truncated or corrupt file; reject
           it rather than silently producing an empty sequence. *)
        if Buffer.length body = 0 then
          fail !lineno (Printf.sprintf "record %S has no sequence data" n);
        let s =
          match Sequence.of_string_opt (Buffer.contents body) with
          | Some s -> s
          | None -> fail !lineno ("invalid sequence character in record " ^ n)
        in
        records := { name = n; seq = s } :: !records;
        Buffer.clear body
  in
  let handle_line raw =
    incr lineno;
    let line = String.trim raw in
    if String.length line = 0 then ()
    else
      match line.[0] with
      | ';' -> ()
      | '>' ->
          flush_record ();
          let n = String.trim (String.sub line 1 (String.length line - 1)) in
          if n = "" then fail !lineno "empty record name";
          name := Some n
      | _ ->
          if !name = None then fail !lineno "sequence data before any '>' header";
          Buffer.add_string body line
  in
  List.iter handle_line lines;
  flush_record ();
  List.rev !records

let read_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

(* Typed-error channel: the same parsers, with failures reported as
   [Kmm_error.t] values instead of exceptions ([Parse_error] maps to
   [Bad_input], I/O failures to [Io]). *)

let try_parse_string text =
  match parse_string text with
  | records -> Ok records
  | exception Parse_error msg -> Error (Kmm_error.Bad_input msg)

let try_read_file path =
  match read_file path with
  | records -> Ok records
  | exception Parse_error msg -> Error (Kmm_error.Bad_input msg)
  | exception (Sys_error _ as e) -> Error (Kmm_error.Io e)

let to_string ?(width = 70) records =
  let buf = Buffer.create 1024 in
  let emit { name; seq } =
    Buffer.add_char buf '>';
    Buffer.add_string buf name;
    Buffer.add_char buf '\n';
    let s = Sequence.to_string seq in
    let n = String.length s in
    let rec go i =
      if i < n then begin
        Buffer.add_substring buf s i (min width (n - i));
        Buffer.add_char buf '\n';
        go (i + width)
      end
    in
    go 0
  in
  List.iter emit records;
  Buffer.contents buf

let write_file ?width path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?width records))
