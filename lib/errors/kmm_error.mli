(** Typed failure taxonomy shared by the whole pipeline.

    Every durable artifact (the on-disk FM-index, FASTA inputs) and every
    batch layer reports faults through this one variant instead of ad-hoc
    [Failure _] strings, so callers — including the [kmm] CLI, which maps
    each constructor to a distinct exit code — can react to {e what} went
    wrong, not to the wording of a message.

    The constructors are ordered roughly by "distance from the data":
    wrong file type, wrong version, missing bytes, inconsistent bytes,
    failing I/O, bad user input, internal fault. *)

(** The on-disk index is divided into named sections; corruption and
    truncation are attributed to the first section that fails its check. *)
type section =
  | Header  (** the ASCII header line (magic, version, geometry) *)
  | Text_section  (** 2-bit packed text payload *)
  | Rank_blocks  (** interleaved Occ checkpoint blocks *)
  | Superblocks  (** absolute superblock counters *)
  | Sa_marks  (** sampled-row bitvector *)
  | Sa_samples  (** sampled suffix-array positions *)
  | Trailer  (** whole-file checksum trailer *)

val section_name : section -> string

type t =
  | Bad_magic  (** not a kmm index file at all *)
  | Unsupported_version of int
      (** a kmm index, but a format this build cannot read *)
  | Truncated of string
      (** the file ends before the named section/field is complete *)
  | Corrupt of section * string
      (** the bytes are all there but fail a checksum or invariant *)
  | Io of exn  (** the operating system failed us ([Sys_error], [Unix_error]) *)
  | Bad_input of string  (** malformed user-supplied data (FASTA, reads, patterns) *)
  | Internal of string  (** a bug: an invariant the library itself broke *)
  | Timeout of string
      (** a deadline expired before the work finished; partial work is
          discarded, so a retry (with a larger budget) is safe *)
  | Overloaded of string
      (** the server shed the request before doing any work (admission
          queue full, or draining for shutdown); retryable with backoff *)

exception Error of t
(** The raising channel for contexts where a [result] is impractical.
    [raise_error] and the [try_*] entry points round-trip through it. *)

val raise_error : t -> 'a

val to_string : t -> string
(** One-line human-readable rendering.  Messages are stable prefixes
    ("corrupt index header", "truncated index", "not a kmm FM-index
    file", ...) that predate the typed channel; tests and scripts match
    on them. *)

val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** The [kmm] CLI contract (also in the README table):
    {ul
    {- [2] — [Bad_input]}
    {- [3] — [Bad_magic]}
    {- [4] — [Unsupported_version]}
    {- [5] — [Truncated]}
    {- [6] — [Corrupt]}
    {- [7] — [Io]}
    {- [8] — [Internal]}
    {- [9] — [Timeout]}
    {- [10] — [Overloaded]}}
    [0] is success; [1] and [123..125] stay reserved for the argument
    parser. *)

val equal : t -> t -> bool
(** Structural equality, except [Io]: two [Io] errors compare equal on
    the printed form of their exceptions (an [exn] has no useful
    structural equality). *)
