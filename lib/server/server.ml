(* The kmm query daemon.  Threading model:

     acceptor thread   -- select/accept loop on the listening socket
     1 thread per conn -- frame loop: read, admit, submit, reply
     dispatcher thread -- drains the query queue in batches and runs
                          each batch across the Work_pool domains
     caller            -- start/stop (or the [serve] signal loop)

   Connection threads are cheap OS threads blocked on I/O; the CPU work
   all happens on the pool's domains, so [domains] — not the number of
   clients — bounds parallel search work.  All shared state is guarded
   by three mutexes with a strict no-nesting discipline: [qm] (query
   queue), [cm] (connection registry), [mm] (metrics sink); per-job
   mutexes are leaves. *)

module Kmismatch = Core.Kmismatch
module Corpus = Core.Corpus

exception Conn_lost
(* A peer vanished mid-write (EPIPE with SIGPIPE ignored, or reset).
   Caught at the top of each connection thread: costs that connection,
   never the daemon. *)

exception Conn_stalled
(* A peer stopped draining its socket: the whole-response send budget
   expired with bytes still unwritten.  Same blast radius as
   [Conn_lost] — the connection is dropped, the daemon keeps serving —
   but counted separately ([serve.conns_stalled]), because a stalled
   reader is an overload/abuse signal, not churn. *)

(* Write the whole string, or raise.  [deadline] bounds the {e total}
   send — it is re-checked around every partial write, so a reader that
   drains one socket buffer per [SO_SNDTIMEO] tick (each [Unix.write]
   wakes at least that often once the timeout is set on [fd]) cannot
   stretch one response forever.  [EAGAIN] here means the send timeout
   expired with the buffer still full; we keep retrying only while the
   budget lasts. *)
let write_all ?(deadline = Deadline.none) fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      if Deadline.expired deadline then raise Conn_stalled;
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Deadline.expired deadline then raise Conn_stalled else go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.ENOTCONN | Unix.EBADF), _, _)
        ->
          raise Conn_lost
    end
  in
  go 0

(* --- buffered frame reader ----------------------------------------- *)

module Line_reader = struct
  type event =
    | Line of string  (** one complete frame, newline stripped *)
    | Oversize  (** the current frame outgrew [max_line]; it is being
                    discarded up to its terminating newline *)
    | Truncated  (** EOF in the middle of a frame *)
    | Timeout  (** [SO_RCVTIMEO] expired — poll your stop flag *)
    | Eof

  type t = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    acc : Buffer.t;  (* the frame being accumulated *)
    lines : string Queue.t;
    mutable discarding : bool;
    mutable eof : bool;
  }

  let create fd =
    {
      fd;
      buf = Bytes.create 8192;
      acc = Buffer.create 256;
      lines = Queue.create ();
      discarding = false;
      eof = false;
    }

  let push_line t =
    let line = Buffer.contents t.acc in
    Buffer.clear t.acc;
    (* Tolerate CRLF clients. *)
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    Queue.add line t.lines

  (* Complete frames already parsed out of past reads: the drain path
     consumes these (answering each with a typed refusal) instead of
     abandoning a pipelining client mid-burst. *)
  let buffered t = not (Queue.is_empty t.lines)

  let rec next ~max_line t =
    match Queue.take_opt t.lines with
    | Some l -> Line l
    | None ->
        if t.eof then Eof
        else if Buffer.length t.acc > max_line && not t.discarding then begin
          (* Frame outgrew the limit before its newline arrived: report
             once, then silently drop the rest of the frame so the
             connection resynchronizes at the next newline. *)
          Buffer.clear t.acc;
          t.discarding <- true;
          Oversize
        end
        else begin
          match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
          | 0 ->
              t.eof <- true;
              if Buffer.length t.acc > 0 && not t.discarding then Truncated else Eof
          | n ->
              for i = 0 to n - 1 do
                let c = Bytes.get t.buf i in
                if t.discarding then begin
                  if c = '\n' then t.discarding <- false
                end
                else if c = '\n' then push_line t
                else Buffer.add_char t.acc c
              done;
              next ~max_line t
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              Timeout
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
            ->
              t.eof <- true;
              Eof
        end
end

(* --- configuration and server state -------------------------------- *)

type config = {
  socket_path : string;
  domains : int;
  batch_max : int;
  max_queue : int;
  backlog : int;
  limits : Protocol.limits;
  send_timeout : float;
  trace : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    domains = Core.Work_pool.default_domains ();
    batch_max = 64;
    max_queue = 1024;
    backlog = 64;
    limits = Protocol.default_limits;
    send_timeout = 10.0;
    trace = false;
    log = ignore;
  }

type job = {
  pattern : string;
  k : int;
  engine : Kmismatch.engine;
  deadline : Deadline.t;
      (* anchored at admission: the budget covers queue wait too *)
  jm : Mutex.t;
  jcv : Condition.t;
  mutable answer : (Kmismatch.Response.t, Kmm_error.t) result option;
}

type t = {
  cfg : config;
  corpus : Corpus.t;
  listen_fd : Unix.file_descr;
  pool : Core.Work_pool.t;
  (* query queue *)
  qm : Mutex.t;
  qcv : Condition.t;
  queue : job Queue.t;
  (* connection registry *)
  cm : Mutex.t;
  mutable conns : Thread.t list;
  (* metrics *)
  mm : Mutex.t;
  sink : Obs.t;
  stop_requested : bool Atomic.t;
  stopped : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable dispatcher : Thread.t option;
}

let stopping t = Atomic.get t.stop_requested

let request_stop t = Atomic.set t.stop_requested true

let with_metrics t f =
  Mutex.lock t.mm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mm) (fun () -> f t.sink)

let bump t name = with_metrics t (fun s -> Obs.incr s name)

let metrics_text t = with_metrics t Obs.to_prometheus

(* --- dispatcher ----------------------------------------------------- *)

(* Run one batch across the pool.  Each task answers exactly one job via
   [Kmismatch.try_run] — validation failures and even engine exceptions
   become values here, so a task can never raise into the pool.  Results
   land in a slot array indexed by task (the pool's deterministic-merge
   idiom) and are published to the waiting connection threads under each
   job's own mutex after the join. *)
let process_batch t (batch : job array) =
  let n = Array.length batch in
  let forks = Array.init (Core.Work_pool.domains t.pool) (fun _ -> Obs.fork t.sink) in
  let answers =
    Array.make n (Error (Kmm_error.Internal "batch task never ran"))
  in
  (try
     Core.Work_pool.run ~obs:forks t.pool ~tasks:n (fun ~worker ~task ->
         let j = batch.(task) in
         (* A job whose budget already expired in the queue is answered
            without touching the corpus; one that expires mid-search is
            cut by the engine polls inside [try_run].  Either way the
            reply is a typed [Timeout] and partial work is discarded. *)
         if Deadline.expired j.deadline then
           answers.(task) <-
             Error (Kmm_error.Timeout "deadline expired while queued")
         else
           let query =
             Kmismatch.Query.make ~obs:forks.(worker) ~deadline:j.deadline
               ~engine:j.engine ~pattern:j.pattern ~k:j.k ()
           in
           answers.(task) <-
             (match Corpus.try_run t.corpus query with
             | r -> r
             | exception e -> Error (Kmm_error.Internal (Printexc.to_string e))))
   with e ->
     (* [try_run] never raises, so this is a pool-level fault; answer
        every job rather than leaving a connection thread waiting. *)
     let reason = Kmm_error.Internal (Printexc.to_string e) in
     Array.iteri (fun i _ -> answers.(i) <- Error reason) batch);
  with_metrics t (fun s ->
      Array.iter (fun o -> Obs.merge ~into:s o) forks;
      Obs.record s "serve.batch_size" n;
      Obs.incr ~by:n s "serve.queries");
  Array.iteri
    (fun i j ->
      Mutex.lock j.jm;
      j.answer <- Some answers.(i);
      Condition.signal j.jcv;
      Mutex.unlock j.jm)
    batch

let dispatcher_loop t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not (stopping t) do
      Condition.wait t.qcv t.qm
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.qm (* stopping and drained *)
    else begin
      let batch = ref [] in
      let count = ref 0 in
      while !count < t.cfg.batch_max && not (Queue.is_empty t.queue) do
        batch := Queue.pop t.queue :: !batch;
        incr count
      done;
      Mutex.unlock t.qm;
      process_batch t (Array.of_list (List.rev !batch));
      loop ()
    end
  in
  loop ()

(* Submit a query and block until the dispatcher answers it.  Admission
   can refuse — typed, before any work — for two reasons: a stop was
   requested (the queue is guaranteed to drain, so anything admitted is
   guaranteed an answer), or the queue is at [max_queue] (shed, so a
   burst beyond capacity costs the excess queries an immediate
   [Overloaded] reply instead of unbounded memory and queue latency).
   Both are [Overloaded]: transient by contract, safe to retry with
   backoff. *)
let submit t ~pattern ~k ~engine ~deadline =
  Mutex.lock t.qm;
  if stopping t then begin
    Mutex.unlock t.qm;
    Error (Kmm_error.Overloaded "server is shutting down (draining)")
  end
  else if Queue.length t.queue >= t.cfg.max_queue then begin
    Mutex.unlock t.qm;
    Error
      (Kmm_error.Overloaded
         (Printf.sprintf "admission queue full (max_queue = %d)"
            t.cfg.max_queue))
  end
  else begin
    let job =
      { pattern; k; engine; deadline; jm = Mutex.create ();
        jcv = Condition.create (); answer = None }
    in
    Queue.add job t.queue;
    Condition.signal t.qcv;
    Mutex.unlock t.qm;
    Mutex.lock job.jm;
    while job.answer = None do
      Condition.wait job.jcv job.jm
    done;
    Mutex.unlock job.jm;
    match job.answer with Some r -> r | None -> assert false
  end

(* --- connection handling -------------------------------------------- *)

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] l

let info_fields t =
  let open Protocol in
  [
    ("protocol", Json.Int 1);
    ("length", Json.Int (Corpus.length t.corpus));
    ("shards", Json.Int (Corpus.nshards t.corpus));
    ("max_query", Json.Int (Corpus.max_query t.corpus));
    ("domains", Json.Int (Core.Work_pool.domains t.pool));
    ( "engines",
      Json.List
        (List.map
           (fun e -> Json.String (Kmismatch.engine_name e))
           (Kmismatch.all_engines ())) );
    ("limits", limits_to_json t.cfg.limits);
  ]

let handle_query t ~respond ~id ~pattern ~k ~engine ~deadline =
  let open Protocol in
  let t0 = Obs.Clock.now_ns () in
  (* The relative wire budget is anchored to the monotonic clock here,
     at admission: queue wait spends it just like search does. *)
  let deadline =
    match deadline with None -> Deadline.none | Some s -> Deadline.after s
  in
  match submit t ~pattern ~k ~engine ~deadline with
  | Error e ->
      with_metrics t (fun s ->
          match e with
          | Kmm_error.Overloaded _ -> Obs.incr s "serve.shed"
          | Kmm_error.Timeout _ -> Obs.incr s "serve.timeouts"
          | _ -> Obs.incr s "serve.errors");
      respond (error_response ~id e)
  | Ok r ->
      let hits = r.Kmismatch.Response.hits in
      let count = List.length hits in
      let truncated = count > t.cfg.limits.max_hits in
      let hits = if truncated then take t.cfg.limits.max_hits hits else hits in
      let reply = ok_hits_response ~id ~truncated hits in
      respond reply;
      with_metrics t (fun s ->
          Obs.record s "serve.request_ns" (Obs.Clock.now_ns () - t0);
          Obs.add s "serve.hits" count;
          if truncated then Obs.incr s "serve.truncated")

let handle_conn t fd =
  let open Protocol in
  let reader = Line_reader.create fd in
  let max_line = t.cfg.limits.max_frame in
  (* Each response gets one whole-send budget: a peer that stops reading
     stalls only its own connection, and only for [send_timeout]. *)
  let respond s =
    write_all ~deadline:(Deadline.after t.cfg.send_timeout) fd (s ^ "\n")
  in
  let reject ~id e =
    bump t "serve.rejected";
    respond (error_response ~id e)
  in
  let handle_frame line =
    match parse_request ~limits:t.cfg.limits line with
    | Error (id, e) -> reject ~id e
    | Ok { id; body } -> (
        bump t "serve.requests";
        match body with
        | Ping -> respond (ok_obj_response ~id [ ("pong", Json.Bool true) ])
        | Metrics ->
            respond (ok_obj_response ~id [ ("metrics", Json.String (metrics_text t)) ])
        | Info -> respond (ok_obj_response ~id (info_fields t))
        | Shutdown ->
            respond (ok_obj_response ~id [ ("stopping", Json.Bool true) ]);
            t.cfg.log "shutdown requested over the wire";
            request_stop t
        | Query { pattern; k; engine; deadline } ->
            handle_query t ~respond ~id ~pattern ~k ~engine ~deadline)
  in
  let rec loop () =
    match Line_reader.next ~max_line reader with
    | Timeout -> if stopping t then () else loop ()
    | Eof -> ()
    | Truncated ->
        (* The peer shut its write side mid-frame; it may still read. *)
        reject ~id:Json.Null
          (Kmm_error.Bad_input "truncated frame: connection closed mid-line")
    | Oversize ->
        reject ~id:Json.Null
          (Kmm_error.Bad_input
             (Printf.sprintf "frame exceeds max_frame (%d bytes)" max_line));
        loop ()
    | Line "" -> loop ()
    | Line line ->
        handle_frame line;
        (* On stop, keep consuming frames the client already pipelined
           into our buffer — each gets a typed [Overloaded] refusal from
           [submit] — and only then hang up.  A late arrival is told why
           it was refused instead of seeing a silent close. *)
        if stopping t && not (Line_reader.buffered reader) then () else loop ()
  in
  (try loop () with
  | Conn_lost -> bump t "serve.conns_dropped"
  | Conn_stalled -> bump t "serve.conns_stalled"
  | e ->
      bump t "serve.conns_failed";
      t.cfg.log (Printf.sprintf "connection failed: %s" (Printexc.to_string e)));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  bump t "serve.disconnects"

let acceptor_loop t =
  let rec loop () =
    if stopping t then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              (* Bounded read timeout: connection threads poll the stop
                 flag at least every 250 ms even when a client idles.
                 The send timeout makes a blocked [Unix.write] wake just
                 as often, so [write_all] can enforce its whole-response
                 budget against a stalled reader. *)
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.25;
              bump t "serve.connections";
              let th = Thread.create (fun () -> handle_conn t fd) () in
              Mutex.lock t.cm;
              t.conns <- th :: t.conns;
              Mutex.unlock t.cm;
              loop ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
              loop ()
          (* stop closes the fd between select and accept *)
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> () (* closed by stop *)
  in
  loop ()

(* --- lifecycle ------------------------------------------------------ *)

(* Binding over a leftover socket file: a live daemon answers a connect,
   a stale file (crashed or killed -9 predecessor) refuses it.  Only the
   stale case is safe to unlink and reclaim. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* [Fun.protect], not a close after the match: an unexpected raise
       out of [connect] must not leak the probe fd. *)
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      Kmm_error.raise_error
        (Kmm_error.Io (Failure (Printf.sprintf "%s: a daemon is already listening" path)))
    else try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(* Linux [sun_path] is 108 bytes including the terminating NUL.  A
   longer path would surface from [Unix.bind] (or even the pre-bind
   liveness probe) as a raw [Unix_error]/[Invalid_argument]; refuse it
   up front as the typed bad-input it is. *)
let max_socket_path = 107

let start cfg corpus =
  if cfg.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Server.start: batch_max must be >= 1";
  if cfg.max_queue < 1 then invalid_arg "Server.start: max_queue must be >= 1";
  if not (cfg.send_timeout > 0.) then
    invalid_arg "Server.start: send_timeout must be > 0";
  if String.length cfg.socket_path > max_socket_path then
    Kmm_error.raise_error
      (Kmm_error.Bad_input
         (Printf.sprintf
            "socket path is %d bytes; AF_UNIX socket paths are limited to %d bytes"
            (String.length cfg.socket_path)
            max_socket_path));
  (* A disconnecting client must never kill the daemon: writes to a dead
     peer report EPIPE instead of raising the default-fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  claim_socket_path cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd cfg.backlog;
     Unix.set_nonblock listen_fd
   with
  | () -> ()
  | exception e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match e with
      | Unix.Unix_error _ | Sys_error _ -> Kmm_error.raise_error (Kmm_error.Io e)
      | e -> raise e));
  let t =
    {
      cfg;
      corpus;
      listen_fd;
      pool = Core.Work_pool.create ~domains:cfg.domains ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      cm = Mutex.create ();
      conns = [];
      mm = Mutex.create ();
      sink = Obs.create ~trace:cfg.trace ();
      stop_requested = Atomic.make false;
      stopped = Atomic.make false;
      acceptor = None;
      dispatcher = None;
    }
  in
  Fmindex.Fm_index.Telemetry.set_enabled true;
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  cfg.log
    (Printf.sprintf "listening on %s (%d bp corpus, %d shard%s, %d domain%s, batch <= %d)"
       cfg.socket_path (Corpus.length corpus)
       (Corpus.nshards corpus)
       (if Corpus.nshards corpus = 1 then "" else "s")
       cfg.domains
       (if cfg.domains = 1 then "" else "s")
       cfg.batch_max);
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    request_stop t;
    (* Wake the dispatcher so it can observe the flag and drain. *)
    Mutex.lock t.qm;
    Condition.broadcast t.qcv;
    Mutex.unlock t.qm;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    Option.iter Thread.join t.dispatcher;
    let conns =
      Mutex.lock t.cm;
      let l = t.conns in
      t.conns <- [];
      Mutex.unlock t.cm;
      l
    in
    List.iter Thread.join conns;
    Core.Work_pool.shutdown t.pool;
    Fmindex.Fm_index.Telemetry.set_enabled false;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    t.cfg.log "stopped (drained)"
  end

let serve ?trace_out ?metrics_out cfg corpus =
  let t = start cfg corpus in
  let install sg = Sys.signal sg (Sys.Signal_handle (fun _ -> request_stop t)) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  let finish () =
    stop t;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Mutex.lock t.mm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mm)
      (fun () ->
        Option.iter (Obs.write_chrome_trace ~process_name:"kmm-serve" t.sink) trace_out;
        Option.iter (Obs.write_prometheus t.sink) metrics_out)
  in
  Fun.protect ~finally:finish (fun () ->
      while not (stopping t) do
        try Thread.delay 0.1
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      cfg.log "stop requested; draining")

(* --- client helpers ------------------------------------------------- *)

module Client = struct
  type c = {
    fd : Unix.file_descr;
    reader : Line_reader.t;
    timeout : float option;  (* read budget per reply, None = wait forever *)
  }

  (* Connect with an optional budget.  The refused/stale/missing-socket
     family keeps raising [Unix.Unix_error] (callers pattern-match it to
     print the "is kmm serve running?" hint); a connect that hangs —
     possible when the daemon's listen backlog is full — is bounded by
     [timeout] via the non-blocking connect + select idiom and surfaces
     as [Unix_error (ETIMEDOUT, "connect", path)]. *)
  let connect ?timeout path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match
       match timeout with
       | None -> Unix.connect fd (Unix.ADDR_UNIX path)
       | Some budget -> (
           Unix.set_nonblock fd;
           (match Unix.connect fd (Unix.ADDR_UNIX path) with
           | () -> ()
           | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
             -> (
               match Unix.select [] [ fd ] [] budget with
               | _, [ _ ], _ -> (
                   match Unix.getsockopt_error fd with
                   | None -> ()
                   | Some err -> raise (Unix.Unix_error (err, "connect", path)))
               | _ ->
                   raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", path))));
           Unix.clear_nonblock fd;
           (* Reads and writes inherit the same budget as ticks; the
              whole-reply budget is enforced in [recv_line]. *)
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO (Float.min budget 0.25);
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO (Float.min budget 0.25))
     with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    { fd; reader = Line_reader.create fd; timeout }

  (* [connect] with the failure as a value: the raw [Unix_error] becomes
     a typed [Io] carrying an actionable message.  This is what the CLI
     and the retry loop below build on. *)
  let try_connect ?timeout path =
    match connect ?timeout path with
    | c -> Ok c
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Kmm_error.Io
             (Failure
                (Printf.sprintf "cannot connect to %s: %s (is kmm serve running?)"
                   path (Unix.error_message e))))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let send_line c s =
    let deadline =
      match c.timeout with None -> Deadline.none | Some b -> Deadline.after b
    in
    write_all ~deadline c.fd (s ^ "\n")

  exception Read_timed_out

  let recv_line c =
    let deadline =
      match c.timeout with None -> Deadline.none | Some b -> Deadline.after b
    in
    let rec go () =
      match Line_reader.next ~max_line:Sys.max_string_length c.reader with
      | Line_reader.Line l -> Some l
      | Line_reader.Timeout ->
          (* SO_RCVTIMEO tick (only set when a timeout was requested):
             re-check the whole-reply budget and keep waiting. *)
          if Deadline.expired deadline then raise Read_timed_out else go ()
      | Line_reader.Eof | Line_reader.Truncated | Line_reader.Oversize -> None
    in
    go ()

  let rpc c frame =
    match send_line c frame with
    | () -> (
        match recv_line c with
        | Some line -> (
            match Protocol.parse_reply line with
            | Ok reply -> Ok reply
            | Error m -> Error (Kmm_error.Internal m))
        | None ->
            Error (Kmm_error.Io (Failure "connection closed by server"))
        | exception Read_timed_out ->
            Error
              (Kmm_error.Timeout
                 (Printf.sprintf "no reply within %gs"
                    (Option.value ~default:0. c.timeout))))
    | exception Conn_lost ->
        Error (Kmm_error.Io (Failure "connection lost"))
    | exception Conn_stalled ->
        Error (Kmm_error.Timeout "send stalled: server stopped reading")

  let query c ?id ?engine ?deadline ~pattern ~k () =
    rpc c (Protocol.query_request ?id ?engine ?deadline ~pattern ~k ())

  let command c cmd = rpc c (Protocol.command_request cmd)

  (* --- retry policy ------------------------------------------------- *)

  (* What a client may transparently retry.  [Overloaded] is the server
     saying exactly that ("try again later"); a connection-level [Io]
     (refused, reset, vanished) means no request was — or can still
     be — processed.  [Bad_input] (and the rest of the parse/index
     family) is deterministic: retrying it spams the server with the
     same mistake.  [Timeout] is deliberately not retryable: the budget
     was the caller's own, and retrying with the same budget mostly
     burns another budget; callers that want to retry a timeout opt in
     by raising it. *)
  let retryable = function
    | Kmm_error.Overloaded _ | Kmm_error.Io _ -> true
    | Kmm_error.Timeout _ | Kmm_error.Bad_input _ | Kmm_error.Internal _
    | Kmm_error.Bad_magic | Kmm_error.Unsupported_version _
    | Kmm_error.Truncated _ | Kmm_error.Corrupt _ ->
        false

  (* Capped jittered exponential backoff: attempt [i] (0-based) sleeps
     [base * 2^i] scaled by a uniform jitter in [0.5, 1.0] (decorrelates
     a fleet of clients shed at the same instant), capped at [cap].
     Deterministic given [seed] — chaos tests pin it. *)
  let backoff_delay ~rng ~base ~cap i =
    let expo = base *. (2. ** float_of_int i) in
    Float.min cap expo *. (0.5 +. (Random.State.float rng 0.5))

  let with_retry ?(attempts = 3) ?(base = 0.05) ?(cap = 2.0) ?seed f =
    let rng =
      match seed with
      | Some s -> Random.State.make [| s |]
      | None -> Random.State.make_self_init ()
    in
    let rec go i =
      match f () with
      | Ok _ as ok -> ok
      | Error e when i + 1 < attempts && retryable e ->
          Thread.delay (backoff_delay ~rng ~base ~cap i);
          go (i + 1)
      | Error _ as err -> err
    in
    go 0
end
