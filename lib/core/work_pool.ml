(* A small domain pool: Mutex/Condition chunk queue over Domain.spawn.

   One job at a time.  A job is [total] integer tasks; [next] is the
   queue head.  Workers (and the submitting domain, as worker 0) pull
   task ids under [lock], execute them unlocked, and bump [finished]
   when done.  Results are written by the task bodies into caller-owned
   per-task slots, so merging is deterministic by construction.

   On an exception the remaining tasks still run (keeping the
   [finished = total] completion invariant trivially true even with
   tasks in flight on other domains); the first failure observed is
   re-raised at the submitter as [Task_failed] — carrying the id of the
   task that blew up — once the job has fully drained, so a raising task
   can never deadlock the pool or orphan a domain. *)

exception Task_failed of { task : int; exn : exn }
exception Cancelled

let () =
  Printexc.register_printer (function
    | Task_failed { task; exn } ->
        Some
          (Printf.sprintf "Work_pool.Task_failed (task %d: %s)" task
             (Printexc.to_string exn))
    | Cancelled -> Some "Work_pool.Cancelled"
    | _ -> None)

type job = {
  body : worker:int -> task:int -> unit;
  total : int;
  mutable next : int;  (* next task id to hand out *)
  mutable finished : int;  (* task ids fully executed *)
  mutable error : (int * exn) option;  (* first failing task id + exception *)
  cancel : (unit -> bool) option;  (* polled before each task body *)
  mutable cancelled : bool;  (* a body was skipped because [cancel] fired *)
  obs : Obs.t array;  (* per-worker sinks; [||] = observability off *)
  submitted_ns : int;  (* monotonic submission instant, for queue-wait *)
}

(* The sink worker [w] records into; never shared across domains. *)
let obs_of j ~worker =
  if worker < Array.length j.obs then j.obs.(worker) else Obs.noop

(* Instrumented task execution: queue-wait histogram (time from job
   submission to the pull), a task counter, and a per-task duration
   histogram.  With observability off this is exactly [body]. *)
let exec_task j ~worker ~task =
  let o = obs_of j ~worker in
  if Obs.enabled o then begin
    Obs.record o "pool.queue_wait_ns" (Obs.Clock.now_ns () - j.submitted_ns);
    Obs.incr o "pool.tasks";
    Obs.time o "pool.task" (fun () -> j.body ~worker ~task)
  end
  else j.body ~worker ~task

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;  (* a job was installed, or shutdown begun *)
  work_done : Condition.t;  (* a job drained *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (* length [n - 1] *)
  n : int;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())
let domains t = t.n

(* Pull and execute tasks until none are left to hand out.  Called with
   [t.lock] held; returns with it held. *)
let drain_tasks t j ~worker =
  while j.next < j.total do
    let task = j.next in
    j.next <- j.next + 1;
    Mutex.unlock t.lock;
    (* The cancel poll happens unlocked: it may read a clock or an
       Atomic, and must never raise. *)
    let skip = match j.cancel with Some c -> c () | None -> false in
    let error =
      if skip then None
      else
        match exec_task j ~worker ~task with
        | () -> None
        | exception e -> Some (task, e)
    in
    Mutex.lock t.lock;
    if skip then j.cancelled <- true;
    (match error with
    | None -> ()
    | Some _ when j.error <> None -> ()
    | Some _ -> j.error <- error);
    j.finished <- j.finished + 1;
    if j.finished = j.total then Condition.broadcast t.work_done
  done

let worker_loop t ~worker =
  Mutex.lock t.lock;
  let rec loop () =
    if t.stop then Mutex.unlock t.lock
    else
      match t.job with
      | Some j when j.next < j.total ->
          drain_tasks t j ~worker;
          loop ()
      | _ ->
          Condition.wait t.work_ready t.lock;
          loop ()
  in
  loop ()

let create ?domains () =
  let n = match domains with None -> default_domains () | Some d -> d in
  if n < 1 then invalid_arg "Work_pool.create: domains must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      n;
    }
  in
  t.workers <-
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
  t

let run ?cancel ?(obs = [||]) t ~tasks body =
  if tasks < 0 then invalid_arg "Work_pool.run: negative task count";
  if t.stop then invalid_arg "Work_pool.run: pool is shut down";
  let submitted_ns =
    if Array.exists Obs.enabled obs then Obs.Clock.now_ns () else 0
  in
  if tasks = 0 then ()
  else if t.n = 1 then begin
    (* Sequential special case: inline, in order, no locking — but with
       the same failure semantics as the parallel path: a raising task
       does not stop the remaining tasks, the first failure surfaces
       as [Task_failed] with its task id once the job has drained, and
       [cancel] is polled before every task body. *)
    let j = { body; total = tasks; next = 0; finished = 0; error = None;
              cancel; cancelled = false; obs; submitted_ns } in
    let error = ref None in
    for task = 0 to tasks - 1 do
      let skip = match cancel with Some c -> c () | None -> false in
      if skip then j.cancelled <- true
      else
        match exec_task j ~worker:0 ~task with
        | () -> ()
        | exception e -> if !error = None then error := Some (task, e)
    done;
    match !error with
    | Some (task, exn) -> raise (Task_failed { task; exn })
    | None -> if j.cancelled then raise Cancelled
  end
  else begin
    Mutex.lock t.lock;
    if t.job <> None then begin
      Mutex.unlock t.lock;
      invalid_arg "Work_pool.run: a job is already running (re-entrant run?)"
    end;
    let j = { body; total = tasks; next = 0; finished = 0; error = None;
              cancel; cancelled = false; obs; submitted_ns } in
    t.job <- Some j;
    Condition.broadcast t.work_ready;
    (* The submitting domain participates as worker 0. *)
    drain_tasks t j ~worker:0;
    while j.finished < j.total do
      Condition.wait t.work_done t.lock
    done;
    t.job <- None;
    let cancelled = j.cancelled in
    Mutex.unlock t.lock;
    match j.error with
    | Some (task, exn) -> raise (Task_failed { task; exn })
    | None -> if cancelled then raise Cancelled
  end

let map_array t ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t ~tasks:n (fun ~worker:_ ~task ->
        results.(task) <- Some (f a.(task)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let chunks ~total ~chunk_size =
  if total < 0 then invalid_arg "Work_pool.chunks: negative total";
  if chunk_size < 1 then invalid_arg "Work_pool.chunks: chunk_size must be >= 1";
  let n = (total + chunk_size - 1) / chunk_size in
  Array.init n (fun i ->
      let start = i * chunk_size in
      (start, min chunk_size (total - start)))
