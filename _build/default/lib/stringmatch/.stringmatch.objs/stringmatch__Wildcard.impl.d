lib/stringmatch/wildcard.ml: Array Kmp List String
