examples/multi_pattern.ml: Array Core Dna Fmindex List Printf String Stringmatch Suffix
