lib/fmindex/fm_index.ml: Array Bwt Bytes Char Dna Hashtbl List Occ Printf String Suffix
