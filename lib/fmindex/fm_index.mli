(** FM-index: BWT-based full-text index with backward search and locate.

    Rows of the conceptual Burrows-Wheeler matrix of [s ^ "$"] are numbered
    [0 .. n], and an interval is a half-open row range [(lo, hi)].  Backward
    search extends a matched string one character *to the left*; this is the
    paper's [search(z, L_v)] primitive. *)

type t

type interval = int * int
(** Half-open row range [lo, hi); nonempty iff [lo < hi]. *)

val build : ?occ_rate:int -> ?sa_rate:int -> string -> t
(** Index the DNA text [s] (lowercase [acgt]; the sentinel is appended
    internally).  [occ_rate] is the rank checkpoint spacing (default 32,
    quantized by {!Occ} to a power of two); [sa_rate] the suffix-array
    sampling rate for {!locate} (default 16). *)

val length : t -> int
(** Length of the indexed text (sentinel excluded). *)

val text : t -> string
val bwt : t -> string

val whole : t -> interval
(** The interval of every row, [(0, n+1)]. *)

val extend : t -> int -> interval -> interval option
(** [extend t c (lo, hi)] narrows the interval by prepending character code
    [c]: the result covers exactly the rows whose suffix starts with [c]
    followed by the previous match.  [None] if the extension is empty. *)

val interval_of_char : t -> int -> interval option
(** Rows whose first character is the given code — the paper's [F_x]. *)

val search : t -> string -> interval option
(** Backward search of a pattern; [None] when absent.  Patterns are case
    folded ([ACGT] matches [acgt]); a pattern containing any character
    outside ACGT occurs nowhere and yields [None] rather than raising. *)

val count : t -> string -> int
(** Number of occurrences of a pattern in the text.  Same pattern
    normalization as {!search}: invalid patterns count 0. *)

val locate : t -> interval -> int list
(** Sorted 0-based starting positions of the suffixes in the interval.
    Rows are resolved through the sampled suffix array by LF-walking. *)

val locate_into : t -> interval -> int array -> unit
(** [locate_into t (lo, hi) dst] writes the position of row [lo + i] into
    [dst.(i)] for [i < hi - lo], unsorted and without allocating — the
    batched primitive under {!locate}.  Raises [Invalid_argument] if the
    interval is out of range or [dst] is shorter than [hi - lo]. *)

val find_all : t -> string -> int list
(** [search] then [locate]; sorted positions of the pattern.  Invalid
    patterns (outside ACGT after case folding) yield []. *)

val space_report : t -> (string * int) list
(** Named byte sizes of the index components, one entry per owned buffer
    (packed rank blocks, SA mark bitvector + rank directory, SA samples,
    C array, and the retained text copy); entries sum to the index's
    heap footprint, with no component counted twice. *)

val extend_all : t -> interval -> los:int array -> his:int array -> unit
(** One-pass variant of {!extend} for every character code at once:
    afterwards the extension of the interval by code [c] is
    [(los.(c), his.(c))], nonempty iff [los.(c) < his.(c)].  Both arrays
    must have length 5 (the alphabet size).  Costs two block scans
    instead of eight. *)

val save : t -> string -> unit
(** Persist the index to a file in format v2: an ASCII header followed by
    the 2-bit packed text, the interleaved rank blocks, the superblock
    counters, and the SA mark bitvector and samples — the index's own
    buffers, written verbatim. *)

val load : string -> t
(** Reload an index written by {!save}.  A v2 file is adopted directly
    (read plus structural validation; no BWT inversion, rank recount or
    LF reconstruction); v1 files from earlier releases are still read via
    the original rebuild path.  Raises [Failure] on a file that is not a
    valid index (wrong magic, truncated or inconsistent sections,
    trailing garbage). *)
