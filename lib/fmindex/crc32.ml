(* CRC-32/ISO-HDLC: reflected 0xEDB88320, init and xorout 0xFFFFFFFF. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let sub ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub: out-of-range slice";
  let table = Lazy.force table in
  let c = ref (init lxor mask32) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor mask32

let string ?init s = sub ?init s ~pos:0 ~len:(String.length s)
let bytes ?init b = string ?init (Bytes.unsafe_to_string b)
