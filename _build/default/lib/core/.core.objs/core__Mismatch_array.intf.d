lib/core/mismatch_array.mli: Suffix
