lib/core/kmismatch.ml: Amir Cole Dna Fmindex Hybrid Lazy List M_tree S_tree String Stringmatch Suffix
