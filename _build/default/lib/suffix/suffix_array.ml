(* SA-IS (Nong, Zhang & Chan 2009): induced sorting of LMS substrings with a
   recursive call on the reduced string when LMS names are not yet unique.

   [sais s sigma] expects [s] to end with a unique, smallest sentinel 0 and
   every other symbol in [1 .. sigma-1]. *)

let rec sais s sigma =
  let n = Array.length s in
  let sa = Array.make n (-1) in
  if n = 1 then begin
    sa.(0) <- 0;
    sa
  end
  else begin
    (* Type classification: t.(i) is true iff suffix i is S-type. *)
    let t = Array.make n false in
    t.(n - 1) <- true;
    for i = n - 2 downto 0 do
      t.(i) <- s.(i) < s.(i + 1) || (s.(i) = s.(i + 1) && t.(i + 1))
    done;
    let is_lms i = i > 0 && t.(i) && not t.(i - 1) in
    let bucket = Array.make sigma 0 in
    Array.iter (fun c -> bucket.(c) <- bucket.(c) + 1) s;
    let bucket_heads () =
      let b = Array.make sigma 0 in
      let sum = ref 0 in
      for c = 0 to sigma - 1 do
        b.(c) <- !sum;
        sum := !sum + bucket.(c)
      done;
      b
    in
    let bucket_tails () =
      let b = Array.make sigma 0 in
      let sum = ref 0 in
      for c = 0 to sigma - 1 do
        sum := !sum + bucket.(c);
        b.(c) <- !sum
      done;
      b
    in
    (* Induced sort: seed the bucket tails with the given LMS positions
       (inserted back to front, so the array order becomes the in-bucket
       order), then induce L-types left to right and S-types right to
       left. *)
    let induce seed_lms =
      Array.fill sa 0 n (-1);
      let tails = bucket_tails () in
      for k = Array.length seed_lms - 1 downto 0 do
        let i = seed_lms.(k) in
        let c = s.(i) in
        tails.(c) <- tails.(c) - 1;
        sa.(tails.(c)) <- i
      done;
      let heads = bucket_heads () in
      for k = 0 to n - 1 do
        let j = sa.(k) in
        if j > 0 && not t.(j - 1) then begin
          let c = s.(j - 1) in
          sa.(heads.(c)) <- j - 1;
          heads.(c) <- heads.(c) + 1
        end
      done;
      let tails = bucket_tails () in
      for k = n - 1 downto 0 do
        let j = sa.(k) in
        if j > 0 && t.(j - 1) then begin
          let c = s.(j - 1) in
          tails.(c) <- tails.(c) - 1;
          sa.(tails.(c)) <- j - 1
        end
      done
    in
    let lms = ref [] in
    for i = n - 1 downto 1 do
      if is_lms i then lms := i :: !lms
    done;
    let lms_positions = Array.of_list !lms in
    let n_lms = Array.length lms_positions in
    if n_lms = 0 then begin
      (* Only the sentinel is LMS-free: the whole string is one L-run. *)
      induce [||];
      sa
    end
    else begin
      (* Step 1: approximate sort to order the LMS *substrings*. *)
      induce lms_positions;
      (* Collect LMS positions in the order they now appear in sa. *)
      let sorted_lms = Array.make n_lms 0 in
      let idx = ref 0 in
      for k = 0 to n - 1 do
        let j = sa.(k) in
        if j > 0 && is_lms j then begin
          sorted_lms.(!idx) <- j;
          incr idx
        end
      done;
      (* Name LMS substrings; equal substrings share a name. *)
      let name_of = Array.make n (-1) in
      let lms_end i =
        (* Exclusive end of the LMS substring starting at i: up to and
           including the next LMS position. *)
        let rec go j = if j >= n || is_lms j then j else go (j + 1) in
        go (i + 1)
      in
      let equal_lms a b =
        let ea = lms_end a and eb = lms_end b in
        let la = ea - a and lb = eb - b in
        if la <> lb then false
        else begin
          let rec cmp d =
            if d > la then true
            else if a + d < n && b + d < n && s.(a + d) = s.(b + d) then
              cmp (d + 1)
            else a + d >= n && b + d >= n
          in
          cmp 0
        end
      in
      let names = ref 0 in
      name_of.(sorted_lms.(0)) <- 0;
      for k = 1 to n_lms - 1 do
        if not (equal_lms sorted_lms.(k - 1) sorted_lms.(k)) then incr names;
        name_of.(sorted_lms.(k)) <- !names
      done;
      let distinct = !names + 1 in
      let lms_order =
        if distinct = n_lms then begin
          (* Names already unique: sorted_lms is the LMS suffix order. *)
          sorted_lms
        end
        else begin
          (* Recurse on the reduced string of LMS names (in text order). *)
          let reduced = Array.make n_lms 0 in
          Array.iteri (fun i pos -> reduced.(i) <- name_of.(pos) + 1) lms_positions;
          (* The last LMS position is n-1 (the sentinel), whose name is the
             unique smallest; shift names by 1 and append 0 sentinel. *)
          let reduced' = Array.append reduced [| 0 |] in
          let sa_red = sais reduced' (distinct + 2) in
          let order = Array.make n_lms 0 in
          let idx = ref 0 in
          Array.iter
            (fun r ->
              if r < n_lms then begin
                order.(!idx) <- lms_positions.(r);
                incr idx
              end)
            sa_red;
          order
        end
      in
      (* Step 3: final induced sort seeded with fully sorted LMS suffixes. *)
      induce lms_order;
      sa
    end
  end

let build s =
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let codes = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      codes.(i) <- Char.code s.[i] + 1
    done;
    let sa = sais codes 257 in
    (* Drop the sentinel suffix (always first). *)
    Array.sub sa 1 n
  end

let build_doubling s =
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let sa = Array.init n (fun i -> i) in
    let rank = Array.init n (fun i -> Char.code s.[i]) in
    let tmp = Array.make n 0 in
    let k = ref 1 in
    let continue = ref (n > 1) in
    while !continue do
      let key i = (rank.(i), if i + !k < n then rank.(i + !k) else -1) in
      Array.sort (fun a b -> compare (key a) (key b)) sa;
      tmp.(sa.(0)) <- 0;
      for i = 1 to n - 1 do
        tmp.(sa.(i)) <-
          (tmp.(sa.(i - 1)) + if key sa.(i - 1) = key sa.(i) then 0 else 1)
      done;
      Array.blit tmp 0 rank 0 n;
      if rank.(sa.(n - 1)) = n - 1 then continue := false;
      k := !k * 2
    done;
    sa
  end

let build_naive s =
  let n = String.length s in
  let sa = Array.init n (fun i -> i) in
  let suffix i = String.sub s i (n - i) in
  Array.sort (fun a b -> compare (suffix a) (suffix b)) sa;
  sa

let rank_of sa =
  let rank = Array.make (Array.length sa) 0 in
  Array.iteri (fun i p -> rank.(p) <- i) sa;
  rank

let is_valid s sa =
  let n = String.length s in
  Array.length sa = n
  && begin
       let seen = Array.make n false in
       Array.for_all
         (fun p ->
           p >= 0 && p < n
           &&
           if seen.(p) then false
           else begin
             seen.(p) <- true;
             true
           end)
         sa
     end
  &&
  let suffix i = String.sub s i (n - i) in
  let rec sorted i =
    i >= n - 1 || (String.compare (suffix sa.(i)) (suffix sa.(i + 1)) < 0 && sorted (i + 1))
  in
  sorted 0
