examples/quickstart.mli:
