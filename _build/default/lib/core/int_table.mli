(** Open-addressing hash table with nonnegative integer keys.

    The M-tree search performs one lookup and often one insert per node;
    [Hashtbl] with boxed keys costs ~0.5us per operation, which at millions
    of nodes dominates the whole search.  Linear probing over two flat
    arrays brings this down by an order of magnitude. *)

type 'a t

val create : dummy:'a -> int -> 'a t
(** [create ~dummy cap] makes a table with initial capacity at least
    [cap].  [dummy] fills empty value slots and is never returned. *)

val find : 'a t -> int -> 'a option
(** Raises [Invalid_argument] on negative keys. *)

val replace : 'a t -> int -> 'a -> unit
(** Insert or overwrite.  Raises [Invalid_argument] on negative keys. *)

val length : 'a t -> int
