(* Chaos suite: deadlines, cancellation and overload protection under
   deliberately hostile conditions.

   Three layers:

   - the [Deadline] / [Work_pool ?cancel] / [Mapper] cancellation
     machinery in isolation (no sockets, fully deterministic);
   - a live daemon driven to its typed failure modes on purpose:
     admission-queue sheds (code 10), queued and mid-search deadline
     expiry (code 9), and recovery after each;
   - [Fault.Socket] misbehaving clients — dribbled frames, mid-frame
     disconnects, and a reader that never reads while a megabyte-sized
     response is in flight — each of which must cost at most its own
     connection, never the daemon.

   Timing-dependent scenarios (overload needs the pool to still be busy
   when the excess arrives) run under [retry_once] with generous
   budgets: a single spurious scheduling stall on a loaded CI box gets
   one clean re-run, a real regression fails twice and the suite with
   it. *)

module P = Kmm_server.Protocol
module S = Kmm_server.Server
module J = P.Json
module K = Core.Kmismatch
module F = Core.Fault

(* One clean re-run for scenarios whose setup depends on wall-clock
   overlap (an occupying query still running when the probe arrives). *)
let retry_once name f =
  try f ()
  with e ->
    Printf.eprintf "chaos: %s failed once (%s), retrying\n%!" name
      (Printexc.to_string e);
    f ()

(* --- fixture: a 100k bp index ---------------------------------------- *)

let random_text ~st n =
  String.init n (fun _ -> "acgt".[Random.State.int st 4])

let text =
  let st = Random.State.make [| 0xc4a05 |] in
  random_text ~st 100_000

let index = lazy (K.build_index text)

(* ~190 ms of m-tree work on the fixture and a tiny response: the
   occupier that keeps the pool busy while probes arrive. *)
let slow_pattern = String.concat "" (List.init 10 (fun _ -> "acgt"))
let slow_k = 16

(* Matches (within k=3) everywhere: ~100k hits, a ~1 MB response frame —
   far past any AF_UNIX buffering, so a peer that never reads forces the
   server's send to block. *)
let wide_pattern = "acgt"
let wide_k = 3

let with_server ?(domains = 2) ?(batch_max = 8) ?max_queue ?send_timeout f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kmm-chaos-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let base = S.default_config ~socket_path:path in
  let cfg =
    {
      base with
      domains;
      batch_max;
      max_queue = Option.value max_queue ~default:base.max_queue;
      send_timeout = Option.value send_timeout ~default:base.send_timeout;
    }
  in
  let t = S.start cfg (Core.Corpus.mono (Lazy.force index)) in
  Fun.protect ~finally:(fun () -> S.stop t) (fun () -> f t path)

let expect_hits name = function
  | Ok (P.Hits { hits; _ }) -> hits
  | Ok (P.Error_reply { code; message; _ }) ->
      Alcotest.fail (Printf.sprintf "%s: error %d: %s" name code message)
  | Ok _ -> Alcotest.fail (name ^ ": unexpected reply shape")
  | Error e -> Alcotest.fail (name ^ ": " ^ Kmm_error.to_string e)

let metric_value text name =
  (* Prometheus exposition: "kmm_<name> <value>" somewhere in [text]. *)
  let needle = "kmm_" ^ name ^ " " in
  let n = String.length text and l = String.length needle in
  let rec scan i =
    if i + l > n then None
    else if String.sub text i l = needle then begin
      (* skip "# TYPE kmm_x counter" lines: keep scanning when what
         follows the name is not a number *)
      let j = ref (i + l) in
      let start = !j in
      while !j < n && text.[!j] <> '\n' do incr j done;
      match int_of_string_opt (String.trim (String.sub text start (!j - start))) with
      | Some v -> Some v
      | None -> scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let server_metric c name =
  match S.Client.command c "metrics" with
  | Ok (P.Ok_obj { fields; _ }) -> (
      match List.assoc_opt "metrics" fields with
      | Some (J.String s) -> Option.value (metric_value s name) ~default:0
      | _ -> 0)
  | _ -> 0

(* --- deadline primitives --------------------------------------------- *)

let deadline_basics () =
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "none is none" true (Deadline.is_none Deadline.none);
  let d = Deadline.after 0.005 in
  Alcotest.(check bool) "fresh budget not expired" false (Deadline.expired d);
  Alcotest.(check bool) "remaining positive" true (Deadline.remaining_s d > 0.);
  Thread.delay 0.01;
  Alcotest.(check bool) "spent budget expired" true (Deadline.expired d);
  Alcotest.(check bool) "remaining goes negative once expired" true
    (Deadline.remaining_ns d < 0)

let deadline_ambient_poll () =
  (* [poll] must trip inside a spin once the ambient budget is gone —
     and must be free of both clock reads and raises when no ambient
     deadline is set. *)
  for _ = 1 to 10 * Deadline.poll_stride do
    Deadline.poll () (* no ambient deadline: must never raise *)
  done;
  let tripped =
    Deadline.with_ambient (Deadline.after 0.002) (fun () ->
        Thread.delay 0.005;
        try
          for _ = 1 to 100 * Deadline.poll_stride do
            Deadline.poll ()
          done;
          false
        with Deadline.Expired -> true)
  in
  Alcotest.(check bool) "poll raises in a spin after expiry" true tripped;
  Alcotest.(check bool) "ambient restored to none" true
    (Deadline.is_none (Deadline.ambient ()));
  (* [check] is the unstrided variant: first call after expiry raises. *)
  let checked =
    Deadline.with_ambient (Deadline.after 0.001) (fun () ->
        Thread.delay 0.003;
        try
          Deadline.check ();
          false
        with Deadline.Expired -> true)
  in
  Alcotest.(check bool) "check raises immediately" true checked

let pool_cancel_all () =
  (* A cancel that is already true skips every body: no work, typed
     [Cancelled] after the drain. *)
  Core.Work_pool.with_pool ~domains:2 (fun pool ->
      let ran = Atomic.make 0 in
      match
        Core.Work_pool.run ~cancel:(fun () -> true) pool ~tasks:16
          (fun ~worker:_ ~task:_ -> Atomic.incr ran)
      with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Core.Work_pool.Cancelled ->
          Alcotest.(check int) "no body ran" 0 (Atomic.get ran))

let pool_cancel_midway () =
  (* Sequential pool (domains = 1 runs tasks inline, in order): cancel
     flips after 3 completions, so exactly 3 bodies run. *)
  Core.Work_pool.with_pool ~domains:1 (fun pool ->
      let ran = ref 0 in
      match
        Core.Work_pool.run
          ~cancel:(fun () -> !ran >= 3)
          pool ~tasks:10
          (fun ~worker:_ ~task:_ -> incr ran)
      with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Core.Work_pool.Cancelled ->
          Alcotest.(check int) "exactly 3 bodies ran" 3 !ran);
  (* ...and a cancel that never fires leaves the job untouched. *)
  Core.Work_pool.with_pool ~domains:2 (fun pool ->
      let ran = Atomic.make 0 in
      Core.Work_pool.run ~cancel:(fun () -> false) pool ~tasks:10
        (fun ~worker:_ ~task:_ -> Atomic.incr ran);
      Alcotest.(check int) "all bodies ran" 10 (Atomic.get ran))

let pool_task_failed_wins () =
  (* A failing task takes precedence over a cancellation observed in the
     same job: the submitter must see the bug, not the benign cut. *)
  Core.Work_pool.with_pool ~domains:1 (fun pool ->
      let ran = ref 0 in
      match
        Core.Work_pool.run
          ~cancel:(fun () -> !ran >= 2)
          pool ~tasks:6
          (fun ~worker:_ ~task ->
            incr ran;
            if task = 1 then failwith "boom")
      with
      | () -> Alcotest.fail "expected Task_failed"
      | exception Core.Work_pool.Task_failed { task = 1; _ } -> ()
      | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e))

let reads_fixture =
  lazy
    (let st = Random.State.make [| 0xfeed |] in
     List.init 48 (fun i ->
         let len = 20 + Random.State.int st 20 in
         let pos = Random.State.int st (String.length text - len) in
         (i, String.sub text pos len)))

let mapper_expired_deadline () =
  (* A batch whose budget is already gone drains fast: every read is a
     typed Timeout skip, no hits, nothing runs. *)
  let reads = Lazy.force reads_fixture in
  let d = Deadline.after 1e-6 in
  Thread.delay 0.002;
  List.iter
    (fun domains ->
      let opts = { Core.Mapper.default with domains; deadline = d } in
      let hits, summary = Core.Mapper.run opts (Lazy.force index) ~reads ~k:2 in
      Alcotest.(check int)
        (Printf.sprintf "no hits survive (domains=%d)" domains)
        0 (List.length hits);
      Alcotest.(check int)
        (Printf.sprintf "every read skipped (domains=%d)" domains)
        (List.length reads)
        (List.length summary.Core.Mapper.skipped);
      List.iter
        (fun (_, e) ->
          match e with
          | Kmm_error.Timeout _ -> ()
          | e ->
              Alcotest.fail
                ("skip reason must be Timeout, got " ^ Kmm_error.to_string e))
        summary.Core.Mapper.skipped)
    [ 1; 3 ]

let mapper_no_deadline_unchanged () =
  (* [Deadline.none] (the default) must leave the mapper's seq=par
     byte-identity untouched — the taps-off path really is off. *)
  let reads = Lazy.force reads_fixture in
  let run domains =
    let hits, summary =
      Core.Mapper.run
        { Core.Mapper.default with domains }
        (Lazy.force index) ~reads ~k:2
    in
    (hits, Core.Mapper.deterministic_summary summary)
  in
  let h1, s1 = run 1 and h3, s3 = run 3 in
  Alcotest.(check bool) "hits byte-identical" true (h1 = h3);
  Alcotest.(check bool) "summaries identical" true (s1 = s3);
  Alcotest.(check int) "nothing skipped" 0 (List.length s1.Core.Mapper.skipped)

let query_deadline_direct () =
  let idx = Lazy.force index in
  (* Pre-expired: refused before any search work. *)
  let d = Deadline.after 1e-6 in
  Thread.delay 0.002;
  (match
     K.try_run idx
       (K.Query.make ~deadline:d ~engine:K.M_tree ~pattern:slow_pattern
          ~k:slow_k ())
   with
  | Error (Kmm_error.Timeout _) -> ()
  | Error e -> Alcotest.fail ("expected Timeout, got " ^ Kmm_error.to_string e)
  | Ok _ -> Alcotest.fail "pre-expired deadline must not produce hits");
  (* Mid-search: a ~190 ms query on a 20 ms budget is cut by the
     engine's cooperative polls, well after the start check passes. *)
  retry_once "mid-search expiry" (fun () ->
      match
        K.try_run idx
          (K.Query.make ~deadline:(Deadline.after 0.02) ~engine:K.M_tree
             ~pattern:slow_pattern ~k:slow_k ())
      with
      | Error (Kmm_error.Timeout msg) ->
          Alcotest.(check bool) "cut during the search" true
            (let needle = "during" in
             let n = String.length msg and l = String.length needle in
             let rec scan i =
               i + l <= n && (String.sub msg i l = needle || scan (i + 1))
             in
             scan 0)
      | Error e ->
          Alcotest.fail ("expected Timeout, got " ^ Kmm_error.to_string e)
      | Ok _ -> Alcotest.fail "20 ms budget must not finish a 190 ms query");
  (* A generous budget changes nothing about the answer. *)
  let q ?deadline () =
    (K.run idx (K.Query.make ?deadline ~engine:K.M_tree ~pattern:"acgtacgt" ~k:2 ()))
      .K.Response.hits
  in
  Alcotest.(check bool) "generous deadline: identical hits" true
    (q () = q ~deadline:(Deadline.after 30.) ())

(* --- live daemon: typed overload and timeout frames ------------------- *)

let server_sheds_when_full () =
  (* Capacity one-at-a-time (1 domain, batch of 1) with a single queue
     slot, offered 8 concurrent ~130 ms queries: the excess must come
     back as immediate code-10 sheds, the rest as real hits, and the
     daemon must serve normally afterwards. *)
  retry_once "overload shed" (fun () ->
      with_server ~domains:1 ~batch_max:1 ~max_queue:1 (fun _t path ->
          let hits = Atomic.make 0 and shed = Atomic.make 0 in
          let failure = Atomic.make None in
          let clients = 8 in
          let threads =
            List.init clients (fun _ ->
                Thread.create
                  (fun () ->
                    let c = S.Client.connect path in
                    Fun.protect
                      ~finally:(fun () -> S.Client.close c)
                      (fun () ->
                        match
                          S.Client.query c ~pattern:slow_pattern ~k:slow_k ()
                        with
                        | Ok (P.Hits _) -> Atomic.incr hits
                        | Ok (P.Error_reply { code = 10; _ }) ->
                            Atomic.incr shed
                        | Ok (P.Error_reply { code; message; _ }) ->
                            Atomic.set failure
                              (Some (Printf.sprintf "code %d: %s" code message))
                        | Ok _ -> Atomic.set failure (Some "bad reply shape")
                        | Error e ->
                            Atomic.set failure (Some (Kmm_error.to_string e))))
                  ())
          in
          List.iter Thread.join threads;
          (match Atomic.get failure with
          | Some m -> Alcotest.fail ("client failed: " ^ m)
          | None -> ());
          Alcotest.(check int) "every query answered" clients
            (Atomic.get hits + Atomic.get shed);
          Alcotest.(check bool) "some queries answered with hits" true
            (Atomic.get hits >= 1);
          Alcotest.(check bool) "some queries shed" true (Atomic.get shed >= 1);
          (* recovery: an idle daemon accepts and answers again *)
          let c = S.Client.connect path in
          Fun.protect
            ~finally:(fun () -> S.Client.close c)
            (fun () ->
              ignore
                (expect_hits "post-overload query"
                   (S.Client.query c ~pattern:"acgtacgt" ~k:1 ()));
              Alcotest.(check bool) "shed metric recorded" true
                (server_metric c "serve_shed" >= 1))))

let server_deadline_expires_in_queue () =
  (* One occupier holds the only domain; a 5 ms-deadline probe behind it
     must come back code 9 without ever running — and the occupier's own
     answer must be unaffected. *)
  retry_once "queued expiry" (fun () ->
      with_server ~domains:1 ~batch_max:1 (fun _t path ->
          let occupier = S.Client.connect path in
          Fun.protect
            ~finally:(fun () -> S.Client.close occupier)
            (fun () ->
              S.Client.send_line occupier
                (P.query_request ~pattern:slow_pattern ~k:slow_k ());
              Thread.delay 0.05 (* let the occupier reach the pool *);
              let c = S.Client.connect path in
              Fun.protect
                ~finally:(fun () -> S.Client.close c)
                (fun () ->
                  match
                    S.Client.query c ~deadline:0.005 ~pattern:"acgtacgt" ~k:1 ()
                  with
                  | Ok (P.Error_reply { code = 9; _ }) -> ()
                  | Ok (P.Error_reply { code; message; _ }) ->
                      Alcotest.fail
                        (Printf.sprintf "expected code 9, got %d: %s" code
                           message)
                  | Ok (P.Hits _) ->
                      Alcotest.fail "5 ms deadline behind a 190 ms occupier ran"
                  | Ok _ -> Alcotest.fail "bad reply shape"
                  | Error e -> Alcotest.fail (Kmm_error.to_string e));
              (* the occupier still gets its (empty) hit list *)
              match S.Client.recv_line occupier with
              | Some line -> (
                  match P.parse_reply line with
                  | Ok (P.Hits _) -> ()
                  | _ -> Alcotest.fail "occupier must still be answered")
              | None -> Alcotest.fail "occupier connection lost")))

let server_deadline_expires_mid_search () =
  (* An idle daemon, so the probe starts immediately: its 20 ms budget
     dies inside the engine's polls, and the wire answer is code 9. *)
  retry_once "mid-search expiry over the wire" (fun () ->
      with_server ~domains:2 (fun _t path ->
          let c = S.Client.connect path in
          Fun.protect
            ~finally:(fun () -> S.Client.close c)
            (fun () ->
              (match
                 S.Client.query c ~deadline:0.02 ~pattern:slow_pattern
                   ~k:slow_k ()
               with
              | Ok (P.Error_reply { code = 9; _ }) -> ()
              | Ok (P.Error_reply { code; _ }) ->
                  Alcotest.fail (Printf.sprintf "expected code 9, got %d" code)
              | Ok (P.Hits _) -> Alcotest.fail "expired query produced hits"
              | Ok _ -> Alcotest.fail "bad reply shape"
              | Error e -> Alcotest.fail (Kmm_error.to_string e));
              Alcotest.(check bool) "timeout metric recorded" true
                (server_metric c "serve_timeouts" >= 1);
              (* a deadline generous enough never distorts the answer *)
              let expected =
                P.render_hits
                  (K.run (Lazy.force index)
                     (K.Query.make ~engine:K.M_tree ~pattern:"acgtacgt" ~k:2 ()))
                    .K.Response.hits
              in
              match S.Client.query c ~deadline:30. ~pattern:"acgtacgt" ~k:2 () with
              | Ok (P.Hits { hits; _ }) ->
                  Alcotest.(check string) "identical under generous deadline"
                    expected (P.render_hits hits)
              | _ -> Alcotest.fail "generous-deadline query failed")))

(* --- misbehaving clients (Fault.Socket) ------------------------------- *)

let dribbled_frame_still_answered () =
  (* A frame fed 3 bytes at a time must parse and answer exactly like a
     well-formed client's. *)
  with_server (fun _t path ->
      let expected =
        P.render_hits
          (K.run (Lazy.force index)
             (K.Query.make ~engine:K.M_tree ~pattern:"acgtacgt" ~k:2 ()))
            .K.Response.hits
      in
      let c = F.Socket.connect path in
      Fun.protect
        ~finally:(fun () -> F.Socket.close c)
        (fun () ->
          F.Socket.dribble ~chunk:3 ~delay:0.001 c
            (P.query_request ~pattern:"acgtacgt" ~k:2 () ^ "\n");
          match F.Socket.recv_line c with
          | Some line -> (
              match P.parse_reply line with
              | Ok (P.Hits { hits; _ }) ->
                  Alcotest.(check string) "dribbled = sequential" expected
                    (P.render_hits hits)
              | _ -> Alcotest.fail "dribbled frame: expected hits")
          | None -> Alcotest.fail "dribbled frame: no answer"))

let midframe_disconnect_harmless () =
  (* Hanging up halfway through a frame costs only that connection. *)
  with_server (fun t path ->
      for _ = 1 to 3 do
        let c = F.Socket.connect path in
        let frame = P.query_request ~pattern:"acgtacgt" ~k:2 () in
        F.Socket.send_partial c frame ~len:(String.length frame / 2);
        F.Socket.close c
      done;
      Thread.delay 0.1;
      Alcotest.(check bool) "daemon not stopping" false (S.stopping t);
      let c = S.Client.connect path in
      Fun.protect
        ~finally:(fun () -> S.Client.close c)
        (fun () ->
          ignore
            (expect_hits "query after mid-frame disconnects"
               (S.Client.query c ~pattern:"acgtacgt" ~k:1 ()))))

let never_reading_client_dropped () =
  (* The nastiest client: asks for a ~1 MB answer and never reads a
     byte.  The daemon's send blocks, the send budget (0.5 s here)
     expires, the connection is dropped as stalled — and every other
     client is served throughout. *)
  with_server ~send_timeout:0.5 (fun t path ->
      let stalled = F.Socket.connect path in
      Fun.protect
        ~finally:(fun () -> F.Socket.close stalled)
        (fun () ->
          F.Socket.send_line stalled
            (P.query_request ~pattern:wide_pattern ~k:wide_k ());
          (* While the response is wedging the stalled connection, a
             polite client gets normal service. *)
          let c = S.Client.connect path in
          Fun.protect
            ~finally:(fun () -> S.Client.close c)
            (fun () ->
              ignore
                (expect_hits "served while another connection is stalled"
                   (S.Client.query c ~pattern:"acgtacgt" ~k:1 ()));
              (* Wait out the send budget, then confirm the stall was
                 detected and accounted. *)
              let gone = ref false in
              let waited = ref 0.0 in
              while (not !gone) && !waited < 5.0 do
                Thread.delay 0.25;
                waited := !waited +. 0.25;
                gone := server_metric c "serve_conns_stalled" >= 1
              done;
              Alcotest.(check bool) "stalled connection dropped" true !gone;
              Alcotest.(check bool) "daemon not stopping" false (S.stopping t);
              ignore
                (expect_hits "served after the stall was dropped"
                   (S.Client.query c ~pattern:"acgtacgt" ~k:1 ())))))

(* --- client-side resilience ------------------------------------------ *)

let client_connect_refused_typed () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kmm-chaos-nobody-%d.sock" (Unix.getpid ()))
  in
  match S.Client.try_connect path with
  | Error (Kmm_error.Io _ as e) ->
      let msg = Kmm_error.to_string e in
      Alcotest.(check bool) "hint names the daemon" true
        (let needle = "is kmm serve running?" in
         let n = String.length msg and l = String.length needle in
         let rec scan i =
           i + l <= n && (String.sub msg i l = needle || scan (i + 1))
         in
         scan 0)
  | Error e -> Alcotest.fail ("expected Io, got " ^ Kmm_error.to_string e)
  | Ok c ->
      S.Client.close c;
      Alcotest.fail "connected to nothing"

let client_retry_policy () =
  Alcotest.(check bool) "Overloaded retries" true
    (S.Client.retryable (Kmm_error.Overloaded "x"));
  Alcotest.(check bool) "Io retries" true
    (S.Client.retryable (Kmm_error.Io (Failure "x")));
  Alcotest.(check bool) "Bad_input never retries" false
    (S.Client.retryable (Kmm_error.Bad_input "x"));
  Alcotest.(check bool) "Timeout never retries" false
    (S.Client.retryable (Kmm_error.Timeout "x"));
  (* with_retry: transient failures are absorbed, budgets counted. *)
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then Error (Kmm_error.Overloaded "busy") else Ok !calls
  in
  (match S.Client.with_retry ~attempts:5 ~base:0.001 ~cap:0.002 ~seed:7 flaky with
  | Ok 3 -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "expected success on call 3, got %d" n)
  | Error e -> Alcotest.fail ("retry gave up: " ^ Kmm_error.to_string e));
  Alcotest.(check int) "two retries consumed" 3 !calls;
  (* a non-retryable error short-circuits on the first attempt *)
  let calls = ref 0 in
  (match
     S.Client.with_retry ~attempts:5 ~base:0.001 ~seed:7 (fun () ->
         incr calls;
         Error (Kmm_error.Bad_input "no"))
   with
  | Error (Kmm_error.Bad_input _) -> ()
  | _ -> Alcotest.fail "Bad_input must surface unchanged");
  Alcotest.(check int) "no retry on Bad_input" 1 !calls;
  (* attempts exhausted: the last error surfaces *)
  let calls = ref 0 in
  (match
     S.Client.with_retry ~attempts:3 ~base:0.001 ~cap:0.002 ~seed:7 (fun () ->
         incr calls;
         Error (Kmm_error.Overloaded "still busy"))
   with
  | Error (Kmm_error.Overloaded _) -> ()
  | _ -> Alcotest.fail "exhausted retries must surface the error");
  Alcotest.(check int) "all attempts consumed" 3 !calls

let client_retry_end_to_end () =
  (* A daemon appears only after the first attempt fails: with_retry +
     try_connect turns a refused connect into a served query. *)
  retry_once "retry until the daemon is up" (fun () ->
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "kmm-chaos-late-%d-%d.sock" (Unix.getpid ())
             (Random.bits ()))
      in
      let server = ref None in
      let starter =
        Thread.create
          (fun () ->
            Thread.delay 0.3;
            let cfg =
              { (S.default_config ~socket_path:path) with domains = 1 }
            in
            server := Some (S.start cfg (Core.Corpus.mono (Lazy.force index))))
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Thread.join starter;
          match !server with Some t -> S.stop t | None -> ())
        (fun () ->
          let attempts = ref 0 in
          let result =
            S.Client.with_retry ~attempts:8 ~base:0.1 ~cap:0.2 ~seed:3
              (fun () ->
                incr attempts;
                match S.Client.try_connect ~timeout:1.0 path with
                | Error e -> Error e
                | Ok c ->
                    Fun.protect
                      ~finally:(fun () -> S.Client.close c)
                      (fun () -> S.Client.query c ~pattern:"acgtacgt" ~k:1 ()))
          in
          match result with
          | Ok (P.Hits _) ->
              Alcotest.(check bool) "took more than one attempt" true
                (!attempts > 1)
          | Ok _ -> Alcotest.fail "bad reply shape"
          | Error e ->
              Alcotest.fail ("never reached the daemon: " ^ Kmm_error.to_string e)))

let () =
  Alcotest.run "chaos"
    [
      ( "deadline",
        [
          Alcotest.test_case "basics" `Quick deadline_basics;
          Alcotest.test_case "ambient poll" `Quick deadline_ambient_poll;
          Alcotest.test_case "query deadline direct" `Quick query_deadline_direct;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "pool cancel all" `Quick pool_cancel_all;
          Alcotest.test_case "pool cancel midway" `Quick pool_cancel_midway;
          Alcotest.test_case "task failure wins" `Quick pool_task_failed_wins;
          Alcotest.test_case "mapper expired deadline" `Quick
            mapper_expired_deadline;
          Alcotest.test_case "mapper without deadline unchanged" `Quick
            mapper_no_deadline_unchanged;
        ] );
      ( "overload",
        [
          Alcotest.test_case "sheds when full" `Quick server_sheds_when_full;
          Alcotest.test_case "deadline expires in queue" `Quick
            server_deadline_expires_in_queue;
          Alcotest.test_case "deadline expires mid-search" `Quick
            server_deadline_expires_mid_search;
        ] );
      ( "socket faults",
        [
          Alcotest.test_case "dribbled frame answered" `Quick
            dribbled_frame_still_answered;
          Alcotest.test_case "mid-frame disconnect harmless" `Quick
            midframe_disconnect_harmless;
          Alcotest.test_case "never-reading client dropped" `Quick
            never_reading_client_dropped;
        ] );
      ( "client resilience",
        [
          Alcotest.test_case "refused connect is typed" `Quick
            client_connect_refused_typed;
          Alcotest.test_case "retry policy" `Quick client_retry_policy;
          Alcotest.test_case "retry end to end" `Quick client_retry_end_to_end;
        ] );
    ]
