lib/dna/read_sim.mli: Sequence
