module Fm = Fmindex.Fm_index

type node = {
  label : [ `Match | `Mismatch of char * int ];
  children : node list;
}

type path = { mismatches : int list; complete : bool; occurrences : int list }
type t = { root : node; paths : path list }

(* Mutable builder mirror of [node]. *)
type bnode = {
  blabel : [ `Match | `Mismatch of char * int ];
  mutable bchildren : bnode list;
}

let rec freeze b =
  { label = b.blabel; children = List.rev_map freeze b.bchildren |> List.rev }

let build fm ~pattern ~k =
  if pattern = "" then invalid_arg "Mismatch_tree.build: empty pattern";
  if k < 0 then invalid_arg "Mismatch_tree.build: negative k";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c && c = Dna.Alphabet.normalize c) then
        invalid_arg "Mismatch_tree.build: pattern must be lowercase acgt")
    pattern;
  let m = String.length pattern in
  let n = Fm.length fm in
  let root = { blabel = `Match; bchildren = [] } in
  let paths = ref [] in
  let record ?(interval = None) misms complete =
    let occurrences =
      match interval with
      | Some ((lo, hi) as iv) ->
          let buf = Array.make (hi - lo) 0 in
          Fm.locate_into fm iv buf;
          (* Rows index FM(rev s): translate suffix positions of the
             reversed text into window starts in s. *)
          for i = 0 to hi - lo - 1 do
            buf.(i) <- n - buf.(i) - m
          done;
          Array.sort Int.compare buf;
          Array.to_list buf
      | None -> []
    in
    paths := { mismatches = List.rev misms; complete; occurrences } :: !paths
  in
  (* The paper's process: extend the path character by character; the
     temporary array B fills with mismatch positions and the path is
     stored either when the pattern is exhausted or when B becomes full
     (k+1 entries). *)
  let rec explore iv j misms count dnode =
    if j = m then record ~interval:(Some iv) misms true
    else begin
      let los = Array.make 5 0 and his = Array.make 5 0 in
      Fm.extend_all fm iv ~los ~his;
      let extended = ref false in
      for c = 1 to 4 do
        if los.(c) < his.(c) then begin
          let ch = Dna.Alphabet.of_code c in
          let iv' = (los.(c), his.(c)) in
          if ch = pattern.[j] then begin
            extended := true;
            (* Matching node: merge into a [`Match] parent (Def. 4). *)
            let dnode' =
              match dnode.blabel with
              | `Match -> dnode
              | `Mismatch _ ->
                  let fresh = { blabel = `Match; bchildren = [] } in
                  dnode.bchildren <- fresh :: dnode.bchildren;
                  fresh
            in
            explore iv' (j + 1) misms count dnode'
          end
          else if count < k + 1 then begin
            extended := true;
            let fresh = { blabel = `Mismatch (ch, j + 1); bchildren = [] } in
            dnode.bchildren <- fresh :: dnode.bchildren;
            let misms' = (j + 1) :: misms in
            if count + 1 = k + 1 then
              (* B is full: store it and backtrack (paper SS:IV.A). *)
              record misms' false
            else explore iv' (j + 1) misms' (count + 1) fresh
          end
        end
      done;
      if not !extended then record misms false
    end
  in
  explore (Fm.whole fm) 0 [] 0 root;
  { root = freeze root; paths = List.rev !paths }

let rec count_nodes node = 1 + List.fold_left (fun a c -> a + count_nodes c) 0 node.children

let leaves t = List.length t.paths

let pp ppf root =
  let rec go indent node =
    (match node.label with
    | `Match -> Format.fprintf ppf "%s<-, 0>@," indent
    | `Mismatch (c, i) -> Format.fprintf ppf "%s<%c, %d>@," indent c i);
    List.iter (go (indent ^ "  ")) node.children
  in
  Format.pp_open_vbox ppf 0;
  go "" root;
  Format.pp_close_box ppf ()
