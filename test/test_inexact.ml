(* Tests for the remaining SS:II matcher families: bit-parallel Shift-Or /
   Shift-Add, Rabin-Karp, k-errors (Levenshtein) search, and don't-care
   matching. *)

open Stringmatch

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let int_list = Alcotest.(list int)
let hits = Alcotest.(list (pair int int))

let gen_text_pattern =
  QCheck2.Gen.(pair (Test_util.dna_gen ~hi:300 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))

(* ------------------------------------------------------------------ *)
(* Shift-Or                                                            *)

let test_shift_or_basics () =
  check int_list "overlapping" [ 0; 1; 2 ] (Shift_or.find_all ~pattern:"aa" ~text:"aaaa");
  check int_list "none" [] (Shift_or.find_all ~pattern:"gg" ~text:"acacac")

let test_shift_or_limits () =
  (match Shift_or.find_all ~pattern:"" ~text:"acgt" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pattern");
  match Shift_or.find_all ~pattern:(String.make 64 'a') ~text:"acgt" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlong pattern"

let prop_shift_or_exact =
  Test_util.qtest ~count:300 "shift-or = naive" gen_text_pattern (fun (text, pattern) ->
      Shift_or.find_all ~pattern ~text = Naive.find_all ~pattern ~text)

let prop_shift_add_kmismatch =
  Test_util.qtest ~count:300 "shift-add = hamming"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~hi:200 ()) (Test_util.dna_gen ~lo:1 ~hi:12 ()) (int_range 0 4))
    (fun (text, pattern, k) ->
      (not (Shift_or.fits ~m:(String.length pattern) ~k))
      || Shift_or.search ~pattern ~text ~k = Hamming.search ~pattern ~text ~k)

let test_shift_add_fits () =
  check bool "12/4 fits" true (Shift_or.fits ~m:12 ~k:4);
  check bool "63/0 does not (needs 2 bits)" false (Shift_or.fits ~m:63 ~k:0);
  check bool "31/0 fits" true (Shift_or.fits ~m:31 ~k:0);
  check bool "negative k" false (Shift_or.fits ~m:5 ~k:(-1))

let test_shift_or_word_boundary () =
  (* m = 63 is the widest exact pattern (one bit per position; the test
     bit is bit 62).  Exercise it against the naive matcher with a hit
     flush at position 0, one mid-text, and a truncated suffix at the
     end, plus a homopolymer where every window is a hit. *)
  let p = String.init 63 (fun i -> "acgt".[i mod 4]) in
  let planted = p ^ "tt" ^ p ^ String.sub p 0 40 in
  check int_list "m=63 planted = naive"
    (Naive.find_all ~pattern:p ~text:planted)
    (Shift_or.find_all ~pattern:p ~text:planted);
  check bool "m=63 hit at position 0" true
    (List.mem 0 (Shift_or.find_all ~pattern:p ~text:planted));
  let homo = String.make 63 'a' in
  List.iter
    (fun text ->
      check int_list "m=63 homopolymer = naive"
        (Naive.find_all ~pattern:homo ~text)
        (Shift_or.find_all ~pattern:homo ~text))
    [ String.make 100 'a'; homo; String.make 62 'a'; "" ]

let test_shift_add_fits_boundaries () =
  (* [fits ~m ~k] holds iff field_bits(k) * m <= 63.  Walk the exact
     frontier for several field widths. *)
  check bool "31/0 fits (2-bit fields)" true (Shift_or.fits ~m:31 ~k:0);
  check bool "32/0 does not" false (Shift_or.fits ~m:32 ~k:0);
  check bool "21/2 fits (3-bit fields)" true (Shift_or.fits ~m:21 ~k:2);
  check bool "22/2 does not" false (Shift_or.fits ~m:22 ~k:2);
  check bool "9/62 fits exactly (7-bit fields, m*b = 63)" true
    (Shift_or.fits ~m:9 ~k:62);
  check bool "10/62 does not" false (Shift_or.fits ~m:10 ~k:62);
  (* Overflow-hostile budgets must terminate and be rejected — the old
     field_bits looped forever (or accepted) once k+1 wrapped. *)
  check bool "max_int budget rejected" false (Shift_or.fits ~m:3 ~k:max_int);
  check bool "m=1 max_int rejected" false (Shift_or.fits ~m:1 ~k:max_int);
  check bool "2^61-1 budget rejected" false
    (Shift_or.fits ~m:2 ~k:2305843009213693951);
  (* The one shape where a gigantic budget legitimately fits: m = 1 with
     k below the 62-bit counter ceiling. *)
  check bool "m=1 k=2^60 fits" true (Shift_or.fits ~m:1 ~k:(1 lsl 60));
  check hits "m=1 k=2^60 = hamming"
    (Hamming.search ~pattern:"a" ~text:"acgt" ~k:(1 lsl 60))
    (Shift_or.search ~pattern:"a" ~text:"acgt" ~k:(1 lsl 60))

let test_shift_add_saturation () =
  (* Windows far above the budget must not wrap around into false
     positives, even over long runs. *)
  let text = String.make 200 'a' in
  let pattern = "tttttt" in
  check hits "no wraparound" [] (Shift_or.search ~pattern ~text ~k:2)

(* ------------------------------------------------------------------ *)
(* Rabin-Karp                                                          *)

let prop_rabin_karp =
  Test_util.qtest ~count:300 "rabin-karp = naive" gen_text_pattern
    (fun (text, pattern) ->
      Rabin_karp.find_all ~pattern ~text = Naive.find_all ~pattern ~text)

let test_rabin_karp_empty () =
  check int_list "empty pattern" [ 0; 1; 2 ] (Rabin_karp.find_all ~pattern:"" ~text:"ac")

let prop_rabin_karp_multi =
  Test_util.qtest ~count:200 "multi = per-pattern naive"
    QCheck2.Gen.(
      pair (Test_util.dna_gen ~hi:200 ())
        (array_size (int_range 1 5) (Test_util.dna_gen ~lo:4 ~hi:4 ())))
    (fun (text, patterns) ->
      let got = Rabin_karp.find_all_multi ~patterns ~text in
      let expect =
        List.sort compare
          (List.concat
             (List.mapi
                (fun idx pattern ->
                  List.map (fun p -> (idx, p)) (Naive.find_all ~pattern ~text))
                (Array.to_list patterns)))
      in
      got = expect)

let test_rabin_karp_multi_validation () =
  match Rabin_karp.find_all_multi ~patterns:[| "ac"; "acg" |] ~text:"acgt" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed lengths accepted"

(* ------------------------------------------------------------------ *)
(* Levenshtein                                                         *)

let test_distance_known () =
  check int "kitten-ish" 3 (Levenshtein.distance "acgtacg" "actaagg");
  check int "equal" 0 (Levenshtein.distance "acgt" "acgt");
  check int "to empty" 4 (Levenshtein.distance "acgt" "");
  check int "insert" 1 (Levenshtein.distance "acgt" "acggt")

let prop_distance_symmetric =
  Test_util.qtest ~count:200 "distance symmetric"
    QCheck2.Gen.(pair (Test_util.dna_gen ~hi:30 ()) (Test_util.dna_gen ~hi:30 ()))
    (fun (a, b) -> Levenshtein.distance a b = Levenshtein.distance b a)

let prop_distance_triangle =
  Test_util.qtest ~count:200 "triangle inequality"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~hi:20 ()) (Test_util.dna_gen ~hi:20 ())
        (Test_util.dna_gen ~hi:20 ()))
    (fun (a, b, c) ->
      Levenshtein.distance a c <= Levenshtein.distance a b + Levenshtein.distance b c)

let naive_best_end pattern text e k =
  (* minimal distance of pattern to any substring ending at e *)
  let best = ref max_int in
  for s = 0 to e do
    best := min !best (Levenshtein.distance pattern (String.sub text s (e - s)))
  done;
  if !best <= k then Some !best else None

let prop_search_ends =
  Test_util.qtest ~count:150 "search_ends = naive DP"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~hi:40 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()) (int_range 0 3))
    (fun (text, pattern, k) ->
      let got = Levenshtein.search_ends ~pattern ~text ~k in
      let expect =
        List.filter_map
          (fun e ->
            match naive_best_end pattern text e k with
            | Some d -> Some (e, d)
            | None -> None)
          (List.init (String.length text + 1) (fun i -> i))
      in
      got = expect)

let prop_hamming_implies_k_errors =
  Test_util.qtest ~count:200 "k mismatches implies k errors"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:5 ~hi:100 ()) (Test_util.dna_gen ~lo:1 ~hi:10 ())
        (int_range 0 3))
    (fun (text, pattern, k) ->
      let m = String.length pattern in
      List.for_all
        (fun (pos, _) ->
          List.exists (fun (e, _) -> e = pos + m)
            (Levenshtein.search_ends ~pattern ~text ~k))
        (Hamming.search ~pattern ~text ~k))

let test_indel_found () =
  (* An occurrence with one deletion: pattern acgta, text has acga. *)
  let text = "ttttacgatttt" in
  let got = Levenshtein.search_ends ~pattern:"acgta" ~text ~k:1 in
  check bool "deletion occurrence found" true (List.mem_assoc 8 got)

(* ------------------------------------------------------------------ *)
(* Wildcards                                                           *)

let test_wildcard_basic () =
  check int_list "pattern wildcard" [ 0; 4 ]
    (Wildcard.find_all ~pattern:"acn" ~text:"acgtact" ());
  check int_list "text wildcard" [ 0; 4 ]
    (Wildcard.find_all ~pattern:"acg" ~text:"acntacg" ());
  check int_list "wildcard matches wildcard" [ 0 ]
    (Wildcard.find_all ~pattern:"n" ~text:"n" ())

let test_wildcard_not_transitive () =
  (* The paper's point: a matches n and n matches c, but a does not match
     c — so matching with wildcards is not transitive. *)
  let matches p t = Wildcard.find_all ~pattern:p ~text:t () <> [] in
  check bool "a ~ n" true (matches "a" "n");
  check bool "n ~ c" true (matches "n" "c");
  check bool "a !~ c" false (matches "a" "c")

let prop_wildcard_exact_when_clean =
  Test_util.qtest ~count:200 "no wildcards = exact matching" gen_text_pattern
    (fun (text, pattern) ->
      Wildcard.find_all ~pattern ~text () = Naive.find_all ~pattern ~text)

let prop_single_gap =
  (* Build patterns of the form left ^ n..n ^ right and compare the linear
     algorithm with the quadratic one. *)
  Test_util.qtest ~count:200 "single-gap = quadratic"
    QCheck2.Gen.(
      tup4 (Test_util.dna_gen ~lo:20 ~hi:200 ()) (Test_util.dna_gen ~hi:4 ())
        (int_range 1 4) (Test_util.dna_gen ~hi:4 ()))
    (fun (text, left, gap, right) ->
      let pattern = left ^ String.make gap 'n' ^ right in
      Wildcard.find_all_single_gap ~pattern ~text ()
      = Wildcard.find_all ~pattern ~text ())

let test_single_gap_validation () =
  (match Wildcard.find_all_single_gap ~pattern:"anca" ~text:"nn" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wildcard text accepted");
  match Wildcard.find_all_single_gap ~pattern:"anang" ~text:"acgt" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scattered wildcards accepted"

let () =
  Alcotest.run "inexact"
    [
      ( "shift_or",
        [
          Alcotest.test_case "basics" `Quick test_shift_or_basics;
          Alcotest.test_case "limits" `Quick test_shift_or_limits;
          Alcotest.test_case "fits" `Quick test_shift_add_fits;
          Alcotest.test_case "fits boundaries" `Quick test_shift_add_fits_boundaries;
          Alcotest.test_case "word boundary m=63" `Quick test_shift_or_word_boundary;
          Alcotest.test_case "saturation" `Quick test_shift_add_saturation;
          prop_shift_or_exact;
          prop_shift_add_kmismatch;
        ] );
      ( "rabin_karp",
        [
          Alcotest.test_case "empty pattern" `Quick test_rabin_karp_empty;
          Alcotest.test_case "multi validation" `Quick test_rabin_karp_multi_validation;
          prop_rabin_karp;
          prop_rabin_karp_multi;
        ] );
      ( "levenshtein",
        [
          Alcotest.test_case "known distances" `Quick test_distance_known;
          Alcotest.test_case "indel found" `Quick test_indel_found;
          prop_distance_symmetric;
          prop_distance_triangle;
          prop_search_ends;
          prop_hamming_implies_k_errors;
        ] );
      ( "wildcard",
        [
          Alcotest.test_case "basic" `Quick test_wildcard_basic;
          Alcotest.test_case "not transitive" `Quick test_wildcard_not_transitive;
          Alcotest.test_case "single gap validation" `Quick test_single_gap_validation;
          prop_wildcard_exact_when_clean;
          prop_single_gap;
        ] );
    ]
