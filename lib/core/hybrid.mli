(** Hybrid FM-index + verification engine (an extension beyond the paper).

    Identical to the S-tree search while BWT intervals are wide, but the
    moment an interval narrows to a single row the unique candidate
    position is located and the rest of the pattern is checked directly
    against the text — no further rank operations.  This is how practical
    read aligners in the BWA family treat the deep, unary part of the
    search tree, and it is the natural modern baseline to measure the
    paper's derivation machinery against (see the ablation bench). *)

val search :
  ?use_delta:bool ->
  ?stats:Stats.t ->
  ?ptext:Fmindex.Packed_text.t ->
  Fmindex.Fm_index.t ->
  text:string ->
  pattern:string ->
  k:int ->
  (int * int) list
(** [search fm_rev ~text ~pattern ~k]: [fm_rev] indexes [rev text]; the
    forward [text] is used for direct verification.  Same contract as
    {!S_tree.search}.

    With [?ptext] (the packed forward text; must be the same length as
    the index, or [Invalid_argument]) the verification step runs on the
    word-parallel kernel ({!Fmindex.Packed_text.hamming}) instead of
    comparing characters; the hits are identical either way. *)
