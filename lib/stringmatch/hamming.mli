(** Naive O(mn) string matching with k mismatches; the ground-truth oracle
    against which every index-based engine is tested. *)

val distance_at : ?limit:int -> pattern:string -> text:string -> int -> int
(** [distance_at ~pattern ~text pos] is the Hamming distance between
    [pattern] and [text[pos .. pos+m-1]].  With [?limit] the scan stops
    as soon as the running count exceeds it — the result is then only
    meaningful as "greater than [limit]" (it counts the scanned prefix
    only), matching the early-exit contract of [Packed_text.hamming].
    ([pos] is positional so [?limit] stays erasable.)  Raises
    [Invalid_argument] if the window does not fit. *)

val search : pattern:string -> text:string -> k:int -> (int * int) list
(** All [(position, mismatches)] with [mismatches <= k], ascending by
    position.  Scanning aborts early per window once the budget is
    exceeded. *)

val positions : pattern:string -> text:string -> k:int -> int list
