lib/core/mapper.ml: Buffer Dna Hashtbl Kmismatch List Printf
