lib/stringmatch/hamming.ml: List String
