(** Suffix trees via Ukkonen's online construction.

    The tree is built over [s ^ "$"]; the sentinel guarantees one leaf per
    suffix.  This substrate backs the Cole-style brute-force k-mismatch
    baseline (the paper builds its comparator [14] on the gsuffix suffix
    tree package, which we replace with our own construction). *)

type t
type node

val build : string -> t
(** Build the suffix tree of [s ^ "$"] in O(n) amortized time.  The input
    must not contain ['$']. *)

val text : t -> string
(** The indexed text including the final sentinel. *)

val root : t -> node
val is_leaf : t -> node -> bool

val suffix_index : t -> node -> int
(** Starting position of the suffix ending at this leaf.  Raises
    [Invalid_argument] on internal nodes. *)

val edge : t -> node -> int * int
(** [(start, len)] of the edge label leading *into* the node; the label is
    [text.[start .. start+len-1]].  The root has the empty edge [(0, 0)]. *)

val children : t -> node -> (char * node) list
(** Children keyed by the first character of their edge label, in
    alphabetical order. *)

val find_child : t -> node -> char -> node option

val leaves_below : t -> node -> int list
(** Suffix indices of all leaves in the subtree, in no particular order. *)

val count_nodes : t -> int
(** Total number of nodes (for tests and the index-size experiment). *)

val contains : t -> string -> bool
(** Substring query by walking from the root; for tests. *)
