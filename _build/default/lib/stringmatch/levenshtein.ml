let distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let sub = prev.(j - 1) + if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min sub (min (prev.(j) + 1) (cur.(j - 1) + 1))
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* Sellers' dynamic programme: one column per text position, row 0 pinned
   to 0 so a match may start anywhere; col.(i) is the minimal edit
   distance between pattern[0..i-1] and some substring ending at the
   current position. *)
let search_ends ~pattern ~text ~k =
  let m = String.length pattern and n = String.length text in
  if m = 0 then invalid_arg "Levenshtein.search_ends: empty pattern";
  if k < 0 then invalid_arg "Levenshtein.search_ends: negative k";
  let col = Array.init (m + 1) (fun i -> i) in
  let acc = ref [] in
  (* The empty substring at end 0 costs m deletions. *)
  if m <= k then acc := (0, m) :: !acc;
  for pos = 0 to n - 1 do
    let c = text.[pos] in
    let diag = ref col.(0) in
    for i = 1 to m do
      let old = col.(i) in
      let sub = !diag + if pattern.[i - 1] = c then 0 else 1 in
      col.(i) <- min sub (min (old + 1) (col.(i - 1) + 1));
      diag := old
    done;
    if col.(m) <= k then acc := (pos + 1, col.(m)) :: !acc
  done;
  List.rev !acc

let occurs ~pattern ~text ~k = search_ends ~pattern ~text ~k <> []
