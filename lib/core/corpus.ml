(* A searchable reference that is either one monolithic index or a
   sharded set of overlapping FM-indexes tied together by a manifest.
   See corpus.mli for the coverage argument and the manifest grammar. *)

type shard = {
  s_off : int;  (* global position of the shard's first owned base *)
  s_owned : int;  (* bases this shard answers for *)
  s_stored : int;  (* bases actually indexed (owned + overlap tail) *)
  s_index : Kmismatch.index;
}

type t =
  | Mono of Kmismatch.index
  | Sharded of { shards : shard array; total : int; overlap : int }

let default_overlap = 1023

let mono idx = Mono idx

let length = function
  | Mono idx -> Kmismatch.length idx
  | Sharded { total; _ } -> total

let nshards = function Mono _ -> 1 | Sharded { shards; _ } -> Array.length shards

let overlap = function Mono _ -> None | Sharded { overlap; _ } -> Some overlap

(* A single-shard corpus stores the whole text, so the overlap ceiling
   only binds when a match could genuinely straddle a shard boundary. *)
let max_query = function
  | Mono idx -> Kmismatch.length idx
  | Sharded { shards; total; overlap } ->
      if Array.length shards <= 1 then total else min (overlap + 1) total

let limit_msg ~limit m =
  Printf.sprintf
    "pattern of %d bp exceeds the corpus query limit of %d bp (shard \
     overlap + 1); rebuild with a larger --shard-overlap"
    m limit

(* Sum per-phase timings across shards, label order of first appearance. *)
let merge_timings acc ts =
  List.fold_left
    (fun acc (label, v) ->
      if List.mem_assoc label acc then
        List.map (fun (l, w) -> if l = label then (l, w +. v) else (l, w)) acc
      else acc @ [ (label, v) ])
    acc ts

let try_run t (q : Kmismatch.Query.t) =
  match t with
  | Mono idx -> Kmismatch.try_run idx q
  | Sharded { shards; total; _ } -> (
      let m = String.length q.Kmismatch.Query.pattern in
      let limit = max_query t in
      if Array.length shards > 1 && m <= total && m > limit then
        Error (Kmm_error.Bad_input (limit_msg ~limit m))
      else begin
        (* Sequential fan-out: per-query shard work must never re-enter a
           Work_pool (the mapper already fans reads out across domains,
           and pool tasks may not submit jobs).  Shard order = ascending
           global offset, and each shard reports ascending local
           positions over a disjoint owned range, so plain concatenation
           is globally sorted. *)
        let stats = Stats.create () in
        let rec loop i timings acc =
          if i = Array.length shards then
            Ok
              {
                Kmismatch.Response.hits = List.concat (List.rev acc);
                stats;
                timings;
              }
          else
            let sh = shards.(i) in
            match Kmismatch.try_run sh.s_index q with
            | Error e -> Error e
            | Ok r ->
                Stats.merge ~into:stats r.Kmismatch.Response.stats;
                let hits =
                  List.filter_map
                    (fun (pos, d) ->
                      (* The owning shard reports a boundary-straddling
                         match; the overlap tail only exists so it can. *)
                      if pos < sh.s_owned then Some (pos + sh.s_off, d)
                      else None)
                    r.Kmismatch.Response.hits
                in
                loop (i + 1)
                  (merge_timings timings r.Kmismatch.Response.timings)
                  (hits :: acc)
        in
        loop 0 [] []
      end)

let run t q =
  match try_run t q with
  | Ok r -> r
  | Error (Kmm_error.Bad_input msg) -> invalid_arg msg
  | Error e -> Kmm_error.raise_error e

let target t =
  match t with
  | Mono idx -> Mapper.target_of_index idx
  | Sharded { shards; total; _ } ->
      let limit = max_query t in
      {
        Mapper.tgt_length = total;
        tgt_max_read = limit;
        tgt_limit_msg =
          (fun m ->
            Printf.sprintf
              "read of %d bp exceeds the corpus query limit of %d bp \
               (shard overlap + 1)"
              m limit);
        tgt_prepare =
          (fun engine ->
            Array.iter
              (fun sh ->
                (Mapper.target_of_index sh.s_index).Mapper.tgt_prepare engine)
              shards);
        tgt_run = (fun q -> try_run t q);
        (* Global hit positions span shard boundaries; there is no
           single packed text to re-check them against.  (Each shard's
           own engines still verify word-parallel.) *)
        tgt_packed = (fun () -> None);
      }

(* ------------------------------------------------------------------ *)
(* Building                                                            *)

let shard_specs ~total ~shard_size ~overlap =
  let nshards = max 1 ((total + shard_size - 1) / shard_size) in
  Array.init nshards (fun i ->
      let off = i * shard_size in
      let owned = min shard_size (total - off) in
      let stored = min (owned + overlap) (total - off) in
      (off, owned, stored))

let build ?occ_rate ?sa_rate ?shard_size ?(overlap = default_overlap) ?domains
    text =
  match shard_size with
  | None -> Mono (Kmismatch.build_index ?occ_rate ?sa_rate text)
  | Some shard_size ->
      if shard_size < 1 then
        invalid_arg "Corpus.build: shard_size must be >= 1";
      if overlap < 0 then invalid_arg "Corpus.build: overlap must be >= 0";
      (* Normalize once so every shard sees identical bases and an
         invalid character is reported against the whole input. *)
      let text = Dna.Sequence.to_string (Dna.Sequence.of_string text) in
      let total = String.length text in
      let specs = shard_specs ~total ~shard_size ~overlap in
      let shards = Array.make (Array.length specs) None in
      let domains =
        match domains with
        | Some d ->
            if d < 1 then invalid_arg "Corpus.build: domains must be >= 1";
            min d (Array.length specs)
        | None -> 1
      in
      (* Shard builds are independent; slot [task] receives shard [task]
         no matter which domain built it, so the corpus is deterministic
         at any domain count. *)
      Work_pool.with_pool ~domains (fun pool ->
          Work_pool.run pool ~tasks:(Array.length specs)
            (fun ~worker:_ ~task ->
              let off, owned, stored = specs.(task) in
              let idx =
                Kmismatch.build_index ?occ_rate ?sa_rate
                  (String.sub text off stored)
              in
              shards.(task) <-
                Some { s_off = off; s_owned = owned; s_stored = stored; s_index = idx }));
      Sharded
        { shards = Array.map Option.get shards; total; overlap }

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let manifest_magic = "kmm-manifest"

let shard_file_name base i = Printf.sprintf "%s.shard%03d.fmi" base i

type entry = {
  e_off : int;
  e_owned : int;
  e_stored : int;
  e_crc : int;
  e_file : string;  (* relative to the manifest's directory *)
}

type manifest = { m_total : int; m_overlap : int; m_entries : entry array }

let save t path =
  match t with
  | Mono idx -> Kmismatch.save_index idx path
  | Sharded { shards; total; overlap } ->
      let dir = Filename.dirname path in
      let base = Filename.basename path in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "%s 1 %d %d %d\n" manifest_magic (Array.length shards)
           total overlap);
      Array.iteri
        (fun i sh ->
          let fname = shard_file_name base i in
          let image = Fmindex.Fm_index.serialize (Kmismatch.fm_rev sh.s_index) in
          Fmindex.Fm_index.write_atomic image (Filename.concat dir fname);
          Buffer.add_string buf
            (Printf.sprintf "shard %d %d %d %08x %s\n" sh.s_off sh.s_owned
               sh.s_stored (Fmindex.Crc32.string image) fname))
        shards;
      Buffer.add_string buf
        (Printf.sprintf "hcrc %08x\n" (Fmindex.Crc32.string (Buffer.contents buf)));
      (* The manifest is written last: a crash mid-save leaves shard
         files without a manifest naming them, never a manifest pointing
         at missing or half-written shards. *)
      Fmindex.Fm_index.write_atomic (Buffer.contents buf) path

exception Fail of Kmm_error.t

let fail e = raise (Fail e)
let corrupt msg = fail (Kmm_error.Corrupt (Kmm_error.Header, msg))

let int_field what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | _ -> corrupt (Printf.sprintf "corrupt manifest: bad %s" what)

let hex_field what s =
  if String.length s <> 8 then
    corrupt (Printf.sprintf "corrupt manifest: bad %s" what)
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> corrupt (Printf.sprintf "corrupt manifest: bad %s" what)

let parse_manifest content =
  let lines = String.split_on_char '\n' content in
  match lines with
  | first :: rest -> (
      match String.split_on_char ' ' first with
      | [ magic; version; nshards; total; overlap ]
        when magic = manifest_magic -> (
          (match version with
          | "1" -> ()
          | v -> (
              match int_of_string_opt v with
              | Some v -> fail (Kmm_error.Unsupported_version v)
              | None -> corrupt "corrupt manifest: bad version"));
          let nshards = int_field "shard count" nshards in
          let total = int_field "total length" total in
          let overlap = int_field "overlap" overlap in
          if nshards < 1 then corrupt "corrupt manifest: no shards";
          let entries = Array.make nshards None in
          let rec shard_lines i = function
            | [] | [ "" ] -> fail (Kmm_error.Truncated "manifest")
            | line :: rest when i < nshards -> (
                match String.split_on_char ' ' line with
                | [ "shard"; off; owned; stored; crc; file ] when file <> "" ->
                    entries.(i) <-
                      Some
                        {
                          e_off = int_field "shard offset" off;
                          e_owned = int_field "shard owned length" owned;
                          e_stored = int_field "shard stored length" stored;
                          e_crc = hex_field "shard checksum" crc;
                          e_file = file;
                        };
                    shard_lines (i + 1) rest
                | _ -> corrupt "corrupt manifest: bad shard line")
            | line :: rest -> (
                (* hcrc line, then exactly the final newline's residue *)
                (match rest with
                | [] | [ "" ] -> ()
                | _ -> corrupt "corrupt manifest: trailing garbage");
                match String.split_on_char ' ' line with
                | [ "hcrc"; crc ] ->
                    let stored = hex_field "header checksum" crc in
                    let body_len =
                      (* everything before the hcrc line *)
                      String.length content - (String.length line + 1)
                    in
                    if body_len < 0 then fail (Kmm_error.Truncated "manifest");
                    let actual =
                      Fmindex.Crc32.sub content ~pos:0 ~len:body_len
                    in
                    if actual <> stored then
                      corrupt "corrupt manifest: header checksum mismatch"
                | _ -> fail (Kmm_error.Truncated "manifest"))
          in
          shard_lines 0 rest;
          let entries = Array.map Option.get entries in
          (* Geometry: shards tile [0, total) in order, each storing its
             owned range plus at most [overlap] bases of tail. *)
          let cur = ref 0 in
          Array.iteri
            (fun i e ->
              if e.e_off <> !cur then corrupt "corrupt manifest: shard offsets do not tile";
              if e.e_owned < 1 && total > 0 then
                corrupt "corrupt manifest: empty shard";
              if
                e.e_stored < e.e_owned
                || e.e_stored > e.e_owned + overlap
                || e.e_off + e.e_stored > total
                || (i = nshards - 1 && e.e_off + e.e_owned <> total)
              then corrupt "corrupt manifest: bad shard geometry";
              cur := e.e_off + e.e_owned)
            entries;
          if total > 0 && !cur <> total then
            corrupt "corrupt manifest: shards do not cover the corpus";
          { m_total = total; m_overlap = overlap; m_entries = entries })
      | magic :: _ when magic = manifest_magic ->
          corrupt "corrupt manifest: bad header line"
      | _ -> fail Kmm_error.Bad_magic)
  | [] -> fail Kmm_error.Bad_magic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        let r = input ic chunk 0 (Bytes.length chunk) in
        if r > 0 then begin
          Buffer.add_subbytes buf chunk 0 r;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let try_read_manifest path =
  match read_file path with
  | exception (Sys_error _ as e) -> Error (Kmm_error.Io e)
  | content -> ( try Ok (parse_manifest content) with Fail e -> Error e)

let is_manifest path =
  match
    In_channel.with_open_bin path (fun ic ->
        let b = Bytes.create (String.length manifest_magic) in
        match In_channel.really_input ic b 0 (Bytes.length b) with
        | Some () -> Bytes.to_string b = manifest_magic
        | None -> false)
  with
  | v -> v
  | exception Sys_error _ -> false

let load_manifest ?mode path =
  match try_read_manifest path with
  | Error e -> Error e
  | Ok { m_total; m_overlap; m_entries } -> (
      let dir = Filename.dirname path in
      let shards = Array.make (Array.length m_entries) None in
      let rec load_all i =
        if i = Array.length m_entries then Ok ()
        else
          let e = m_entries.(i) in
          match Kmismatch.try_load_index ?mode (Filename.concat dir e.e_file) with
          | Error err -> Error err
          | Ok idx ->
              if Kmismatch.length idx <> e.e_stored then
                Error
                  (Kmm_error.Corrupt
                     ( Kmm_error.Header,
                       Printf.sprintf
                         "corrupt manifest: shard %d length %d disagrees \
                          with its index (%d)"
                         i e.e_stored (Kmismatch.length idx) ))
              else begin
                shards.(i) <-
                  Some
                    {
                      s_off = e.e_off;
                      s_owned = e.e_owned;
                      s_stored = e.e_stored;
                      s_index = idx;
                    };
                load_all (i + 1)
              end
      in
      match load_all 0 with
      | Error e -> Error e
      | Ok () ->
          Ok
            (Sharded
               {
                 shards = Array.map Option.get shards;
                 total = m_total;
                 overlap = m_overlap;
               }))

let try_load ?mode path =
  if is_manifest path then load_manifest ?mode path
  else Result.map mono (Kmismatch.try_load_index ?mode path)

let load ?mode path =
  match try_load ?mode path with
  | Ok t -> t
  | Error (Kmm_error.Io e) -> raise e
  | Error e -> failwith (Kmm_error.to_string e)
