(* Differential fuzzing of the k-mismatch engines: seeded adversarial
   case generation, cross-engine checking against the naive reference,
   greedy shrinking of failures, and a tiny replayable corpus format.
   See oracle.mli for the contract. *)

type case = { text : string; pattern : string; k : int }

let make_case ~text ~pattern ~k =
  if pattern = "" then invalid_arg "Oracle.make_case: empty pattern";
  if k < 0 then invalid_arg "Oracle.make_case: negative k";
  let norm what s =
    match Dna.Sequence.of_string_opt s with
    | Some seq -> Dna.Sequence.to_string seq
    | None -> invalid_arg ("Oracle.make_case: non-ACGT character in " ^ what)
  in
  { text = norm "text" text; pattern = norm "pattern" pattern; k }

let case_to_string c =
  Printf.sprintf "text=%S pattern=%S k=%d" c.text c.pattern c.k

let pp_case ppf c = Format.pp_print_string ppf (case_to_string c)

(* ------------------------------------------------------------------ *)
(* Reference answer                                                    *)

let reference c = Stringmatch.Hamming.search ~pattern:c.pattern ~text:c.text ~k:c.k

(* ------------------------------------------------------------------ *)
(* Subjects                                                            *)

type subject = {
  sub_name : string;
  run : Kmismatch.index -> case -> (int * int) list option;
}

let engine_subject e =
  {
    sub_name = Kmismatch.engine_name e;
    run = (fun idx c -> Some (Kmismatch.search idx ~engine:e ~pattern:c.pattern ~k:c.k));
  }

let kangaroo_direct =
  {
    sub_name = "kangaroo-direct";
    run =
      (fun _ c -> Some (Stringmatch.Kangaroo.search ~pattern:c.pattern ~k:c.k c.text));
  }

let shift_add =
  {
    sub_name = "shift-add";
    run =
      (fun _ c ->
        if Stringmatch.Shift_or.fits ~m:(String.length c.pattern) ~k:c.k then
          Some (Stringmatch.Shift_or.search ~pattern:c.pattern ~text:c.text ~k:c.k)
        else None);
  }

(* The packed FM-index core as its own subject: a forward index of the
   text answers k = 0 queries through [find_all], covering the packed
   rank kernel, the sampled-SA locate walk and pattern validation
   against the naive reference. *)
let fm_packed_find_all =
  {
    sub_name = "fm-packed-find-all";
    run =
      (fun _ c ->
        if c.k <> 0 then None
        else
          let fm = Fmindex.Fm_index.build c.text in
          Some (List.map (fun p -> (p, 0)) (Fmindex.Fm_index.find_all fm c.pattern)));
  }

(* Persistence under fuzz: the index is saved (current format, v3),
   reloaded and queried through the fastest engine; any disagreement
   between the adopted buffers and a freshly built index shows up as a
   divergence. *)
let fm_save_roundtrip =
  {
    sub_name = "fm-save-roundtrip";
    run =
      (fun idx c ->
        let path = Filename.temp_file "kmm-fuzz" ".fmi" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            Kmismatch.save_index idx path;
            let idx' = Kmismatch.load_index path in
            Some
              (Kmismatch.search idx' ~engine:Kmismatch.M_tree ~pattern:c.pattern ~k:c.k)));
  }

(* Format-v3 self-verification under fuzz: serialize a forward index of
   the case's text, then hit the image with a pseudo-random battery of
   fault plans (bit flips, truncations, ENOSPC-style prefixes).  Every
   corrupted image must either be rejected by [try_of_string] with a
   typed error, or — if a corruption happens to be a no-op — decode to
   an index whose text and [find_all] answers are byte-identical to the
   clean one.  A checksum blind spot therefore surfaces as an
   [Engine_error] divergence with the offending plan in the message.
   Runs on [k = 0] cases only (the hit list doubles as the reference
   check); other budgets are skipped, not failed. *)
let fm_v3_corruption =
  {
    sub_name = "fm-v3-corruption";
    run =
      (fun _ c ->
        if c.k <> 0 then None
        else begin
          let fm = Fmindex.Fm_index.build c.text in
          let image = Fmindex.Fm_index.serialize fm in
          let clean_hits = Fmindex.Fm_index.find_all fm c.pattern in
          let len = String.length image in
          let rng = Random.State.make [| Hashtbl.hash (c.text, c.pattern); len |] in
          let plans =
            List.init 12 (fun i ->
                match i mod 3 with
                | 0 ->
                    Fault.Bit_flip
                      { offset = Random.State.int rng len; bit = Random.State.int rng 8 }
                | 1 -> Fault.Truncate_at (Random.State.int rng len)
                | _ -> Fault.Enospc_after (Random.State.int rng len))
          in
          List.iter
            (fun plan ->
              let corrupted = Fault.corrupt_string plan image in
              match Fmindex.Fm_index.try_of_string corrupted with
              | Error _ -> ()
              | Ok fm' ->
                  (* Only acceptable if the corruption was a no-op. *)
                  if
                    Fmindex.Fm_index.text fm' <> c.text
                    || Fmindex.Fm_index.find_all fm' c.pattern <> clean_hits
                  then
                    failwith
                      (Printf.sprintf "corruption %s accepted with wrong contents"
                         (Fault.plan_to_string plan)))
            plans;
          Some (List.map (fun p -> (p, 0)) clean_hits)
        end);
  }

(* The word-parallel verification kernel as its own subject: scan every
   window of the packed forward text with [hamming_le] / [hamming],
   covering all four lane phases, the ragged final byte and the
   pre-packed pattern masks against the naive reference. *)
let packed_verify =
  {
    sub_name = "packed-verify";
    run =
      (fun idx c ->
        let m = String.length c.pattern in
        let pt = Kmismatch.packed_text idx in
        let n = Fmindex.Packed_text.length pt in
        if m > n then Some []
        else begin
          let k = min c.k m in
          let pp = Fmindex.Packed_text.Pattern.make c.pattern in
          let acc = ref [] in
          for pos = n - m downto 0 do
            if Fmindex.Packed_text.hamming_le pt pp ~pos ~k then
              acc := (pos, Fmindex.Packed_text.hamming pt pp ~pos) :: !acc
          done;
          Some !acc
        end);
  }

(* The bidirectional engine rebuilt from the case's raw text (rather
   than the shared index): covers [Bidir.make] over arbitrary fuzz
   texts plus the full scheme executor, diffed against naive like every
   other subject. *)
let bidir_find_all =
  {
    sub_name = "bidir-find-all";
    run =
      (fun _ c ->
        let rev =
          String.init (String.length c.text) (fun i ->
              c.text.[String.length c.text - 1 - i])
        in
        let bd =
          Fmindex.Bidir.make ~text:c.text
            ~fm_rev:(Fmindex.Fm_index.build rev)
        in
        let ptext = Fmindex.Packed_text.of_string c.text in
        Some (Oss.search ~ptext bd ~pattern:c.pattern ~k:c.k));
  }

let default_subjects () =
  List.map engine_subject (Kmismatch.all_engines ())
  @ [
      kangaroo_direct;
      shift_add;
      packed_verify;
      fm_packed_find_all;
      bidir_find_all;
      fm_save_roundtrip;
      fm_v3_corruption;
    ]

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)

type outcome = Hits of (int * int) list | Engine_error of string

type divergence = {
  div_case : case;
  div_subject : string;
  expected : (int * int) list;
  got : outcome;
}

let pp_hits ppf hits =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (List.map (fun (p, d) -> Printf.sprintf "(%d,%d)" p d) hits))

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v 2>engine %s diverges on %a:@ expected %a@ got      %s@]"
    d.div_subject pp_case d.div_case pp_hits d.expected
    (match d.got with
    | Hits h -> Format.asprintf "%a" pp_hits h
    | Engine_error msg -> "exception: " ^ msg)

(* Run one subject on one case against a prebuilt (lazy) index; [None]
   means agreement or not-applicable. *)
let check_one_lazy idx s c expected =
  let verdict =
    match s.run (Lazy.force idx) c with
    | None -> None
    | Some hits -> if hits = expected then None else Some (Hits hits)
    | exception e -> Some (Engine_error (Printexc.to_string e))
  in
  Option.map
    (fun got -> { div_case = c; div_subject = s.sub_name; expected; got })
    verdict

let check_case ?subjects c =
  let subjects = match subjects with Some s -> s | None -> default_subjects () in
  let expected = reference c in
  let idx = lazy (Kmismatch.build_index c.text) in
  List.filter_map (fun s -> check_one_lazy idx s c expected) subjects

let check_subject s c =
  check_one_lazy (lazy (Kmismatch.build_index c.text)) s c (reference c)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

type gen_class =
  | Uniform
  | Planted
  | Periodic
  | Homopolymer
  | Near_full
  | Boundary
  | Zero_k
  | Big_k
  | Single_char

let all_classes =
  [ Uniform; Planted; Periodic; Homopolymer; Near_full; Boundary; Zero_k; Big_k; Single_char ]

let class_name = function
  | Uniform -> "uniform"
  | Planted -> "planted"
  | Periodic -> "periodic"
  | Homopolymer -> "homopolymer"
  | Near_full -> "near-full"
  | Boundary -> "boundary"
  | Zero_k -> "zero-k"
  | Big_k -> "big-k"
  | Single_char -> "single-char"

let bases = [| 'a'; 'c'; 'g'; 't' |]
let rand_base st = bases.(Random.State.int st 4)
let rand_dna st n = String.init n (fun _ -> rand_base st)

(* Change up to [count] random positions of [s] to random bases. *)
let mutate st s count =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    for _ = 1 to count do
      Bytes.set b (Random.State.int st n) (rand_base st)
    done;
    Bytes.to_string b
  end

(* A pattern planted at [pos] in [text], with a few mutations. *)
let planted_at st text pos m muts = mutate st (String.sub text pos m) muts

let gen_in_class st cls ~max_text =
  let mt = max 4 max_text in
  match cls with
  | Uniform ->
      let n = Random.State.int st (mt + 1) in
      let m = 1 + Random.State.int st 24 in
      { text = rand_dna st n; pattern = rand_dna st m; k = Random.State.int st 7 }
  | Planted ->
      let n = 1 + Random.State.int st mt in
      let text = rand_dna st n in
      let m = 1 + Random.State.int st (min n 24) in
      let pos = Random.State.int st (n - m + 1) in
      let k = Random.State.int st 5 in
      { text; pattern = planted_at st text pos m (Random.State.int st (k + 2)); k }
  | Periodic ->
      let u = 1 + Random.State.int st 6 in
      let unit_ = rand_dna st u in
      let reps = 1 + Random.State.int st (max 1 (mt / u)) in
      let buf = Buffer.create (reps * u) in
      for _ = 1 to reps do
        Buffer.add_string buf unit_
      done;
      let text = String.sub (Buffer.contents buf) 0 (min mt (Buffer.length buf)) in
      let n = String.length text in
      let m = 1 + Random.State.int st (min n 20) in
      let pos = Random.State.int st (n - m + 1) in
      { text; pattern = planted_at st text pos m (Random.State.int st 3); k = Random.State.int st 5 }
  | Homopolymer ->
      let n = 1 + Random.State.int st mt in
      let buf = Buffer.create n in
      while Buffer.length buf < n do
        Buffer.add_string buf (String.make (1 + Random.State.int st 12) (rand_base st))
      done;
      let text = String.sub (Buffer.contents buf) 0 n in
      let m = 1 + Random.State.int st 14 in
      let pattern =
        if Random.State.bool st then mutate st (String.make m (rand_base st)) 1
        else String.make m (rand_base st)
      in
      { text; pattern; k = Random.State.int st 7 }
  | Near_full ->
      let n = 1 + Random.State.int st mt in
      let text = rand_dna st n in
      let m = max 1 (n - 2 + Random.State.int st 5) in
      let pattern =
        if m <= n then planted_at st text (if Random.State.bool st then 0 else n - m) m (Random.State.int st 4)
        else text ^ rand_dna st (m - n)
      in
      { text; pattern; k = Random.State.int st 5 }
  | Boundary ->
      let n = 2 + Random.State.int st (mt - 1) in
      let text = rand_dna st n in
      let m = 1 + Random.State.int st (min n 20) in
      let pos = if Random.State.bool st then 0 else n - m in
      { text; pattern = planted_at st text pos m (Random.State.int st 4); k = Random.State.int st 5 }
  | Zero_k ->
      let n = 1 + Random.State.int st mt in
      let text = rand_dna st n in
      let m = 1 + Random.State.int st (min n 20) in
      let pos = Random.State.int st (n - m + 1) in
      { text; pattern = planted_at st text pos m (Random.State.int st 2); k = 0 }
  | Big_k ->
      let n = Random.State.int st (mt + 1) in
      let m = 1 + Random.State.int st 8 in
      (* Mostly k slightly above m; sometimes absurd budgets, up to
         max_int, to smoke out overflow in k-derived arithmetic. *)
      let k =
        match Random.State.int st 8 with
        | 0 -> max_int
        | 1 -> m + (1 lsl (20 + Random.State.int st 40))
        | _ -> m + Random.State.int st 4
      in
      { text = rand_dna st n; pattern = rand_dna st m; k }
  | Single_char ->
      let b = rand_base st in
      let n = Random.State.int st (mt + 1) in
      let pattern =
        if Random.State.bool st then String.make (1 + Random.State.int st 12) b
        else rand_dna st (1 + Random.State.int st 6)
      in
      { text = String.make n b; pattern; k = Random.State.int st 4 }

let generate ?(classes = all_classes) ?(max_text = 160) st =
  if classes = [] then invalid_arg "Oracle.generate: empty class list";
  let cls = List.nth classes (Random.State.int st (List.length classes)) in
  gen_in_class st cls ~max_text

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let shrink ?(max_evals = 4000) still_fails c0 =
  let evals = ref 0 in
  let test c =
    !evals < max_evals
    && begin
         incr evals;
         try still_fails c with _ -> false
       end
  in
  let remove s size start =
    String.sub s 0 start ^ String.sub s (start + size) (String.length s - start - size)
  in
  (* Try chunk deletions of [s], biggest chunks first; [rebuild] plugs the
     candidate string back into a full case. *)
  let shrink_string c s rebuild ~min_len =
    let found = ref None in
    let n = String.length s in
    let size = ref n in
    while !found = None && !size >= 1 do
      if n - !size >= min_len then begin
        let start = ref 0 in
        while !found = None && !start + !size <= n do
          let cand = rebuild c (remove s !size !start) in
          if test cand then found := Some cand;
          start := !start + max 1 !size
        done
      end;
      size := (if !size = 1 then 0 else max 1 (!size / 2))
    done;
    !found
  in
  let shrink_k c =
    let cands =
      List.sort_uniq Int.compare (List.filter (fun k -> 0 <= k && k < c.k) [ 0; c.k / 2; c.k - 1 ])
    in
    List.find_map (fun k -> let cand = { c with k } in if test cand then Some cand else None) cands
  in
  (* Rewrite one non-'a' character to 'a'. *)
  let simplify_chars c =
    let try_str s rebuild =
      let n = String.length s in
      let rec go i =
        if i >= n then None
        else if s.[i] <> 'a' then begin
          let b = Bytes.of_string s in
          Bytes.set b i 'a';
          let cand = rebuild c (Bytes.to_string b) in
          if test cand then Some cand else go (i + 1)
        end
        else go (i + 1)
      in
      go 0
    in
    match try_str c.text (fun c s -> { c with text = s }) with
    | Some _ as r -> r
    | None -> try_str c.pattern (fun c s -> { c with pattern = s })
  in
  let improve c =
    match shrink_k c with
    | Some _ as r -> r
    | None -> (
        match shrink_string c c.text (fun c s -> { c with text = s }) ~min_len:0 with
        | Some _ as r -> r
        | None -> (
            match shrink_string c c.pattern (fun c s -> { c with pattern = s }) ~min_len:1 with
            | Some _ as r -> r
            | None -> simplify_chars c))
  in
  let rec fix c = match improve c with Some c' -> fix c' | None -> c in
  fix c0

let shrink_divergence ?subjects d =
  let subjects = match subjects with Some s -> s | None -> default_subjects () in
  match List.find_opt (fun s -> s.sub_name = d.div_subject) subjects with
  | None -> d.div_case
  | Some s -> shrink (fun c -> check_subject s c <> None) d.div_case

(* ------------------------------------------------------------------ *)
(* Fuzz driver                                                         *)

type report = {
  iters_run : int;
  by_class : (string * int) list;
  divergences : divergence list;
}

let fuzz ?subjects ?(classes = all_classes) ?(max_text = 160) ?progress ~seed ~iters () =
  if classes = [] then invalid_arg "Oracle.fuzz: empty class list";
  let subjects = match subjects with Some s -> s | None -> default_subjects () in
  let st = Random.State.make [| 0x6f7261; seed |] in
  let counts = Hashtbl.create 16 in
  let raw = ref [] in
  (* first divergence per subject, generation order *)
  for i = 1 to iters do
    (match progress with Some f -> f i | None -> ());
    let cls = List.nth classes (Random.State.int st (List.length classes)) in
    Hashtbl.replace counts (class_name cls)
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts (class_name cls)));
    let c = gen_in_class st cls ~max_text in
    let fresh =
      List.filter (fun s -> not (List.exists (fun d -> d.div_subject = s.sub_name) !raw)) subjects
    in
    if fresh <> [] then
      List.iter
        (fun d ->
          if not (List.exists (fun d' -> d'.div_subject = d.div_subject) !raw) then
            raw := d :: !raw)
        (check_case ~subjects:fresh c)
  done;
  let shrunk =
    List.rev_map
      (fun d ->
        let c' = shrink_divergence ~subjects d in
        match List.find_opt (fun s -> s.sub_name = d.div_subject) subjects with
        | None -> { d with div_case = c' }
        | Some s -> (
            match check_subject s c' with
            | Some d' -> d'
            | None -> d (* shrinking raced max_evals; keep the original *)))
      !raw
  in
  let by_class =
    List.sort
      (fun (n1, c1) (n2, c2) ->
        let c = String.compare n1 n2 in
        if c <> 0 then c else Int.compare c1 c2)
      (Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts [])
  in
  { iters_run = iters; by_class; divergences = shrunk }

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)

let corpus_to_string ?(comment = []) c =
  let b = Buffer.create 128 in
  List.iter (fun l -> Buffer.add_string b ("# " ^ l ^ "\n")) comment;
  Printf.bprintf b "k %d\n" c.k;
  Printf.bprintf b "pattern %s\n" c.pattern;
  if c.text = "" then Buffer.add_string b "text\n"
  else Printf.bprintf b "text %s\n" c.text;
  Buffer.contents b

let corpus_of_string doc =
  let k = ref None and pattern = ref None and text = ref None in
  let error = ref None in
  let set_err msg = if !error = None then error := Some msg in
  let handle lineno raw =
    let line = String.trim raw in
    if line = "" || line.[0] = '#' then ()
    else begin
      let key, value =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
            (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))
      in
      match key with
      | "k" -> (
          match int_of_string_opt value with
          | Some v -> k := Some v
          | None -> set_err (Printf.sprintf "line %d: bad k %S" lineno value))
      | "pattern" -> pattern := Some value
      | "text" -> text := Some value
      | _ -> set_err (Printf.sprintf "line %d: unknown key %S" lineno key)
    end
  in
  List.iteri (fun i l -> handle (i + 1) l) (String.split_on_char '\n' doc);
  match !error with
  | Some msg -> Error msg
  | None -> (
      match (!k, !pattern, !text) with
      | None, _, _ -> Error "missing 'k' line"
      | _, None, _ -> Error "missing 'pattern' line"
      | _, _, None -> Error "missing 'text' line"
      | Some k, Some pattern, Some text -> (
          match make_case ~text ~pattern ~k with
          | c -> Ok c
          | exception Invalid_argument msg -> Error msg))

let save_case ?comment path c =
  let oc = open_out_bin path in
  output_string oc (corpus_to_string ?comment c);
  close_out oc

let load_case path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  match corpus_of_string doc with
  | Ok c -> c
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

let replay_file ?subjects path = check_case ?subjects (load_case path)

let replay_dir ?subjects dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, replay_file ?subjects path))
