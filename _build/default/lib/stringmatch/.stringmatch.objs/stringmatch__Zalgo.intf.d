lib/stringmatch/zalgo.mli:
