lib/suffix/lce.ml: Array Lcp Rmq String Suffix_array
