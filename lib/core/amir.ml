let blocks ~pattern ~k =
  let m = String.length pattern in
  if k = 0 then []
  else begin
    let b = 2 * k in
    let len = m / b in
    if len < 2 then []
    else
      List.init b (fun i -> (i * len, String.sub pattern (i * len) len))
  end

let search ?stats ?ptext ~pattern ~k text =
  if pattern = "" then invalid_arg "Amir.search: empty pattern";
  if k < 0 then invalid_arg "Amir.search: negative k";
  let m = String.length pattern and n = String.length text in
  (* budgets beyond m behave exactly like k = m; the clamp also keeps
     the 2k block count from overflowing for absurd budgets *)
  let k = min k m in
  ignore (stats : Stats.t option);
  if m > n then []
  else if k = 0 then
    List.map (fun p -> (p, 0)) (Stringmatch.Kmp.find_all ~pattern ~text)
  else begin
    (* Window verification: word-parallel on the packed text when one
       is supplied, an early-exit scalar scan otherwise.  Either way
       O(k) on the overwhelmingly common quick rejections, and the
       surviving (position, distance) pairs are identical. *)
    let distance_within =
      match ptext with
      | Some pt when Fmindex.Packed_text.length pt = n ->
          let pp = Fmindex.Packed_text.Pattern.make pattern in
          fun pos -> Fmindex.Packed_text.hamming ~limit:k pt pp ~pos
      | Some _ -> invalid_arg "Amir.search: packed text and text lengths differ"
      | None -> fun pos -> Stringmatch.Hamming.distance_at ~limit:k ~pattern ~text pos
    in
    let verify candidates =
      List.filter_map
        (fun pos ->
          Deadline.poll ();
          let d = distance_within pos in
          if d <= k then Some (pos, d) else None)
        candidates
    in
    match blocks ~pattern ~k with
    | [] ->
        (* Pattern too short for 2k blocks: verify every position (Amir's
           algorithm also special-cases such patterns). *)
        verify (List.init (n - m + 1) (fun i -> i))
    | bs ->
        let offsets = Array.of_list (List.map fst bs) in
        let ac = Stringmatch.Aho_corasick.build (Array.of_list (List.map snd bs)) in
        let marks = Array.make (n - m + 1) 0 in
        Stringmatch.Aho_corasick.scan ac text ~f:(fun ~pattern ~pos ->
            let candidate = pos - offsets.(pattern) in
            if candidate >= 0 && candidate <= n - m then
              marks.(candidate) <- marks.(candidate) + 1);
        (* 2k blocks and <= k mismatches leave >= k intact blocks. *)
        let threshold = k in
        let candidates = ref [] in
        for pos = n - m downto 0 do
          if marks.(pos) >= threshold then candidates := pos :: !candidates
        done;
        verify !candidates
  end
