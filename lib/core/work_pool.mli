(** A small fixed-size pool of OCaml 5 domains with a mutex/condition
    chunk queue and deterministic result merging.

    The pool is the scaling primitive the batch layers ([Mapper], the
    bench harness) build on: a job is a fixed number of integer tasks
    (typically chunk indices); workers pull the next task id under a
    mutex, run it without the lock, and results land in caller-owned
    slots indexed by task id — so the merged output never depends on
    scheduling order.

    A pool of [domains = 1] spawns nothing and runs every task inline on
    the calling domain, in task order, without touching the lock: the
    sequential path is literally the [domains = 1] special case, not a
    different code path.

    Tasks must not themselves submit jobs to the same pool. *)

type t

exception Task_failed of { task : int; exn : exn }
(** How a task failure reaches the submitter: the id of the first task
    observed to raise, together with the exception it raised.  By the
    time this is raised every task of the job has been executed (or
    observed to fail) and no domain is left blocked on the job — a
    raising task can neither deadlock the pool nor orphan a worker. *)

exception Cancelled
(** The job was cut short: {!run}'s [cancel] callback returned [true]
    before at least one task body ran, so that body (and possibly
    later ones) was skipped.  Raised at the submitter once the job has
    drained — same discipline as {!Task_failed} — and only when no task
    failed ({!Task_failed} wins).  Result slots of skipped tasks are
    untouched; the caller decides what partial results mean. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. *)

val create : ?domains:int -> unit -> t
(** Create a pool that executes jobs on [domains] domains in total:
    [domains - 1] spawned workers plus the calling domain, which
    participates in every job.  Default: [default_domains ()].
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Number of domains (including the caller) jobs run on. *)

val run :
  ?cancel:(unit -> bool) ->
  ?obs:Obs.t array ->
  t ->
  tasks:int ->
  (worker:int -> task:int -> unit) ->
  unit
(** [run t ~tasks body] executes [body ~worker ~task] once for every
    [task] in [0 .. tasks - 1] across the pool and returns when all have
    finished.  [worker] is a stable id in [0 .. domains t - 1] (0 is the
    calling domain), so callers can keep per-worker accumulators (e.g.
    one [Stats.t] per domain) without locking.  If any task raises, the
    remaining tasks still run (so the job always drains and all domains
    return to the idle queue) and the first failure is re-raised at the
    caller as {!Task_failed}, carrying the offending task id.  With
    [domains t = 1] the tasks run inline, in order, with the same
    failure semantics.  The pool remains usable after a failed job.

    [cancel] (default: never) is the cooperative cancellation point of
    the job itself: it is polled — unlocked, from whichever domain is
    about to start a task — before {e every} task body, and once it
    returns [true] that body is skipped (the task still counts as
    finished, so the job drains and the completion invariant holds).
    Tasks already executing are not interrupted; in-task cancellation
    is the deadline layer's job ([Deadline.poll] inside the body).  If
    any body was skipped, {!Cancelled} is raised after the drain (unless
    a task failed — {!Task_failed} takes precedence).  [cancel] must be
    safe to call concurrently from any domain and must not raise;
    checking an [Atomic] flag or a [Deadline] both qualify.

    [obs] (default [[||]], observability off) supplies one sink per
    worker, indexed by worker id — per-domain sinks, never shared, to be
    {!Obs.merge}d by the caller after the job.  Worker [w] records a
    [pool.queue_wait_ns] histogram value (submission-to-pull latency), a
    [pool.tasks] counter bump, and a [pool.task_ns] duration histogram
    entry for every task it executes.  Workers beyond the array length
    record nothing.
    @raise Invalid_argument if called re-entrantly from a task, after
    [shutdown], or with [tasks < 0].
    @raise Task_failed if any task raised. *)

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_array t ~f a] applies [f] to every element of [a] on the pool;
    slot [i] of the result is [f a.(i)] regardless of which domain ran
    it (deterministic merge). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool cannot be used
    afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ?domains f] creates a pool, runs [f], and shuts the pool
    down even if [f] raises. *)

val chunks : total:int -> chunk_size:int -> (int * int) array
(** [chunks ~total ~chunk_size] covers [0 .. total - 1] with contiguous
    [(start, len)] chunks of at most [chunk_size] items, in order: the
    standard sharding of a batch into pool tasks.
    @raise Invalid_argument if [total < 0] or [chunk_size < 1]. *)
