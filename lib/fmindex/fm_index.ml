type interval = int * int

(* The index owns no byte-per-character BWT copy: the packed payload
   lives inside [occ]'s interleaved rank blocks (2 bits/base), the
   sentinel row is tracked out-of-band, and suffix-array samples are a
   marked-row bitvector with a rank directory plus a flat array —
   [position_of_row] allocates nothing. *)
type t = {
  text : string;
  occ : Occ.t;
  c_array : int array;  (* c_array.(c) = # characters with code < c in BWT *)
  sa_rate : int;
  sentinel_row : int;
  marks : Bytes.t;  (* bit per row 0..n: row sampled? *)
  mark_cum : int array;  (* sampled rows before each 64-row chunk *)
  samples : int array;  (* text position of each sampled row, row order *)
}

let sigma = Dna.Alphabet.sigma

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)

(* Hot-path accounting for the observability layer: how many rank
   primitives ran, how many interleaved Occ blocks they decoded, and how
   much LF walking [locate] did.  Counters live in domain-local storage,
   so concurrent engines never contend and per-domain deltas merge to
   the sequential totals (they are sums).  The whole hook sits behind
   one global flag: disabled (the default), every instrumented entry
   point pays a single load-and-branch; [compiled = false] removes even
   that (the conditional becomes a structural constant and the hooks are
   dead code). *)
module Telemetry = struct
  type counters = {
    mutable rank_ops : int;
    mutable block_decodes : int;
    mutable locate_walks : int;
    mutable locate_steps : int;
  }

  (* The compile-out switch: a structural constant, so with [false] the
     optimizer drops every hook body. *)
  let compiled = true

  let flag = Atomic.make false
  let set_enabled b = Atomic.set flag b
  let is_enabled () = compiled && Atomic.get flag

  let key =
    Domain.DLS.new_key (fun () ->
        { rank_ops = 0; block_decodes = 0; locate_walks = 0; locate_steps = 0 })

  let cell () = Domain.DLS.get key

  let snapshot () =
    let c = cell () in
    {
      rank_ops = c.rank_ops;
      block_decodes = c.block_decodes;
      locate_walks = c.locate_walks;
      locate_steps = c.locate_steps;
    }

  let diff ~since c =
    {
      rank_ops = c.rank_ops - since.rank_ops;
      block_decodes = c.block_decodes - since.block_decodes;
      locate_walks = c.locate_walks - since.locate_walks;
      locate_steps = c.locate_steps - since.locate_steps;
    }
end

(* ------------------------------------------------------------------ *)
(* Marked-row bitvector                                                 *)

let pop8 = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let mark_test marks row = (Char.code (Bytes.get marks (row lsr 3)) lsr (row land 7)) land 1 = 1

let mark_set marks row =
  Bytes.set marks (row lsr 3)
    (Char.chr (Char.code (Bytes.get marks (row lsr 3)) lor (1 lsl (row land 7))))

(* Number of marked rows strictly before [row]. *)
let mark_rank t row =
  let chunk = row lsr 6 in
  let acc = ref (Array.unsafe_get t.mark_cum chunk) in
  let first_byte = chunk lsl 3 in
  for b = first_byte to (row lsr 3) - 1 do
    acc := !acc + Array.unsafe_get pop8 (Char.code (Bytes.unsafe_get t.marks b))
  done;
  let partial = row land 7 in
  if partial <> 0 then
    acc :=
      !acc
      + Array.unsafe_get pop8
          (Char.code (Bytes.unsafe_get t.marks (row lsr 3)) land ((1 lsl partial) - 1));
  !acc

(* Build the rank directory over a marks bitvector of [rows] rows and
   return the total number of marked rows. *)
let build_mark_cum marks rows =
  let nchunks = (rows + 63) / 64 in
  let cum = Array.make (max 1 nchunks) 0 in
  let total = ref 0 in
  for b = 0 to Bytes.length marks - 1 do
    if b land 7 = 0 && b lsr 3 < nchunks then cum.(b lsr 3) <- !total;
    total := !total + pop8.(Char.code (Bytes.get marks b))
  done;
  (cum, !total)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let c_array_of_counts counts =
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  c_array

let build ?(occ_rate = 32) ?(sa_rate = 16) text =
  if sa_rate <= 0 then invalid_arg "Fm_index.build: sa_rate must be positive";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c) || c <> Dna.Alphabet.normalize c then
        invalid_arg "Fm_index.build: text must be lowercase acgt")
    text;
  let n = String.length text in
  let sa = Suffix.Suffix_array.build text in
  let packed, sentinel_row = Bwt.packed_of_suffix_array text sa in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Row i of the matrix of text^"$" corresponds to suffix position:
     row 0 -> n (the sentinel suffix), row i+1 -> sa.(i).  Sample rows
     whose position is a multiple of sa_rate so any locate walk ends
     within sa_rate LF steps. *)
  let marks = Bytes.make ((n + 8) / 8) '\000' in
  mark_set marks 0;
  let nsamples = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      mark_set marks (i + 1);
      incr nsamples
    end
  done;
  let samples = Array.make !nsamples 0 in
  samples.(0) <- n;
  let j = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      samples.(!j) <- sa.(i);
      incr j
    end
  done;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  assert (total = !nsamples);
  { text; occ; c_array; sa_rate; sentinel_row; marks; mark_cum; samples }

let length t = String.length t.text
let text t = t.text
let bwt t = String.init (Occ.length t.occ) (fun row -> Dna.Alphabet.of_code (Occ.get t.occ row))
let whole t = (0, Occ.length t.occ)

(* ------------------------------------------------------------------ *)
(* Backward search                                                      *)

let extend t c (lo, hi) =
  if c <= 0 || c >= sigma then None
  else begin
    if Telemetry.is_enabled () then begin
      let tc = Telemetry.cell () in
      tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + 1;
      tc.Telemetry.block_decodes <-
        (tc.Telemetry.block_decodes + if hi = lo + 1 then 1 else 2)
    end;
    let r_lo, r_hi = Occ.rank_pair t.occ c lo hi in
    let lo' = t.c_array.(c) + r_lo in
    let hi' = t.c_array.(c) + r_hi in
    if lo' < hi' then Some (lo', hi') else None
  end

let interval_of_char t c = extend t c (whole t)

(* Character codes of a pattern, case folded; [None] when any character
   is outside ACGT (such a pattern occurs nowhere rather than raising). *)
let codes_of_pattern pat =
  let m = String.length pat in
  let codes = Array.make m 0 in
  let ok = ref true in
  for i = 0 to m - 1 do
    match Dna.Alphabet.code_opt pat.[i] with
    | Some c when c > 0 -> codes.(i) <- c
    | _ -> ok := false
  done;
  if !ok then Some codes else None

let search t pat =
  match codes_of_pattern pat with
  | None -> None
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Some (whole t)
      else begin
        let rec go i iv =
          if i < 0 then Some iv
          else match extend t codes.(i) iv with None -> None | Some iv' -> go (i - 1) iv'
        in
        go (m - 1) (whole t)
      end

(* [count] is [search] unrolled into an allocation-free loop: no interval
   options, no per-step tuples, and the shared-decode pair kernel doing
   the two rank queries of each step.  The unchecked kernel is sound
   here: [codes_of_pattern] proves every [c] is in 1..sigma-1, and the
   interval arithmetic keeps [0 <= lo <= hi <= length] invariant. *)
let count t pat =
  match codes_of_pattern pat with
  | None -> 0
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Occ.length t.occ
      else begin
        let measured = Telemetry.is_enabled () in
        let ops = ref 0 and decodes = ref 0 in
        let lo = ref 0 and hi = ref (Occ.length t.occ) in
        let pr = Array.make 2 0 in
        let i = ref (m - 1) in
        while !i >= 0 && !lo < !hi do
          let c = Array.unsafe_get codes !i in
          if measured then begin
            Stdlib.incr ops;
            decodes := !decodes + (if !hi = !lo + 1 then 1 else 2)
          end;
          Occ.rank_pair_into_unsafe t.occ c !lo !hi pr;
          let cc = Array.unsafe_get t.c_array c in
          lo := cc + Array.unsafe_get pr 0;
          hi := cc + Array.unsafe_get pr 1;
          decr i
        done;
        if measured then begin
          let tc = Telemetry.cell () in
          tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + !ops;
          tc.Telemetry.block_decodes <- tc.Telemetry.block_decodes + !decodes
        end;
        if !hi > !lo then !hi - !lo else 0
      end

let lf t row =
  let c, r = Occ.char_rank t.occ row in
  t.c_array.(c) + r

let position_of_row t row =
  if Telemetry.is_enabled () then begin
    let row = ref row and steps = ref 0 in
    while not (mark_test t.marks !row) do
      row := lf t !row;
      Stdlib.incr steps
    done;
    let tc = Telemetry.cell () in
    tc.Telemetry.locate_walks <- tc.Telemetry.locate_walks + 1;
    tc.Telemetry.locate_steps <- tc.Telemetry.locate_steps + !steps;
    (* Each LF step is one rank over the block holding its row. *)
    tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + !steps;
    tc.Telemetry.block_decodes <- tc.Telemetry.block_decodes + !steps;
    t.samples.(mark_rank t !row) + !steps
  end
  else begin
    let rec walk row steps =
      if mark_test t.marks row then t.samples.(mark_rank t row) + steps
      else walk (lf t row) (steps + 1)
    in
    walk row 0
  end

let locate_into t (lo, hi) dst =
  let rows = Occ.length t.occ in
  if lo < 0 || hi > rows || lo > hi then invalid_arg "Fm_index.locate_into: bad interval";
  if Array.length dst < hi - lo then invalid_arg "Fm_index.locate_into: buffer too small";
  for row = lo to hi - 1 do
    Array.unsafe_set dst (row - lo) (position_of_row t row)
  done

let locate t (lo, hi) =
  if hi <= lo then []
  else begin
    let buf = Array.make (hi - lo) 0 in
    locate_into t (lo, hi) buf;
    Array.sort Int.compare buf;
    (* Distinct rows resolve to distinct suffix positions, so no dedup
       pass is needed. *)
    Array.to_list buf
  end

let find_all t pat =
  match search t pat with None -> [] | Some iv -> locate t iv

let space_report t =
  [
    ("packed bwt + rank blocks", Occ.space_bytes t.occ);
    ("sa marks (bitvector + rank dir)", Bytes.length t.marks + (8 * Array.length t.mark_cum));
    ("sa samples", 8 * Array.length t.samples);
    ("c array", 8 * sigma);
    ("text (1 byte/char)", String.length t.text);
  ]

let extend_all t (lo, hi) ~los ~his =
  (* One boundary check here, then the unchecked pair kernel: engines
     call this millions of times per read with intervals they derived
     from [whole]/previous extensions, so the in-range invariant holds
     and per-call revalidation inside [Occ] would be pure overhead. *)
  if lo < 0 || hi < lo || hi > Occ.length t.occ then
    invalid_arg "Fm_index.extend_all: interval out of range";
  if Array.length los <> sigma || Array.length his <> sigma then
    invalid_arg "Fm_index.extend_all: bad dst size";
  if Telemetry.is_enabled () then begin
    let tc = Telemetry.cell () in
    tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + 1;
    (* The pair kernel decodes one block for a width-1 interval, two
       otherwise. *)
    tc.Telemetry.block_decodes <-
      (tc.Telemetry.block_decodes + if hi = lo + 1 then 1 else 2)
  end;
  Occ.rank_all_pair_unsafe t.occ lo hi los his;
  for c = 0 to sigma - 1 do
    let base = Array.unsafe_get t.c_array c in
    Array.unsafe_set los c (base + Array.unsafe_get los c);
    Array.unsafe_set his c (base + Array.unsafe_get his c)
  done

(* --- persistence ----------------------------------------------------- *)

(* Format v3 (current): a one-line ASCII header
       "kmm-fm-index 3 <n> <occ_rate> <sa_rate> <sentinel_row> <nsamples>
        <blocks_bytes> <super_len>\n"
   followed by five binary little-endian sections, {e each} immediately
   followed by the 4-byte little-endian CRC-32 of its payload:
     1. packed text          ceil(n/4) bytes (2-bit codes, 4 bases/byte)
     2. occ blocks           <blocks_bytes> bytes (interleaved counts+payload)
     3. occ superblocks      <super_len> * 8 bytes (int64)
     4. sa marks bitvector   ceil((n+1)/8) bytes
     5. sa samples           <nsamples> * 8 bytes (int64)
   and an 8-byte trailer: the ASCII magic "kmm3" plus the 4-byte LE
   CRC-32 of {e every} preceding byte of the file (header included).

   The section checksums attribute any corruption to the section that
   holds it; the whole-file trailer covers the bytes the section sums
   cannot (the header and the checksum fields themselves) and doubles as
   an end-of-file marker, so any single-byte corruption or truncation is
   detected deterministically — the structural validation below (Occ
   checkpoint recount, text/BWT totals cross-check, SA shape checks) is
   then defense in depth, not the only line.

   Loading adopts the buffers directly; no BWT inversion, no LF walk.
   The v2 format (same sections, no checksums) and the v1 format (header
   version "1", payload = packed BWT only, reconstructing reader) are
   still read, guarded by committed fixtures. *)

let magic = "kmm-fm-index"
let trailer_magic = "kmm3"

let bytes_of_ints a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.of_int v)) a;
  b

let ints_of_string s =
  Array.init (String.length s / 8) (fun i -> Int64.to_int (String.get_int64_le s (i * 8)))

let le32_of_int v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let int_of_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* --- serialization ---------------------------------------------------- *)

let header_line ~version t =
  let n = String.length t.text in
  Printf.sprintf "%s %d %d %d %d %d %d %d %d\n" magic version n (Occ.rate t.occ)
    t.sa_rate t.sentinel_row (Array.length t.samples)
    (Bytes.length (Occ.raw_blocks t.occ))
    (Array.length (Occ.raw_super t.occ))

let sections t =
  [
    Bytes.unsafe_to_string (Packed_text.bytes (Packed_text.of_string t.text));
    Bytes.unsafe_to_string (Occ.raw_blocks t.occ);
    Bytes.unsafe_to_string (bytes_of_ints (Occ.raw_super t.occ));
    Bytes.unsafe_to_string t.marks;
    Bytes.unsafe_to_string (bytes_of_ints t.samples);
  ]

(* The whole v3 file as one in-memory image: serialization is separated
   from file I/O so the byte-sweep tests (and the fuzz oracle) can
   corrupt and re-parse images without touching the filesystem. *)
let serialize t =
  let buf = Buffer.create (4096 + (2 * String.length t.text)) in
  let crc = ref 0 in
  let add s =
    Buffer.add_string buf s;
    crc := Crc32.string ~init:!crc s
  in
  add (header_line ~version:3 t);
  List.iter
    (fun payload ->
      add payload;
      add (le32_of_int (Crc32.string payload)))
    (sections t);
  add trailer_magic;
  Buffer.add_string buf (le32_of_int !crc);
  Buffer.contents buf

let serialize_v2 t =
  let buf = Buffer.create (4096 + (2 * String.length t.text)) in
  Buffer.add_string buf (header_line ~version:2 t);
  List.iter (Buffer.add_string buf) (sections t);
  Buffer.contents buf

(* --- atomic, crash-safe file writing ---------------------------------- *)

type sink = { sink_write : string -> unit; sink_flush : unit -> unit }

(* Write [image] to [path] atomically: stream into a same-directory temp
   file, flush + fsync, close, then rename over [path].  On {e any}
   failure (including one injected through [wrap]) the temp file is
   removed and [path] is untouched; every fd is released via
   [Fun.protect].  [wrap] interposes on the byte stream — the
   fault-injection hook the crash-safety tests drive. *)
let write_atomic ?(fsync = true) ?(wrap = fun (s : sink) -> s) image path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".kmm-save-" ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (match
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         let base =
           {
             sink_write = (fun s -> output_string oc s);
             sink_flush =
               (fun () ->
                 flush oc;
                 if fsync then Unix.fsync (Unix.descr_of_out_channel oc));
           }
         in
         let s = wrap base in
         (* Chunked writes, so injected faults see the same granularity a
            real kernel write path would. *)
         let len = String.length image in
         let chunk = 65536 in
         let pos = ref 0 in
         while !pos < len do
           let l = min chunk (len - !pos) in
           s.sink_write (String.sub image !pos l);
           pos := !pos + l
         done;
         s.sink_flush ())
   with
  | () -> ()
  | exception e ->
      cleanup ();
      raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      cleanup ();
      raise e);
  (* Best-effort directory sync so the rename itself survives a crash. *)
  if fsync then
    try
      let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
      Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
    with Unix.Unix_error _ | Sys_error _ -> ()

let save ?fsync ?wrap t path = write_atomic ?fsync ?wrap (serialize t) path
let save_v2 ?fsync ?wrap t path = write_atomic ?fsync ?wrap (serialize_v2 t) path

(* --- parsing ----------------------------------------------------------- *)

(* All readers parse an in-memory image through a cursor; every length is
   validated against the remaining bytes {e before} any slice or
   allocation, so a forged header can produce [Truncated]/[Corrupt] but
   never [Out_of_memory] or [End_of_file]. *)

exception Fail of Kmm_error.t

let fail e = raise (Fail e)
let corrupt section detail = fail (Kmm_error.Corrupt (section, detail))

type reader = { image : string; mutable pos : int }

let remaining r = String.length r.image - r.pos

let take r ~what n =
  if n < 0 || n > remaining r then fail (Kmm_error.Truncated what);
  let s = String.sub r.image r.pos n in
  r.pos <- r.pos + n;
  s

(* Like [input_line]: up to ['\n'] (consumed) or end of image. *)
let take_line r =
  match String.index_from_opt r.image r.pos '\n' with
  | Some i ->
      let s = String.sub r.image r.pos (i - r.pos) in
      r.pos <- i + 1;
      s
  | None ->
      let s = String.sub r.image r.pos (remaining r) in
      r.pos <- String.length r.image;
      s

let take_crc r ~what = int_of_le32 (take r ~what:(what ^ " checksum") 4) 0

let at_end r = remaining r = 0

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> corrupt Kmm_error.Header (Printf.sprintf "unparsable %s field" what)

(* Shared header sanity: a forged or bit-flipped header must fail with
   the same friendly error as an unparsable one, and must never be
   allowed to drive a huge allocation (every derived length is bounded by
   the image size through [take]). *)
let check_header_ranges ~n ~occ_rate ~sa_rate ~sentinel_row =
  if n < 0 || occ_rate <= 0 || sa_rate <= 0 || sentinel_row < 0 || sentinel_row > n
  then corrupt Kmm_error.Header "field out of range"

(* --- v1 reader (reconstructing) -------------------------------------- *)

let load_v1 r fields =
  let n, occ_rate, sa_rate, sentinel_row =
    match fields with
    | [ n; occ_rate; sa_rate; sentinel_row ] ->
        ( int_field "n" n, int_field "occ_rate" occ_rate, int_field "sa_rate" sa_rate,
          int_field "sentinel_row" sentinel_row )
    | _ -> corrupt Kmm_error.Header "wrong field count"
  in
  check_header_ranges ~n ~occ_rate ~sa_rate ~sentinel_row;
  let payload = take r ~what:"payload" ((n + 3) / 4) in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  let packed = Packed_text.of_bytes payload ~len:n in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Rebuild text and SA samples with one LF walk: starting from row 0
     (the row whose suffix is the bare sentinel, position n) and
     following LF visits positions n, n-1, ..., 0 in order. *)
  let text_buf = Bytes.create n in
  let pairs = ref [] in
  let npairs = ref 0 in
  let row = ref 0 in
  for pos = n downto 0 do
    if pos mod sa_rate = 0 || pos = n then begin
      pairs := (!row, pos) :: !pairs;
      incr npairs
    end;
    if pos > 0 then begin
      let c, rk = Occ.char_rank occ !row in
      if c = 0 then
        (* The sentinel can only ever be read at position 0. *)
        corrupt Kmm_error.Text_section "broken LF cycle in payload";
      Bytes.set text_buf (pos - 1) (Dna.Alphabet.of_code c);
      row := c_array.(c) + rk
    end
  done;
  let sorted = List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) !pairs in
  let marks = Bytes.make ((n + 8) / 8) '\000' in
  let samples = Array.make !npairs 0 in
  List.iteri
    (fun i (rw, p) ->
      mark_set marks rw;
      samples.(i) <- p)
    sorted;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> !npairs then corrupt Kmm_error.Sa_marks "sample count mismatch";
  {
    text = Bytes.unsafe_to_string text_buf;
    occ;
    c_array;
    sa_rate;
    sentinel_row;
    marks;
    mark_cum;
    samples;
  }

(* --- v2 / v3 readers (adopting) --------------------------------------- *)

type v2_header = {
  h_n : int;
  h_occ_rate : int;
  h_sa_rate : int;
  h_sentinel_row : int;
  h_nsamples : int;
  h_blocks_bytes : int;
  h_super_len : int;
}

let parse_v2_header fields =
  let h =
    match fields with
    | [ n; occ_rate; sa_rate; sentinel_row; nsamples; blocks_bytes; super_len ] ->
        {
          h_n = int_field "n" n;
          h_occ_rate = int_field "occ_rate" occ_rate;
          h_sa_rate = int_field "sa_rate" sa_rate;
          h_sentinel_row = int_field "sentinel_row" sentinel_row;
          h_nsamples = int_field "nsamples" nsamples;
          h_blocks_bytes = int_field "blocks_bytes" blocks_bytes;
          h_super_len = int_field "super_len" super_len;
        }
    | _ -> corrupt Kmm_error.Header "wrong field count"
  in
  check_header_ranges ~n:h.h_n ~occ_rate:h.h_occ_rate ~sa_rate:h.h_sa_rate
    ~sentinel_row:h.h_sentinel_row;
  if
    h.h_nsamples < 1 || h.h_nsamples > h.h_n + 1 || h.h_blocks_bytes < 0
    || h.h_super_len < 0
  then corrupt Kmm_error.Header "field out of range";
  h

(* Adopt the five sections of a v2/v3 file into an index, running the
   structural validation (Occ checkpoint recount, text/BWT totals
   cross-check, SA shape checks). *)
let adopt h ~text_payload ~blocks ~super ~marks ~samples =
  let n = h.h_n in
  let text =
    try Packed_text.to_string (Packed_text.of_bytes text_payload ~len:n)
    with Invalid_argument _ -> corrupt Kmm_error.Text_section "bad packed payload"
  in
  let occ =
    try
      Occ.of_raw ~rate:h.h_occ_rate ~len:(n + 1)
        ~sentinels:[| h.h_sentinel_row |] ~blocks ~super
    with Invalid_argument msg -> corrupt Kmm_error.Rank_blocks msg
  in
  (* The text section and the rank structure must agree on per-character
     totals (an O(n) byte scan, no reconstruction). *)
  let counts = Occ.counts occ in
  let text_counts = Array.make sigma 0 in
  String.iter
    (fun c ->
      let k = Dna.Alphabet.code c in
      text_counts.(k) <- text_counts.(k) + 1)
    text;
  for c = 1 to sigma - 1 do
    if text_counts.(c) <> counts.(c) then
      corrupt Kmm_error.Text_section "text and BWT sections disagree"
  done;
  (* Clear mark padding bits beyond row n, then check sampling shape. *)
  (let rows = n + 1 in
   if rows land 7 <> 0 then begin
     let last = Bytes.length marks - 1 in
     Bytes.set marks last
       (Char.chr (Char.code (Bytes.get marks last) land ((1 lsl (rows land 7)) - 1)))
   end);
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> h.h_nsamples then
    corrupt Kmm_error.Sa_marks "sample count mismatch";
  if not (mark_test marks 0) then corrupt Kmm_error.Sa_marks "row 0 unmarked";
  if samples.(0) <> n then corrupt Kmm_error.Sa_samples "row 0 sample wrong";
  Array.iter
    (fun p ->
      if p < 0 || p > n then corrupt Kmm_error.Sa_samples "sample out of range")
    samples;
  {
    text;
    occ;
    c_array = c_array_of_counts counts;
    sa_rate = h.h_sa_rate;
    sentinel_row = h.h_sentinel_row;
    marks;
    mark_cum;
    samples;
  }

let load_v2 r fields =
  let h = parse_v2_header fields in
  let n = h.h_n in
  let text_payload = take r ~what:"text section" ((n + 3) / 4) in
  let blocks = Bytes.of_string (take r ~what:"rank blocks" h.h_blocks_bytes) in
  let super = ints_of_string (take r ~what:"superblocks" (8 * h.h_super_len)) in
  let marks = Bytes.of_string (take r ~what:"sa marks" ((n + 8) / 8)) in
  let samples = ints_of_string (take r ~what:"sa samples" (8 * h.h_nsamples)) in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  adopt h ~text_payload ~blocks ~super ~marks ~samples

let load_v3 r fields =
  let h = parse_v2_header fields in
  let n = h.h_n in
  (* 8 * h_super_len below cannot overflow: the field is bounded by the
     image size through the checks in [take] (a too-large claim fails as
     [Truncated] before any arithmetic on derived offsets matters). *)
  if h.h_super_len > String.length r.image || h.h_nsamples > String.length r.image
  then fail (Kmm_error.Truncated "superblocks");
  let section sec len =
    let what = Kmm_error.section_name sec in
    let payload = take r ~what len in
    let stored = take_crc r ~what in
    if Crc32.string payload <> stored then corrupt sec "checksum mismatch";
    payload
  in
  let text_payload = section Kmm_error.Text_section ((n + 3) / 4) in
  let blocks_s = section Kmm_error.Rank_blocks h.h_blocks_bytes in
  let super_s = section Kmm_error.Superblocks (8 * h.h_super_len) in
  let marks_s = section Kmm_error.Sa_marks ((n + 8) / 8) in
  let samples_s = section Kmm_error.Sa_samples (8 * h.h_nsamples) in
  (* Trailer: magic + CRC-32 of every byte before the trailer CRC field.
     This covers the header and the per-section checksum fields, so a
     flip anywhere in the file fails one of these deterministic checks. *)
  let body_end = r.pos in
  let tmagic = take r ~what:"trailer" 4 in
  if tmagic <> trailer_magic then corrupt Kmm_error.Trailer "bad trailer magic";
  let stored = take_crc r ~what:"trailer" in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  let whole = Crc32.sub r.image ~pos:0 ~len:(body_end + 4) in
  if whole <> stored then corrupt Kmm_error.Trailer "whole-file checksum mismatch";
  adopt h ~text_payload
    ~blocks:(Bytes.of_string blocks_s)
    ~super:(ints_of_string super_s)
    ~marks:(Bytes.of_string marks_s)
    ~samples:(ints_of_string samples_s)

let try_of_string image =
  let r = { image; pos = 0 } in
  match
    let header = take_line r in
    match String.split_on_char ' ' header with
    | m :: version :: fields when m = magic -> (
        match version with
        | "1" -> load_v1 r fields
        | "2" -> load_v2 r fields
        | "3" -> load_v3 r fields
        | v -> (
            match int_of_string_opt v with
            | Some nv -> fail (Kmm_error.Unsupported_version nv)
            | None -> fail Kmm_error.Bad_magic))
    | _ -> fail Kmm_error.Bad_magic
  with
  | t -> Ok t
  | exception Fail e -> Error e
  | exception e ->
      (* A reader bug, not a property of the file: surface it as such
         rather than masking it as corruption. *)
      Error (Kmm_error.Internal (Printexc.to_string e))

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let try_load path =
  match read_whole_file path with
  | image -> try_of_string image
  | exception (Sys_error _ as e) -> Error (Kmm_error.Io e)

let load path =
  match try_load path with
  | Ok t -> t
  | Error (Kmm_error.Io e) -> raise e
  | Error e -> failwith (path ^ ": " ^ Kmm_error.to_string e)
