lib/suffix/lcp.mli:
