(** Zero-dependency observability: monotonic span timers, log-bucketed
    mergeable latency histograms, named counters, and two exporters
    (Chrome trace events for [about://tracing]/Perfetto, and a
    Prometheus-style text exposition).

    {2 Sinks}

    Everything is recorded into a {e sink} ({!t}).  A sink is either
    {!noop} — a flat constant on which every operation is a single
    pattern match returning immediately, so fully-instrumented code with
    observability disabled stays within a <2% overhead budget (measured
    in EXPERIMENTS.md) — or an {e active} sink created by {!create},
    holding named counters, named histograms, and (optionally) a trace
    event buffer.

    Sinks are single-domain: each worker owns its own ({!fork}), and the
    owner {!merge}s them after the domains join.

    {2 Merge semantics}

    [merge] adds counters, adds histogram buckets, and concatenates
    trace events.  Counters and histograms obey the same contract as
    [Stats.merge]: they are sums over per-record increments, so merging
    per-domain sinks yields {e bit-for-bit} the counters and histograms
    a sequential run recording the same values would have produced,
    regardless of sharding or scheduling.  (Wall-clock {e values} — span
    durations — naturally differ between runs; the determinism claim is
    about the merge, and about metrics derived from deterministic
    quantities.) *)

(** The monotonic clock behind every span ([CLOCK_MONOTONIC]; immune to
    NTP steps of the wall clock). *)
module Clock : sig
  val now_ns : unit -> int
  (** Nanoseconds from an arbitrary fixed origin; never decreases.
      Allocation-free. *)
end

(** Log-bucketed (HDR-style) histograms of non-negative integers with
    exact merge semantics.

    Buckets are log-linear in base 2 with 5 bits of precision: values
    below 64 are held in exact unit buckets; above, every power-of-two
    octave is split into 32 equal sub-buckets, so no bucket is wider
    than 1/32 of its values (3.125% maximum relative quantile error).
    {!merge} is element-wise bucket addition — the multiset union,
    bit for bit. *)
module Histogram : sig
  type t

  val create : unit -> t
  (** An empty histogram (fixed bucket geometry, ~15 KB). *)

  val record : t -> int -> unit
  (** Record one value.  Negative values clamp to 0. *)

  val count : t -> int
  (** Number of recorded values. *)

  val sum : t -> int
  (** Exact sum of recorded values. *)

  val min_value : t -> int
  (** Exact minimum recorded value; 0 when empty. *)

  val max_value : t -> int
  (** Exact maximum recorded value; 0 when empty. *)

  val mean : t -> float
  (** [sum / count]; 0.0 when empty. *)

  val quantile : t -> float -> int
  (** [quantile t q] (with [q] clamped into [0, 1]) returns an upper
      bound of the value at rank [ceil (q * count)]: exact for values
      below 64, within 3.125% above, and never beyond {!max_value}.
      0 when empty. *)

  val merge : into:t -> t -> unit
  (** Element-wise bucket addition; also sums [count]/[sum] and tightens
      min/max.  Merging shards equals recording sequentially. *)

  val copy : t -> t
  (** An independent snapshot. *)

  val equal : t -> t -> bool
  (** Structural equality of contents (buckets, count, sum, min, max) —
      the bit-for-bit check the sharded-merge tests rely on. *)

  val clear : t -> unit
  (** Reset to empty in place. *)

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets in ascending value order, as
      [(low, high_inclusive, count)] — the exporter's view. *)
end

type t
(** A sink: {!noop} or an active recorder.  Not thread-safe; use one
    sink per domain and {!merge}. *)

val noop : t
(** The disabled sink.  Every operation on it is a constant-time
    pattern match; [span noop name f] is [f ()]. *)

val create : ?trace:bool -> unit -> t
(** A fresh active sink.  With [trace] (default [false]) spans and
    {!event}s are also buffered as Chrome trace events (capped at one
    million; overflow increments the [obs.trace_dropped] counter). *)

val enabled : t -> bool
(** [false] exactly for {!noop} — the guard for any instrumentation
    whose cost is more than a counter bump. *)

val tracing : t -> bool
(** Whether the sink buffers trace events. *)

val fork : t -> t
(** A fresh sink of the same kind ({!noop} forks to {!noop}, active to
    an empty active sink with the same [trace] flag) — one per worker
    domain, {!merge}d back after the join. *)

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at 0. *)

val add : t -> string -> int -> unit
(** [add t name n] is [incr ~by:n t name]. *)

val counter_value : t -> string -> int
(** Current value; 0 if absent (always 0 on {!noop}). *)

val counters : t -> (string * int) list
(** All counters, sorted by name (deterministic export order). *)

(** {1 Histograms} *)

val record : t -> string -> int -> unit
(** Record a value into the named histogram, creating it on first use. *)

val histogram : t -> string -> Histogram.t option
(** Look up a histogram by name. *)

val histograms : t -> (string * Histogram.t) list
(** All histograms, sorted by name. *)

(** {1 Spans and events} *)

val span : ?args:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], records its monotonic duration into the
    histogram [name ^ "_ns"], and — when {!tracing} — buffers a Chrome
    complete event named [name] with the current domain as [tid] and
    [args] as its argument map.  Duration is recorded even if [f]
    raises.  On {!noop} this is exactly [f ()]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Like {!span} but histogram-only (never buffers a trace event) — for
    scopes frequent enough that per-call trace events would swamp the
    buffer, e.g. per-derivation timings. *)

val event : ?args:(string * string) list -> t -> string -> unit
(** Buffer an instant trace event (no duration).  No-op unless
    {!tracing}. *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Add every counter and histogram of the source into the destination
    and append its trace events (subject to the destination's cap).
    No-op if either side is {!noop}.  See the module preamble for the
    exactness contract. *)

(** {1 Exporters} *)

val to_chrome_trace : ?process_name:string -> t -> string
(** The buffered trace as Chrome trace-event JSON: a top-level array,
    one event object per line, loadable in [about://tracing] and
    Perfetto.  Timestamps are rebased to the earliest event and
    expressed in microseconds.  Always valid JSON, even for {!noop} or
    an empty sink. *)

val to_prometheus : ?prefix:string -> t -> string
(** Counters and histograms in the Prometheus text exposition format
    (version 0.0.4): [# TYPE] comments, [<prefix>_<name>] with
    non-metric characters mapped to [_], histogram [_bucket{le="..."}]
    cumulative series plus [_sum] and [_count].  Output order is sorted
    by name, so deterministic metrics produce byte-identical
    expositions.  [prefix] defaults to ["kmm"]. *)

val write_chrome_trace : ?process_name:string -> t -> string -> unit
(** [write_chrome_trace t path] writes {!to_chrome_trace} to [path]. *)

val write_prometheus : ?prefix:string -> t -> string -> unit
(** [write_prometheus t path] writes {!to_prometheus} to [path]. *)
