(* Provenance stamp shared by every BENCH_*.json record: without it, a
   directory of appended bench lines is a pile of numbers with no way to
   tell which commit, toolchain or machine produced which line.  Each
   probe is fail-soft ("unknown") so benches still run in a stripped
   container or an exported tarball without git. *)

let run_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with _ -> None

let git_rev () =
  match run_line "git rev-parse --short HEAD 2>/dev/null" with
  | Some rev -> rev
  | None -> "unknown"

let hostname () = try Unix.gethostname () with _ -> "unknown"

let timestamp_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Minimal JSON string escaping: the fields are short identifiers, but a
   hostname is still attacker^W admin-controlled input. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  Printf.sprintf
    "{\"git_rev\":\"%s\",\"ocaml\":\"%s\",\"hostname\":\"%s\",\
     \"timestamp_utc\":\"%s\",\"domains\":%d}"
    (json_escape (git_rev ()))
    (json_escape Sys.ocaml_version)
    (json_escape (hostname ()))
    (timestamp_utc ())
    (Domain.recommended_domain_count ())
