type t = int
(* Absolute Obs.Clock.now_ns instant; max_int = none.  Plain int so the
   ambient slot and every comparison stay allocation-free. *)

let none = max_int

let after seconds =
  if seconds >= float_of_int max_int *. 1e-9 then none
  else Obs.Clock.now_ns () + int_of_float (seconds *. 1e9)

let of_ns ns = ns

let is_none d = d = max_int

let expired d = (not (is_none d)) && Obs.Clock.now_ns () >= d

let remaining_ns d = if is_none d then max_int else d - Obs.Clock.now_ns ()

let remaining_s d =
  if is_none d then infinity else float_of_int (remaining_ns d) *. 1e-9

exception Expired

let poll_stride = 256

(* The ambient slot.  One mutable record per domain: [deadline] is the
   installed instant (max_int when absent), [fuel] counts polls until
   the next clock read.  DLS lookup is a few loads — the taps-off poll
   is that lookup plus one compare. *)
type slot = { mutable deadline : int; mutable fuel : int }

let key = Domain.DLS.new_key (fun () -> { deadline = max_int; fuel = 0 })

let ambient () = (Domain.DLS.get key).deadline

let with_ambient d f =
  let s = Domain.DLS.get key in
  let saved_deadline = s.deadline and saved_fuel = s.fuel in
  s.deadline <- d;
  s.fuel <- 0;
  Fun.protect
    ~finally:(fun () ->
      s.deadline <- saved_deadline;
      s.fuel <- saved_fuel)
    f

let[@inline] poll () =
  let s = Domain.DLS.get key in
  if s.deadline <> max_int then
    if s.fuel > 0 then s.fuel <- s.fuel - 1
    else begin
      s.fuel <- poll_stride - 1;
      if Obs.Clock.now_ns () >= s.deadline then raise Expired
    end

let check () =
  let s = Domain.DLS.get key in
  if s.deadline <> max_int && Obs.Clock.now_ns () >= s.deadline then
    raise Expired
