lib/dna/fasta.ml: Buffer List Printf Sequence String
