lib/core/int_table.ml: Array
