(** Byte and word storage shared by heap-resident and memory-mapped
    indexes.

    Every bulk buffer of the FM-index core (packed text, interleaved
    rank blocks, SA mark bitvector, SA sample words) is a [Bigarray]
    over bytes or 64-bit words.  A buffer is either allocated on the
    OCaml heap ({!create}) or adopted zero-copy from a format-v4 index
    file ({!map_bytes}/{!map_words} over [Unix.map_file]) — the hot
    rank/locate kernels are written once against this representation
    and cannot tell the two apart.

    The types are transparent aliases so call sites can use
    [Bigarray.Array1.unsafe_get] directly: with the kind and layout
    statically known, those compile to inline loads, which keeps the
    packed-count kernels at the same cost they had on [Bytes].

    Mappings are always {e private} ([MAP_PRIVATE]): loaders may clear
    padding lanes in place without ever writing through to the file,
    and page frames remain shared between processes until (never, in
    practice) written. *)

type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A byte buffer; elements read as ints in 0..255. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A buffer of little-endian 64-bit words (the on-disk int encoding). *)

val create : int -> t
(** [create n] is a zero-filled heap buffer of [n] bytes.  (Unlike
    [Bytes.create], bigarray allocation does not zero; this does.) *)

val create_words : int -> words
(** Zero-filled heap buffer of [n] words. *)

val length : t -> int
val length_words : words -> int

val of_string : string -> t
(** Copy a string into a fresh heap buffer. *)

val to_string : t -> string
(** Copy the buffer out as a string. *)

val blit : t -> int -> t -> int -> int -> unit
(** [blit src spos dst dpos len], semantics of [Bytes.blit]. *)

val word : words -> int -> int
(** [word w i] is word [i] as an OCaml int (truncating the top bit, as
    everywhere else in the 63-bit index arithmetic). *)

val set_word : words -> int -> int -> unit

val words_to_string : words -> string
(** The words as their on-disk little-endian byte serialization. *)

val words_of_string : string -> words
(** Adopt an 8·k-byte little-endian string as a fresh heap word buffer.
    Raises [Invalid_argument] if the length is not a multiple of 8. *)

val map_bytes : Unix.file_descr -> pos:int -> len:int -> t
(** [map_bytes fd ~pos ~len] maps [len] bytes of the file at absolute
    offset [pos] (private, copy-on-write).  [len = 0] yields an empty
    heap buffer (zero-length mappings are not portable).  The mapping
    survives [Unix.close fd].  Raises [Unix.Unix_error] on mmap
    failure. *)

val map_words : Unix.file_descr -> pos:int -> len:int -> words
(** Same for a buffer of [len] 64-bit words; [pos] must be 8-byte
    aligned (format v4 aligns every section). *)

(** A domain-safe memoized thunk — [Lazy.t] without the undefined
    behaviour of concurrent forcing.  Adopting loaders defer expensive
    derived values (the unpacked text string, the suffix tree) behind
    these; the first caller computes under a mutex, everyone later pays
    one atomic load. *)
module Memo : sig
  type 'a t

  val make : (unit -> 'a) -> 'a t
  val force : 'a t -> 'a
  val is_forced : 'a t -> bool
end
