(** Synthetic genome generation.

    The paper evaluates on five reference genomes (Table 1).  Those are not
    available offline, so we synthesize genomes whose behaviour-relevant
    property — the repeat structure that makes BWT intervals recur during a
    search — is explicit and tunable.  A genome is an i.i.d. random base
    layer onto which tandem and interspersed repeats are planted, each copy
    receiving a small per-base divergence. *)

type profile = {
  size : int;  (** total genome length in bases *)
  repeat_fraction : float;
      (** fraction of the genome covered by planted repeat copies, in
          [0, 0.9] *)
  repeat_unit_len : int;  (** length of each repeat unit *)
  divergence : float;
      (** per-base substitution probability applied to every planted copy *)
  seed : int;  (** RNG seed; generation is fully deterministic *)
}

val default : profile
(** 100 kb, 30% repeats of unit length 300, 2% divergence, seed 42. *)

val generate : profile -> Sequence.t
(** Generate a genome according to [profile].  Raises [Invalid_argument]
    on nonsensical profiles (nonpositive size, fraction outside [0, 0.9],
    unit longer than the genome). *)

val paper_table1 : (string * profile) list
(** Scaled-down stand-ins for the five genomes of the paper's Table 1,
    ordered as in the paper (Rat, Zebrafish, Rat chr1, C. elegans,
    C. merolae), with sizes scaled by roughly 1:1000. *)
