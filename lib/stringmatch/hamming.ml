let distance_at ?(limit = max_int) ~pattern ~text pos =
  let m = String.length pattern in
  if pos < 0 || pos + m > String.length text then
    invalid_arg "Hamming.distance_at: window out of range";
  let d = ref 0 in
  let j = ref 0 in
  while !j < m && !d <= limit do
    if pattern.[!j] <> text.[pos + !j] then incr d;
    incr j
  done;
  !d

let search ~pattern ~text ~k =
  if k < 0 then invalid_arg "Hamming.search: negative k";
  let m = String.length pattern and n = String.length text in
  let acc = ref [] in
  for i = n - m downto 0 do
    Deadline.poll ();
    let d = ref 0 in
    let j = ref 0 in
    while !j < m && !d <= k do
      if pattern.[!j] <> text.[i + !j] then incr d;
      incr j
    done;
    if !d <= k then acc := (i, !d) :: !acc
  done;
  !acc

let positions ~pattern ~text ~k = List.map fst (search ~pattern ~text ~k)
