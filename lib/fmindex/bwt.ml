let of_suffix_array s sa =
  let n = String.length s in
  (* SA(s ^ "$") is [n] followed by SA(s): the sentinel suffix is smallest
     and the remaining suffixes keep their relative order. *)
  let l = Bytes.create (n + 1) in
  Bytes.set l 0 (if n = 0 then Dna.Alphabet.sentinel else s.[n - 1]);
  for i = 0 to n - 1 do
    let h = sa.(i) in
    Bytes.set l (i + 1) (if h = 0 then Dna.Alphabet.sentinel else s.[h - 1])
  done;
  Bytes.unsafe_to_string l

let of_text s = of_suffix_array s (Suffix.Suffix_array.build s)

(* The packed BWT skips the sentinel row entirely: lane j holds the
   (j < sentinel_row ? j : j+1)-th BWT character.  Row 0 of the matrix of
   s^"$" starts with the sentinel suffix, so its L-character is s[n-1];
   the sentinel itself appears in L at the row of the suffix starting at
   position 0, i.e. row 1 + (index of 0 in sa). *)
let packed_of_suffix_array s sa =
  let n = String.length s in
  if n = 0 then (Packed_text.empty, 0)
  else begin
    let sentinel_row = ref 0 in
    Array.iteri (fun i h -> if h = 0 then sentinel_row := i + 1) sa;
    let sentinel_row = !sentinel_row in
    let lane_of_char c =
      match Packed_text.code_of_base c with
      | Some d -> d
      | None -> invalid_arg "Bwt.packed_of_suffix_array: text must be acgt"
    in
    let pt =
      Packed_text.init n (fun j ->
          let row = if j < sentinel_row then j else j + 1 in
          if row = 0 then lane_of_char s.[n - 1]
          else lane_of_char s.[sa.(row - 1) - 1])
    in
    (pt, sentinel_row)
  end

let inverse l =
  let n = String.length l in
  let sentinel_count = ref 0 in
  String.iter (fun c -> if c = Dna.Alphabet.sentinel then incr sentinel_count) l;
  if !sentinel_count <> 1 then
    invalid_arg "Bwt.inverse: input must contain exactly one sentinel";
  (* C.(c) = number of characters strictly smaller than code c. *)
  let sigma = Dna.Alphabet.sigma in
  let counts = Array.make sigma 0 in
  String.iter (fun c -> counts.(Dna.Alphabet.code c) <- counts.(Dna.Alphabet.code c) + 1) l;
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  (* lf.(i) = C[l[i]] + rank_{l[i]}(i): position in F of the character L[i]. *)
  let seen = Array.make sigma 0 in
  let lf = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = Dna.Alphabet.code l.[i] in
    lf.(i) <- c_array.(c) + seen.(c);
    seen.(c) <- seen.(c) + 1
  done;
  (* Walk backwards from the row whose L-character is the sentinel's
     predecessor: row 0 of the BWT matrix starts with '$', so L[0] is the
     last character of s; following LF yields s right to left. *)
  let out = Bytes.create (n - 1) in
  let row = ref 0 in
  for i = n - 2 downto 0 do
    Bytes.set out i l.[!row];
    row := lf.(!row)
  done;
  Bytes.unsafe_to_string out
