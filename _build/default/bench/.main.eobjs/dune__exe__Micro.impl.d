bench/micro.ml: Analyze Array Bechamel Bench_util Benchmark Core Dna Fmindex Hashtbl Instance List Measure Printf Random Staged String Suffix Test Time Toolkit
