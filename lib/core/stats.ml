type t = {
  mutable nodes : int;
  mutable leaves : int;
  mutable rank_calls : int;
  mutable derivations : int;
  mutable derived_leaves : int;
  mutable resumes : int;
}

let create () =
  {
    nodes = 0;
    leaves = 0;
    rank_calls = 0;
    derivations = 0;
    derived_leaves = 0;
    resumes = 0;
  }

let reset t =
  t.nodes <- 0;
  t.leaves <- 0;
  t.rank_calls <- 0;
  t.derivations <- 0;
  t.derived_leaves <- 0;
  t.resumes <- 0

let merge ~into src =
  into.nodes <- into.nodes + src.nodes;
  into.leaves <- into.leaves + src.leaves;
  into.rank_calls <- into.rank_calls + src.rank_calls;
  into.derivations <- into.derivations + src.derivations;
  into.derived_leaves <- into.derived_leaves + src.derived_leaves;
  into.resumes <- into.resumes + src.resumes

let total_leaves t = t.leaves + t.derived_leaves

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d leaves=%d rank_calls=%d derivations=%d derived_leaves=%d resumes=%d"
    t.nodes t.leaves t.rank_calls t.derivations t.derived_leaves t.resumes
