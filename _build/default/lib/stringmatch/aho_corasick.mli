(** Aho-Corasick multiple-pattern matching (paper §II), used by the Amir
    baseline to locate every "break" of the pattern in one pass over the
    text. *)

type t

val build : string array -> t
(** Build the goto/failure automaton for the given patterns.  Empty
    patterns are rejected. *)

val scan : t -> string -> f:(pattern:int -> pos:int -> unit) -> unit
(** Run the automaton over [text], calling [f] for every occurrence:
    [pattern] is the index into the build array, [pos] the 0-based start of
    the occurrence. *)

val find_all : t -> string -> (int * int) list
(** All [(pattern, pos)] occurrences, in scan order. *)
