lib/core/amir.ml: Array List Stats String Stringmatch
