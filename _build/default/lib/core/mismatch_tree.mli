(** The paper's mismatching tree (M-tree) as a literal data structure
    (Definitions 2-4, Fig. 7), plus the per-path mismatch arrays [B_l] of
    SS:IV.A (Fig. 3).

    {!M_tree} is the production engine; this module materializes the
    paper's objects exactly — maximal match sub-paths collapsed into
    single [<-, 0>] nodes, one [<x, i>] node per mismatching search-tree
    node — for inspection, teaching, and the fidelity tests that check the
    paper's worked example (r = tcaca against s = acagaca with k = 2). *)

type node = {
  label : [ `Match  (** the collapsed [<-, 0>] node *) | `Mismatch of char * int ];
  children : node list;
}

type path = {
  mismatches : int list;
      (** 1-based pattern positions of the path's mismatches — the
          non-empty prefix of the paper's array [B_l] *)
  complete : bool;
      (** true when the path spans the whole pattern (an occurrence
          group); false when it died on its (k+1)-th mismatch or ran out
          of text *)
  occurrences : int list;
      (** starting positions in the target, for complete paths *)
}

type t = { root : node; paths : path list }

val build : Fmindex.Fm_index.t -> pattern:string -> k:int -> t
(** Explore the S-tree of the pattern over the index of the *reversed*
    target and assemble the M-tree, recording every maximal path.  Paths
    are cut one mismatch *after* the budget (the paper stores the full
    [B] of k+1 entries before backtracking).  Same argument contract as
    {!S_tree.search}. *)

val count_nodes : node -> int
val leaves : t -> int
(** Number of paths (the paper's n'). *)

val pp : Format.formatter -> node -> unit
(** ASCII rendering of the tree, one node per line. *)
