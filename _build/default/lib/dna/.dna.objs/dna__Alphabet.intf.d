lib/dna/alphabet.mli:
