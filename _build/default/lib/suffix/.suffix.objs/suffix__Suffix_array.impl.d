lib/suffix/suffix_array.ml: Array Char String
