(** Validated DNA sequences.

    A [Sequence.t] is an immutable lowercase ACGT string.  The sentinel never
    appears inside a sequence; index structures append it themselves. *)

type t
(** A validated DNA sequence. *)

val of_string : string -> t
(** [of_string s] validates and normalizes [s].  Raises [Invalid_argument]
    if [s] contains a character outside [acgtACGT]. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** The underlying lowercase string (no copy). *)

val length : t -> int
val get : t -> int -> char
val sub : t -> pos:int -> len:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val rev : t -> t
(** Plain character reversal. *)

val revcomp : t -> t
(** Reverse complement (the opposite strand). *)

val random : ?state:Random.State.t -> int -> t
(** [random n] is a uniformly random sequence of length [n]. *)

val hamming : t -> t -> int
(** Hamming distance between two sequences of equal length.  Raises
    [Invalid_argument] on length mismatch. *)

val pp : Format.formatter -> t -> unit
