type t = string

let of_string s =
  let n = String.length s in
  let buf = Bytes.create n in
  for i = 0 to n - 1 do
    let c = String.unsafe_get s i in
    if not (Alphabet.is_base c) then
      invalid_arg
        (Printf.sprintf "Sequence.of_string: invalid character %C at %d" c i);
    Bytes.unsafe_set buf i (Alphabet.normalize c)
  done;
  Bytes.unsafe_to_string buf

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None
let to_string t = t
let length = String.length
let get = String.get
let sub t ~pos ~len = String.sub t pos len
let equal = String.equal
let compare = String.compare

let rev t =
  let n = String.length t in
  String.init n (fun i -> t.[n - 1 - i])

let revcomp t =
  let n = String.length t in
  String.init n (fun i -> Alphabet.complement t.[n - 1 - i])

let random ?state n =
  let st =
    match state with Some st -> st | None -> Random.State.make_self_init ()
  in
  String.init n (fun _ -> Alphabet.bases.(Random.State.int st 4))

let hamming a b =
  if String.length a <> String.length b then
    invalid_arg "Sequence.hamming: length mismatch";
  let d = ref 0 in
  for i = 0 to String.length a - 1 do
    if a.[i] <> b.[i] then incr d
  done;
  !d

let pp ppf t = Format.pp_print_string ppf t
