(* The kmm query daemon.  Threading model:

     acceptor thread   -- select/accept loop on the listening socket
     1 thread per conn -- frame loop: read, admit, submit, reply
     dispatcher thread -- drains the query queue in batches and runs
                          each batch across the Work_pool domains
     caller            -- start/stop (or the [serve] signal loop)

   Connection threads are cheap OS threads blocked on I/O; the CPU work
   all happens on the pool's domains, so [domains] — not the number of
   clients — bounds parallel search work.  All shared state is guarded
   by three mutexes with a strict no-nesting discipline: [qm] (query
   queue), [cm] (connection registry), [mm] (metrics sink); per-job
   mutexes are leaves. *)

module Kmismatch = Core.Kmismatch
module Corpus = Core.Corpus

exception Conn_lost
(* A peer vanished mid-write (EPIPE with SIGPIPE ignored, or reset).
   Caught at the top of each connection thread: costs that connection,
   never the daemon. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.ENOTCONN | Unix.EBADF), _, _)
        ->
          raise Conn_lost
  in
  go 0

(* --- buffered frame reader ----------------------------------------- *)

module Line_reader = struct
  type event =
    | Line of string  (** one complete frame, newline stripped *)
    | Oversize  (** the current frame outgrew [max_line]; it is being
                    discarded up to its terminating newline *)
    | Truncated  (** EOF in the middle of a frame *)
    | Timeout  (** [SO_RCVTIMEO] expired — poll your stop flag *)
    | Eof

  type t = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    acc : Buffer.t;  (* the frame being accumulated *)
    lines : string Queue.t;
    mutable discarding : bool;
    mutable eof : bool;
  }

  let create fd =
    {
      fd;
      buf = Bytes.create 8192;
      acc = Buffer.create 256;
      lines = Queue.create ();
      discarding = false;
      eof = false;
    }

  let push_line t =
    let line = Buffer.contents t.acc in
    Buffer.clear t.acc;
    (* Tolerate CRLF clients. *)
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    Queue.add line t.lines

  let rec next ~max_line t =
    match Queue.take_opt t.lines with
    | Some l -> Line l
    | None ->
        if t.eof then Eof
        else if Buffer.length t.acc > max_line && not t.discarding then begin
          (* Frame outgrew the limit before its newline arrived: report
             once, then silently drop the rest of the frame so the
             connection resynchronizes at the next newline. *)
          Buffer.clear t.acc;
          t.discarding <- true;
          Oversize
        end
        else begin
          match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
          | 0 ->
              t.eof <- true;
              if Buffer.length t.acc > 0 && not t.discarding then Truncated else Eof
          | n ->
              for i = 0 to n - 1 do
                let c = Bytes.get t.buf i in
                if t.discarding then begin
                  if c = '\n' then t.discarding <- false
                end
                else if c = '\n' then push_line t
                else Buffer.add_char t.acc c
              done;
              next ~max_line t
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              Timeout
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
            ->
              t.eof <- true;
              Eof
        end
end

(* --- configuration and server state -------------------------------- *)

type config = {
  socket_path : string;
  domains : int;
  batch_max : int;
  backlog : int;
  limits : Protocol.limits;
  trace : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    domains = Core.Work_pool.default_domains ();
    batch_max = 64;
    backlog = 64;
    limits = Protocol.default_limits;
    trace = false;
    log = ignore;
  }

type job = {
  pattern : string;
  k : int;
  engine : Kmismatch.engine;
  jm : Mutex.t;
  jcv : Condition.t;
  mutable answer : (Kmismatch.Response.t, Kmm_error.t) result option;
}

type t = {
  cfg : config;
  corpus : Corpus.t;
  listen_fd : Unix.file_descr;
  pool : Core.Work_pool.t;
  (* query queue *)
  qm : Mutex.t;
  qcv : Condition.t;
  queue : job Queue.t;
  (* connection registry *)
  cm : Mutex.t;
  mutable conns : Thread.t list;
  (* metrics *)
  mm : Mutex.t;
  sink : Obs.t;
  stop_requested : bool Atomic.t;
  stopped : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable dispatcher : Thread.t option;
}

let stopping t = Atomic.get t.stop_requested

let request_stop t = Atomic.set t.stop_requested true

let with_metrics t f =
  Mutex.lock t.mm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mm) (fun () -> f t.sink)

let bump t name = with_metrics t (fun s -> Obs.incr s name)

let metrics_text t = with_metrics t Obs.to_prometheus

(* --- dispatcher ----------------------------------------------------- *)

(* Run one batch across the pool.  Each task answers exactly one job via
   [Kmismatch.try_run] — validation failures and even engine exceptions
   become values here, so a task can never raise into the pool.  Results
   land in a slot array indexed by task (the pool's deterministic-merge
   idiom) and are published to the waiting connection threads under each
   job's own mutex after the join. *)
let process_batch t (batch : job array) =
  let n = Array.length batch in
  let forks = Array.init (Core.Work_pool.domains t.pool) (fun _ -> Obs.fork t.sink) in
  let answers =
    Array.make n (Error (Kmm_error.Internal "batch task never ran"))
  in
  (try
     Core.Work_pool.run ~obs:forks t.pool ~tasks:n (fun ~worker ~task ->
         let j = batch.(task) in
         let query =
           Kmismatch.Query.make ~obs:forks.(worker) ~engine:j.engine
             ~pattern:j.pattern ~k:j.k ()
         in
         answers.(task) <-
           (match Corpus.try_run t.corpus query with
           | r -> r
           | exception e -> Error (Kmm_error.Internal (Printexc.to_string e))))
   with e ->
     (* [try_run] never raises, so this is a pool-level fault; answer
        every job rather than leaving a connection thread waiting. *)
     let reason = Kmm_error.Internal (Printexc.to_string e) in
     Array.iteri (fun i _ -> answers.(i) <- Error reason) batch);
  with_metrics t (fun s ->
      Array.iter (fun o -> Obs.merge ~into:s o) forks;
      Obs.record s "serve.batch_size" n;
      Obs.incr ~by:n s "serve.queries");
  Array.iteri
    (fun i j ->
      Mutex.lock j.jm;
      j.answer <- Some answers.(i);
      Condition.signal j.jcv;
      Mutex.unlock j.jm)
    batch

let dispatcher_loop t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not (stopping t) do
      Condition.wait t.qcv t.qm
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.qm (* stopping and drained *)
    else begin
      let batch = ref [] in
      let count = ref 0 in
      while !count < t.cfg.batch_max && not (Queue.is_empty t.queue) do
        batch := Queue.pop t.queue :: !batch;
        incr count
      done;
      Mutex.unlock t.qm;
      process_batch t (Array.of_list (List.rev !batch));
      loop ()
    end
  in
  loop ()

(* Submit a query and block until the dispatcher answers it.  Refused
   (with [None]) once a stop was requested — the queue is guaranteed to
   drain, so anything admitted here is guaranteed an answer. *)
let submit t ~pattern ~k ~engine =
  let job =
    { pattern; k; engine; jm = Mutex.create (); jcv = Condition.create (); answer = None }
  in
  Mutex.lock t.qm;
  if stopping t then begin
    Mutex.unlock t.qm;
    None
  end
  else begin
    Queue.add job t.queue;
    Condition.signal t.qcv;
    Mutex.unlock t.qm;
    Mutex.lock job.jm;
    while job.answer = None do
      Condition.wait job.jcv job.jm
    done;
    Mutex.unlock job.jm;
    job.answer
  end

(* --- connection handling -------------------------------------------- *)

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] l

let info_fields t =
  let open Protocol in
  [
    ("protocol", Json.Int 1);
    ("length", Json.Int (Corpus.length t.corpus));
    ("shards", Json.Int (Corpus.nshards t.corpus));
    ("max_query", Json.Int (Corpus.max_query t.corpus));
    ("domains", Json.Int (Core.Work_pool.domains t.pool));
    ( "engines",
      Json.List
        (List.map
           (fun e -> Json.String (Kmismatch.engine_name e))
           Kmismatch.all_engines) );
    ("limits", limits_to_json t.cfg.limits);
  ]

let handle_query t ~respond ~id ~pattern ~k ~engine =
  let open Protocol in
  let t0 = Obs.Clock.now_ns () in
  match submit t ~pattern ~k ~engine with
  | None ->
      respond (error_response ~id (Kmm_error.Io (Failure "server is shutting down")))
  | Some (Error e) ->
      with_metrics t (fun s -> Obs.incr s "serve.errors");
      respond (error_response ~id e)
  | Some (Ok r) ->
      let hits = r.Kmismatch.Response.hits in
      let count = List.length hits in
      let truncated = count > t.cfg.limits.max_hits in
      let hits = if truncated then take t.cfg.limits.max_hits hits else hits in
      let reply = ok_hits_response ~id ~truncated hits in
      respond reply;
      with_metrics t (fun s ->
          Obs.record s "serve.request_ns" (Obs.Clock.now_ns () - t0);
          Obs.add s "serve.hits" count;
          if truncated then Obs.incr s "serve.truncated")

let handle_conn t fd =
  let open Protocol in
  let reader = Line_reader.create fd in
  let max_line = t.cfg.limits.max_frame in
  let respond s = write_all fd (s ^ "\n") in
  let reject ~id e =
    bump t "serve.rejected";
    respond (error_response ~id e)
  in
  let handle_frame line =
    match parse_request ~limits:t.cfg.limits line with
    | Error (id, e) -> reject ~id e
    | Ok { id; body } -> (
        bump t "serve.requests";
        match body with
        | Ping -> respond (ok_obj_response ~id [ ("pong", Json.Bool true) ])
        | Metrics ->
            respond (ok_obj_response ~id [ ("metrics", Json.String (metrics_text t)) ])
        | Info -> respond (ok_obj_response ~id (info_fields t))
        | Shutdown ->
            respond (ok_obj_response ~id [ ("stopping", Json.Bool true) ]);
            t.cfg.log "shutdown requested over the wire";
            request_stop t
        | Query { pattern; k; engine } ->
            handle_query t ~respond ~id ~pattern ~k ~engine)
  in
  let rec loop () =
    match Line_reader.next ~max_line reader with
    | Timeout -> if stopping t then () else loop ()
    | Eof -> ()
    | Truncated ->
        (* The peer shut its write side mid-frame; it may still read. *)
        reject ~id:Json.Null
          (Kmm_error.Bad_input "truncated frame: connection closed mid-line")
    | Oversize ->
        reject ~id:Json.Null
          (Kmm_error.Bad_input
             (Printf.sprintf "frame exceeds max_frame (%d bytes)" max_line));
        loop ()
    | Line "" -> loop ()
    | Line line ->
        handle_frame line;
        if stopping t then () else loop ()
  in
  (try loop () with
  | Conn_lost -> bump t "serve.conns_dropped"
  | e ->
      bump t "serve.conns_failed";
      t.cfg.log (Printf.sprintf "connection failed: %s" (Printexc.to_string e)));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  bump t "serve.disconnects"

let acceptor_loop t =
  let rec loop () =
    if stopping t then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              (* Bounded read timeout: connection threads poll the stop
                 flag at least every 250 ms even when a client idles. *)
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
              bump t "serve.connections";
              let th = Thread.create (fun () -> handle_conn t fd) () in
              Mutex.lock t.cm;
              t.conns <- th :: t.conns;
              Mutex.unlock t.cm;
              loop ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
              loop ()
          (* stop closes the fd between select and accept *)
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> () (* closed by stop *)
  in
  loop ()

(* --- lifecycle ------------------------------------------------------ *)

(* Binding over a leftover socket file: a live daemon answers a connect,
   a stale file (crashed or killed -9 predecessor) refuses it.  Only the
   stale case is safe to unlink and reclaim. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* [Fun.protect], not a close after the match: an unexpected raise
       out of [connect] must not leak the probe fd. *)
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      Kmm_error.raise_error
        (Kmm_error.Io (Failure (Printf.sprintf "%s: a daemon is already listening" path)))
    else try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(* Linux [sun_path] is 108 bytes including the terminating NUL.  A
   longer path would surface from [Unix.bind] (or even the pre-bind
   liveness probe) as a raw [Unix_error]/[Invalid_argument]; refuse it
   up front as the typed bad-input it is. *)
let max_socket_path = 107

let start cfg corpus =
  if cfg.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Server.start: batch_max must be >= 1";
  if String.length cfg.socket_path > max_socket_path then
    Kmm_error.raise_error
      (Kmm_error.Bad_input
         (Printf.sprintf
            "socket path is %d bytes; AF_UNIX socket paths are limited to %d bytes"
            (String.length cfg.socket_path)
            max_socket_path));
  (* A disconnecting client must never kill the daemon: writes to a dead
     peer report EPIPE instead of raising the default-fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  claim_socket_path cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd cfg.backlog;
     Unix.set_nonblock listen_fd
   with
  | () -> ()
  | exception e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match e with
      | Unix.Unix_error _ | Sys_error _ -> Kmm_error.raise_error (Kmm_error.Io e)
      | e -> raise e));
  let t =
    {
      cfg;
      corpus;
      listen_fd;
      pool = Core.Work_pool.create ~domains:cfg.domains ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      cm = Mutex.create ();
      conns = [];
      mm = Mutex.create ();
      sink = Obs.create ~trace:cfg.trace ();
      stop_requested = Atomic.make false;
      stopped = Atomic.make false;
      acceptor = None;
      dispatcher = None;
    }
  in
  Fmindex.Fm_index.Telemetry.set_enabled true;
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  cfg.log
    (Printf.sprintf "listening on %s (%d bp corpus, %d shard%s, %d domain%s, batch <= %d)"
       cfg.socket_path (Corpus.length corpus)
       (Corpus.nshards corpus)
       (if Corpus.nshards corpus = 1 then "" else "s")
       cfg.domains
       (if cfg.domains = 1 then "" else "s")
       cfg.batch_max);
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    request_stop t;
    (* Wake the dispatcher so it can observe the flag and drain. *)
    Mutex.lock t.qm;
    Condition.broadcast t.qcv;
    Mutex.unlock t.qm;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    Option.iter Thread.join t.dispatcher;
    let conns =
      Mutex.lock t.cm;
      let l = t.conns in
      t.conns <- [];
      Mutex.unlock t.cm;
      l
    in
    List.iter Thread.join conns;
    Core.Work_pool.shutdown t.pool;
    Fmindex.Fm_index.Telemetry.set_enabled false;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    t.cfg.log "stopped (drained)"
  end

let serve ?trace_out ?metrics_out cfg corpus =
  let t = start cfg corpus in
  let install sg = Sys.signal sg (Sys.Signal_handle (fun _ -> request_stop t)) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  let finish () =
    stop t;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Mutex.lock t.mm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mm)
      (fun () ->
        Option.iter (Obs.write_chrome_trace ~process_name:"kmm-serve" t.sink) trace_out;
        Option.iter (Obs.write_prometheus t.sink) metrics_out)
  in
  Fun.protect ~finally:finish (fun () ->
      while not (stopping t) do
        try Thread.delay 0.1
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      cfg.log "stop requested; draining")

(* --- client helpers ------------------------------------------------- *)

module Client = struct
  type c = { fd : Unix.file_descr; reader : Line_reader.t }

  let connect path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    { fd; reader = Line_reader.create fd }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let send_line c s = write_all c.fd (s ^ "\n")

  let rec recv_line c =
    (* No SO_RCVTIMEO on client sockets: reads block until a frame or
       EOF, so Timeout never surfaces here. *)
    match Line_reader.next ~max_line:Sys.max_string_length c.reader with
    | Line_reader.Line l -> Some l
    | Line_reader.Timeout -> recv_line c
    | Line_reader.Eof | Line_reader.Truncated | Line_reader.Oversize -> None

  let rpc c frame =
    match send_line c frame with
    | () -> (
        match recv_line c with
        | Some line -> Protocol.parse_reply line
        | None -> Error "connection closed by server")
    | exception Conn_lost -> Error "connection lost"

  let query c ?id ?engine ~pattern ~k () =
    rpc c (Protocol.query_request ?id ?engine ~pattern ~k ())

  let command c cmd = rpc c (Protocol.command_request cmd)
end
