(** Sparse-table range-minimum queries: O(n log n) build, O(1) query. *)

type t

val make : int array -> t

val min_in : t -> int -> int -> int
(** [min_in t i j] is the minimum of the array over the inclusive range
    [i .. j].  Raises [Invalid_argument] if [i > j] or the range is out of
    bounds. *)
