let find_all ~pattern ~text =
  let m = String.length pattern and n = String.length text in
  let acc = ref [] in
  for i = n - m downto 0 do
    let rec same j = j >= m || (pattern.[j] = text.[i + j] && same (j + 1)) in
    if same 0 then acc := i :: !acc
  done;
  !acc
