lib/core/mismatch_tree.ml: Array Dna Fmindex Format List String
