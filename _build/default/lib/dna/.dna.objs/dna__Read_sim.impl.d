lib/dna/read_sim.ml: Alphabet Bytes List Random Sequence
