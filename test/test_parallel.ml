(* Tests for the domain work pool and the parallel batch mapper.

   The contract under test: [Mapper.map_reads ~domains:n] returns hits
   and summary byte-identical to the sequential path ([domains = 1]) for
   every n and chunking, and merged per-domain stats equal sequential
   stats. *)

open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Work_pool                                                            *)

let test_pool_map_array () =
  Work_pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      let out = Work_pool.map_array pool ~f:(fun x -> x * x) input in
      check bool "squares in order" true
        (out = Array.init 100 (fun i -> i * i)));
  (* domains=1: inline sequential special case *)
  Work_pool.with_pool ~domains:1 (fun pool ->
      let out = Work_pool.map_array pool ~f:string_of_int [| 7; 8 |] in
      check bool "seq map" true (out = [| "7"; "8" |]))

let test_pool_empty_and_zero_tasks () =
  Work_pool.with_pool ~domains:3 (fun pool ->
      check bool "empty map_array" true (Work_pool.map_array pool ~f:succ [||] = [||]);
      Work_pool.run pool ~tasks:0 (fun ~worker:_ ~task:_ -> assert false))

let test_pool_worker_ids () =
  Work_pool.with_pool ~domains:3 (fun pool ->
      check int "domains" 3 (Work_pool.domains pool);
      let seen = Array.make 64 (-1) in
      Work_pool.run pool ~tasks:64 (fun ~worker ~task ->
          Domain.cpu_relax ();
          seen.(task) <- worker);
      Array.iter (fun w -> check bool "worker id in range" true (w >= 0 && w < 3)) seen)

let test_pool_exception_propagates () =
  Work_pool.with_pool ~domains:4 (fun pool ->
      match
        Work_pool.run pool ~tasks:32 (fun ~worker:_ ~task ->
            if task = 17 then failwith "boom")
      with
      | () -> Alcotest.fail "exception swallowed"
      | exception Work_pool.Task_failed { task; exn = Failure msg } ->
          check int "failing task id" 17 task;
          check Alcotest.string "message" "boom" msg
      | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e));
  (* the pool is still usable after a failed job *)
  Work_pool.with_pool ~domains:4 (fun pool ->
      (try Work_pool.run pool ~tasks:4 (fun ~worker:_ ~task:_ -> failwith "x")
       with Work_pool.Task_failed _ -> ());
      let out = Work_pool.map_array pool ~f:succ [| 1; 2; 3 |] in
      check bool "pool alive after error" true (out = [| 2; 3; 4 |]))

let test_pool_invalid_args () =
  (match Work_pool.create ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 accepted");
  match Work_pool.chunks ~total:10 ~chunk_size:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk_size=0 accepted"

let test_chunks () =
  check bool "exact" true (Work_pool.chunks ~total:6 ~chunk_size:3 = [| (0, 3); (3, 3) |]);
  check bool "ragged" true
    (Work_pool.chunks ~total:7 ~chunk_size:3 = [| (0, 3); (3, 3); (6, 1) |]);
  check bool "empty" true (Work_pool.chunks ~total:0 ~chunk_size:5 = [||]);
  (* every chunking covers [0, total) exactly once *)
  let covered = Array.make 29 0 in
  Array.iter
    (fun (start, len) ->
      for i = start to start + len - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    (Work_pool.chunks ~total:29 ~chunk_size:4);
  Array.iter (fun c -> check int "covered once" 1 c) covered

(* ------------------------------------------------------------------ *)
(* Mapper: sequential ≡ parallel                                        *)

let mk_genome ~size ~seed =
  Dna.Genome_gen.generate { Dna.Genome_gen.default with size; seed }

let mk_reads genome ~count ~len ~seed =
  List.map
    (fun r -> (r.Dna.Read_sim.id, Dna.Sequence.to_string r.Dna.Read_sim.seq))
    (Dna.Read_sim.simulate
       { Dna.Read_sim.default with count; len; seed; both_strands = true }
       genome)

let genome = lazy (mk_genome ~size:10_000 ~seed:33)
let index = lazy (Kmismatch.of_sequence (Lazy.force genome))

let run_map ?stats ~domains ?chunk_size reads k =
  Mapper.map_reads ?stats ~domains ?chunk_size (Lazy.force index) ~reads ~k

let assert_equivalent ?chunk_size ~domains reads k =
  let seq_stats = Stats.create () and par_stats = Stats.create () in
  let seq_hits, seq_summary = run_map ~stats:seq_stats ~domains:1 reads k in
  let par_hits, par_summary =
    run_map ~stats:par_stats ~domains ?chunk_size reads k
  in
  check bool "hits identical" true (seq_hits = par_hits);
  (* wall-clock timings naturally differ between runs; everything else
     in the summary must be byte-identical *)
  check bool "summary identical" true
    (Mapper.deterministic_summary seq_summary
    = Mapper.deterministic_summary par_summary);
  check bool "merged stats identical" true (seq_stats = par_stats)

let test_equivalence_planted () =
  let reads = mk_reads (Lazy.force genome) ~count:40 ~len:60 ~seed:3 in
  assert_equivalent ~domains:4 reads 2

let test_equivalence_oversubscribed () =
  (* more chunks than domains: chunk_size 1 over 25 reads on 4 domains *)
  let reads = mk_reads (Lazy.force genome) ~count:25 ~len:50 ~seed:8 in
  assert_equivalent ~domains:4 ~chunk_size:1 reads 1;
  (* more domains than chunks: 3 reads, one big chunk *)
  let reads3 = mk_reads (Lazy.force genome) ~count:3 ~len:50 ~seed:12 in
  assert_equivalent ~domains:8 ~chunk_size:64 reads3 1

let test_equivalence_empty_and_single () =
  let hits, summary = run_map ~domains:4 [] 2 in
  check int "no hits" 0 (List.length hits);
  check int "total 0" 0 summary.Mapper.total;
  assert_equivalent ~domains:4 [] 2;
  let one = mk_reads (Lazy.force genome) ~count:1 ~len:50 ~seed:4 in
  assert_equivalent ~domains:4 one 2

let test_equivalence_other_engines () =
  let reads = mk_reads (Lazy.force genome) ~count:8 ~len:40 ~seed:5 in
  List.iter
    (fun engine ->
      let sh, ss = Mapper.map_reads ~engine ~domains:1 (Lazy.force index) ~reads ~k:1 in
      let ph, ps = Mapper.map_reads ~engine ~domains:4 (Lazy.force index) ~reads ~k:1 in
      check bool
        (Kmismatch.engine_name engine ^ " par = seq")
        true
        ((sh, Mapper.deterministic_summary ss)
        = (ph, Mapper.deterministic_summary ps)))
    [ Kmismatch.S_tree; Kmismatch.Hybrid; Kmismatch.Kangaroo; Kmismatch.Cole ]

let test_invalid_args () =
  (match run_map ~domains:0 [] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 accepted");
  match run_map ~domains:2 ~chunk_size:0 [] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk_size=0 accepted"

(* Long patterns (pattern > text) used to crash the tree engines; the
   hoisted guard must make them a clean miss through the mapper too. *)
let test_pattern_longer_than_text () =
  let idx = Kmismatch.build_index "acgtac" in
  List.iter
    (fun engine ->
      check int
        (Kmismatch.engine_name engine ^ " long pattern -> no hits")
        0
        (List.length (Kmismatch.search idx ~engine ~pattern:"acgtacgtacgt" ~k:2)))
    (Kmismatch.all_engines ());
  let hits, summary =
    Mapper.map_reads ~domains:2 idx ~reads:[ (0, "acgtacgtacgt") ] ~k:2
  in
  check int "mapper long read no hits" 0 (List.length hits);
  check int "unmapped" 0 summary.Mapper.mapped

(* ------------------------------------------------------------------ *)
(* Property: sequential ≡ parallel on randomized genomes and reads      *)

let prop_seq_equals_par =
  Test_util.qtest ~count:40 "map_reads domains:1 = domains:4 (random)"
    QCheck2.Gen.(
      tup4
        (Test_util.dna_gen ~lo:30 ~hi:400 ())
        (list_size (int_range 0 12) (Test_util.dna_gen ~lo:1 ~hi:12 ()))
        (int_range 0 3) (int_range 1 5))
    (fun (text, read_seqs, k, chunk_size) ->
      let idx = Kmismatch.build_index text in
      (* mix random reads with substrings of the text so hits do occur *)
      let planted =
        let n = String.length text in
        List.init 4 (fun i ->
            let len = min n (8 + i) in
            let pos = (i * 7919) mod (n - len + 1) in
            String.sub text pos len)
      in
      let reads = List.mapi (fun i s -> (i, s)) (planted @ read_seqs) in
      let sh, ss = Mapper.map_reads ~domains:1 idx ~reads ~k in
      let ph, ps = Mapper.map_reads ~domains:4 ~chunk_size idx ~reads ~k in
      (sh, Mapper.deterministic_summary ss)
      = (ph, Mapper.deterministic_summary ps))

let prop_pool_map_order =
  Test_util.qtest ~count:50 "pool map_array preserves order"
    QCheck2.Gen.(pair (list_size (int_range 0 50) int) (int_range 1 6))
    (fun (xs, domains) ->
      let arr = Array.of_list xs in
      Work_pool.with_pool ~domains (fun pool ->
          Work_pool.map_array pool ~f:(fun x -> x * 2 + 1) arr
          = Array.map (fun x -> (x * 2) + 1) arr))

let () =
  Alcotest.run "parallel"
    [
      ( "work_pool",
        [
          Alcotest.test_case "map_array" `Quick test_pool_map_array;
          Alcotest.test_case "empty / zero tasks" `Quick test_pool_empty_and_zero_tasks;
          Alcotest.test_case "worker ids" `Quick test_pool_worker_ids;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "invalid args" `Quick test_pool_invalid_args;
          Alcotest.test_case "chunks" `Quick test_chunks;
          prop_pool_map_order;
        ] );
      ( "mapper_parallel",
        [
          Alcotest.test_case "planted reads" `Quick test_equivalence_planted;
          Alcotest.test_case "oversubscription" `Quick test_equivalence_oversubscribed;
          Alcotest.test_case "empty and single" `Quick test_equivalence_empty_and_single;
          Alcotest.test_case "other engines" `Quick test_equivalence_other_engines;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "pattern > text" `Quick test_pattern_longer_than_text;
          prop_seq_equals_par;
        ] );
    ]
