lib/dna/genome_gen.ml: Alphabet Array Bytes Random Sequence
