(* Zero-dependency observability: monotonic spans, log-bucketed mergeable
   histograms, named counters, Chrome-trace and Prometheus exporters.
   See obs.mli for the contracts; DESIGN.md documents the metric schema
   shared by the engines, the mapper, the work pool and the CLI. *)

module Clock = struct
  external now_ns : unit -> int = "kmm_obs_now_ns" [@@noalloc]
end

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)

module Histogram = struct
  (* HDR-style log-linear buckets, base 2, [precision] = 5 bits: values
     below [2 * sub_count] land in exact unit buckets; above, each
     power-of-two octave is split into [sub_count] equal sub-buckets, so
     the bucket holding a value v is never wider than v / 32 (3.125%
     relative error).  The bucket array is a plain int array, so [merge]
     is element-wise addition — exactly the multiset union, bit for bit,
     regardless of how the recordings were sharded. *)

  let precision = 5
  let sub_count = 1 lsl precision (* 32 *)

  (* Highest octave: OCaml ints are 63-bit, msb <= 62. *)
  let nbuckets = ((62 - precision + 2) * sub_count) (* 1888 *)

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : int;
    mutable vmin : int; (* exact; max_int when empty *)
    mutable vmax : int; (* exact; -1 when empty *)
  }

  let create () =
    { counts = Array.make nbuckets 0; total = 0; sum = 0; vmin = max_int; vmax = -1 }

  let clear t =
    Array.fill t.counts 0 nbuckets 0;
    t.total <- 0;
    t.sum <- 0;
    t.vmin <- max_int;
    t.vmax <- -1

  (* Position of the highest set bit of [v >= 1] (0-based). *)
  let msb v =
    let r = ref 0 and v = ref v in
    if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then incr r;
    !r

  let bucket_of v =
    if v < 2 * sub_count then v
    else begin
      let e = msb v in
      let shift = e - precision in
      ((shift + 1) * sub_count) + ((v lsr shift) - sub_count)
    end

  (* Inclusive [low, high] value range of bucket [idx] — the exact
     inverse of [bucket_of]. *)
  let bucket_bounds idx =
    if idx < 2 * sub_count then (idx, idx)
    else begin
      let octave = idx / sub_count in
      let sub = idx mod sub_count in
      let shift = octave - 1 in
      let low = (sub_count + sub) lsl shift in
      (low, low + (1 lsl shift) - 1)
    end

  let record t v =
    let v = if v < 0 then 0 else v in
    let idx = bucket_of v in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.total
  let sum t = t.sum
  let min_value t = if t.total = 0 then 0 else t.vmin
  let max_value t = if t.total = 0 then 0 else t.vmax

  let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

  let quantile t q =
    if t.total = 0 then 0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      (* The q-quantile is the value of the ceil(q * total)-th recording
         (1-based) in sorted order; we answer with the upper bound of the
         bucket that holds it. *)
      let rank = int_of_float (ceil (q *. float_of_int t.total)) in
      let rank = if rank < 1 then 1 else rank in
      let acc = ref 0 and idx = ref 0 in
      while !acc < rank && !idx < nbuckets do
        acc := !acc + t.counts.(!idx);
        incr idx
      done;
      let hi = snd (bucket_bounds (!idx - 1)) in
      (* Never overshoot the exact maximum (the last bucket may extend
         beyond every recorded value). *)
      if hi > t.vmax then t.vmax else hi
    end

  let merge ~into src =
    for i = 0 to nbuckets - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.total <- into.total + src.total;
    into.sum <- into.sum + src.sum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax

  let copy t =
    {
      counts = Array.copy t.counts;
      total = t.total;
      sum = t.sum;
      vmin = t.vmin;
      vmax = t.vmax;
    }

  let equal a b =
    a.total = b.total && a.sum = b.sum
    && (a.total = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))
    && a.counts = b.counts

  let fold_buckets f acc t =
    let acc = ref acc in
    for i = 0 to nbuckets - 1 do
      if t.counts.(i) > 0 then begin
        let low, high = bucket_bounds i in
        acc := f !acc ~low ~high ~count:t.counts.(i)
      end
    done;
    !acc

  let buckets t =
    List.rev
      (fold_buckets (fun acc ~low ~high ~count -> (low, high, count) :: acc) [] t)
end

(* ------------------------------------------------------------------ *)
(* Sink                                                                 *)

type event = {
  ev_name : string;
  ev_tid : int;
  ev_ts : int; (* monotonic ns *)
  ev_dur : int; (* ns; -1 for an instant event *)
  ev_args : (string * string) list;
}

type state = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  trace : bool;
  mutable events : event list; (* newest first *)
  mutable nevents : int;
}

type t = Noop | Active of state

let max_trace_events = 1_000_000

let noop = Noop

let create ?(trace = false) () =
  Active
    {
      counters = Hashtbl.create 32;
      hists = Hashtbl.create 32;
      trace;
      events = [];
      nevents = 0;
    }

let enabled = function Noop -> false | Active _ -> true
let tracing = function Noop -> false | Active s -> s.trace
let fork = function Noop -> Noop | Active s -> create ~trace:s.trace ()

(* --- counters ------------------------------------------------------- *)

let counter_cell s name =
  match Hashtbl.find_opt s.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add s.counters name r;
      r

let add t name by =
  match t with Noop -> () | Active s -> (
    let r = counter_cell s name in
    r := !r + by)

let incr ?(by = 1) t name = add t name by

let counter_value t name =
  match t with
  | Noop -> 0
  | Active s -> ( match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let counters t =
  match t with
  | Noop -> []
  | Active s ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- histograms ----------------------------------------------------- *)

let hist_cell s name =
  match Hashtbl.find_opt s.hists name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add s.hists name h;
      h

let record t name v =
  match t with Noop -> () | Active s -> Histogram.record (hist_cell s name) v

let histogram t name =
  match t with Noop -> None | Active s -> Hashtbl.find_opt s.hists name

let histograms t =
  match t with
  | Noop -> []
  | Active s ->
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) s.hists []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- spans and events ------------------------------------------------ *)

let push_event s ev =
  if s.nevents < max_trace_events then begin
    s.events <- ev :: s.events;
    s.nevents <- s.nevents + 1
  end
  else begin
    let r = counter_cell s "obs.trace_dropped" in
    r := !r + 1
  end

let event ?(args = []) t name =
  match t with
  | Noop -> ()
  | Active s ->
      if s.trace then
        push_event s
          {
            ev_name = name;
            ev_tid = (Domain.self () :> int);
            ev_ts = Clock.now_ns ();
            ev_dur = -1;
            ev_args = args;
          }

let time t name f =
  match t with
  | Noop -> f ()
  | Active s ->
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () -> Histogram.record (hist_cell s (name ^ "_ns")) (Clock.now_ns () - t0))
        f

let span ?(args = []) t name f =
  match t with
  | Noop -> f ()
  | Active s ->
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Clock.now_ns () in
          Histogram.record (hist_cell s (name ^ "_ns")) (t1 - t0);
          if s.trace then
            push_event s
              {
                ev_name = name;
                ev_tid = (Domain.self () :> int);
                ev_ts = t0;
                ev_dur = t1 - t0;
                ev_args = args;
              })
        f

(* --- merge ----------------------------------------------------------- *)

let merge ~into src =
  match (into, src) with
  | Noop, _ | _, Noop -> ()
  | Active dst, Active s ->
      Hashtbl.iter
        (fun name r ->
          let cell = counter_cell dst name in
          cell := !cell + !r)
        s.counters;
      Hashtbl.iter
        (fun name h -> Histogram.merge ~into:(hist_cell dst name) h)
        s.hists;
      if dst.trace then
        (* Newest-first lists concatenate src after dst; the exporter
           sorts by timestamp, so ordering here is immaterial. *)
        List.iter (fun ev -> push_event dst ev) s.events

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_trace ?(process_name = "kmm") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
        \"args\":{\"name\":\"%s\"}}"
       (json_escape process_name));
  (match t with
  | Noop -> ()
  | Active s ->
      let events =
        List.sort (fun a b -> compare (a.ev_ts, a.ev_dur) (b.ev_ts, b.ev_dur))
          s.events
      in
      (* Rebase timestamps so traces start near 0 regardless of uptime. *)
      let t0 = match events with [] -> 0 | e :: _ -> e.ev_ts in
      let args_json args =
        if args = [] then ""
        else
          Printf.sprintf ",\"args\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                  args))
      in
      List.iter
        (fun ev ->
          let ts_us = float_of_int (ev.ev_ts - t0) /. 1e3 in
          if ev.ev_dur < 0 then
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"kmm\",\"ph\":\"i\",\"s\":\"t\",\
                  \"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
                 (json_escape ev.ev_name) ts_us ev.ev_tid (args_json ev.ev_args))
          else
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"kmm\",\"ph\":\"X\",\"ts\":%.3f,\
                  \"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
                 (json_escape ev.ev_name) ts_us
                 (float_of_int ev.ev_dur /. 1e3)
                 ev.ev_tid (args_json ev.ev_args)))
        events);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* Prometheus metric names admit [a-zA-Z0-9_:] only; dots and dashes in
   our internal names become underscores. *)
let prom_name prefix name =
  let b = Bytes.of_string (prefix ^ "_" ^ name) in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let to_prometheus ?(prefix = "kmm") t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prom_name prefix name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (counters t);
  List.iter
    (fun (name, h) ->
      let n = prom_name prefix name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (_, high, count) ->
          cum := !cum + count;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n high !cum))
        (Histogram.buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Histogram.sum h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Histogram.count h)))
    (histograms t);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_chrome_trace ?process_name t path =
  write_file path (to_chrome_trace ?process_name t)

let write_prometheus ?prefix t path = write_file path (to_prometheus ?prefix t)
