(** Minimal FASTA reader/writer.

    Supports multi-record files, line-wrapped sequence bodies, comments
    introduced by [;], and blank lines.  Records with characters outside the
    DNA alphabet are rejected. *)

type record = { name : string; seq : Sequence.t }

exception Parse_error of string
(** Raised on malformed input; the message contains the line number. *)

val parse_string : string -> record list
(** Parse a whole FASTA document held in memory. *)

val read_file : string -> record list
(** Parse a FASTA file from disk. *)

val to_string : ?width:int -> record list -> string
(** Render records in FASTA format, wrapping sequence lines at [width]
    (default 70) characters. *)

val write_file : ?width:int -> string -> record list -> unit
