open Stringmatch

let check = Alcotest.check
let int = Alcotest.int
let int_list = Alcotest.(list int)
let bool = Alcotest.bool

let gen_text_pattern =
  QCheck2.Gen.(pair (Test_util.dna_gen ~hi:300 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))

(* Sometimes plant the pattern so matches are likely. *)
let gen_planted =
  QCheck2.Gen.(
    pair (Test_util.dna_gen ~lo:20 ~hi:300 ()) (pair (Test_util.dna_gen ~lo:1 ~hi:8 ()) small_nat)
    >|= fun (text, (pat, pos)) ->
    let pos = pos mod max 1 (String.length text - String.length pat + 1) in
    let planted =
      String.sub text 0 pos ^ pat
      ^ String.sub text (pos + String.length pat)
          (String.length text - pos - String.length pat)
    in
    (planted, pat))

(* ------------------------------------------------------------------ *)
(* Exact matchers against the naive oracle                             *)

let agree_with_naive name finder =
  [
    Test_util.qtest ~count:300 (name ^ " = naive (random)") gen_text_pattern
      (fun (text, pattern) ->
        finder ~pattern ~text = Naive.find_all ~pattern ~text);
    Test_util.qtest ~count:300 (name ^ " = naive (planted)") gen_planted
      (fun (text, pattern) ->
        finder ~pattern ~text = Naive.find_all ~pattern ~text);
  ]

let test_kmp_basics () =
  check int_list "overlapping" [ 0; 1; 2 ] (Kmp.find_all ~pattern:"aa" ~text:"aaaa");
  check int_list "none" [] (Kmp.find_all ~pattern:"gg" ~text:"acacac");
  check int_list "at ends" [ 0; 4 ] (Kmp.find_all ~pattern:"ac" ~text:"acgtac")

let test_kmp_failure () =
  check (Alcotest.array int) "border table" [| 0; 0; 1; 2 |] (Kmp.failure "acac")

let test_period () =
  check int "acac" 2 (Kmp.period "acac");
  check int "aaaa" 1 (Kmp.period "aaaa");
  check int "acgt" 4 (Kmp.period "acgt");
  check int "empty" 0 (Kmp.period "")

let test_bm_basics () =
  check int_list "single" [ 3 ] (Boyer_moore.find_all ~pattern:"gatt" ~text:"acggattaca");
  check int_list "repeat" [ 0; 1; 2; 3 ] (Boyer_moore.find_all ~pattern:"aaa" ~text:"aaaaaa")

let test_z_array () =
  check (Alcotest.array int) "z of aaaa" [| 4; 3; 2; 1 |] (Zalgo.z_array "aaaa");
  check (Alcotest.array int) "z of acgt" [| 4; 0; 0; 0 |] (Zalgo.z_array "acgt")

(* ------------------------------------------------------------------ *)
(* Aho-Corasick                                                        *)

let test_ac_multi () =
  let t = Aho_corasick.build [| "ac"; "ca"; "acg" |] in
  let hits = List.sort compare (Aho_corasick.find_all t "acacg") in
  check
    (Alcotest.list (Alcotest.pair int int))
    "all patterns found"
    [ (0, 0); (0, 2); (1, 1); (2, 2) ]
    hits

let test_ac_overlapping_outputs () =
  (* A pattern that is a suffix of another must be reported too. *)
  let t = Aho_corasick.build [| "aca"; "ca" |] in
  let hits = List.sort compare (Aho_corasick.find_all t "aca") in
  check (Alcotest.list (Alcotest.pair int int)) "suffix pattern" [ (0, 0); (1, 1) ] hits

let test_ac_empty_pattern_rejected () =
  match Aho_corasick.build [| "ac"; "" |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_ac_equals_naive =
  Test_util.qtest ~count:200 "AC = per-pattern naive"
    QCheck2.Gen.(
      pair (Test_util.dna_gen ~hi:200 ())
        (array_size (int_range 1 5) (Test_util.dna_gen ~lo:1 ~hi:5 ())))
    (fun (text, patterns) ->
      let t = Aho_corasick.build patterns in
      let got = List.sort compare (Aho_corasick.find_all t text) in
      let expect =
        List.sort compare
          (List.concat
             (List.mapi
                (fun idx pattern ->
                  List.map (fun p -> (idx, p)) (Naive.find_all ~pattern ~text))
                (Array.to_list patterns)))
      in
      got = expect)

(* ------------------------------------------------------------------ *)
(* k-mismatch: naive Hamming and kangaroo                              *)

let naive_pairs ~pattern ~text ~k = Hamming.search ~pattern ~text ~k

let test_hamming_paper_example () =
  (* Paper §I: r = aaaaacaaac occurs at (1-based) position 3 of
     s = ccacacagaagcc with 4 mismatches. *)
  let text = "ccacacagaagcc" and pattern = "aaaaacaaac" in
  let hits = Hamming.search ~pattern ~text ~k:4 in
  check bool "position 2 (0-based) present" true (List.mem_assoc 2 hits);
  check int "with 4 mismatches" 4 (List.assoc 2 hits);
  let strict = Hamming.search ~pattern ~text ~k:3 in
  check bool "not within 3" false (List.mem_assoc 2 strict)

let test_hamming_k0_is_exact () =
  let text = "acgtacgt" and pattern = "acg" in
  check int_list "k=0" (Naive.find_all ~pattern ~text)
    (Hamming.positions ~pattern ~text ~k:0)

let test_hamming_k_ge_m_matches_everywhere () =
  let text = "acgtacgt" and pattern = "ttt" in
  check int "k >= m" 6 (List.length (Hamming.positions ~pattern ~text ~k:3))

let test_kangaroo_mismatch_positions () =
  let t = Kangaroo.make ~pattern:"aaca" ~text:"atcaaaca" in
  check int_list "offsets at 0" [ 1 ] (Kangaroo.mismatches_at t ~pos:0 ~limit:10);
  check int_list "offsets at 4" [] (Kangaroo.mismatches_at t ~pos:4 ~limit:10);
  check int_list "offsets at 1" [ 0; 1; 2 ] (Kangaroo.mismatches_at t ~pos:1 ~limit:10);
  check int_list "limit respected" [ 0; 1 ] (Kangaroo.mismatches_at t ~pos:1 ~limit:2)

let prop_kangaroo_equals_hamming =
  Test_util.qtest ~count:300 "kangaroo = naive hamming"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:1 ~hi:250 ()) (Test_util.dna_gen ~lo:1 ~hi:12 ())
        (int_range 0 6))
    (fun (text, pattern, k) ->
      String.length pattern > String.length text
      || Kangaroo.search ~pattern ~k text = naive_pairs ~pattern ~text ~k)

let test_kangaroo_bounds () =
  let t = Kangaroo.make ~pattern:"acg" ~text:"acgtacgt" in
  match Kangaroo.mismatches_at t ~pos:6 ~limit:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_negative_k_rejected () =
  (match Hamming.search ~pattern:"a" ~text:"aa" ~k:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hamming should reject");
  match Kangaroo.search ~pattern:"a" ~k:(-1) "aa" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kangaroo should reject"

let () =
  Alcotest.run "stringmatch"
    ([
       ( "kmp",
         [
           Alcotest.test_case "basics" `Quick test_kmp_basics;
           Alcotest.test_case "failure table" `Quick test_kmp_failure;
           Alcotest.test_case "period" `Quick test_period;
         ]
         @ agree_with_naive "kmp" Kmp.find_all );
       ( "boyer_moore",
         Alcotest.test_case "basics" `Quick test_bm_basics
         :: agree_with_naive "boyer-moore" Boyer_moore.find_all );
       ( "zalgo",
         Alcotest.test_case "z array" `Quick test_z_array
         :: agree_with_naive "zalgo" Zalgo.find_all );
       ( "aho_corasick",
         [
           Alcotest.test_case "multi pattern" `Quick test_ac_multi;
           Alcotest.test_case "overlapping outputs" `Quick test_ac_overlapping_outputs;
           Alcotest.test_case "empty pattern rejected" `Quick test_ac_empty_pattern_rejected;
           prop_ac_equals_naive;
         ] );
       ( "hamming",
         [
           Alcotest.test_case "paper example" `Quick test_hamming_paper_example;
           Alcotest.test_case "k=0 is exact" `Quick test_hamming_k0_is_exact;
           Alcotest.test_case "k >= m" `Quick test_hamming_k_ge_m_matches_everywhere;
         ] );
       ( "kangaroo",
         [
           Alcotest.test_case "mismatch positions" `Quick test_kangaroo_mismatch_positions;
           Alcotest.test_case "window bounds" `Quick test_kangaroo_bounds;
           Alcotest.test_case "negative k" `Quick test_negative_k_rejected;
           prop_kangaroo_equals_hamming;
         ] );
     ])
