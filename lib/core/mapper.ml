type hit = {
  read_id : int;
  pos : int;
  strand : [ `Forward | `Reverse ];
  distance : int;
}

type summary = { total : int; mapped : int; unique : int; ambiguous : int }

let default_chunk_size = 16

(* Map one read: all forward hits, then all reverse-complement hits, in
   the order the engine reports them.  Pure with respect to the index,
   so reads can be fanned out across domains freely. *)
let map_one ?stats ~engine ~both_strands index ~k (read_id, sequence) =
  let search strand pattern =
    List.map
      (fun (pos, distance) -> { read_id; pos; strand; distance })
      (Kmismatch.search ?stats index ~engine ~pattern ~k)
  in
  let fwd = search `Forward sequence in
  let rev =
    if both_strands then begin
      let rc =
        Dna.Sequence.to_string
          (Dna.Sequence.revcomp (Dna.Sequence.of_string sequence))
      in
      (* A palindromic read would report each site twice. *)
      if rc = sequence then [] else search `Reverse rc
    end
    else []
  in
  fwd @ rev

let map_reads ?(engine = Kmismatch.M_tree) ?(both_strands = true) ?(domains = 1)
    ?(chunk_size = default_chunk_size) ?stats index ~reads ~k =
  if domains < 1 then invalid_arg "Mapper.map_reads: domains must be >= 1";
  if chunk_size < 1 then invalid_arg "Mapper.map_reads: chunk_size must be >= 1";
  let reads = Array.of_list reads in
  let n = Array.length reads in
  let bounds = Work_pool.chunks ~total:n ~chunk_size in
  (* Never keep more domains than there are chunks of work. *)
  let domains = max 1 (min domains (Array.length bounds)) in
  (* The Cole engine is the only one touching the index's lazily built
     suffix tree; force it before fan-out ([Lazy.force] from several
     domains at once is unsafe). *)
  if domains > 1 && engine = Kmismatch.Cole then
    ignore (Kmismatch.suffix_tree index);
  (* Per-domain counters, merged (commutatively) into the caller's at the
     end, so the reported totals match a sequential run exactly. *)
  let worker_stats =
    match stats with
    | None -> [||]
    | Some _ -> Array.init domains (fun _ -> Stats.create ())
  in
  (* Slot [i] receives read [i]'s hits no matter which domain computed
     them: the merge is deterministic by construction. *)
  let per_read = Array.make n [] in
  Work_pool.with_pool ~domains (fun pool ->
      Work_pool.run pool ~tasks:(Array.length bounds) (fun ~worker ~task ->
          let stats =
            if worker_stats = [||] then None else Some worker_stats.(worker)
          in
          let start, len = bounds.(task) in
          for i = start to start + len - 1 do
            per_read.(i) <-
              map_one ?stats ~engine ~both_strands index ~k reads.(i)
          done));
  (match stats with
  | None -> ()
  | Some dst -> Array.iter (fun s -> Stats.merge ~into:dst s) worker_stats);
  let mapped = ref 0 and unique = ref 0 and ambiguous = ref 0 in
  Array.iter
    (function
      | [] -> ()
      | [ _ ] ->
          incr mapped;
          incr unique
      | _ :: _ :: _ ->
          incr mapped;
          incr ambiguous)
    per_read;
  let hits =
    List.sort
      (fun a b -> compare (a.read_id, a.pos, a.strand) (b.read_id, b.pos, b.strand))
      (List.concat (Array.to_list per_read))
  in
  (hits, { total = n; mapped = !mapped; unique = !unique; ambiguous = !ambiguous })

let best_hits hits =
  let best = Hashtbl.create 64 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt best h.read_id with
      | Some d when d <= h.distance -> ()
      | _ -> Hashtbl.replace best h.read_id h.distance)
    hits;
  List.filter (fun h -> Hashtbl.find best h.read_id = h.distance) hits

let to_tsv hits =
  let buf = Buffer.create 256 in
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%c\t%d\n" h.read_id h.pos
           (match h.strand with `Forward -> '+' | `Reverse -> '-')
           h.distance))
    hits;
  Buffer.contents buf
