lib/core/cole.ml: List Stats String Suffix
