(** Batch read mapping on top of the k-mismatch engines — the paper's
    end-to-end workload (locate every read of a sequencing run in the
    genome, both strands, despite up to [k] mismatches). *)

type hit = {
  read_id : int;
  pos : int;  (** 0-based start on the forward strand *)
  strand : [ `Forward | `Reverse ];
      (** strand of the read that produced the hit *)
  distance : int;
}

type summary = {
  total : int;
  mapped : int;  (** reads with at least one hit *)
  unique : int;  (** reads with exactly one hit *)
  ambiguous : int;  (** reads with several hits *)
  skipped : (int * Kmm_error.t) list;
      (** reads the batch could not process — [(read id, reason)] in
          batch order.  A fault in one read (non-ACGT base, empty or
          oversize sequence, or an engine exception) lands here instead
          of aborting the whole batch; the surviving reads' hits are
          unaffected. *)
}

val default_chunk_size : int
(** Reads per pool task when sharding a batch (currently 16): small
    enough to load-balance engines whose per-read cost varies, large
    enough to amortize queue traffic. *)

val map_reads :
  ?engine:Kmismatch.engine ->
  ?both_strands:bool ->
  ?domains:int ->
  ?chunk_size:int ->
  ?stats:Stats.t ->
  Kmismatch.index ->
  reads:(int * string) list ->
  k:int ->
  hit list * summary
(** Map every [(id, sequence)] read; with [both_strands] (default true)
    the reverse complement is searched too and hits are reported on the
    forward coordinate system.  Hits are sorted by read id, then
    position.  Engine defaults to [M_tree].

    [domains] (default 1) shards the batch across a {!Work_pool} of that
    many OCaml domains in [chunk_size]-read chunks (default
    {!default_chunk_size}).  The FM-index is immutable, so workers share
    it without copying.  {b Determinism guarantee:} hits and summary are
    byte-identical for every [domains]/[chunk_size] combination — each
    read's hits land in a slot indexed by read position and the merge
    never depends on scheduling; [domains = 1] {e is} the sequential
    path (no domain is spawned).  [stats] accumulates engine counters:
    each domain keeps its own {!Stats.t} and they are summed into
    [stats] at the end, yielding the same totals as a sequential run.

    {b Fail-soft:} a read the engines cannot process is recorded in
    [summary.skipped] with a typed reason and costs nothing but itself —
    the batch never aborts, the per-read slots of the surviving reads
    are byte-identical to a run without the bad read, and the skipped
    list itself is deterministic across every [domains]/[chunk_size]
    combination.
    @raise Invalid_argument if [domains < 1] or [chunk_size < 1]. *)

val best_hits : hit list -> hit list
(** Keep only minimal-distance hits per read (ties all kept). *)

val to_tsv : hit list -> string
(** One [read_id <tab> pos <tab> strand <tab> distance] line per hit. *)
