type engine = ..

type engine +=
  | M_tree
  | S_tree
  | S_tree_no_delta
  | Hybrid
  | Cole
  | Amir
  | Kangaroo
  | Naive
  | Bidir

(* The forward text, the suffix tree and the bidirectional index are
   derived views: the FM-index of the reversed text is the only
   component persisted, and an index loaded by mmap should not pay O(n)
   materialization up front.  All memos are domain-safe
   ([Storage.Memo], not [Lazy.t], whose concurrent forcing is
   undefined), so a mapper fan-out may race on the first force without
   corruption. *)
type index = {
  text : string Fmindex.Storage.Memo.t;
  fm_rev : Fmindex.Fm_index.t;
  tree : Suffix.Suffix_tree.t Fmindex.Storage.Memo.t;
  pforward : Fmindex.Packed_text.t Fmindex.Storage.Memo.t;
      (* forward text, 2-bit packed: what the word-parallel verifiers
         run against.  Derived by reversing the FM component's packed
         payload — n/4 bytes, never the unpacked string. *)
  bidir : Fmindex.Bidir.t Fmindex.Storage.Memo.t;
      (* forward rank side paired with [fm_rev]; only the Bidir engine
         forces it (one suffix-array build of the forward text). *)
}

let make_index ~text_memo fm_rev =
  let tree =
    Fmindex.Storage.Memo.make (fun () ->
        Suffix.Suffix_tree.build (Fmindex.Storage.Memo.force text_memo))
  in
  let pforward =
    Fmindex.Storage.Memo.make (fun () ->
        Fmindex.Packed_text.rev (Fmindex.Fm_index.packed_text fm_rev))
  in
  let bidir =
    Fmindex.Storage.Memo.make (fun () ->
        Fmindex.Bidir.make
          ~text:(Fmindex.Storage.Memo.force text_memo)
          ~fm_rev)
  in
  { text = text_memo; fm_rev; tree; pforward; bidir }

let build_index ?occ_rate ?sa_rate raw =
  (* Validate and normalize exactly once; the reverse is derived from
     the parsed sequence in place instead of being re-parsed through a
     second string round-trip. *)
  let seq = Dna.Sequence.of_string raw in
  let text = Dna.Sequence.to_string seq in
  let rev = Dna.Sequence.to_string (Dna.Sequence.rev seq) in
  make_index
    ~text_memo:(Fmindex.Storage.Memo.make (fun () -> text))
    (Fmindex.Fm_index.build ?occ_rate ?sa_rate rev)

let of_sequence seq = build_index (Dna.Sequence.to_string seq)
let text t = Fmindex.Storage.Memo.force t.text
let length t = Fmindex.Fm_index.length t.fm_rev
let fm_rev t = t.fm_rev
let suffix_tree t = Fmindex.Storage.Memo.force t.tree
let packed_text t = Fmindex.Storage.Memo.force t.pforward
let bidir t = Fmindex.Storage.Memo.force t.bidir

(* ------------------------------------------------------------------ *)
(* The engine registry                                                  *)

module Engine_registry = struct
  type caps = { online : bool; needs_tree : bool; scales : bool }

  type run_args = {
    pattern : string;
    k : int;
    stats : Stats.t;
    obs : Obs.t;
    config : M_tree.config option;
  }

  type entry = {
    engine : engine;
    name : string;
    doc : string;
    caps : caps;
    prepare : index -> unit;
    run : index -> run_args -> (int * int) list;
  }

  (* Registration order is presentation order everywhere (CLI help,
     oracle subjects, benches), so the table is an append-only list. *)
  let table : entry list ref = ref []

  (* Names are compared with separators stripped and case folded, so
     "s-tree-nodelta", "s_tree_no_delta" and "STreeNoDelta" coincide. *)
  let normalize name =
    String.to_seq (String.lowercase_ascii name)
    |> Seq.filter (fun c -> c <> '-' && c <> '_')
    |> String.of_seq

  (* Nullary extension constructors are singletons, so engine values
     compare by physical equality. *)
  let find eng = List.find_opt (fun e -> e.engine == eng) !table

  let find_name name =
    let key = normalize name in
    List.find_opt (fun e -> normalize e.name = key) !table

  let register e =
    if e.name = "" then invalid_arg "Engine_registry.register: empty name";
    (match find_name e.name with
    | Some clash ->
        invalid_arg
          (Printf.sprintf
             "Engine_registry.register: name %S collides with registered %S"
             e.name clash.name)
    | None -> ());
    (match find e.engine with
    | Some clash ->
        invalid_arg
          (Printf.sprintf
             "Engine_registry.register: engine already registered as %S"
             clash.name)
    | None -> ());
    table := !table @ [ e ]

  let all () = !table
  let names () = List.map (fun e -> e.name) !table
end

let all_engines () =
  List.map (fun e -> e.Engine_registry.engine) (Engine_registry.all ())

let engine_name e =
  match Engine_registry.find e with
  | Some en -> en.Engine_registry.name
  | None -> "unregistered-engine"

let engine_names () = Engine_registry.names ()

let engine_of_string s =
  Option.map
    (fun e -> e.Engine_registry.engine)
    (Engine_registry.find_name s)

let engine_of_string_err s =
  match Engine_registry.find_name s with
  | Some e -> Ok e.Engine_registry.engine
  | None ->
      Error
        (Kmm_error.Bad_input
           (Printf.sprintf "unknown engine %S (valid: %s)" s
              (String.concat ", " (engine_names ()))))

(* The built-in engines, registered in the order the closed variant
   used to declare them (plus Bidir).  This is the single site a new
   built-in engine touches. *)
let () =
  let open Engine_registry in
  let caps ?(online = false) ?(needs_tree = false) ?(scales = true) () =
    { online; needs_tree; scales }
  in
  let nothing (_ : index) = () in
  let force_text t =
    ignore (text t);
    ignore (packed_text t)
  in
  register
    {
      engine = M_tree;
      name = "m-tree";
      doc = "the paper's Algorithm A: BWT search with mismatching-tree reuse";
      caps = caps ();
      prepare = nothing;
      run =
        (fun t a ->
          M_tree.search ?config:a.config ~stats:a.stats ~obs:a.obs t.fm_rev
            ~pattern:a.pattern ~k:a.k);
    };
  register
    {
      engine = S_tree;
      name = "s-tree";
      doc = "the BWT baseline of ref. [34] with the delta heuristic";
      caps = caps ();
      prepare = nothing;
      run =
        (fun t a ->
          S_tree.search ~use_delta:true ~stats:a.stats ~obs:a.obs t.fm_rev
            ~pattern:a.pattern ~k:a.k);
    };
  register
    {
      engine = S_tree_no_delta;
      name = "s-tree-nodelta";
      doc = "the BWT baseline without the delta heuristic";
      caps = caps ();
      prepare = nothing;
      run =
        (fun t a ->
          S_tree.search ~use_delta:false ~stats:a.stats ~obs:a.obs t.fm_rev
            ~pattern:a.pattern ~k:a.k);
    };
  register
    {
      engine = Hybrid;
      name = "hybrid";
      doc = "FM search to a unique row, then word-parallel verification";
      caps = caps ~online:true ();
      prepare = force_text;
      run =
        (fun t a ->
          Hybrid.search ~stats:a.stats ~ptext:(packed_text t) t.fm_rev
            ~text:(text t) ~pattern:a.pattern ~k:a.k);
    };
  register
    {
      engine = Cole;
      name = "cole";
      doc = "suffix-tree brute force (ref. [14])";
      caps = caps ~needs_tree:true ~scales:false ();
      prepare = (fun t -> ignore (suffix_tree t));
      run =
        (fun t a ->
          Cole.search ~stats:a.stats (suffix_tree t) ~pattern:a.pattern ~k:a.k);
    };
  register
    {
      engine = Amir;
      name = "amir";
      doc = "online mark-and-verify (ref. [2])";
      caps = caps ~online:true ~scales:false ();
      prepare = force_text;
      run =
        (fun t a ->
          Amir.search ~stats:a.stats ~ptext:(packed_text t) ~pattern:a.pattern
            ~k:a.k (text t));
    };
  register
    {
      engine = Kangaroo;
      name = "kangaroo";
      doc = "online O(kn) Landau-Vishkin kangaroo jumps";
      caps = caps ~online:true ~scales:false ();
      prepare = force_text;
      run =
        (fun t a ->
          Stringmatch.Kangaroo.search ~ptext:(packed_text t)
            ~pattern:a.pattern ~k:a.k (text t));
    };
  register
    {
      engine = Naive;
      name = "naive";
      doc = "online O(mn) scanning reference";
      caps = caps ~online:true ~scales:false ();
      prepare = (fun t -> ignore (text t));
      run =
        (fun t a ->
          Stringmatch.Hamming.search ~pattern:a.pattern ~text:(text t) ~k:a.k);
    };
  register
    {
      engine = Bidir;
      name = "bidir";
      doc =
        "bidirectional FM-index executing optimum search schemes (Kianfar & \
         Pockrandt)";
      caps = caps ();
      prepare =
        (fun t ->
          ignore (bidir t);
          ignore (packed_text t));
      run =
        (fun t a ->
          Oss.search ~stats:a.stats ~obs:a.obs ~ptext:(packed_text t)
            (bidir t) ~pattern:a.pattern ~k:a.k);
    }

module Query = struct
  type t = {
    engine : engine;
    pattern : string;
    k : int;
    config : M_tree.config option;
    obs : Obs.t;
    deadline : Deadline.t;
  }

  let make ?config ?(obs = Obs.noop) ?(deadline = Deadline.none) ~engine
      ~pattern ~k () =
    { engine; pattern; k; config; obs; deadline }
end

module Response = struct
  type t = {
    hits : (int * int) list;
    stats : Stats.t;
    timings : (string * float) list;
  }

  let positions r = List.map fst r.hits
end

(* Flush per-query engine work into the sink's counters (counters v2:
   the [Stats] fields become [engine.*] counters, and — when the
   FM-index telemetry hook is armed — rank-layer effort becomes [fm.*]
   counters).  All of these are per-record sums, so per-domain sinks
   merge to exactly the sequential totals. *)
(* Word-parallel verification effort as [verify.*] counters — shared
   with the mapper, whose hit re-checking runs the kernel outside any
   query span. *)
let flush_verify obs (v : Fmindex.Packed_text.Telemetry.counters) =
  Obs.add obs "verify.calls" v.calls;
  Obs.add obs "verify.words" v.words;
  Obs.add obs "verify.early_exits" v.early_exits

let flush_counters obs (s : Stats.t) fm_delta verify_delta =
  Obs.add obs "engine.nodes" s.nodes;
  Obs.add obs "engine.leaves" s.leaves;
  Obs.add obs "engine.rank_calls" s.rank_calls;
  Obs.add obs "engine.derivations" s.derivations;
  Obs.add obs "engine.derived_leaves" s.derived_leaves;
  Obs.add obs "engine.resumes" s.resumes;
  (match verify_delta with None -> () | Some v -> flush_verify obs v);
  match fm_delta with
  | None -> ()
  | Some (d : Fmindex.Fm_index.Telemetry.counters) ->
      Obs.add obs "fm.rank_ops" d.rank_ops;
      Obs.add obs "fm.block_decodes" d.block_decodes;
      Obs.add obs "fm.locate_walks" d.locate_walks;
      Obs.add obs "fm.locate_steps" d.locate_steps

(* Validation is the typed half of the entry point: every reason a query
   cannot run maps to [Kmm_error.Bad_input] carrying the same message the
   raising path has always used, so [run] can rebuild the historical
   [Invalid_argument]s verbatim and long-running callers (the server, the
   mapper) get a [result] they can answer with instead of a crash. *)
let validate (q : Query.t) =
  match
    try Ok (Dna.Sequence.to_string (Dna.Sequence.of_string q.pattern))
    with Invalid_argument msg -> Error msg
  with
  | Error msg -> Error (Kmm_error.Bad_input msg)
  | Ok "" -> Error (Kmm_error.Bad_input "Kmismatch.search: empty pattern")
  | Ok _ when q.k < 0 ->
      Error (Kmm_error.Bad_input "Kmismatch.search: negative k")
  | Ok pattern -> (
      match Engine_registry.find q.engine with
      | Some entry -> Ok (pattern, entry)
      | None ->
          Error
            (Kmm_error.Bad_input
               "Kmismatch.search: engine is not registered"))

let run_validated t (q : Query.t) ~obs ~t0 ~pattern
    ~(entry : Engine_registry.entry) =
  (* Degenerate budgets are uniform across engines: a window holds at
     most m mismatches, so k >= m answers every window position at its
     true distance.  Clamping here (and in each engine, for direct
     callers) makes that explicit and keeps k-derived arithmetic such as
     the M-tree's 2k+3 merge horizon safely inside the word. *)
  let k = min q.k (String.length pattern) in
  let t1 = Obs.Clock.now_ns () in
  let stats = Stats.create () in
  let telemetry =
    Obs.enabled obs && Fmindex.Fm_index.Telemetry.is_enabled ()
  in
  let tele_before =
    if telemetry then Some (Fmindex.Fm_index.Telemetry.snapshot ()) else None
  in
  let vtele =
    Obs.enabled obs && Fmindex.Packed_text.Telemetry.is_enabled ()
  in
  let vtele_before =
    if vtele then Some (Fmindex.Packed_text.Telemetry.snapshot ()) else None
  in
  let hits =
    Obs.span obs "query"
      ~args:
        [
          ("engine", entry.Engine_registry.name);
          ("k", string_of_int k);
          ("m", string_of_int (String.length pattern));
        ]
      (fun () ->
        (* A pattern longer than the text can match nowhere.  Guard once
           for every engine: the tree/BWT engines are not written for
           this degenerate case and used to fall through to it. *)
        if String.length pattern > length t then []
        else
          entry.Engine_registry.run t
            { Engine_registry.pattern; k; stats; obs; config = q.config })
  in
  let t2 = Obs.Clock.now_ns () in
  if Obs.enabled obs then begin
    let fm_delta =
      match tele_before with
      | None -> None
      | Some since ->
          Some
            (Fmindex.Fm_index.Telemetry.diff ~since
               (Fmindex.Fm_index.Telemetry.snapshot ()))
    in
    let verify_delta =
      match vtele_before with
      | None -> None
      | Some since ->
          Some
            (Fmindex.Packed_text.Telemetry.diff ~since
               (Fmindex.Packed_text.Telemetry.snapshot ()))
    in
    flush_counters obs stats fm_delta verify_delta;
    Obs.incr obs "query.count";
    Obs.add obs "query.hits" (List.length hits)
  end;
  let s ns = float_of_int ns *. 1e-9 in
  {
    Response.hits;
    stats;
    timings = [ ("normalize", s (t1 - t0)); ("search", s (t2 - t1)) ];
  }

let try_run t (q : Query.t) =
  let t0 = Obs.Clock.now_ns () in
  match validate q with
  | Error e -> Error e
  | Ok (pattern, entry) ->
      if Deadline.expired q.deadline then
        (* Admission check: an already-expired budget is answered without
           touching the index at all (the server relies on this to shed
           queries that aged out in its queue). *)
        Error (Kmm_error.Timeout "deadline expired before the search started")
      else (
        (* The engines poll [Deadline.poll] in their hot loops; install
           the query's budget as the ambient deadline so those polls see
           it without any signature change.  [Deadline.none] (the
           default) makes every poll a compare-and-return. *)
        match
          Deadline.with_ambient q.deadline (fun () ->
              run_validated t q ~obs:q.obs ~t0 ~pattern ~entry)
        with
        | r -> Ok r
        | exception Deadline.Expired ->
            Error
              (Kmm_error.Timeout
                 "deadline expired during the search; partial work discarded"))

let run t q =
  match try_run t q with
  | Ok r -> r
  | Error (Kmm_error.Bad_input msg) ->
      (* The historical raising contract, message included: direct
         callers and tests pattern-match on these strings. *)
      invalid_arg msg
  | Error e -> Kmm_error.raise_error e

let search ?stats ?config t ~engine ~pattern ~k =
  let r = run t (Query.make ?config ~engine ~pattern ~k ()) in
  (match stats with Some into -> Stats.merge ~into r.Response.stats | None -> ());
  r.Response.hits

let positions ?stats t ~engine ~pattern ~k =
  List.map fst (search ?stats t ~engine ~pattern ~k)

let save_index t path = Fmindex.Fm_index.save t.fm_rev path

let of_fm fm_rev =
  (* Loaded indexes derive the forward text on demand: the FM-index keeps
     only the 2-bit packed reverse, and an mmap'd load must stay O(1). *)
  make_index
    ~text_memo:
      (Fmindex.Storage.Memo.make (fun () ->
           Dna.Sequence.to_string
             (Dna.Sequence.rev
                (Dna.Sequence.of_string (Fmindex.Fm_index.text fm_rev)))))
    fm_rev

let load_index ?mode path = of_fm (Fmindex.Fm_index.load ?mode path)

let try_load_index ?mode path =
  Result.map of_fm (Fmindex.Fm_index.try_load ?mode path)
