type t = { m : int; n : int; pair : Suffix.Lce.pair }

let make ~pattern ~text =
  {
    m = String.length pattern;
    n = String.length text;
    pair = Suffix.Lce.make_pair pattern text;
  }

let mismatches_at t ~pos ~limit =
  if pos < 0 || pos + t.m > t.n then
    invalid_arg "Kangaroo.mismatches_at: window out of range";
  let rec jump offset found count =
    if count >= limit || offset >= t.m then List.rev found
    else begin
      let l = Suffix.Lce.lce_pair t.pair offset (pos + offset) in
      let mis = offset + l in
      if mis >= t.m then List.rev found
      else jump (mis + 1) (mis :: found) (count + 1)
    end
  in
  jump 0 [] 0

let distance_at t ~pos ~k =
  let ms = mismatches_at t ~pos ~limit:(k + 1) in
  let d = List.length ms in
  if d <= k then Some d else None

(* ------------------------------------------------------------------ *)
(* Fallback verification: when the LCE structure cannot pay for itself,
   scan every window directly with an early-exit budget instead.  Both
   fallbacks return exactly the (position, distance) pairs the LCE path
   would — the choice is purely a cost model. *)

(* Scalar fallback bound: an early-exit window scan does O(k+1) expected
   work on unrelated windows, and even its O(m) worst case stays under
   two kernel words of bases — cheaper than building the suffix
   structures of pattern#text that [make] needs. *)
let scalar_fallback_max = 2 * Fmindex.Packed_text.word_lanes

(* The packed kernel compares 28 bases per word op, so a full window
   costs ceil(m/28) word ops against the k+1 O(1)-but-heavy LCE queries
   of a kangaroo probe; the kernel also early-exits.  Prefer it while a
   window costs at most ~4 word ops per allowed mismatch. *)
let packed_pays ~m ~k =
  (m + Fmindex.Packed_text.word_lanes - 1) / Fmindex.Packed_text.word_lanes
  <= 4 * (k + 1)

let packable pattern =
  pattern <> ""
  && String.for_all
       (fun c -> c = 'a' || c = 'c' || c = 'g' || c = 't')
       pattern

let scan_packed pt pattern ~k =
  let m = String.length pattern in
  let n = Fmindex.Packed_text.length pt in
  let pp = Fmindex.Packed_text.Pattern.make pattern in
  let acc = ref [] in
  for pos = n - m downto 0 do
    Deadline.poll ();
    let d = Fmindex.Packed_text.hamming ~limit:k pt pp ~pos in
    if d <= k then acc := (pos, d) :: !acc
  done;
  !acc

let scan_scalar ~pattern ~text ~k =
  let m = String.length pattern and n = String.length text in
  let acc = ref [] in
  for pos = n - m downto 0 do
    Deadline.poll ();
    let d = Hamming.distance_at ~limit:k ~pattern ~text pos in
    if d <= k then acc := (pos, d) :: !acc
  done;
  !acc

let scan_lce ~pattern ~text ~k =
  let t = make ~pattern ~text in
  let acc = ref [] in
  for pos = t.n - t.m downto 0 do
    Deadline.poll ();
    match distance_at t ~pos ~k with
    | Some d -> acc := (pos, d) :: !acc
    | None -> ()
  done;
  !acc

let search ?ptext ~pattern ~k text =
  if k < 0 then invalid_arg "Kangaroo.search: negative k";
  (* A window holds at most m mismatches, so any budget k >= m behaves
     exactly like k = m; clamping also keeps the k+1 jump limit below
     from overflowing for absurd budgets (the differential fuzzer caught
     [k = max_int] reporting every window at distance 0). *)
  let k = min k (String.length pattern) in
  let m = String.length pattern and n = String.length text in
  if m > n then []
  else
    match ptext with
    | Some pt
      when Fmindex.Packed_text.length pt = n
           && packable pattern && packed_pays ~m ~k ->
        scan_packed pt pattern ~k
    | _ ->
        if m <= scalar_fallback_max then scan_scalar ~pattern ~text ~k
        else scan_lce ~pattern ~text ~k

let positions ~pattern ~text ~k = List.map fst (search ~pattern ~k text)
