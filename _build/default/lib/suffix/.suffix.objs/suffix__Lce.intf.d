lib/suffix/lce.mli:
