lib/core/s_tree.ml: Array Dna Fmindex List Stats String
