lib/core/kmismatch.mli: Dna Fmindex M_tree Stats Suffix
