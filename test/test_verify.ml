(* Word-parallel verification kernel: Packed_text.hamming / hamming_le
   against the scalar Hamming reference, the shared SWAR count tables,
   and the bench parity smoke. *)

module Packed_text = Fmindex.Packed_text
module Pattern = Packed_text.Pattern
module Hamming = Stringmatch.Hamming

let reverse_string s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

(* ------------------------------------------------------------------ *)
(* Pinned vectors for the shared count tables                          *)

(* Independent recomputation, written differently from the library's
   (per-lane match loop there, arithmetic extraction here), plus pinned
   literals so an edit to the shared definition cannot slip through. *)
let test_count_tables () =
  for byte = 0 to 255 do
    let c = [| 0; 0; 0; 0 |] in
    List.iter
      (fun lane -> c.((byte lsr (2 * lane)) land 3) <- c.((byte lsr (2 * lane)) land 3) + 1)
      [ 0; 1; 2; 3 ];
    let expect = c.(1) lor (c.(2) lsl 16) lor (c.(3) lsl 32) in
    Alcotest.(check int)
      (Printf.sprintf "lane_count_table.(%d)" byte)
      expect
      Packed_text.lane_count_table.(byte);
    Alcotest.(check int)
      (Printf.sprintf "mismatch_count_table.(%d)" byte)
      (4 - c.(0))
      Packed_text.mismatch_count_table.(byte)
  done;
  (* Pinned literals: 0x00 = aaaa, 0xff = tttt, 0xe4 = acgt, 0x1b = tcga. *)
  Alcotest.(check int) "pin 0x00" 0 Packed_text.lane_count_table.(0x00);
  Alcotest.(check int) "pin 0xff" (4 lsl 32) Packed_text.lane_count_table.(0xff);
  Alcotest.(check int)
    "pin 0xe4"
    (1 lor (1 lsl 16) lor (1 lsl 32))
    Packed_text.lane_count_table.(0xe4);
  Alcotest.(check int)
    "pin 0x1b"
    (1 lor (1 lsl 16) lor (1 lsl 32))
    Packed_text.lane_count_table.(0x1b);
  Alcotest.(check int) "pin mm 0x00" 0 Packed_text.mismatch_count_table.(0x00);
  Alcotest.(check int) "pin mm 0xff" 4 Packed_text.mismatch_count_table.(0xff);
  Alcotest.(check int) "pin mm 0x03" 1 Packed_text.mismatch_count_table.(0x03);
  Alcotest.(check int) "pin mm 0x30" 1 Packed_text.mismatch_count_table.(0x30)

(* ------------------------------------------------------------------ *)
(* Directed word-boundary coverage                                     *)

(* Patterns at every length around both the kernel's real word width
   (28 lanes: 27/28/29, 55/56/57) and the 32-lane widths named in the
   issue (31/32/33, 63/64/65), each checked at every offset of a text
   long enough to exercise all four lane phases and the ragged final
   byte. *)
let boundary_lengths = [ 27; 28; 29; 31; 32; 33; 55; 56; 57; 63; 64; 65 ]

let test_word_boundaries () =
  let st = Random.State.make [| 0xb0bda7 |] in
  let text = Test_util.random_dna st 211 (* odd: last byte is ragged *) in
  let pt = Packed_text.of_string text in
  List.iter
    (fun m ->
      (* A pattern sharing text windows' composition: copy a window and
         plant a few mismatches, so distances are small but non-zero. *)
      let base = String.sub text 17 m in
      let pattern =
        String.mapi
          (fun j c ->
            if j mod 13 = 5 then (if c = 'a' then 'c' else 'a') else c)
          base
      in
      let pp = Pattern.make pattern in
      for pos = 0 to String.length text - m do
        let expect = Hamming.distance_at ~pattern ~text pos in
        let got = Packed_text.hamming pt pp ~pos in
        if got <> expect then
          Alcotest.failf "hamming m=%d pos=%d: expected %d, got %d" m pos
            expect got;
        List.iter
          (fun k ->
            let le = Packed_text.hamming_le pt pp ~pos ~k in
            if le <> (expect <= k) then
              Alcotest.failf "hamming_le m=%d pos=%d k=%d: expected %b" m pos
                k (expect <= k))
          [ 0; 1; 4; expect - 1; expect; expect + 1 ]
      done)
    boundary_lengths

(* ------------------------------------------------------------------ *)
(* qcheck equivalence                                                  *)

let gen_case =
  QCheck2.Gen.(
    Test_util.dna_gen ~lo:1 ~hi:220 ()
    >>= fun text ->
    int_range 1 (min 90 (String.length text))
    >>= fun m ->
    (* Mix of unrelated patterns and planted near-matches. *)
    oneof
      [
        Test_util.dna_gen ~lo:m ~hi:m ();
        (int_range 0 (String.length text - m) >|= fun p -> String.sub text p m);
      ]
    >>= fun pattern ->
    int_range 0 (String.length text - m)
    >>= fun pos -> int_range (-1) (m + 1) >|= fun k -> (text, pattern, pos, k))

let qcheck_equivalence =
  Test_util.qtest ~count:2000 "hamming_le ≡ distance_at <= k" gen_case
    (fun (text, pattern, pos, k) ->
      let pt = Packed_text.of_string text in
      let pp = Pattern.make pattern in
      let d = Hamming.distance_at ~pattern ~text pos in
      Packed_text.hamming pt pp ~pos = d
      && Packed_text.hamming_le pt pp ~pos ~k = (d <= k))

let qcheck_limit =
  Test_util.qtest ~count:1000 "scalar/packed ?limit contract agrees"
    gen_case
    (fun (text, pattern, pos, k) ->
      let limit = max k 0 in
      let pt = Packed_text.of_string text in
      let pp = Pattern.make pattern in
      let d = Hamming.distance_at ~pattern ~text pos in
      let scalar = Hamming.distance_at ~limit ~pattern ~text pos in
      let packed = Packed_text.hamming ~limit pt pp ~pos in
      (* Both early-exit results are exact below the limit and "> limit"
         above it; the prefix counts themselves may differ. *)
      (scalar > limit) = (d > limit)
      && (packed > limit) = (d > limit)
      && (if d <= limit then scalar = d && packed = d else true))

let qcheck_of_packed =
  Test_util.qtest ~count:500 "Pattern.of_packed ≡ Pattern.make of window"
    QCheck2.Gen.(
      Test_util.dna_gen ~lo:1 ~hi:150 ()
      >>= fun text ->
      int_range 1 (String.length text)
      >>= fun m ->
      int_range 0 (String.length text - m) >|= fun p -> (text, p, m))
    (fun (text, wpos, m) ->
      let pt = Packed_text.of_string text in
      let pp = Pattern.of_packed pt ~pos:wpos ~len:m in
      let pattern = String.sub text wpos m in
      List.for_all
        (fun pos ->
          pos < 0
          || pos + m > String.length text
          || Packed_text.hamming pt pp ~pos
             = Hamming.distance_at ~pattern ~text pos)
        [ 0; wpos; String.length text - m ])

let qcheck_rev =
  Test_util.qtest ~count:500 "rev reverses"
    (Test_util.dna_gen ~lo:0 ~hi:200 ())
    (fun s ->
      Packed_text.to_string (Packed_text.rev (Packed_text.of_string s))
      = reverse_string s)

(* ------------------------------------------------------------------ *)
(* mmap-adopted texts                                                  *)

(* The kernel must never read past the mapped section: the final word
   of a window at the end of the text covers fewer than 7 payload
   bytes.  Map a file of exactly ceil(n/4) bytes and verify every
   window of several lengths, phases included. *)
let test_mmap_adopted () =
  let st = Random.State.make [| 0x5eed |] in
  let text = Test_util.random_dna st 173 in
  let payload = Packed_text.payload_string (Packed_text.of_string text) in
  let path = Filename.temp_file "kmm_verify" ".packed" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc payload;
      close_out oc;
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let data =
            Fmindex.Storage.map_bytes fd ~pos:0 ~len:(String.length payload)
          in
          let pt = Packed_text.of_storage data ~len:(String.length text) in
          List.iter
            (fun m ->
              let pattern = String.sub text (String.length text - m) m in
              let pp = Pattern.make pattern in
              for pos = 0 to String.length text - m do
                let expect = Hamming.distance_at ~pattern ~text pos in
                if Packed_text.hamming pt pp ~pos <> expect then
                  Alcotest.failf "mmap hamming m=%d pos=%d" m pos
              done)
            [ 1; 28; 57; 64; 173 ]))

(* ------------------------------------------------------------------ *)
(* Edge cases and the telemetry contract                               *)

let test_edges () =
  let pt = Packed_text.of_string "acgtacgtac" in
  let pp = Pattern.make "acgt" in
  Alcotest.check_raises "window out of range"
    (Invalid_argument "Packed_text.hamming: window out of range")
    (fun () -> ignore (Packed_text.hamming pt pp ~pos:7));
  Alcotest.check_raises "negative pos"
    (Invalid_argument "Packed_text.hamming: window out of range")
    (fun () -> ignore (Packed_text.hamming pt pp ~pos:(-1)));
  Alcotest.check_raises "empty pattern"
    (Invalid_argument "Packed_text.Pattern: empty pattern")
    (fun () -> ignore (Pattern.make ""));
  Alcotest.check_raises "invalid base"
    (Invalid_argument "Packed_text.Pattern.make: 'N' is not a lowercase base")
    (fun () -> ignore (Pattern.make "acgN"));
  Alcotest.(check bool) "k < 0" false (Packed_text.hamming_le pt pp ~pos:0 ~k:(-1));
  Alcotest.(check bool) "k >= m" true (Packed_text.hamming_le pt pp ~pos:0 ~k:4);
  Alcotest.check_raises "k >= m still bounds-checks"
    (Invalid_argument "Packed_text.hamming: window out of range")
    (fun () -> ignore (Packed_text.hamming_le pt pp ~pos:7 ~k:99))

let test_telemetry () =
  let module T = Packed_text.Telemetry in
  let text = String.concat "" (List.init 10 (fun _ -> "acgtacgtacgtacgt")) in
  let pt = Packed_text.of_string text in
  let all_t = Pattern.make (String.make 100 't') in
  let self = Pattern.make (String.sub text 0 100) in
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () -> T.set_enabled false)
    (fun () ->
      let before = T.snapshot () in
      ignore (Packed_text.hamming pt self ~pos:0);
      let mid = T.diff ~since:before (T.snapshot ()) in
      Alcotest.(check int) "calls" 1 mid.T.calls;
      (* 100 lanes at phase 0 → 25 bytes → 4 words *)
      Alcotest.(check int) "words" 4 mid.T.words;
      Alcotest.(check int) "no early exit on a match" 0 mid.T.early_exits;
      let before = T.snapshot () in
      ignore (Packed_text.hamming ~limit:0 pt all_t ~pos:0);
      let mid = T.diff ~since:before (T.snapshot ()) in
      Alcotest.(check int) "early exit counted" 1 mid.T.early_exits;
      Alcotest.(check int) "early exit after one word" 1 mid.T.words);
  (* Disabled: counters stop moving. *)
  let before = T.snapshot () in
  ignore (Packed_text.hamming pt self ~pos:0);
  let after = T.diff ~since:before (T.snapshot ()) in
  Alcotest.(check int) "disarmed" 0 after.T.calls

let () =
  Alcotest.run "verify"
    [
      ( "tables",
        [ Alcotest.test_case "pinned count tables" `Quick test_count_tables ] );
      ( "kernel",
        [
          Alcotest.test_case "word boundaries × phases" `Quick
            test_word_boundaries;
          Alcotest.test_case "mmap-adopted text" `Quick test_mmap_adopted;
          Alcotest.test_case "edge cases" `Quick test_edges;
          Alcotest.test_case "telemetry" `Quick test_telemetry;
          qcheck_equivalence;
          qcheck_limit;
          qcheck_of_packed;
          qcheck_rev;
        ] );
      ( "bench",
        [
          (* Same cross-checks as a `kmm bench verify` run, replayed
             headlessly on a small planted workload: a kernel bug that
             slipped past the unit suite fails here before anyone
             trusts a speedup number. *)
          Alcotest.test_case "bench parity smoke (packed vs byte-scan)" `Quick
            (fun () -> Verify_bench.parity_smoke ());
        ] );
    ]
