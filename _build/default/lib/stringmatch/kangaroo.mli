(** The Landau-Vishkin / Galil-Giancarlo "kangaroo" method (the paper's
    refs [19]/[30]): O(kn) k-mismatch matching by jumping between mismatch
    positions with O(1) longest-common-extension queries.

    This is the strongest *online* baseline class the paper compares
    against, and the verification engine inside the Amir baseline. *)

type t

val make : pattern:string -> text:string -> t
(** Preprocess the pair (suffix array + LCP + RMQ of [pattern#text]). *)

val mismatches_at : t -> pos:int -> limit:int -> int list
(** The first [limit] mismatch offsets (0-based within the pattern) between
    the pattern and the window of text starting at [pos]; fewer are
    returned when the window has fewer mismatches.  Raises
    [Invalid_argument] when the window does not fit. *)

val distance_at : t -> pos:int -> k:int -> int option
(** [Some d] with [d <= k] if the window at [pos] has at most [k]
    mismatches, [None] otherwise.  O(k) per call. *)

val search : pattern:string -> text:string -> k:int -> (int * int) list
(** All [(position, mismatches)] with at most [k] mismatches, ascending.
    O(kn) after O(m + n) preprocessing. *)

val positions : pattern:string -> text:string -> k:int -> int list
