(** A search hit: [(position, distance)] as produced by every k-mismatch
    engine. *)

type t = int * int

val compare : t -> t -> int
(** Lexicographic order by position, then distance — a monomorphic
    comparator so engine result sorts never fall into polymorphic
    [Stdlib.compare]. *)
