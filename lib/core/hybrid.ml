module Fm = Fmindex.Fm_index
module Packed_text = Fmindex.Packed_text

let search ?(use_delta = true) ?stats ?ptext fm ~text ~pattern ~k =
  if pattern = "" then invalid_arg "Hybrid.search: empty pattern";
  if k < 0 then invalid_arg "Hybrid.search: negative k";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c && c = Dna.Alphabet.normalize c) then
        invalid_arg "Hybrid.search: pattern must be lowercase acgt")
    pattern;
  let m = String.length pattern in
  let k = min k m in
  (* budgets beyond m behave exactly like k = m *)
  let n = Fm.length fm in
  if n <> String.length text then
    invalid_arg "Hybrid.search: index and text lengths differ";
  let bump (f : Stats.t -> unit) = match stats with Some s -> f s | None -> () in
  if m > n then []
  else begin
    let delta =
      if use_delta then S_tree.delta_heuristic fm ~pattern
      else Array.make (m + 2) 0
    in
    let pat_codes = Array.init m (fun i -> Dna.Alphabet.code pattern.[i]) in
    let results = ref [] in
    let locate_buf = ref [||] in
    let report ((lo, hi) as iv) q =
      let cnt = hi - lo in
      if Array.length !locate_buf < cnt then locate_buf := Array.make cnt 0;
      let buf = !locate_buf in
      Fm.locate_into fm iv buf;
      for i = 0 to cnt - 1 do
        results := (n - Array.unsafe_get buf i - m, q) :: !results
      done
    in
    let one = Array.make 1 0 in
    (* Word-parallel verification when the packed forward text is
       available: pack the pattern once per query.  (The kernel
       recomputes the whole window rather than resuming at [j]; the
       total is the same distance the scalar path reports.) *)
    let packed =
      match ptext with
      | Some pt when Packed_text.length pt = n ->
          Some (pt, Packed_text.Pattern.make pattern)
      | Some _ ->
          invalid_arg "Hybrid.search: packed text and index lengths differ"
      | None -> None
    in
    (* Direct verification of the window once its start is pinned down:
       [j] pattern characters already matched with [q] mismatches. *)
    let verify pos j q =
      if pos + m <= n then begin
        match packed with
        | Some (pt, pp) ->
            let d = Packed_text.hamming ~limit:k pt pp ~pos in
            if d <= k then results := (pos, d) :: !results
        | None ->
            let rec go j q =
              if q > k then ()
              else if j = m then results := (pos, q) :: !results
              else go (j + 1) (if text.[pos + j] = pattern.[j] then q else q + 1)
            in
            go j q
      end
    in
    let rec expand iv j q =
      Deadline.poll ();
      let lo, hi = iv in
      if j = m then begin
        bump (fun s -> s.leaves <- s.leaves + 1);
        report iv q
      end
      else if hi - lo = 1 then begin
        (* Unique candidate: leave the BWT and compare text directly. *)
        bump (fun s -> s.resumes <- s.resumes + 1);
        Fm.locate_into fm iv one;
        verify (n - one.(0) - j) j q
      end
      else begin
        let los = Array.make 5 0 and his = Array.make 5 0 in
        bump (fun s -> s.rank_calls <- s.rank_calls + 2);
        Fm.extend_all fm iv ~los ~his;
        for c = 1 to 4 do
          if los.(c) < his.(c) then begin
            let q' = if c = pat_codes.(j) then q else q + 1 in
            if q' <= k && ((not use_delta) || k - q' >= delta.(j + 2)) then begin
              bump (fun s -> s.nodes <- s.nodes + 1);
              expand (los.(c), his.(c)) (j + 1) q'
            end
          end
        done
      end
    in
    expand (Fm.whole fm) 0 0;
    List.sort Hit.compare !results
  end
