(** Naive O(mn) string matching with k mismatches; the ground-truth oracle
    against which every index-based engine is tested. *)

val distance_at : pattern:string -> text:string -> pos:int -> int
(** Hamming distance between [pattern] and [text[pos .. pos+m-1]].  Raises
    [Invalid_argument] if the window does not fit. *)

val search : pattern:string -> text:string -> k:int -> (int * int) list
(** All [(position, mismatches)] with [mismatches <= k], ascending by
    position.  Scanning aborts early per window once the budget is
    exceeded. *)

val positions : pattern:string -> text:string -> k:int -> int list
