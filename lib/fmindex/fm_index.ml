type interval = int * int

module A1 = Bigarray.Array1

(* The index owns no byte-per-character copy of anything: the BWT
   payload lives inside [occ]'s interleaved rank blocks (2 bits/base),
   the forward text is kept 2-bit packed with the unpacked string
   materialized on demand behind a domain-safe memo, the sentinel row is
   tracked out-of-band, and suffix-array samples are a marked-row
   bitvector with a rank directory plus a flat word array —
   [position_of_row] allocates nothing.  Every bulk buffer is a
   [Storage.t]/[Storage.words], so a loaded index is either heap-owned
   (Copy mode, any format) or a set of views over an mmap'd format-v4
   file (Mmap mode) — the query paths cannot tell the difference. *)
type t = {
  n : int;  (* text length *)
  ptext : Packed_text.t;  (* forward text, 2-bit packed *)
  text : string Storage.Memo.t;  (* unpacked text, built on first use *)
  occ : Occ.t;
  c_array : int array;  (* c_array.(c) = # characters with code < c in BWT *)
  sa_rate : int;
  sentinel_row : int;
  marks : Storage.t;  (* bit per row 0..n: row sampled? *)
  mark_cum : int array;  (* sampled rows before each 64-row chunk *)
  samples : Storage.words;  (* text position of each sampled row, row order *)
}

let sigma = Dna.Alphabet.sigma

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)

(* Hot-path accounting for the observability layer: how many rank
   primitives ran, how many interleaved Occ blocks they decoded, and how
   much LF walking [locate] did.  Counters live in domain-local storage,
   so concurrent engines never contend and per-domain deltas merge to
   the sequential totals (they are sums).  The whole hook sits behind
   one global flag: disabled (the default), every instrumented entry
   point pays a single load-and-branch; [compiled = false] removes even
   that (the conditional becomes a structural constant and the hooks are
   dead code). *)
module Telemetry = struct
  type counters = {
    mutable rank_ops : int;
    mutable block_decodes : int;
    mutable locate_walks : int;
    mutable locate_steps : int;
  }

  (* The compile-out switch: a structural constant, so with [false] the
     optimizer drops every hook body. *)
  let compiled = true

  let flag = Atomic.make false
  let set_enabled b = Atomic.set flag b
  let is_enabled () = compiled && Atomic.get flag

  let key =
    Domain.DLS.new_key (fun () ->
        { rank_ops = 0; block_decodes = 0; locate_walks = 0; locate_steps = 0 })

  let cell () = Domain.DLS.get key

  let snapshot () =
    let c = cell () in
    {
      rank_ops = c.rank_ops;
      block_decodes = c.block_decodes;
      locate_walks = c.locate_walks;
      locate_steps = c.locate_steps;
    }

  let diff ~since c =
    {
      rank_ops = c.rank_ops - since.rank_ops;
      block_decodes = c.block_decodes - since.block_decodes;
      locate_walks = c.locate_walks - since.locate_walks;
      locate_steps = c.locate_steps - since.locate_steps;
    }
end

(* ------------------------------------------------------------------ *)
(* Marked-row bitvector                                                 *)

let pop8 = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let mark_test (marks : Storage.t) row =
  (A1.get marks (row lsr 3) lsr (row land 7)) land 1 = 1

let mark_set (marks : Storage.t) row =
  A1.set marks (row lsr 3) (A1.get marks (row lsr 3) lor (1 lsl (row land 7)))

(* Number of marked rows strictly before [row]. *)
let mark_rank t row =
  let chunk = row lsr 6 in
  let acc = ref (Array.unsafe_get t.mark_cum chunk) in
  let first_byte = chunk lsl 3 in
  for b = first_byte to (row lsr 3) - 1 do
    acc := !acc + Array.unsafe_get pop8 (A1.unsafe_get t.marks b)
  done;
  let partial = row land 7 in
  if partial <> 0 then
    acc :=
      !acc
      + Array.unsafe_get pop8
          (A1.unsafe_get t.marks (row lsr 3) land ((1 lsl partial) - 1));
  !acc

(* Build the rank directory over a marks bitvector of [rows] rows and
   return the total number of marked rows. *)
let build_mark_cum (marks : Storage.t) rows =
  let nchunks = (rows + 63) / 64 in
  let cum = Array.make (max 1 nchunks) 0 in
  let total = ref 0 in
  for b = 0 to Storage.length marks - 1 do
    if b land 7 = 0 && b lsr 3 < nchunks then cum.(b lsr 3) <- !total;
    total := !total + pop8.(A1.get marks b)
  done;
  (cum, !total)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

let c_array_of_counts counts =
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  c_array

(* Memo for an index whose text string is not in hand: unpack the 2-bit
   payload on first use. *)
let text_memo_of_packed ptext =
  Storage.Memo.make (fun () -> Packed_text.to_string ptext)

let build ?(occ_rate = 32) ?(sa_rate = 16) text =
  if sa_rate <= 0 then invalid_arg "Fm_index.build: sa_rate must be positive";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c) || c <> Dna.Alphabet.normalize c then
        invalid_arg "Fm_index.build: text must be lowercase acgt")
    text;
  let n = String.length text in
  let sa = Suffix.Suffix_array.build text in
  let packed, sentinel_row = Bwt.packed_of_suffix_array text sa in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Row i of the matrix of text^"$" corresponds to suffix position:
     row 0 -> n (the sentinel suffix), row i+1 -> sa.(i).  Sample rows
     whose position is a multiple of sa_rate so any locate walk ends
     within sa_rate LF steps. *)
  let marks = Storage.create ((n + 8) / 8) in
  mark_set marks 0;
  let nsamples = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      mark_set marks (i + 1);
      incr nsamples
    end
  done;
  let samples = Storage.create_words !nsamples in
  Storage.set_word samples 0 n;
  let j = ref 1 in
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then begin
      Storage.set_word samples !j sa.(i);
      incr j
    end
  done;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  assert (total = !nsamples);
  {
    n;
    ptext = Packed_text.of_string text;
    text = Storage.Memo.make (fun () -> text);
    occ;
    c_array;
    sa_rate;
    sentinel_row;
    marks;
    mark_cum;
    samples;
  }

let length t = t.n
let text t = Storage.Memo.force t.text
let packed_text t = t.ptext
let bwt t = String.init (Occ.length t.occ) (fun row -> Dna.Alphabet.of_code (Occ.get t.occ row))
let whole t = (0, Occ.length t.occ)

(* ------------------------------------------------------------------ *)
(* Backward search                                                      *)

let extend t c (lo, hi) =
  if c <= 0 || c >= sigma then None
  else begin
    if Telemetry.is_enabled () then begin
      let tc = Telemetry.cell () in
      tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + 1;
      tc.Telemetry.block_decodes <-
        (tc.Telemetry.block_decodes + if hi = lo + 1 then 1 else 2)
    end;
    let r_lo, r_hi = Occ.rank_pair t.occ c lo hi in
    let lo' = t.c_array.(c) + r_lo in
    let hi' = t.c_array.(c) + r_hi in
    if lo' < hi' then Some (lo', hi') else None
  end

let interval_of_char t c = extend t c (whole t)

(* Character codes of a pattern, case folded; [None] when any character
   is outside ACGT (such a pattern occurs nowhere rather than raising). *)
let codes_of_pattern pat =
  let m = String.length pat in
  let codes = Array.make m 0 in
  let ok = ref true in
  for i = 0 to m - 1 do
    match Dna.Alphabet.code_opt pat.[i] with
    | Some c when c > 0 -> codes.(i) <- c
    | _ -> ok := false
  done;
  if !ok then Some codes else None

let search t pat =
  match codes_of_pattern pat with
  | None -> None
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Some (whole t)
      else begin
        let rec go i iv =
          if i < 0 then Some iv
          else match extend t codes.(i) iv with None -> None | Some iv' -> go (i - 1) iv'
        in
        go (m - 1) (whole t)
      end

(* [count] is [search] unrolled into an allocation-free loop: no interval
   options, no per-step tuples, and the shared-decode pair kernel doing
   the two rank queries of each step.  The unchecked kernel is sound
   here: [codes_of_pattern] proves every [c] is in 1..sigma-1, and the
   interval arithmetic keeps [0 <= lo <= hi <= length] invariant. *)
let count t pat =
  match codes_of_pattern pat with
  | None -> 0
  | Some codes ->
      let m = Array.length codes in
      if m = 0 then Occ.length t.occ
      else begin
        let measured = Telemetry.is_enabled () in
        let ops = ref 0 and decodes = ref 0 in
        let lo = ref 0 and hi = ref (Occ.length t.occ) in
        let pr = Array.make 2 0 in
        let i = ref (m - 1) in
        while !i >= 0 && !lo < !hi do
          let c = Array.unsafe_get codes !i in
          if measured then begin
            Stdlib.incr ops;
            decodes := !decodes + (if !hi = !lo + 1 then 1 else 2)
          end;
          Occ.rank_pair_into_unsafe t.occ c !lo !hi pr;
          let cc = Array.unsafe_get t.c_array c in
          lo := cc + Array.unsafe_get pr 0;
          hi := cc + Array.unsafe_get pr 1;
          decr i
        done;
        if measured then begin
          let tc = Telemetry.cell () in
          tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + !ops;
          tc.Telemetry.block_decodes <- tc.Telemetry.block_decodes + !decodes
        end;
        if !hi > !lo then !hi - !lo else 0
      end

let lf t row =
  let c, r = Occ.char_rank t.occ row in
  t.c_array.(c) + r

(* A legitimate LF walk reaches a marked row within [sa_rate] steps
   (positions decrease by one per step and every sa_rate-th is marked).
   A corrupted Occ payload — reachable only through an mmap'd load,
   which skips the payload CRCs — could otherwise cycle through
   unmarked rows forever; the bound turns that hang into an exception. *)
let walk_overrun () =
  failwith "Fm_index.locate: LF walk exceeded the sample rate (corrupt index?)"

let position_of_row t row =
  if Telemetry.is_enabled () then begin
    let row = ref row and steps = ref 0 in
    while not (mark_test t.marks !row) do
      row := lf t !row;
      Stdlib.incr steps;
      if !steps > t.sa_rate then walk_overrun ()
    done;
    let tc = Telemetry.cell () in
    tc.Telemetry.locate_walks <- tc.Telemetry.locate_walks + 1;
    tc.Telemetry.locate_steps <- tc.Telemetry.locate_steps + !steps;
    (* Each LF step is one rank over the block holding its row. *)
    tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + !steps;
    tc.Telemetry.block_decodes <- tc.Telemetry.block_decodes + !steps;
    Storage.word t.samples (mark_rank t !row) + !steps
  end
  else begin
    let rec walk row steps =
      if mark_test t.marks row then Storage.word t.samples (mark_rank t row) + steps
      else if steps >= t.sa_rate then walk_overrun ()
      else walk (lf t row) (steps + 1)
    in
    walk row 0
  end

let locate_into t (lo, hi) dst =
  let rows = Occ.length t.occ in
  if lo < 0 || hi > rows || lo > hi then invalid_arg "Fm_index.locate_into: bad interval";
  if Array.length dst < hi - lo then invalid_arg "Fm_index.locate_into: buffer too small";
  for row = lo to hi - 1 do
    Array.unsafe_set dst (row - lo) (position_of_row t row)
  done

let locate t (lo, hi) =
  if hi <= lo then []
  else begin
    let buf = Array.make (hi - lo) 0 in
    locate_into t (lo, hi) buf;
    Array.sort Int.compare buf;
    (* Distinct rows resolve to distinct suffix positions, so no dedup
       pass is needed. *)
    Array.to_list buf
  end

let find_all t pat =
  match search t pat with None -> [] | Some iv -> locate t iv

let space_report t =
  [
    ("packed bwt + rank blocks", Occ.space_bytes t.occ);
    ("sa marks (bitvector + rank dir)",
     Storage.length t.marks + (8 * Array.length t.mark_cum));
    ("sa samples", 8 * Storage.length_words t.samples);
    ("c array", 8 * sigma);
    ("packed text (2 bit/base)", Storage.length (Packed_text.storage t.ptext));
  ]

let extend_all t (lo, hi) ~los ~his =
  (* One boundary check here, then the unchecked pair kernel: engines
     call this millions of times per read with intervals they derived
     from [whole]/previous extensions, so the in-range invariant holds
     and per-call revalidation inside [Occ] would be pure overhead. *)
  if lo < 0 || hi < lo || hi > Occ.length t.occ then
    invalid_arg "Fm_index.extend_all: interval out of range";
  if Array.length los <> sigma || Array.length his <> sigma then
    invalid_arg "Fm_index.extend_all: bad dst size";
  if Telemetry.is_enabled () then begin
    let tc = Telemetry.cell () in
    tc.Telemetry.rank_ops <- tc.Telemetry.rank_ops + 1;
    (* The pair kernel decodes one block for a width-1 interval, two
       otherwise. *)
    tc.Telemetry.block_decodes <-
      (tc.Telemetry.block_decodes + if hi = lo + 1 then 1 else 2)
  end;
  Occ.rank_all_pair_unsafe t.occ lo hi los his;
  for c = 0 to sigma - 1 do
    let base = Array.unsafe_get t.c_array c in
    Array.unsafe_set los c (base + Array.unsafe_get los c);
    Array.unsafe_set his c (base + Array.unsafe_get his c)
  done

(* --- persistence ----------------------------------------------------- *)

(* Format v4 (current): three ASCII header lines

       "kmm-fm-index 4 <n> <occ_rate> <sa_rate> <sentinel_row> <nsamples>
        <blocks_bytes> <super_len> <a_total> <c_total> <g_total> <t_total>\n"
       "sections" + 5x " %012d %012d %08x" (offset, length, CRC-32) + "\n"
       "hcrc %08x\n"   (CRC-32 of the two preceding lines)

   followed by the same five binary little-endian sections as v2/v3 —
     1. packed text          ceil(n/4) bytes (2-bit codes, 4 bases/byte)
     2. occ blocks           <blocks_bytes> bytes (interleaved counts+payload)
     3. occ superblocks      <super_len> * 8 bytes (int64)
     4. sa marks bitvector   ceil((n+1)/8) bytes
     5. sa samples           <nsamples> * 8 bytes (int64)
   — each placed at the 8-byte-aligned offset its table entry records
   (zero padding in the gaps), and an 8-byte trailer: the ASCII magic
   "kmm4" plus the 4-byte LE CRC-32 of every preceding byte of the file.

   The alignment + explicit offset table is what makes the file
   mmap-adoptable: every section can be turned into a Bigarray view in
   place (the int64 sections need 8-byte alignment), so [load
   ~mode:Mmap] touches O(header + superblocks + marks) bytes instead of
   O(file).  The header CRC lets both readers trust the geometry before
   doing anything with it; the per-section CRCs attribute corruption;
   the whole-file trailer covers what they cannot (header, padding, the
   checksum fields themselves) and doubles as an end-of-file marker.
   The Copy reader checks everything, so any single-byte corruption or
   truncation is detected deterministically; the Mmap reader checks the
   header CRC, geometry, file size and trailer magic but — by design —
   not the bulk payload CRCs, trading detection of payload rot for the
   cold-start win ([kmm verify] runs the full Copy validation).

   Loading adopts the buffers directly; no BWT inversion, no LF walk.
   The v3 format (one header line + sections + CRCs, unaligned), the v2
   format (same, no checksums) and the v1 format (packed BWT only,
   reconstructing reader) are still read, guarded by committed
   fixtures. *)

let magic = "kmm-fm-index"
let trailer_magic_v3 = "kmm3"
let trailer_magic_v4 = "kmm4"

let bytes_of_ints a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.of_int v)) a;
  b

let ints_of_string s =
  Array.init (String.length s / 8) (fun i -> Int64.to_int (String.get_int64_le s (i * 8)))

let le32_of_int v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let int_of_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* --- serialization ---------------------------------------------------- *)

let header_line ~version t =
  Printf.sprintf "%s %d %d %d %d %d %d %d %d\n" magic version t.n (Occ.rate t.occ)
    t.sa_rate t.sentinel_row
    (Storage.length_words t.samples)
    (Storage.length (Occ.raw_blocks t.occ))
    (Array.length (Occ.raw_super t.occ))

let sections t =
  [
    Packed_text.payload_string t.ptext;
    Storage.to_string (Occ.raw_blocks t.occ);
    Bytes.unsafe_to_string (bytes_of_ints (Occ.raw_super t.occ));
    Storage.to_string t.marks;
    Storage.words_to_string t.samples;
  ]

let align8 x = (x + 7) land lnot 7

(* Fixed-width section-table geometry: "sections" + 5 entries of
   " <12-digit offset> <12-digit length> <8-hex CRC>" + "\n". *)
let section_table_len = 8 + (5 * (1 + 12 + 1 + 12 + 1 + 8)) + 1
let hcrc_line_len = String.length "hcrc " + 8 + 1

(* The whole v4 file as one in-memory image: serialization is separated
   from file I/O so the byte-sweep tests (and the fuzz oracle) can
   corrupt and re-parse images without touching the filesystem. *)
let serialize t =
  let secs = sections t in
  let counts = Occ.counts t.occ in
  let l1 =
    Printf.sprintf "%s 4 %d %d %d %d %d %d %d %d %d %d %d\n" magic t.n
      (Occ.rate t.occ) t.sa_rate t.sentinel_row
      (Storage.length_words t.samples)
      (Storage.length (Occ.raw_blocks t.occ))
      (Array.length (Occ.raw_super t.occ))
      counts.(1) counts.(2) counts.(3) counts.(4)
  in
  let hdr_len = String.length l1 + section_table_len + hcrc_line_len in
  let offs =
    let rec go cur = function
      | [] -> []
      | s :: rest ->
          let off = align8 cur in
          off :: go (off + String.length s) rest
    in
    go hdr_len secs
  in
  (if List.exists (fun off -> off > 999_999_999_999) offs then
     invalid_arg "Fm_index.serialize: index too large for the v4 section table");
  let l2buf = Buffer.create section_table_len in
  Buffer.add_string l2buf "sections";
  List.iter2
    (fun off s ->
      Buffer.add_string l2buf
        (Printf.sprintf " %012d %012d %08x" off (String.length s) (Crc32.string s)))
    offs secs;
  Buffer.add_char l2buf '\n';
  let l2 = Buffer.contents l2buf in
  assert (String.length l2 = section_table_len);
  let l3 = Printf.sprintf "hcrc %08x\n" (Crc32.string ~init:(Crc32.string l1) l2) in
  let buf = Buffer.create (4096 + hdr_len + (t.n / 2)) in
  let crc = ref 0 in
  let add s =
    Buffer.add_string buf s;
    crc := Crc32.string ~init:!crc s
  in
  add l1;
  add l2;
  add l3;
  List.iter2
    (fun off s ->
      let cur = Buffer.length buf in
      if off > cur then add (String.make (off - cur) '\000');
      add s)
    offs secs;
  add trailer_magic_v4;
  Buffer.add_string buf (le32_of_int !crc);
  Buffer.contents buf

let serialize_v3 t =
  let buf = Buffer.create (4096 + (2 * t.n)) in
  let crc = ref 0 in
  let add s =
    Buffer.add_string buf s;
    crc := Crc32.string ~init:!crc s
  in
  add (header_line ~version:3 t);
  List.iter
    (fun payload ->
      add payload;
      add (le32_of_int (Crc32.string payload)))
    (sections t);
  add trailer_magic_v3;
  Buffer.add_string buf (le32_of_int !crc);
  Buffer.contents buf

let serialize_v2 t =
  let buf = Buffer.create (4096 + (2 * t.n)) in
  Buffer.add_string buf (header_line ~version:2 t);
  List.iter (Buffer.add_string buf) (sections t);
  Buffer.contents buf

(* --- atomic, crash-safe file writing ---------------------------------- *)

type sink = { sink_write : string -> unit; sink_flush : unit -> unit }

(* Write [image] to [path] atomically: stream into a same-directory temp
   file, flush + fsync, close, then rename over [path].  On {e any}
   failure (including one injected through [wrap]) the temp file is
   removed and [path] is untouched; every fd is released via
   [Fun.protect].  [wrap] interposes on the byte stream — the
   fault-injection hook the crash-safety tests drive. *)
let write_atomic ?(fsync = true) ?(wrap = fun (s : sink) -> s) image path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".kmm-save-" ".tmp" in
  (* [Filename.temp_file] creates at mode 0o600, and rename preserves
     it — which would leave every saved index unreadable to other
     users.  Widen to the usual 0o644 minus the process umask before
     any data lands in the file. *)
  (try
     let um = Unix.umask 0 in
     ignore (Unix.umask um);
     Unix.chmod tmp (0o644 land lnot um)
   with Unix.Unix_error _ -> ());
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (match
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         let base =
           {
             sink_write = (fun s -> output_string oc s);
             sink_flush =
               (fun () ->
                 flush oc;
                 if fsync then Unix.fsync (Unix.descr_of_out_channel oc));
           }
         in
         let s = wrap base in
         (* Chunked writes, so injected faults see the same granularity a
            real kernel write path would. *)
         let len = String.length image in
         let chunk = 65536 in
         let pos = ref 0 in
         while !pos < len do
           let l = min chunk (len - !pos) in
           s.sink_write (String.sub image !pos l);
           pos := !pos + l
         done;
         s.sink_flush ())
   with
  | () -> ()
  | exception e ->
      cleanup ();
      raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      cleanup ();
      raise e);
  (* Best-effort directory sync so the rename itself survives a crash. *)
  if fsync then
    try
      let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
      Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
    with Unix.Unix_error _ | Sys_error _ -> ()

let save ?fsync ?wrap t path = write_atomic ?fsync ?wrap (serialize t) path
let save_v3 ?fsync ?wrap t path = write_atomic ?fsync ?wrap (serialize_v3 t) path
let save_v2 ?fsync ?wrap t path = write_atomic ?fsync ?wrap (serialize_v2 t) path

(* --- parsing ----------------------------------------------------------- *)

(* All readers parse an in-memory image through a cursor; every length is
   validated against the remaining bytes {e before} any slice or
   allocation, so a forged header can produce [Truncated]/[Corrupt] but
   never [Out_of_memory] or [End_of_file]. *)

exception Fail of Kmm_error.t

let fail e = raise (Fail e)
let corrupt section detail = fail (Kmm_error.Corrupt (section, detail))

type reader = { image : string; mutable pos : int }

let remaining r = String.length r.image - r.pos

let take r ~what n =
  if n < 0 || n > remaining r then fail (Kmm_error.Truncated what);
  let s = String.sub r.image r.pos n in
  r.pos <- r.pos + n;
  s

(* Like [input_line]: up to ['\n'] (consumed) or end of image. *)
let take_line r =
  match String.index_from_opt r.image r.pos '\n' with
  | Some i ->
      let s = String.sub r.image r.pos (i - r.pos) in
      r.pos <- i + 1;
      s
  | None ->
      let s = String.sub r.image r.pos (remaining r) in
      r.pos <- String.length r.image;
      s

let take_crc r ~what = int_of_le32 (take r ~what:(what ^ " checksum") 4) 0

let at_end r = remaining r = 0

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> corrupt Kmm_error.Header (Printf.sprintf "unparsable %s field" what)

let hex_field what s =
  if String.length s <> 8 then
    corrupt Kmm_error.Header (Printf.sprintf "unparsable %s field" what)
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> corrupt Kmm_error.Header (Printf.sprintf "unparsable %s field" what)

(* Shared header sanity: a forged or bit-flipped header must fail with
   the same friendly error as an unparsable one, and must never be
   allowed to drive a huge allocation (every derived length is bounded by
   the image size through [take], and for v4 by the exact-file-size
   equation). *)
let check_header_ranges ~n ~occ_rate ~sa_rate ~sentinel_row =
  if n < 0 || occ_rate <= 0 || sa_rate <= 0 || sentinel_row < 0 || sentinel_row > n
  then corrupt Kmm_error.Header "field out of range"

(* --- v1 reader (reconstructing) -------------------------------------- *)

let load_v1 r fields =
  let n, occ_rate, sa_rate, sentinel_row =
    match fields with
    | [ n; occ_rate; sa_rate; sentinel_row ] ->
        ( int_field "n" n, int_field "occ_rate" occ_rate, int_field "sa_rate" sa_rate,
          int_field "sentinel_row" sentinel_row )
    | _ -> corrupt Kmm_error.Header "wrong field count"
  in
  check_header_ranges ~n ~occ_rate ~sa_rate ~sentinel_row;
  let payload = take r ~what:"payload" ((n + 3) / 4) in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  let packed = Packed_text.of_bytes payload ~len:n in
  let occ = Occ.of_packed ~rate:occ_rate ~sentinels:[| sentinel_row |] packed in
  let c_array = c_array_of_counts (Occ.counts occ) in
  (* Rebuild text and SA samples with one LF walk: starting from row 0
     (the row whose suffix is the bare sentinel, position n) and
     following LF visits positions n, n-1, ..., 0 in order. *)
  let text_buf = Bytes.create n in
  let pairs = ref [] in
  let npairs = ref 0 in
  let row = ref 0 in
  for pos = n downto 0 do
    if pos mod sa_rate = 0 || pos = n then begin
      pairs := (!row, pos) :: !pairs;
      incr npairs
    end;
    if pos > 0 then begin
      let c, rk = Occ.char_rank occ !row in
      if c = 0 then
        (* The sentinel can only ever be read at position 0. *)
        corrupt Kmm_error.Text_section "broken LF cycle in payload";
      Bytes.set text_buf (pos - 1) (Dna.Alphabet.of_code c);
      row := c_array.(c) + rk
    end
  done;
  let sorted = List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) !pairs in
  let marks = Storage.create ((n + 8) / 8) in
  let samples = Storage.create_words !npairs in
  List.iteri
    (fun i (rw, p) ->
      mark_set marks rw;
      Storage.set_word samples i p)
    sorted;
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> !npairs then corrupt Kmm_error.Sa_marks "sample count mismatch";
  let text = Bytes.unsafe_to_string text_buf in
  {
    n;
    ptext = Packed_text.of_string text;
    text = Storage.Memo.make (fun () -> text);
    occ;
    c_array;
    sa_rate;
    sentinel_row;
    marks;
    mark_cum;
    samples;
  }

(* --- v2 / v3 / v4 readers (adopting) ----------------------------------- *)

type v2_header = {
  h_n : int;
  h_occ_rate : int;
  h_sa_rate : int;
  h_sentinel_row : int;
  h_nsamples : int;
  h_blocks_bytes : int;
  h_super_len : int;
}

let make_header n occ_rate sa_rate sentinel_row nsamples blocks_bytes super_len =
  let h =
    {
      h_n = int_field "n" n;
      h_occ_rate = int_field "occ_rate" occ_rate;
      h_sa_rate = int_field "sa_rate" sa_rate;
      h_sentinel_row = int_field "sentinel_row" sentinel_row;
      h_nsamples = int_field "nsamples" nsamples;
      h_blocks_bytes = int_field "blocks_bytes" blocks_bytes;
      h_super_len = int_field "super_len" super_len;
    }
  in
  check_header_ranges ~n:h.h_n ~occ_rate:h.h_occ_rate ~sa_rate:h.h_sa_rate
    ~sentinel_row:h.h_sentinel_row;
  if
    h.h_nsamples < 1 || h.h_nsamples > h.h_n + 1 || h.h_blocks_bytes < 0
    || h.h_super_len < 0
  then corrupt Kmm_error.Header "field out of range";
  h

let parse_v2_header fields =
  match fields with
  | [ n; occ_rate; sa_rate; sentinel_row; nsamples; blocks_bytes; super_len ] ->
      make_header n occ_rate sa_rate sentinel_row nsamples blocks_bytes super_len
  | _ -> corrupt Kmm_error.Header "wrong field count"

(* v4 header: the v2/v3 fields plus the four character totals, which let
   the mmap reader skip the O(n) payload recount. *)
let parse_v4_header fields =
  match fields with
  | [ n; occ_rate; sa_rate; sentinel_row; nsamples; blocks_bytes; super_len;
      ca; cc; cg; ct ] ->
      let h =
        make_header n occ_rate sa_rate sentinel_row nsamples blocks_bytes super_len
      in
      let tot what s =
        let v = int_field what s in
        if v < 0 then corrupt Kmm_error.Header "field out of range";
        v
      in
      let totals =
        [| 1; tot "a_total" ca; tot "c_total" cc; tot "g_total" cg; tot "t_total" ct |]
      in
      if totals.(1) + totals.(2) + totals.(3) + totals.(4) <> h.h_n then
        corrupt Kmm_error.Header "character totals do not sum to length";
      (h, totals)
  | _ -> corrupt Kmm_error.Header "wrong field count"

(* Expected byte length of each v4 section, in file order, from a
   validated header. *)
let v4_section_lens h =
  [
    (h.h_n + 3) / 4;
    h.h_blocks_bytes;
    8 * h.h_super_len;
    (h.h_n + 8) / 8;
    8 * h.h_nsamples;
  ]

(* Parse and validate the v4 section-table line (newline stripped)
   against the header geometry: every offset must be the 8-aligned
   successor of the previous section and every length must match the
   header.  Returns offsets and stored CRCs, in section order. *)
let parse_v4_sections h ~hdr_len line =
  if String.length line <> section_table_len - 1 then
    corrupt Kmm_error.Header "bad section table";
  match String.split_on_char ' ' line with
  | "sections" :: rest when List.length rest = 15 ->
      let rec triples = function
        | [] -> []
        | off :: len :: crc :: rest ->
            ( int_field "section offset" off,
              int_field "section length" len,
              hex_field "section checksum" crc )
            :: triples rest
        | _ -> corrupt Kmm_error.Header "bad section table"
      in
      let entries = triples rest in
      let expected = v4_section_lens h in
      let cur = ref hdr_len in
      List.iter2
        (fun (off, len, _) exp_len ->
          if off <> align8 !cur then corrupt Kmm_error.Header "section offset mismatch";
          if len <> exp_len then corrupt Kmm_error.Header "section length mismatch";
          cur := off + len)
        entries expected;
      (List.map (fun (off, _, _) -> off) entries,
       List.map (fun (_, _, crc) -> crc) entries)
  | _ -> corrupt Kmm_error.Header "bad section table"

let parse_hcrc_line line =
  if
    String.length line = hcrc_line_len - 1
    && String.sub line 0 5 = "hcrc "
  then hex_field "header checksum" (String.sub line 5 8)
  else corrupt Kmm_error.Header "bad header checksum line"

(* Adopt the five sections of a v2/v3/v4 file into an index, running the
   structural validation (Occ checkpoint recount, text/BWT totals
   cross-check, SA shape checks).  [expect_totals], when given (v4),
   must agree with the recount — the header fields the mmap reader
   trusts are thereby cross-checked on every Copy load. *)
let adopt ?expect_totals h ~text_payload ~blocks ~super ~marks ~samples =
  let n = h.h_n in
  let ptext =
    try Packed_text.of_bytes text_payload ~len:n
    with Invalid_argument _ -> corrupt Kmm_error.Text_section "bad packed payload"
  in
  let occ =
    try
      Occ.of_raw ~rate:h.h_occ_rate ~len:(n + 1)
        ~sentinels:[| h.h_sentinel_row |] ~blocks ~super
    with Invalid_argument msg -> corrupt Kmm_error.Rank_blocks msg
  in
  (* The text section and the rank structure must agree on per-character
     totals (an O(n) lane scan, no reconstruction).  Lane code d of the
     packed text is alphabet code d+1. *)
  let counts = Occ.counts occ in
  let text_counts = Array.make sigma 0 in
  for i = 0 to n - 1 do
    let k = Packed_text.unsafe_get ptext i + 1 in
    text_counts.(k) <- text_counts.(k) + 1
  done;
  for c = 1 to sigma - 1 do
    if text_counts.(c) <> counts.(c) then
      corrupt Kmm_error.Text_section "text and BWT sections disagree"
  done;
  (match expect_totals with
  | None -> ()
  | Some totals ->
      for c = 0 to sigma - 1 do
        if totals.(c) <> counts.(c) then
          corrupt Kmm_error.Header "character totals disagree with payload"
      done);
  (* Clear mark padding bits beyond row n, then check sampling shape. *)
  (let rows = n + 1 in
   if rows land 7 <> 0 then begin
     let last = Storage.length marks - 1 in
     A1.set marks last (A1.get marks last land ((1 lsl (rows land 7)) - 1))
   end);
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> h.h_nsamples then
    corrupt Kmm_error.Sa_marks "sample count mismatch";
  if not (mark_test marks 0) then corrupt Kmm_error.Sa_marks "row 0 unmarked";
  if Storage.word samples 0 <> n then
    corrupt Kmm_error.Sa_samples "row 0 sample wrong";
  for i = 0 to Storage.length_words samples - 1 do
    let p = Storage.word samples i in
    if p < 0 || p > n then corrupt Kmm_error.Sa_samples "sample out of range"
  done;
  {
    n;
    ptext;
    text = text_memo_of_packed ptext;
    occ;
    c_array = c_array_of_counts counts;
    sa_rate = h.h_sa_rate;
    sentinel_row = h.h_sentinel_row;
    marks;
    mark_cum;
    samples;
  }

let load_v2 r fields =
  let h = parse_v2_header fields in
  let n = h.h_n in
  let text_payload = take r ~what:"text section" ((n + 3) / 4) in
  let blocks = Storage.of_string (take r ~what:"rank blocks" h.h_blocks_bytes) in
  let super = ints_of_string (take r ~what:"superblocks" (8 * h.h_super_len)) in
  let marks = Storage.of_string (take r ~what:"sa marks" ((n + 8) / 8)) in
  let samples =
    Storage.words_of_string (take r ~what:"sa samples" (8 * h.h_nsamples))
  in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  adopt h ~text_payload ~blocks ~super ~marks ~samples

let load_v3 r fields =
  let h = parse_v2_header fields in
  let n = h.h_n in
  (* 8 * h_super_len below cannot overflow: the field is bounded by the
     image size through the checks in [take] (a too-large claim fails as
     [Truncated] before any arithmetic on derived offsets matters). *)
  if h.h_super_len > String.length r.image || h.h_nsamples > String.length r.image
  then fail (Kmm_error.Truncated "superblocks");
  let section sec len =
    let what = Kmm_error.section_name sec in
    let payload = take r ~what len in
    let stored = take_crc r ~what in
    if Crc32.string payload <> stored then corrupt sec "checksum mismatch";
    payload
  in
  let text_payload = section Kmm_error.Text_section ((n + 3) / 4) in
  let blocks_s = section Kmm_error.Rank_blocks h.h_blocks_bytes in
  let super_s = section Kmm_error.Superblocks (8 * h.h_super_len) in
  let marks_s = section Kmm_error.Sa_marks ((n + 8) / 8) in
  let samples_s = section Kmm_error.Sa_samples (8 * h.h_nsamples) in
  (* Trailer: magic + CRC-32 of every byte before the trailer CRC field.
     This covers the header and the per-section checksum fields, so a
     flip anywhere in the file fails one of these deterministic checks. *)
  let body_end = r.pos in
  let tmagic = take r ~what:"trailer" 4 in
  if tmagic <> trailer_magic_v3 then corrupt Kmm_error.Trailer "bad trailer magic";
  let stored = take_crc r ~what:"trailer" in
  if not (at_end r) then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  let whole = Crc32.sub r.image ~pos:0 ~len:(body_end + 4) in
  if whole <> stored then corrupt Kmm_error.Trailer "whole-file checksum mismatch";
  adopt h ~text_payload
    ~blocks:(Storage.of_string blocks_s)
    ~super:(ints_of_string super_s)
    ~marks:(Storage.of_string marks_s)
    ~samples:(Storage.words_of_string samples_s)

(* Copy-mode v4 reader: full verification — header CRC, per-section
   CRCs, exact file size, whole-file trailer CRC (which covers the
   alignment padding), then the same structural adoption as v2/v3 plus
   the header-totals cross-check. *)
let load_v4 r fields =
  let h, totals = parse_v4_header fields in
  let l2 = take_line r in
  let l2_end = r.pos in
  let l3 = take_line r in
  let stored_hcrc = parse_hcrc_line l3 in
  if Crc32.sub r.image ~pos:0 ~len:l2_end <> stored_hcrc then
    corrupt Kmm_error.Header "header checksum mismatch";
  let hdr_len = r.pos in
  let offs, crcs = parse_v4_sections h ~hdr_len l2 in
  let lens = v4_section_lens h in
  let last_off = List.nth offs 4 and last_len = List.nth lens 4 in
  let expected_size = last_off + last_len + 8 in
  let size = String.length r.image in
  if size < expected_size then fail (Kmm_error.Truncated "index payload");
  if size > expected_size then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  (* Trailer before sections: it is the cheap whole-file check, and it
     also covers the padding bytes no section CRC sees. *)
  if String.sub r.image (size - 8) 4 <> trailer_magic_v4 then
    corrupt Kmm_error.Trailer "bad trailer magic";
  if Crc32.sub r.image ~pos:0 ~len:(size - 4) <> int_of_le32 r.image (size - 4)
  then corrupt Kmm_error.Trailer "whole-file checksum mismatch";
  let section_names =
    [ Kmm_error.Text_section; Kmm_error.Rank_blocks; Kmm_error.Superblocks;
      Kmm_error.Sa_marks; Kmm_error.Sa_samples ]
  in
  let payloads =
    List.map
      (fun ((off, len), (crc, sec)) ->
        let payload = String.sub r.image off len in
        if Crc32.string payload <> crc then corrupt sec "checksum mismatch";
        payload)
      (List.combine (List.combine offs lens) (List.combine crcs section_names))
  in
  match payloads with
  | [ text_payload; blocks_s; super_s; marks_s; samples_s ] ->
      adopt ~expect_totals:totals h ~text_payload
        ~blocks:(Storage.of_string blocks_s)
        ~super:(ints_of_string super_s)
        ~marks:(Storage.of_string marks_s)
        ~samples:(Storage.words_of_string samples_s)
  | _ -> assert false

let try_of_string image =
  let r = { image; pos = 0 } in
  match
    let header = take_line r in
    match String.split_on_char ' ' header with
    | m :: version :: fields when m = magic -> (
        match version with
        | "1" -> load_v1 r fields
        | "2" -> load_v2 r fields
        | "3" -> load_v3 r fields
        | "4" -> load_v4 r fields
        | v -> (
            match int_of_string_opt v with
            | Some nv -> fail (Kmm_error.Unsupported_version nv)
            | None -> fail Kmm_error.Bad_magic))
    | _ -> fail Kmm_error.Bad_magic
  with
  | t -> Ok t
  | exception Fail e -> Error e
  | exception e ->
      (* A reader bug, not a property of the file: surface it as such
         rather than masking it as corruption. *)
      Error (Kmm_error.Internal (Printexc.to_string e))

(* Chunked read-to-EOF: never trusts [in_channel_length], so a file that
   shrinks mid-read or a size probe confused by a proc-style file cannot
   escape as an untyped [End_of_file], and the only failure above
   [Sys.max_string_length] is the [Buffer] size limit ([Failure]),
   mapped to a typed error by [try_load]. *)
let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let rec go () =
        let got = input ic chunk 0 65536 in
        if got > 0 then begin
          Buffer.add_subbytes buf chunk 0 got;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let try_load_copy path =
  match read_whole_file path with
  | image -> try_of_string image
  | exception (Sys_error _ as e) -> Error (Kmm_error.Io e)
  | exception End_of_file -> Error (Kmm_error.Truncated "index file")
  | exception Failure msg -> Error (Kmm_error.Io (Failure msg))

(* --- mmap loader ------------------------------------------------------- *)

let read_exact fd ~pos ~len ~what =
  let b = Bytes.create len in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let got = ref 0 in
  while !got < len do
    let k = Unix.read fd b !got (len - !got) in
    if k = 0 then fail (Kmm_error.Truncated what);
    got := !got + k
  done;
  Bytes.unsafe_to_string b

(* Mmap-mode v4 reader.  Validation model: the header lines are read,
   CRC-checked and range-checked exactly like the Copy reader, the file
   size must match the geometry to the byte, and the trailer magic must
   be present — so truncation and any header-byte corruption are still
   detected.  The bulk payload CRCs and the O(n) structural recount are
   deliberately skipped (that is the entire cold-start win); geometry
   validation keeps every derived offset in bounds and the LF walk in
   [position_of_row] is capped at [sa_rate] steps, so a corrupted
   payload yields wrong answers or a clean exception — never
   memory-unsafety, never a hang.  [kmm verify] re-reads the file in
   Copy mode for the full check. *)
let load_v4_mmap fd ~size r fields =
  let h, totals = parse_v4_header fields in
  let l2 = take_line r in
  let l2_end = r.pos in
  let l3 = take_line r in
  let stored_hcrc = parse_hcrc_line l3 in
  if Crc32.sub r.image ~pos:0 ~len:l2_end <> stored_hcrc then
    corrupt Kmm_error.Header "header checksum mismatch";
  let hdr_len = r.pos in
  let offs, _crcs = parse_v4_sections h ~hdr_len l2 in
  let lens = v4_section_lens h in
  let last_off = List.nth offs 4 and last_len = List.nth lens 4 in
  let expected_size = last_off + last_len + 8 in
  if size < expected_size then fail (Kmm_error.Truncated "index payload");
  if size > expected_size then
    corrupt Kmm_error.Trailer "trailing garbage after index payload";
  let trailer = read_exact fd ~pos:(size - 8) ~len:8 ~what:"trailer" in
  if String.sub trailer 0 4 <> trailer_magic_v4 then
    corrupt Kmm_error.Trailer "bad trailer magic";
  let off i = List.nth offs i and len i = List.nth lens i in
  let n = h.h_n in
  let ptext =
    try
      Packed_text.of_storage (Storage.map_bytes fd ~pos:(off 0) ~len:(len 0)) ~len:n
    with Invalid_argument _ -> corrupt Kmm_error.Text_section "bad packed payload"
  in
  let blocks = Storage.map_bytes fd ~pos:(off 1) ~len:(len 1) in
  (* Superblocks are tiny (4 ints per 64 Ki bases): read them into the
     int array the rank kernel wants rather than keeping a mapping. *)
  let super = ints_of_string (read_exact fd ~pos:(off 2) ~len:(len 2) ~what:"superblocks") in
  let marks = Storage.map_bytes fd ~pos:(off 3) ~len:(len 3) in
  let samples = Storage.map_words fd ~pos:(off 4) ~len:h.h_nsamples in
  let occ =
    try
      Occ.of_raw_trusted ~rate:h.h_occ_rate ~len:(n + 1)
        ~sentinels:[| h.h_sentinel_row |] ~blocks ~super ~totals
    with Invalid_argument msg -> corrupt Kmm_error.Rank_blocks msg
  in
  (let rows = n + 1 in
   if rows land 7 <> 0 then begin
     let last = Storage.length marks - 1 in
     A1.set marks last (A1.get marks last land ((1 lsl (rows land 7)) - 1))
   end);
  let mark_cum, total = build_mark_cum marks (n + 1) in
  if total <> h.h_nsamples then corrupt Kmm_error.Sa_marks "sample count mismatch";
  if not (mark_test marks 0) then corrupt Kmm_error.Sa_marks "row 0 unmarked";
  if Storage.word samples 0 <> n then
    corrupt Kmm_error.Sa_samples "row 0 sample wrong";
  {
    n;
    ptext;
    text = text_memo_of_packed ptext;
    occ;
    c_array = c_array_of_counts totals;
    sa_rate = h.h_sa_rate;
    sentinel_row = h.h_sentinel_row;
    marks;
    mark_cum;
    samples;
  }

let try_load_mmap path =
  let outcome =
    match
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          let prefix = read_exact fd ~pos:0 ~len:(min size 1024) ~what:"index header" in
          let r = { image = prefix; pos = 0 } in
          let header = take_line r in
          match String.split_on_char ' ' header with
          | m :: version :: fields when m = magic -> (
              match version with
              | "4" -> `Loaded (load_v4_mmap fd ~size r fields)
              | "1" | "2" | "3" ->
                  (* Pre-v4 layouts are unaligned; adopt them by copy. *)
                  `Fallback
              | v -> (
                  match int_of_string_opt v with
                  | Some nv -> fail (Kmm_error.Unsupported_version nv)
                  | None -> fail Kmm_error.Bad_magic))
          | _ -> fail Kmm_error.Bad_magic)
    with
    | outcome -> outcome
    | exception Fail e -> `Error e
    | exception ((Unix.Unix_error _ | Sys_error _) as e) -> `Error (Kmm_error.Io e)
    | exception e -> `Error (Kmm_error.Internal (Printexc.to_string e))
  in
  match outcome with
  | `Loaded t -> Ok t
  | `Fallback -> try_load_copy path
  | `Error e -> Error e

type mode = Copy | Mmap

let try_load ?(mode = Copy) path =
  match mode with Copy -> try_load_copy path | Mmap -> try_load_mmap path

let load ?mode path =
  match try_load ?mode path with
  | Ok t -> t
  | Error (Kmm_error.Io e) -> raise e
  | Error e -> failwith (path ^ ": " ^ Kmm_error.to_string e)
