lib/core/m_tree.mli: Fmindex Stats
