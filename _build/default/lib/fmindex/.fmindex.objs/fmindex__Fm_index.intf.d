lib/fmindex/fm_index.mli:
