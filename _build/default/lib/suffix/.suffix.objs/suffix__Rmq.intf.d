lib/suffix/rmq.mli:
