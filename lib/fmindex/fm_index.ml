type interval = int * int

type t = {
  text : string;
  l : string;  (* BWT(text ^ "$") *)
  occ : Occ.t;
  c_array : int array;  (* c_array.(c) = # characters with code < c in l *)
  sa_rate : int;
  samples : (int, int) Hashtbl.t;  (* row -> text position, sampled *)
}

let sigma = Dna.Alphabet.sigma

let build ?(occ_rate = 16) ?(sa_rate = 16) text =
  if sa_rate <= 0 then invalid_arg "Fm_index.build: sa_rate must be positive";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c) || c <> Dna.Alphabet.normalize c then
        invalid_arg "Fm_index.build: text must be lowercase acgt")
    text;
  let sa = Suffix.Suffix_array.build text in
  let l = Bwt.of_suffix_array text sa in
  let occ = Occ.make ~rate:occ_rate l in
  let counts = Array.make sigma 0 in
  String.iter (fun c -> counts.(Dna.Alphabet.code c) <- counts.(Dna.Alphabet.code c) + 1) l;
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  (* Row i of the matrix of text^"$" corresponds to suffix position:
     row 0 -> n (the sentinel suffix), row i+1 -> sa.(i).  Sample rows whose
     position is a multiple of sa_rate so any locate walk ends within
     sa_rate LF steps. *)
  let n = String.length text in
  let samples = Hashtbl.create (1 + (n / sa_rate)) in
  Hashtbl.replace samples 0 n;
  for i = 0 to n - 1 do
    if sa.(i) mod sa_rate = 0 then Hashtbl.replace samples (i + 1) sa.(i)
  done;
  { text; l; occ; c_array; sa_rate; samples }

let length t = String.length t.text
let text t = t.text
let bwt t = t.l
let whole t = (0, String.length t.l)

let extend t c (lo, hi) =
  if c <= 0 || c >= sigma then None
  else begin
    let lo' = t.c_array.(c) + Occ.rank t.occ c lo in
    let hi' = t.c_array.(c) + Occ.rank t.occ c hi in
    if lo' < hi' then Some (lo', hi') else None
  end

let interval_of_char t c = extend t c (whole t)

let search t pat =
  let m = String.length pat in
  if m = 0 then Some (whole t)
  else begin
    let rec go i iv =
      if i < 0 then Some iv
      else
        match extend t (Dna.Alphabet.code pat.[i]) iv with
        | None -> None
        | Some iv' -> go (i - 1) iv'
    in
    go (m - 1) (whole t)
  end

let count t pat = match search t pat with None -> 0 | Some (lo, hi) -> hi - lo

let lf t row =
  let c = Dna.Alphabet.code t.l.[row] in
  t.c_array.(c) + Occ.rank t.occ c row

let position_of_row t row =
  let rec walk row steps =
    match Hashtbl.find_opt t.samples row with
    | Some pos -> pos + steps
    | None -> walk (lf t row) (steps + 1)
  in
  walk row 0

let locate t (lo, hi) =
  let acc = ref [] in
  for row = lo to hi - 1 do
    acc := position_of_row t row :: !acc
  done;
  List.sort_uniq compare !acc

let find_all t pat =
  match search t pat with None -> [] | Some iv -> locate t iv

let space_report t =
  [
    ("bwt (1 byte/char)", String.length t.l);
    ("rank checkpoints", Occ.space_bytes t.occ);
    ("sa samples", 24 * Hashtbl.length t.samples);
    ("c array", 8 * sigma);
  ]

let extend_all t (lo, hi) ~los ~his =
  Occ.rank_all t.occ lo los;
  Occ.rank_all t.occ hi his;
  for c = 0 to sigma - 1 do
    let base = Array.unsafe_get t.c_array c in
    Array.unsafe_set los c (base + Array.unsafe_get los c);
    Array.unsafe_set his c (base + Array.unsafe_get his c)
  done

(* --- persistence ----------------------------------------------------- *)

(* File layout: a one-line header ["kmm-fm-index 1 <n> <occ_rate>
   <sa_rate> <sentinel_row>\n"] followed by ceil(n/4) bytes of 2-bit
   codes for the BWT with its sentinel removed. *)

let magic = "kmm-fm-index"

let save t path =
  let l = t.l in
  let n = String.length t.text in
  let sentinel_row = String.index l Dna.Alphabet.sentinel in
  let oc = open_out_bin path in
  Printf.fprintf oc "%s 1 %d %d %d %d\n" magic n (Occ.rate t.occ) t.sa_rate
    sentinel_row;
  let buf = Bytes.make ((n + 3) / 4) '\000' in
  let idx = ref 0 in
  String.iter
    (fun c ->
      if c <> Dna.Alphabet.sentinel then begin
        let code = Dna.Alphabet.code c - 1 in
        let byte = !idx / 4 and off = !idx mod 4 * 2 in
        Bytes.set buf byte
          (Char.chr (Char.code (Bytes.get buf byte) lor (code lsl off)));
        incr idx
      end)
    l;
  output_bytes oc buf;
  close_out oc

let load path =
  let ic = open_in_bin path in
  let header = try input_line ic with End_of_file -> "" in
  let n, occ_rate, sa_rate, sentinel_row =
    match String.split_on_char ' ' header with
    | [ m; "1"; n; occ_rate; sa_rate; sentinel_row ] when m = magic -> (
        try
          ( int_of_string n,
            int_of_string occ_rate,
            int_of_string sa_rate,
            int_of_string sentinel_row )
        with Failure _ ->
          close_in ic;
          failwith (path ^ ": corrupt index header"))
    | _ ->
        close_in ic;
        failwith (path ^ ": not a kmm FM-index file")
  in
  (* A forged or bit-flipped header must fail with the same friendly
     message as an unparsable one — never leak a raw [Invalid_argument]
     from [Bytes.create (n + 1)] below. *)
  if n < 0 || occ_rate <= 0 || sa_rate <= 0 || sentinel_row < 0
     || sentinel_row > n
  then begin
    close_in ic;
    failwith (path ^ ": corrupt index header")
  end;
  let payload =
    try really_input_string ic ((n + 3) / 4)
    with End_of_file ->
      close_in ic;
      failwith (path ^ ": truncated index payload")
  in
  (* The payload is the last thing in the file; trailing bytes mean the
     file was corrupted (or is not what the header claims). *)
  (match input_char ic with
  | _ ->
      close_in ic;
      failwith (path ^ ": trailing garbage after index payload")
  | exception End_of_file -> ());
  close_in ic;
  let l = Bytes.create (n + 1) in
  for i = 0 to n - 1 do
    let code = (Char.code payload.[i / 4] lsr (i mod 4 * 2)) land 3 in
    let row = if i < sentinel_row then i else i + 1 in
    Bytes.set l row (Dna.Alphabet.of_code (code + 1))
  done;
  Bytes.set l sentinel_row Dna.Alphabet.sentinel;
  let l = Bytes.unsafe_to_string l in
  let text = Bwt.inverse l in
  let occ = Occ.make ~rate:occ_rate l in
  let counts = Array.make sigma 0 in
  String.iter
    (fun c -> counts.(Dna.Alphabet.code c) <- counts.(Dna.Alphabet.code c) + 1)
    l;
  let c_array = Array.make sigma 0 in
  let sum = ref 0 in
  for c = 0 to sigma - 1 do
    c_array.(c) <- !sum;
    sum := !sum + counts.(c)
  done;
  (* Rebuild the SA samples with one LF walk: starting from row 0 (the
     row whose suffix is the bare sentinel, position n) and following LF
     visits positions n, n-1, ..., 0 in order. *)
  let samples = Hashtbl.create (1 + (n / sa_rate)) in
  let lf row =
    let c = Dna.Alphabet.code l.[row] in
    c_array.(c) + Occ.rank occ c row
  in
  let row = ref 0 in
  for pos = n downto 0 do
    if pos mod sa_rate = 0 || pos = n then Hashtbl.replace samples !row pos;
    if pos > 0 then row := lf !row
  done;
  { text; l; occ; c_array; sa_rate; samples }
