lib/core/hybrid.ml: Array Dna Fmindex List S_tree Stats String
