(** Rabin-Karp rolling-hash matching — the paper's SS:II "hash-based"
    family, where pattern signatures are compared before characters. *)

val find_all : pattern:string -> text:string -> int list
(** All occurrences, ascending; hash hits are verified, so the result is
    exact.  The empty pattern matches everywhere. *)

val find_all_multi : patterns:string array -> text:string -> (int * int) list
(** Occurrences [(pattern index, position)] of several same-length
    patterns in one scan (the "seed" use).  Raises [Invalid_argument] if
    the patterns do not all share one nonzero length. *)
