(** [kmm serve]: a long-running k-mismatch query daemon over a Unix
    domain socket.

    The daemon loads one immutable {!Core.Corpus.t} at startup — a
    monolithic index or a sharded manifest, optionally mmap'd — and
    answers {!Protocol} frames from any number of concurrent clients.  Each connection is served by a lightweight thread that
    reads frames, admits them against the configured {!Protocol.limits}
    and enqueues admitted queries on a shared batcher; a dispatcher
    thread drains the queue in batches of at most [batch_max] and fans
    each batch out across a {!Core.Work_pool} of [domains] OCaml
    domains.  Results come back {!Core.Kmismatch.Response}-shaped;
    every failure — malformed frame, limit violation, invalid pattern,
    even an engine bug — is answered as a typed {!Kmm_error} frame on
    that one connection.  The daemon itself never crashes on input.

    {2 Failure and signal model}

    - [SIGPIPE] is ignored at {!start}: a client that disconnects
      mid-response surfaces as [EPIPE]/[ECONNRESET] on the write, which
      is accounted as a per-connection drop ([serve.conns_dropped]) and
      closes only that connection.
    - A client that stops {e reading} cannot wedge its connection
      thread: every response send carries a whole-response budget
      ([send_timeout]), enforced with [SO_SNDTIMEO]-paced partial
      writes; on expiry the connection is dropped and counted as
      [serve.conns_stalled].
    - The admission queue is bounded at [max_queue]: a query arriving
      with the queue full is answered immediately with a typed
      [Overloaded] frame (exit code 10 — retryable with backoff, and
      the bundled clients do) instead of growing the queue without
      limit.  Shed queries cost no search work.
    - Per-request deadlines: a query frame may carry a relative
      [deadline] budget (seconds).  It is anchored to the monotonic
      clock at admission, spent by queue wait and search alike, and
      enforced cooperatively by the engines' [Deadline.poll]
      checkpoints; expiry answers a typed [Timeout] frame (exit code 9)
      with all partial work discarded.  Queries that expire while still
      queued are answered without running at all.
    - [SIGINT]/[SIGTERM] (installed by {!serve}) request a clean drain:
      the listener stops accepting, queued queries are still answered,
      frames a client already pipelined are answered with typed
      [Overloaded] refusals ("shutting down"), every connection thread
      then exits at its frame boundary, worker domains are joined, and
      the socket file is unlinked.
    - A connection that ends mid-frame (truncated frame) is answered
      with a typed rejection if the peer can still read, then closed.

    {2 Observability}

    The server owns an always-active {!Obs} sink (mutex-guarded; worker
    domains record into per-batch forks merged back in worker order).
    Counters: [serve.connections], [serve.disconnects],
    [serve.conns_dropped], [serve.conns_stalled], [serve.requests],
    [serve.queries], [serve.rejected], [serve.shed], [serve.timeouts],
    [serve.errors], [serve.truncated], [serve.hits].  Histograms:
    [serve.request_ns] (admission to response write),
    [serve.batch_size], plus the {!Core.Work_pool} [pool.*] metrics and
    per-query [engine.*]/[fm.*] counters.  The whole sink is exported
    live over the wire by the [metrics] command in Prometheus text
    format. *)

type config = {
  socket_path : string;  (** where to bind ([AF_UNIX]) *)
  domains : int;  (** {!Core.Work_pool} size for query execution *)
  batch_max : int;  (** most queries drained into one pool batch *)
  max_queue : int;
      (** bound on the admission queue; beyond it queries shed with a
          typed [Overloaded] reply *)
  backlog : int;  (** [listen] backlog *)
  limits : Protocol.limits;  (** per-request admission limits *)
  send_timeout : float;
      (** whole-response send budget in seconds; a client that fails to
          drain a response within it is dropped ([serve.conns_stalled]) *)
  trace : bool;  (** buffer Chrome trace events in the sink *)
  log : string -> unit;  (** daemon log lines; [ignore] silences *)
}

val default_config : socket_path:string -> config
(** [domains = Work_pool.default_domains ()], [batch_max = 64],
    [max_queue = 1024], [backlog = 64],
    [limits = Protocol.default_limits], [send_timeout = 10.0],
    [trace = false], [log = ignore]. *)

type t

val max_socket_path : int
(** Longest accepted [socket_path] in bytes (107: Linux [sun_path] is
    108 including the NUL).  A longer path is refused by {!start} as
    [Kmm_error.Error (Bad_input _)] naming the limit, instead of
    surfacing as a raw [Unix_error] from [bind]. *)

val start : config -> Core.Corpus.t -> t
(** Bind the socket and spawn the acceptor and dispatcher; returns once
    the daemon is accepting.  If the socket path is already bound by a
    live daemon, raises [Kmm_error.Error (Io _)]; a stale socket file
    left by a crashed process is replaced; a path longer than
    {!max_socket_path} raises [Kmm_error.Error (Bad_input _)].
    @raise Kmm_error.Error on socket setup failure. *)

val request_stop : t -> unit
(** Ask the daemon to drain and stop.  Async-signal-safe (sets a flag);
    actual teardown happens in {!stop} (or the {!serve} loop).  *)

val stopping : t -> bool
(** Whether a stop has been requested (by {!request_stop}, a signal, or
    a client [shutdown] command). *)

val stop : t -> unit
(** Drain and stop: stop accepting, answer everything already queued,
    join every thread and worker domain, close and unlink the socket.
    Idempotent; safe after {!request_stop}. *)

val metrics_text : t -> string
(** A live Prometheus exposition of the server sink (what the [metrics]
    wire command returns). *)

val serve :
  ?trace_out:string -> ?metrics_out:string -> config -> Core.Corpus.t -> unit
(** The blocking CLI entry point: {!start}, install [SIGINT]/[SIGTERM]
    handlers that {!request_stop}, wait, then {!stop} — and on the way
    out write the sink as a Chrome trace and/or Prometheus file when
    the paths are given.  Signal dispositions are restored on exit. *)

(** Client-side helpers over the same wire protocol — used by
    [kmm client], the serve bench and the tests.  Blocking; one
    request/response at a time per connection (the protocol itself
    allows pipelining via [id]). *)
module Client : sig
  type c

  val connect : ?timeout:float -> string -> c
  (** Connect to a daemon's socket path.  Raises [Unix.Unix_error] if
      nothing is listening.  [timeout] (seconds) bounds the connect
      itself (surfacing as [Unix_error (ETIMEDOUT, "connect", _)]) and
      becomes the per-reply read budget and per-send budget of the
      connection; without it every operation blocks indefinitely, as
      before. *)

  val try_connect : ?timeout:float -> string -> (c, Kmm_error.t) result
  (** {!connect} with the failure as a value: a refused, missing or
      timed-out socket comes back as [Error (Io _)] whose message names
      the path, the OS error and the "is kmm serve running?" hint. *)

  val close : c -> unit

  val send_line : c -> string -> unit
  (** Send one raw frame (the newline is appended here). *)

  val recv_line : c -> string option
  (** Next response frame, [None] on EOF.  With a connect [timeout] set,
      raises {!Read_timed_out} once a reply has taken longer than that
      budget. *)

  exception Read_timed_out

  val rpc : c -> string -> (Protocol.reply, Kmm_error.t) result
  (** [send_line] then [recv_line] then {!Protocol.parse_reply}.  Every
      failure is typed: EOF and lost connections are [Io], an exceeded
      read budget is [Timeout], a malformed reply is [Internal].  (A
      server-reported error still parses as [Ok (Error_reply _)] — it
      is a successful RPC.) *)

  val query :
    c ->
    ?id:Protocol.Json.t ->
    ?engine:Core.Kmismatch.engine ->
    ?deadline:float ->
    pattern:string ->
    k:int ->
    unit ->
    (Protocol.reply, Kmm_error.t) result
  (** [deadline] is the server-side compute budget in relative seconds
      (the wire [deadline] field) — independent of the client-side read
      [timeout], though a sensible caller sets the read timeout a bit
      above the deadline. *)

  val command : c -> string -> (Protocol.reply, Kmm_error.t) result
  (** [command c "ping"], [command c "metrics"], ... *)

  (** {2 Retry policy} *)

  val retryable : Kmm_error.t -> bool
  (** What a client may transparently retry: [Overloaded] (the server
      asked for exactly that) and connection-level [Io] (refused,
      reset, closed — no request outcome was lost that a retry would
      double-apply).  Never [Bad_input] (deterministic), never
      [Timeout] (the budget was the caller's own). *)

  val with_retry :
    ?attempts:int ->
    ?base:float ->
    ?cap:float ->
    ?seed:int ->
    (unit -> ('a, Kmm_error.t) result) ->
    ('a, Kmm_error.t) result
  (** Run [f] up to [attempts] times (default 3), sleeping a capped
      jittered exponential backoff between attempts — attempt [i]
      sleeps [min cap (base * 2^i)] scaled by a uniform factor in
      [[0.5, 1.0]] — and retrying only {!retryable} errors.  [base]
      defaults to 0.05 s, [cap] to 2 s.  [seed] pins the jitter for
      deterministic tests; without it the jitter is self-seeded. *)
end
