test/test_fmindex.ml: Alcotest Bwt Dna Fm_index Fmindex List Occ Option Printf QCheck2 Random String Stringmatch Test_util
