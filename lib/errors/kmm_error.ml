type section =
  | Header
  | Text_section
  | Rank_blocks
  | Superblocks
  | Sa_marks
  | Sa_samples
  | Trailer

let section_name = function
  | Header -> "header"
  | Text_section -> "text section"
  | Rank_blocks -> "rank blocks"
  | Superblocks -> "superblocks"
  | Sa_marks -> "sa marks"
  | Sa_samples -> "sa samples"
  | Trailer -> "trailer"

type t =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of string
  | Corrupt of section * string
  | Io of exn
  | Bad_input of string
  | Internal of string
  | Timeout of string
  | Overloaded of string

exception Error of t

let raise_error e = raise (Error e)

(* The phrasing below is load-bearing: the pre-typed-channel [load]
   raised [Failure] with these exact substrings ("corrupt index header",
   "truncated index", "trailing garbage", "not a kmm FM-index file") and
   the regression tests grep for them. *)
let to_string = function
  | Bad_magic -> "not a kmm FM-index file"
  | Unsupported_version v -> Printf.sprintf "unsupported index format version %d" v
  | Truncated what -> Printf.sprintf "truncated index (%s)" what
  | Corrupt (Header, detail) -> Printf.sprintf "corrupt index header (%s)" detail
  | Corrupt (sec, detail) ->
      Printf.sprintf "corrupt index %s (%s)" (section_name sec) detail
  | Io e -> Printf.sprintf "i/o error (%s)" (Printexc.to_string e)
  | Bad_input msg -> Printf.sprintf "bad input: %s" msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg
  | Timeout msg -> Printf.sprintf "timeout: %s" msg
  | Overloaded msg -> Printf.sprintf "server overloaded: %s" msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let exit_code = function
  | Bad_input _ -> 2
  | Bad_magic -> 3
  | Unsupported_version _ -> 4
  | Truncated _ -> 5
  | Corrupt _ -> 6
  | Io _ -> 7
  | Internal _ -> 8
  | Timeout _ -> 9
  | Overloaded _ -> 10

let equal a b =
  match (a, b) with
  | Io x, Io y -> Printexc.to_string x = Printexc.to_string y
  | Io _, _ | _, Io _ -> false
  | x, y -> x = y

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Kmm_error.Error (%s)" (to_string e))
    | _ -> None)
