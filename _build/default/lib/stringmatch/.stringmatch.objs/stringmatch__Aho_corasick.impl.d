lib/stringmatch/aho_corasick.ml: Array Hashtbl List Option Queue String
