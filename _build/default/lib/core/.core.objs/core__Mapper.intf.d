lib/core/mapper.mli: Kmismatch
