test/test_persist.ml: Alcotest Core Dna Filename Fmindex Fun In_channel Kmismatch Lazy List Mapper Printf QCheck2 Random String Sys Test_util Unix
