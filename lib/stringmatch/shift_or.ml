let max_pattern_length = 63

let find_all ~pattern ~text =
  let m = String.length pattern in
  if m = 0 then invalid_arg "Shift_or.find_all: empty pattern";
  if m > max_pattern_length then
    invalid_arg "Shift_or.find_all: pattern longer than the machine word";
  (* Shift-And formulation: bit j of [d] is set iff pattern[0..j] matches
     the text ending at the current position. *)
  let b = Array.make 256 0 in
  String.iteri (fun j c -> b.(Char.code c) <- b.(Char.code c) lor (1 lsl j)) pattern;
  let accept = 1 lsl (m - 1) in
  let acc = ref [] in
  let d = ref 0 in
  String.iteri
    (fun i c ->
      d := ((!d lsl 1) lor 1) land b.(Char.code c);
      if !d land accept <> 0 then acc := (i - m + 1) :: !acc)
    text;
  List.rev !acc

(* Field width for the Shift-Add automaton: each field must count to k+1
   without touching its own top (overflow) bit, i.e. k+1 <= 2^(b-1) - 1.
   Computed without ever forming k+1 or shifting past bit 61, both of
   which overflow for huge budgets: the old [1 lsl (b-1) > k + 1] loop
   returned 2 for [k = max_int] (so [fits] lied and [search] miscounted)
   and looped forever for [k + 1 >= 2^62].  Budgets too large for any
   62-bit field report [max_int], which no word can fit. *)
let field_bits k =
  let rec go b =
    if b > 62 then max_int
    else if k <= (1 lsl (b - 1)) - 2 then b
    else go (b + 1)
  in
  go 2

(* [m * field_bits k <= 63], phrased as a division so that neither the
   huge-[k] sentinel nor a huge [m] can overflow the product. *)
let fits ~m ~k = m >= 1 && k >= 0 && field_bits k <= 63 / m

let search ~pattern ~text ~k =
  let m = String.length pattern in
  if m = 0 then invalid_arg "Shift_or.search: empty pattern";
  if k < 0 then invalid_arg "Shift_or.search: negative k";
  if not (fits ~m ~k) then
    invalid_arg "Shift_or.search: pattern/budget do not fit the machine word";
  let b = field_bits k in
  let field_mask = (1 lsl b) - 1 in
  let ov_bit = 1 lsl (b - 1) in
  (* t.(c) holds, in field j, whether pattern[j] mismatches character c. *)
  let t = Array.make 256 0 in
  for c = 0 to 255 do
    let v = ref 0 in
    for j = 0 to m - 1 do
      if pattern.[j] <> Char.chr c then v := !v lor (1 lsl (j * b))
    done;
    t.(c) <- !v
  done;
  let ov_mask =
    let v = ref 0 in
    for j = 0 to m - 1 do
      v := !v lor (ov_bit lsl (j * b))
    done;
    !v
  in
  let acc = ref [] in
  let d = ref 0 and ov = ref 0 in
  String.iteri
    (fun i c ->
      let d' = (!d lsl b) + t.(Char.code c) in
      ov := ((!ov lsl b) lor (d' land ov_mask)) land ov_mask;
      d := d' land lnot ov_mask;
      if i >= m - 1 then begin
        let count = (!d lsr ((m - 1) * b)) land field_mask in
        let overflowed = !ov land (ov_bit lsl ((m - 1) * b)) <> 0 in
        if (not overflowed) && count <= k then acc := (i - m + 1, count) :: !acc
      end)
    text;
  List.rev !acc
