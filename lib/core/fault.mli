(** Injectable I/O faults — the test harness behind the crash-safety and
    corruption-detection guarantees of index persistence.

    Two ways to hurt a byte stream:

    - {!wrap} interposes a fault {!plan} on the {!Fmindex.Fm_index.sink}
      that [Fm_index.save ~wrap] streams through, so a save can be
      interrupted mid-write exactly as a full disk, a dying process or a
      lying controller would interrupt it;
    - {!corrupt_string} / {!corrupt_file} apply the same plans to data at
      rest, for load-path tests and the fuzz oracle.

    Injected failures raise {!Injected}, never a real [Sys_error], so
    tests can tell a simulated fault from an actual environment
    problem. *)

exception Injected of string
(** Raised by fault-injecting sinks.  The payload names the fault
    ("ENOSPC", "crash", "short write"). *)

type plan =
  | Enospc_after of int
      (** The device accepts exactly [n] bytes; the write that would
          exceed them stores its fitting prefix and raises — the
          classic disk-full torn write. *)
  | Crash_after of int
      (** The process dies after [n] bytes reach the stream: the write
          crossing the boundary stores its prefix, then every further
          operation (including the flush barrier) raises. *)
  | Short_write of int
      (** Bytes past offset [n] are silently dropped, and the loss is
          only reported at the flush/fsync barrier — the delayed-error
          semantics real [fsync] has. *)
  | Bit_flip of { offset : int; bit : int }
      (** Silent in-flight corruption: bit [bit] of the byte at absolute
          stream offset [offset] is inverted and everything "succeeds".
          The damage must be caught at load time, not save time. *)
  | Truncate_at of int
      (** Silent tail loss at rest: every byte past [offset] vanishes.
          (As a sink this behaves like {!Short_write} but never reports;
          the resulting renamed file must be rejected at load.) *)

val plan_to_string : plan -> string

val wrap : plan -> Fmindex.Fm_index.sink -> Fmindex.Fm_index.sink
(** [Fm_index.save ~wrap:(Fault.wrap plan) t path] saves through the
    fault.  Each [wrap] application carries its own mutable byte
    counter, so a plan value can be reused across saves. *)

val corrupt_string : plan -> string -> string
(** Apply a plan to an in-memory image: [Bit_flip] inverts one bit (the
    offset is reduced modulo the length, so random fuzz offsets are
    always in range); all other plans keep the prefix up to their
    boundary. *)

val corrupt_file : plan -> string -> unit
(** Read a file, {!corrupt_string} it, write it back in place
    (deliberately non-atomically — this {e is} the vandal). *)

(** Misbehaving-client primitives over an [AF_UNIX] socket — the network
    counterpart of the file-sink plans above, driving the serve chaos
    suite.  A {!Socket.c} is a deliberately rude peer: it can feed a
    frame one byte at a time ({!Socket.dribble}), hang up in the middle
    of one ({!Socket.send_partial} then {!Socket.close}), or — the
    nastiest — send queries and simply never read the responses (just
    don't call {!Socket.recv_line}), filling the daemon's socket buffer
    until its send budget drops the connection.  Everything is blocking
    and raw: no protocol smarts, no timeouts on sends, exactly what a
    buggy or hostile client looks like from the server's side. *)
module Socket : sig
  type c

  val connect : string -> c
  (** Raises [Unix.Unix_error] if nothing is listening. *)

  val close : c -> unit

  val fd : c -> Unix.file_descr
  (** The raw descriptor, for tests that want [shutdown] etc. *)

  val send : c -> string -> unit
  (** Write the whole string (blocking, EINTR-retrying). *)

  val send_line : c -> string -> unit
  (** [send] with the frame newline appended. *)

  val dribble : ?chunk:int -> ?delay:float -> c -> string -> unit
  (** Write [chunk]-byte (default 1) slices separated by [delay]
      seconds (default 2 ms): a pathologically slow writer.  The server
      must still assemble and answer the frame. *)

  val send_partial : c -> string -> len:int -> unit
  (** Write only the first [len] bytes — pair with {!close} for a
      mid-frame disconnect. *)

  val recv_line : ?timeout:float -> c -> string option
  (** Next newline-terminated line (newline stripped), or [None] on
      EOF/reset or after [timeout] seconds (default 10) without one. *)
end
