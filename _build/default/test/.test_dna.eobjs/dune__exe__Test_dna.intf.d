test/test_dna.mli:
