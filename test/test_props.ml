(* Cross-cutting property tests and invariants that go beyond the
   per-module suites: the Int_table substrate, the rank-correspondence
   property the paper's equation (1) relies on, locate completeness, the
   delta heuristic's definition, and stats accounting. *)

open Core

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Int_table vs Hashtbl                                                 *)

let prop_int_table =
  Test_util.qtest ~count:300 "int_table = hashtbl"
    QCheck2.Gen.(list (pair (int_range 0 500) small_nat))
    (fun ops ->
      let t = Int_table.create ~dummy:(-1) 8 in
      let h = Hashtbl.create 8 in
      List.iter
        (fun (key, v) ->
          Int_table.replace t key v;
          Hashtbl.replace h key v)
        ops;
      Hashtbl.fold (fun key v ok -> ok && Int_table.find t key = Some v) h true
      && Int_table.length t = Hashtbl.length h
      && Int_table.find t 99_999 = None)

let test_int_table_growth () =
  let t = Int_table.create ~dummy:"" 8 in
  for i = 0 to 10_000 do
    Int_table.replace t i (string_of_int i)
  done;
  check int "length" 10_001 (Int_table.length t);
  for i = 0 to 10_000 do
    check (Alcotest.option Alcotest.string) "value" (Some (string_of_int i))
      (Int_table.find t i)
  done

let test_int_table_overwrite () =
  let t = Int_table.create ~dummy:0 8 in
  Int_table.replace t 7 1;
  Int_table.replace t 7 2;
  check (Alcotest.option int) "overwritten" (Some 2) (Int_table.find t 7);
  check int "size stays 1" 1 (Int_table.length t)

let test_int_table_negative () =
  let t = Int_table.create ~dummy:0 8 in
  (match Int_table.find t (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative find accepted");
  match Int_table.replace t (-3) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative replace accepted"

(* ------------------------------------------------------------------ *)
(* Rank correspondence (paper eq. 1) and locate completeness            *)

let prop_rank_correspondence =
  (* For every character, its i-th occurrence in F corresponds to its i-th
     occurrence in L: LF-walking the whole BWT visits every row exactly
     once (this is what Bwt.inverse exploits; here we check the cycle
     property directly). *)
  Test_util.qtest ~count:200 "LF mapping is a full cycle"
    (Test_util.dna_gen ~lo:1 ~hi:200 ())
    (fun s ->
      let l = Fmindex.Bwt.of_text s in
      let n = String.length l in
      let counts = Array.make Dna.Alphabet.sigma 0 in
      String.iter
        (fun c -> counts.(Dna.Alphabet.code c) <- counts.(Dna.Alphabet.code c) + 1)
        l;
      let c_array = Array.make Dna.Alphabet.sigma 0 in
      let sum = ref 0 in
      for c = 0 to Dna.Alphabet.sigma - 1 do
        c_array.(c) <- !sum;
        sum := !sum + counts.(c)
      done;
      let occ = Fmindex.Occ.make l in
      let lf row =
        let c = Dna.Alphabet.code l.[row] in
        c_array.(c) + Fmindex.Occ.rank occ c row
      in
      let visited = Array.make n false in
      let rec walk row steps =
        if steps = n then true
        else if visited.(row) then false
        else begin
          visited.(row) <- true;
          walk (lf row) (steps + 1)
        end
      in
      walk 0 0)

let prop_locate_whole =
  Test_util.qtest ~count:200 "locate(whole) enumerates all positions"
    (Test_util.dna_gen ~lo:1 ~hi:150 ())
    (fun s ->
      let fm = Fmindex.Fm_index.build s in
      Fmindex.Fm_index.locate fm (Fmindex.Fm_index.whole fm)
      = List.init (String.length s + 1) (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Delta heuristic definition                                           *)

let naive_delta text pattern =
  (* Greedy count of consecutive disjoint substrings of pattern[i..] that
     do not occur in text (1-based positions, delta.(m+1) = 0). *)
  let m = String.length pattern in
  let occurs sub = Stringmatch.Naive.find_all ~pattern:sub ~text <> [] in
  let delta = Array.make (m + 2) 0 in
  for i = m downto 1 do
    let rec smallest_absent j =
      if j > m then None
      else if not (occurs (String.sub pattern (i - 1) (j - i + 1))) then Some j
      else smallest_absent (j + 1)
    in
    delta.(i) <-
      (match smallest_absent i with None -> 0 | Some j -> 1 + delta.(j + 1))
  done;
  delta

let prop_delta =
  Test_util.qtest ~count:150 "delta heuristic = naive definition"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:120 ()) (Test_util.dna_gen ~lo:1 ~hi:20 ()))
    (fun (text, pattern) ->
      let idx = Kmismatch.build_index text in
      S_tree.delta_heuristic (Kmismatch.fm_rev idx) ~pattern
      = naive_delta text pattern)

(* ------------------------------------------------------------------ *)
(* Mismatch arrays: R_i tables vs the pairwise definition               *)

let prop_shift_table_naive =
  (* R_i is defined as the first k+2 positions where r[1 .. m-i] and
     r[i+1 .. m] disagree (paper SS:IV.B); check every shift of every
     generated pattern against the naive pairwise scan.  Note that
     [build] clamps k to m internally, but the overlap at shift i has
     length m-i <= m-1 < m+2, so the clamp can never truncate a table
     that the unclamped limit would have kept. *)
  Test_util.qtest ~count:300 "shift_table = naive_pairwise"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:60 ()) (int_range 0 6))
    (fun (r, k) ->
      let t = Mismatch_array.build r ~k in
      let m = String.length r in
      Mismatch_array.shift_table t 0 = [||]
      && List.for_all
           (fun i ->
             Mismatch_array.shift_table t i
             = Mismatch_array.naive_pairwise
                 (String.sub r 0 (m - i))
                 (String.sub r i (m - i))
                 ~limit:(k + 2))
           (List.init (m - 1) (fun i -> i + 1)))

let prop_shift_table_periodic =
  (* Highly periodic patterns are where R_i tables saturate their k+2
     limit; stress those shapes specifically. *)
  Test_util.qtest ~count:200 "shift_table = naive_pairwise (periodic)"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:1 ~hi:4 ()) (int_range 2 20) (int_range 0 4))
    (fun (unit_str, reps, k) ->
      let r = String.concat "" (List.init reps (fun _ -> unit_str)) in
      let t = Mismatch_array.build r ~k in
      let m = String.length r in
      List.for_all
        (fun i ->
          Mismatch_array.shift_table t i
          = Mismatch_array.naive_pairwise
              (String.sub r 0 (m - i))
              (String.sub r i (m - i))
              ~limit:(k + 2))
        (List.init (m - 1) (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Hybrid engine specifics                                              *)

let test_hybrid_rejects_mismatched_text () =
  let idx = Kmismatch.build_index "acgtacgt" in
  match
    Hybrid.search (Kmismatch.fm_rev idx) ~text:"acgt" ~pattern:"acg" ~k:1
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_hybrid_unique_path =
  (* Texts with no repeats at all force the hybrid engine onto its direct
     verification path almost immediately. *)
  Test_util.qtest ~count:200 "hybrid on random text = oracle"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:50 ~hi:400 ()) (Test_util.dna_gen ~lo:5 ~hi:30 ())
        (int_range 0 4))
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      Kmismatch.search idx ~engine:Kmismatch.Hybrid ~pattern ~k
      = Stringmatch.Hamming.search ~pattern ~text ~k)

(* ------------------------------------------------------------------ *)
(* Stats accounting                                                     *)

let test_stats_reset () =
  let s = Stats.create () in
  s.Stats.nodes <- 5;
  s.Stats.derived_leaves <- 2;
  s.Stats.leaves <- 1;
  check int "total" 3 (Stats.total_leaves s);
  Stats.reset s;
  check int "reset nodes" 0 s.Stats.nodes;
  check int "reset total" 0 (Stats.total_leaves s)

let test_stats_populated_by_engines () =
  let idx = Kmismatch.build_index "acgtacgtacgtacgtacgtgggg" in
  List.iter
    (fun engine ->
      let stats = Stats.create () in
      ignore (Kmismatch.search ~stats idx ~engine ~pattern:"acgta" ~k:1);
      check bool
        (Kmismatch.engine_name engine ^ " counts work")
        true
        (stats.Stats.rank_calls > 0 || stats.Stats.nodes > 0
        || stats.Stats.leaves > 0))
    [ Kmismatch.M_tree; Kmismatch.S_tree; Kmismatch.Hybrid; Kmismatch.Cole ]

(* ------------------------------------------------------------------ *)
(* M-tree configuration space                                           *)

let config_gen =
  QCheck2.Gen.(
    tup3 bool bool (int_range 1 8) >|= fun (chain_skip, use_delta, store_width) ->
    { M_tree.chain_skip; use_delta; store_width })

let prop_m_tree_all_configs =
  Test_util.qtest ~count:300 "m-tree: every config = oracle"
    QCheck2.Gen.(
      tup4
        (Test_util.dna_gen ~lo:10 ~hi:200 ())
        (Test_util.dna_gen ~lo:1 ~hi:15 ())
        (int_range 0 4) config_gen)
    (fun (text, pattern, k, config) ->
      let idx = Kmismatch.build_index text in
      Kmismatch.search ~config idx ~engine:Kmismatch.M_tree ~pattern ~k
      = Stringmatch.Hamming.search ~pattern ~text ~k)

let prop_m_tree_repetitive_configs =
  Test_util.qtest ~count:300 "m-tree: every config = oracle (repetitive)"
    QCheck2.Gen.(
      tup4
        (Test_util.dna_gen ~lo:2 ~hi:5 ())
        (pair (int_range 10 60) (Test_util.dna_gen ~lo:4 ~hi:14 ()))
        (int_range 0 4) config_gen)
    (fun (unit_str, (reps, pattern), k, config) ->
      let text = String.concat "" (List.init reps (fun _ -> unit_str)) in
      let idx = Kmismatch.build_index text in
      Kmismatch.search ~config idx ~engine:Kmismatch.M_tree ~pattern ~k
      = Stringmatch.Hamming.search ~pattern ~text ~k)

(* ------------------------------------------------------------------ *)
(* The literal mismatching tree (paper Fig. 3 / Fig. 7)                 *)

let paper_tree () =
  let idx = Kmismatch.build_index "acagaca" in
  Mismatch_tree.build (Kmismatch.fm_rev idx) ~pattern:"tcaca" ~k:2

let test_mtree_paper_paths () =
  (* SS:IV.A: B1 = [1, 4], B2 = [1, 2], B3 = B4 = [1, 2, 3]. *)
  let t = paper_tree () in
  let complete =
    List.filter_map
      (fun p -> if p.Mismatch_tree.complete then Some p.Mismatch_tree.mismatches else None)
      t.Mismatch_tree.paths
  in
  let dead =
    List.filter_map
      (fun p -> if p.Mismatch_tree.complete then None else Some p.Mismatch_tree.mismatches)
      t.Mismatch_tree.paths
  in
  check
    Alcotest.(list (list int))
    "complete B arrays"
    [ [ 1; 2 ]; [ 1; 4 ] ]
    (List.sort compare complete);
  check
    Alcotest.(list (list int))
    "dead B arrays"
    [ [ 1; 2; 3 ]; [ 1; 2; 3 ] ]
    (List.sort compare dead);
  check int "n' = 4 leaves" 4 (Mismatch_tree.leaves t)

let test_mtree_paper_occurrences () =
  let t = paper_tree () in
  let occ =
    List.concat_map (fun p -> p.Mismatch_tree.occurrences) t.Mismatch_tree.paths
  in
  check Alcotest.(list int) "occurrences 0 and 2" [ 0; 2 ] (List.sort compare occ)

let rec mtree_no_match_match parent node =
  (* Definition 4 invariant: a <-, 0> node is never the child of another
     <-, 0> node (maximal match runs are collapsed). *)
  (match (parent, node.Mismatch_tree.label) with
  | Some `Match, `Match -> false
  | _ ->
      List.for_all
        (mtree_no_match_match (Some node.Mismatch_tree.label))
        node.Mismatch_tree.children)

let prop_mtree_invariants =
  Test_util.qtest ~count:200 "mismatch tree invariants"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:5 ~hi:150 ()) (Test_util.dna_gen ~lo:1 ~hi:12 ())
        (int_range 0 3))
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      let t = Mismatch_tree.build (Kmismatch.fm_rev idx) ~pattern ~k in
      (* 1. no adjacent collapsed match nodes *)
      mtree_no_match_match None t.Mismatch_tree.root
      (* 2. complete paths carry <= k mismatches, dead ones <= k+1 *)
      && List.for_all
           (fun p ->
             List.length p.Mismatch_tree.mismatches
             <= (if p.Mismatch_tree.complete then k else k + 1)
             (* mismatch positions strictly increasing, in [1, m] *)
             && List.sort_uniq compare p.Mismatch_tree.mismatches
                = p.Mismatch_tree.mismatches
             && List.for_all
                  (fun x -> 1 <= x && x <= String.length pattern)
                  p.Mismatch_tree.mismatches)
           t.Mismatch_tree.paths)

let prop_mtree_occurrences_match_engines =
  Test_util.qtest ~count:200 "mismatch tree occurrences = engine results"
    QCheck2.Gen.(
      tup3 (Test_util.dna_gen ~lo:5 ~hi:150 ()) (Test_util.dna_gen ~lo:1 ~hi:12 ())
        (int_range 0 3))
    (fun (text, pattern, k) ->
      let idx = Kmismatch.build_index text in
      let t = Mismatch_tree.build (Kmismatch.fm_rev idx) ~pattern ~k in
      let occ =
        List.concat_map
          (fun p ->
            List.map
              (fun pos -> (pos, List.length p.Mismatch_tree.mismatches))
              p.Mismatch_tree.occurrences)
          (List.filter (fun p -> p.Mismatch_tree.complete) t.Mismatch_tree.paths)
      in
      List.sort compare occ = Stringmatch.Hamming.search ~pattern ~text ~k)

let () =
  Alcotest.run "props"
    [
      ( "int_table",
        [
          prop_int_table;
          Alcotest.test_case "growth" `Quick test_int_table_growth;
          Alcotest.test_case "overwrite" `Quick test_int_table_overwrite;
          Alcotest.test_case "negative keys" `Quick test_int_table_negative;
        ] );
      ("bwt_invariants", [ prop_rank_correspondence; prop_locate_whole ]);
      ("delta", [ prop_delta ]);
      ("mismatch_array", [ prop_shift_table_naive; prop_shift_table_periodic ]);
      ( "hybrid",
        [
          Alcotest.test_case "text length check" `Quick test_hybrid_rejects_mismatched_text;
          prop_hybrid_unique_path;
        ] );
      ( "stats",
        [
          Alcotest.test_case "reset" `Quick test_stats_reset;
          Alcotest.test_case "populated" `Quick test_stats_populated_by_engines;
        ] );
      ( "m_tree_configs",
        [ prop_m_tree_all_configs; prop_m_tree_repetitive_configs ] );
      ( "mismatch_tree",
        [
          Alcotest.test_case "paper B arrays" `Quick test_mtree_paper_paths;
          Alcotest.test_case "paper occurrences" `Quick test_mtree_paper_occurrences;
          prop_mtree_invariants;
          prop_mtree_occurrences_match_engines;
        ] );
    ]

