(** The Burrows-Wheeler transform of a DNA text.

    We always transform [s ^ "$"] where [$] is the unique smallest
    terminator, so [BWT(s)] is a string of length [n+1] over [$acgt]. *)

val of_text : string -> string
(** [of_text s] computes BWT(s ^ "$") through the suffix array (SA-IS),
    using the paper's formula (3): [L[i] = $ if H[i] = 1 else s[H[i]-1]]. *)

val of_suffix_array : string -> int array -> string
(** Same, given a precomputed suffix array of [s] (without sentinel). *)

val inverse : string -> string
(** [inverse l] recovers [s] from [l = BWT(s ^ "$")] by iterated
    LF-mapping.  Raises [Invalid_argument] if [l] does not contain exactly
    one sentinel. *)
