type t = {
  codes : Bytes.t;  (* character code of every BWT position *)
  rate : int;
  checkpoints : int array;  (* flattened: block * sigma + code *)
  len : int;
}

let sigma = Dna.Alphabet.sigma

let make ?(rate = 16) l =
  if rate <= 0 then invalid_arg "Occ.make: rate must be positive";
  let n = String.length l in
  let codes = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set codes i (Char.unsafe_chr (Dna.Alphabet.code l.[i]))
  done;
  let blocks = (n / rate) + 1 in
  let checkpoints = Array.make (blocks * sigma) 0 in
  let running = Array.make sigma 0 in
  for i = 0 to n - 1 do
    if i mod rate = 0 then begin
      let base = i / rate * sigma in
      for c = 0 to sigma - 1 do
        checkpoints.(base + c) <- running.(c)
      done
    end;
    let c = Char.code (Bytes.unsafe_get codes i) in
    running.(c) <- running.(c) + 1
  done;
  if n mod rate = 0 && n > 0 then begin
    let base = n / rate * sigma in
    for c = 0 to sigma - 1 do
      checkpoints.(base + c) <- running.(c)
    done
  end;
  { codes; rate; checkpoints; len = n }

let rank t c i =
  if c < 0 || c >= sigma then invalid_arg "Occ.rank: bad character code";
  if i < 0 || i > t.len then invalid_arg "Occ.rank: index out of range";
  let b = i / t.rate in
  let base = b * t.rate in
  let acc = ref (Array.unsafe_get t.checkpoints ((b * sigma) + c)) in
  let ch = Char.unsafe_chr c in
  for j = base to i - 1 do
    if Bytes.unsafe_get t.codes j = ch then incr acc
  done;
  !acc

let rate t = t.rate
let length t = t.len
(* Both resident structures: the checkpoint array (one boxed int per
   block*code cell) and the [codes] byte table (one byte per BWT
   position) that ranks scan between checkpoints. *)
let space_bytes t = (8 * Array.length t.checkpoints) + Bytes.length t.codes

let rank_all t i dst =
  if i < 0 || i > t.len then invalid_arg "Occ.rank_all: index out of range";
  if Array.length dst <> sigma then invalid_arg "Occ.rank_all: bad dst size";
  let b = i / t.rate in
  let base = b * t.rate in
  let cp = b * sigma in
  for c = 0 to sigma - 1 do
    Array.unsafe_set dst c (Array.unsafe_get t.checkpoints (cp + c))
  done;
  for j = base to i - 1 do
    let c = Char.code (Bytes.unsafe_get t.codes j) in
    Array.unsafe_set dst c (Array.unsafe_get dst c + 1)
  done
