test/test_dna.ml: Alcotest Alphabet Dna Fasta Filename Genome_gen Hashtbl Lazy List Random Read_sim Sequence String Sys Test_util
