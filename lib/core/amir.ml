let blocks ~pattern ~k =
  let m = String.length pattern in
  if k = 0 then []
  else begin
    let b = 2 * k in
    let len = m / b in
    if len < 2 then []
    else
      List.init b (fun i -> (i * len, String.sub pattern (i * len) len))
  end

(* Early-abort window verification: O(m) worst case but O(k) on the
   overwhelmingly common quick rejections. *)
let distance_within pattern text pos k =
  let m = String.length pattern in
  let rec go j d =
    if d > k then None
    else if j >= m then Some d
    else go (j + 1) (if pattern.[j] = text.[pos + j] then d else d + 1)
  in
  go 0 0

let search ?stats ~pattern ~k text =
  if pattern = "" then invalid_arg "Amir.search: empty pattern";
  if k < 0 then invalid_arg "Amir.search: negative k";
  let m = String.length pattern and n = String.length text in
  (* budgets beyond m behave exactly like k = m; the clamp also keeps
     the 2k block count from overflowing for absurd budgets *)
  let k = min k m in
  ignore (stats : Stats.t option);
  if m > n then []
  else if k = 0 then
    List.map (fun p -> (p, 0)) (Stringmatch.Kmp.find_all ~pattern ~text)
  else begin
    let verify candidates =
      List.filter_map
        (fun pos ->
          match distance_within pattern text pos k with
          | Some d -> Some (pos, d)
          | None -> None)
        candidates
    in
    match blocks ~pattern ~k with
    | [] ->
        (* Pattern too short for 2k blocks: verify every position (Amir's
           algorithm also special-cases such patterns). *)
        verify (List.init (n - m + 1) (fun i -> i))
    | bs ->
        let offsets = Array.of_list (List.map fst bs) in
        let ac = Stringmatch.Aho_corasick.build (Array.of_list (List.map snd bs)) in
        let marks = Array.make (n - m + 1) 0 in
        Stringmatch.Aho_corasick.scan ac text ~f:(fun ~pattern ~pos ->
            let candidate = pos - offsets.(pattern) in
            if candidate >= 0 && candidate <= n - m then
              marks.(candidate) <- marks.(candidate) + 1);
        (* 2k blocks and <= k mismatches leave >= k intact blocks. *)
        let threshold = k in
        let candidates = ref [] in
        for pos = n - m downto 0 do
          if marks.(pos) >= threshold then candidates := pos :: !candidates
        done;
        verify !candidates
  end
