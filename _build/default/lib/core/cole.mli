(** Cole-style k-mismatch baseline (paper ref. [14]): brute-force bounded
    traversal of a suffix tree of the target, exactly as the paper's
    comparator implements it (their code sits on the gsuffix suffix-tree
    package; ours sits on {!Suffix.Suffix_tree}). *)

val search :
  ?stats:Stats.t ->
  Suffix.Suffix_tree.t ->
  pattern:string ->
  k:int ->
  (int * int) list
(** [search tree ~pattern ~k] returns every [(position, distance)] with
    [distance <= k], ascending, where [tree] is the suffix tree of the
    target.  Raises [Invalid_argument] on an empty pattern or negative
    [k]. *)
