module Fm = Fmindex.Fm_index

type config = { chain_skip : bool; use_delta : bool; store_width : int }

let default_config = { chain_skip = true; use_delta = true; store_width = 2 }

(* Terminal state of a stored node. *)
type term =
  | Inner  (* has explored children *)
  | Complete  (* reached depth m: an occurrence *)
  | Budget_killed  (* extensions existed but all exceeded the budget *)
  | Text_dead  (* no extension exists in the text *)
  | Derived of int  (* stub: subtree derived from the node first seen at
                       the recorded shallower depth *)

type dnode = {
  char_code : int;  (* path character at this depth *)
  depth : int;  (* 1-based; equals the pattern position compared *)
  is_mismatch : bool;  (* w.r.t. the pattern position [depth] *)
  interval : int * int;  (* BWT interval after this character *)
  miss : int;  (* mismatches on the path up to here *)
  mutable children : dnode list;
  mutable skipped : (int * (int * int)) list;
      (* budget-skipped branches: character code and its interval *)
  mutable term : term;
  mutable open_ : bool;  (* exploration still on the DFS stack *)
  mutable chain : dnode array option;
      (* memoized maximal match run hanging below this node *)
}

let search ?(config = default_config) ?stats ?(obs = Obs.noop) fm ~pattern ~k =
  if pattern = "" then invalid_arg "M_tree.search: empty pattern";
  if k < 0 then invalid_arg "M_tree.search: negative k";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c && c = Dna.Alphabet.normalize c) then
        invalid_arg "M_tree.search: pattern must be lowercase acgt")
    pattern;
  let m = String.length pattern in
  (* k >= m is the same query as k = m (see Kmismatch); the clamp also
     keeps [2k+3] and the R-array limit [k+2] from overflowing. *)
  let k = min k m in
  let n = Fm.length fm in
  let bump (f : Stats.t -> unit) = match stats with Some s -> f s | None -> () in
  if m > n then []
  else begin
    let mi = Mismatch_array.build pattern ~k in
    let rij_limit = (2 * k) + 3 in
    let rij_cache : (int * int, int array) Hashtbl.t = Hashtbl.create 16 in
    let rij ~i ~j =
      match Hashtbl.find_opt rij_cache (i, j) with
      | Some a -> a
      | None ->
          let a = Mismatch_array.pairwise_lce mi ~i ~j ~limit:rij_limit in
          Hashtbl.add rij_cache (i, j) a;
          a
    in
    let results = ref [] in
    let locate_buf = ref [||] in
    let report ((lo, hi) as iv) q =
      let cnt = hi - lo in
      if Array.length !locate_buf < cnt then locate_buf := Array.make cnt 0;
      let buf = !locate_buf in
      Fm.locate_into fm iv buf;
      for i = 0 to cnt - 1 do
        results := (n - Array.unsafe_get buf i - m, q) :: !results
      done
    in
    (* The hash key is the interval alone: equal intervals imply equal
       first characters (every row in the interval starts with the node's
       character), so the paper's <x, [lo, hi]> triple packs into one
       integer. *)
    let dummy_node =
      {
        char_code = 0;
        depth = 0;
        is_mismatch = false;
        interval = (0, 0);
        miss = 0;
        children = [];
        skipped = [];
        term = Inner;
        open_ = false;
        chain = None;
      }
    in
    let htbl : dnode Int_table.t = Int_table.create ~dummy:dummy_node 4096 in
    let pack lo hi = (lo * (n + 2)) + hi in
    let store_width = max 1 config.store_width in
    (* delta.(i) lower-bounds the mismatches any window must spend on
       r[i ..]; sound for pruning under *any* alignment at position i. *)
    let delta =
      if config.use_delta then
        Obs.span obs "mtree.delta" (fun () -> S_tree.delta_heuristic fm ~pattern)
      else Array.make (m + 2) 0
    in
    let pat_codes = Array.init m (fun i -> Dna.Alphabet.code pattern.[i]) in
    let pat_code d = Array.unsafe_get pat_codes (d - 1) in

    (* --- Derivation -------------------------------------------------- *)
    (* A node [v] at depth [j] repeats the pair of [prior] at depth [i < j].
       The stored subtree below [prior] is walked with the alignment shifted
       by [j - i]: the stored node at depth [d] stands for the derived path
       position [d - i + j].  A stored match node mismatches the derived
       alignment exactly when R_ij has an entry at offset [d - i]. *)
    let rec derive ~prior ~i ~j ~dmiss =
      let d_star = m - j + i in
      (* stored depth at which the derived path completes *)
      let table = if config.chain_skip then rij ~i ~j else [||] in
      let reliable_x =
        if Array.length table < rij_limit then max_int
        else table.(Array.length table - 1)
      in
      let resume code iv p q =
        bump (fun s -> s.resumes <- s.resumes + 1);
        let lo, hi = iv in
        if hi - lo >= store_width then ignore (visit code iv p q None)
        else explore_light iv p q
      in
      let handle_skipped w dmiss =
        List.iter
          (fun (code, iv) ->
            let p' = w.depth + 1 - i + j in
            let q' = if code = pat_code p' then dmiss else dmiss + 1 in
            if q' <= k && k - q' >= delta.(p' + 1) then resume code iv p' q')
          w.skipped
      in
      (* Walk the subtree *below* [w]; [dmiss] includes [w] itself. *)
      let rec walk_children w dmiss =
        Deadline.poll ();
        if w.depth = d_star then begin
          bump (fun s -> s.derived_leaves <- s.derived_leaves + 1);
          report w.interval dmiss
        end
        else begin
          match w.term with
          | Derived _ ->
              (* Stub: no stored subtree; fall back to a real search. *)
              resume_below w dmiss
          | Inner | Complete | Budget_killed | Text_dead ->
              if w.children = [] && w.skipped = [] then
                bump (fun s -> s.derived_leaves <- s.derived_leaves + 1)
              else begin
                List.iter (fun c -> walk c dmiss) w.children;
                handle_skipped w dmiss
              end
        end
      (* Resume a real search for all continuations below a stub node. *)
      and resume_below w dmiss =
        let p = w.depth - i + j in
        let los = Array.make 5 0 and his = Array.make 5 0 in
        bump (fun s -> s.rank_calls <- s.rank_calls + 2);
        Fm.extend_all fm w.interval ~los ~his;
        for c = 1 to 4 do
          if los.(c) < his.(c) then begin
            let q' = if c = pat_code (p + 1) then dmiss else dmiss + 1 in
            if q' <= k && k - q' >= delta.(p + 2) then
              resume c (los.(c), his.(c)) (p + 1) q'
          end
        done
      (* Enter stored node [w]; [dmiss] is the derived count above it. *)
      and walk w dmiss =
        match chain_of w with
        | Some arr when config.chain_skip -> walk_chain w arr dmiss
        | _ ->
            let p = w.depth - i + j in
            let dmiss =
              if w.char_code = pat_code p then dmiss else dmiss + 1
            in
            if dmiss > k || k - dmiss < delta.(p + 1) then
              bump (fun s -> s.derived_leaves <- s.derived_leaves + 1)
            else walk_children w dmiss
      (* Jump across the match run [arr] below [w]'s parent edge.  All run
         nodes are stored match nodes, so the derived mismatches inside it
         are exactly the R_ij entries at the run's offsets. *)
      and walk_chain first arr dmiss =
        let d_first = first.depth in
        let last = arr.(Array.length arr - 1) in
        let d_end = min last.depth d_star in
        let x_first = d_first - i and x_end = d_end - i in
        if x_end > reliable_x then begin
          (* Beyond the table's reliable horizon: process the run node by
             node with direct comparisons (rare; see interface notes). *)
          walk_plain first dmiss
        end
        else begin
          (* Count R_ij entries with offset in [x_first .. x_end]; the
             budget dies at the (k - dmiss + 1)-th of them. *)
          let len = Array.length table in
          let rec lower lo hi =
            if lo >= hi then lo
            else begin
              let mid = (lo + hi) / 2 in
              if table.(mid) < x_first then lower (mid + 1) hi else lower lo mid
            end
          in
          let start = lower 0 len in
          let rec count idx dmiss =
            if idx >= len || table.(idx) > x_end then `Alive dmiss
            else if dmiss + 1 > k then `Dead
            else count (idx + 1) (dmiss + 1)
          in
          match count start dmiss with
          | `Dead -> bump (fun s -> s.derived_leaves <- s.derived_leaves + 1)
          | `Alive dmiss ->
              if d_star <= last.depth then begin
                (* The derived path completes inside (or at the end of)
                   the run; the node at that depth holds the interval. *)
                bump (fun s -> s.derived_leaves <- s.derived_leaves + 1);
                report arr.(d_star - d_first).interval dmiss
              end
              else walk_children last dmiss
        end
      and walk_plain w dmiss =
        let p = w.depth - i + j in
        let dmiss = if w.char_code = pat_code p then dmiss else dmiss + 1 in
        if dmiss > k || k - dmiss < delta.(p + 1) then
          bump (fun s -> s.derived_leaves <- s.derived_leaves + 1)
        else walk_children w dmiss
      (* The maximal run of unary, no-skip, stored-match nodes starting at
         [w] itself (when [w] is a match node), memoized on [w]. *)
      and chain_of w =
        if w.is_mismatch then None
        else begin
          match w.chain with
          | Some arr -> Some arr
          | None ->
              let rec gather u acc =
                match (u.children, u.skipped) with
                | [ child ], [] when not child.is_mismatch ->
                    gather child (child :: acc)
                | _ -> List.rev acc
              in
              let arr = Array.of_list (gather w [ w ]) in
              w.chain <- Some arr;
              Some arr
        end
      in
      bump (fun s -> s.derivations <- s.derivations + 1);
      (* [prior.depth < d_star] always holds here (j < m), so this walks
         the stored children/skipped branches of [prior] directly. *)
      if Obs.enabled obs then
        Obs.time obs "mtree.derive" (fun () -> walk_children prior dmiss)
      else walk_children prior dmiss

    (* --- Exploration ------------------------------------------------- *)
    and visit code iv j q parent =
      let node =
        {
          char_code = code;
          depth = j;
          is_mismatch = code <> pat_code j;
          interval = iv;
          miss = q;
          children = [];
          skipped = [];
          term = Inner;
          open_ = false;
          chain = None;
        }
      in
      (match parent with Some p -> p.children <- node :: p.children | None -> ());
      bump (fun s -> s.nodes <- s.nodes + 1);
      if j = m then begin
        node.term <- Complete;
        bump (fun s -> s.leaves <- s.leaves + 1);
        report iv q
      end
      else begin
        let lo, hi = iv in
        let key = pack lo hi in
        match Int_table.find htbl key with
        | Some prior when prior.depth < j && not prior.open_ ->
            node.term <- Derived prior.depth;
            derive ~prior ~i:prior.depth ~j ~dmiss:q
        | Some prior when prior.depth > j && not prior.open_ ->
            (* Keep the shallowest occurrence in the table (the paper's
               "always use the one compared to r[i] with the least i"). *)
            Int_table.replace htbl key node;
            expand node
        | Some _ -> expand node
        | None ->
            Int_table.replace htbl key node;
            expand node
      end;
      node

    and expand node =
      Deadline.poll ();
      node.open_ <- true;
      let any_ext = ref false in
      let any_light = ref false in
      let los = Array.make 5 0 and his = Array.make 5 0 in
      bump (fun s -> s.rank_calls <- s.rank_calls + 2);
      Fm.extend_all fm node.interval ~los ~his;
      for c = 1 to 4 do
        let lo = los.(c) and hi = his.(c) in
        if lo < hi then begin
          any_ext := true;
          let q' =
            if c = pat_code (node.depth + 1) then node.miss else node.miss + 1
          in
          if q' <= k && k - q' >= delta.(node.depth + 2) then begin
            if hi - lo >= store_width then
              ignore (visit c (lo, hi) (node.depth + 1) q' (Some node))
            else begin
              (* Narrow interval: its subtree is a near-chain that costs
                 more to materialize than derivation could ever save.
                 Explore it without storing nodes, and record it like a
                 skipped branch so derivations resume it exactly. *)
              node.skipped <- (c, (lo, hi)) :: node.skipped;
              any_light := true;
              explore_light (lo, hi) (node.depth + 1) q'
            end
          end
          else node.skipped <- (c, (lo, hi)) :: node.skipped
        end
      done;
      node.open_ <- false;
      if node.children = [] then begin
        node.term <- (if !any_ext then Budget_killed else Text_dead);
        (* A light child continues the path, so the node is not a leaf. *)
        if not !any_light then bump (fun s -> s.leaves <- s.leaves + 1)
      end

    (* Allocation-free S-tree exploration of a narrow subtree. *)
    and explore_light iv j q =
      Deadline.poll ();
      bump (fun s -> s.nodes <- s.nodes + 1);
      if j = m then begin
        bump (fun s -> s.leaves <- s.leaves + 1);
        report iv q
      end
      else begin
        let los = Array.make 5 0 and his = Array.make 5 0 in
        bump (fun s -> s.rank_calls <- s.rank_calls + 2);
        Fm.extend_all fm iv ~los ~his;
        let died = ref true in
        for c = 1 to 4 do
          if los.(c) < his.(c) then begin
            let q' = if c = pat_code (j + 1) then q else q + 1 in
            if q' <= k && k - q' >= delta.(j + 2) then begin
              died := false;
              explore_light (los.(c), his.(c)) (j + 1) q'
            end
          end
        done;
        if !died then bump (fun s -> s.leaves <- s.leaves + 1)
      end
    in

    (* Virtual root: depth 0, full interval (the paper's <-, [1, n+1]>). *)
    Obs.span obs "mtree.explore" (fun () ->
        let los = Array.make 5 0 and his = Array.make 5 0 in
        bump (fun s -> s.rank_calls <- s.rank_calls + 2);
        Fm.extend_all fm (Fm.whole fm) ~los ~his;
        for c = 1 to 4 do
          if los.(c) < his.(c) then begin
            let q = if c = pat_code 1 then 0 else 1 in
            if q <= k && k - q >= delta.(2) then begin
              if his.(c) - los.(c) >= store_width then
                ignore (visit c (los.(c), his.(c)) 1 q None)
              else explore_light (los.(c), his.(c)) 1 q
            end
          end
        done);
    List.sort Hit.compare !results
  end
