(** 2-bit packed DNA text: the shared payload representation of the
    FM-index core.

    A {!t} stores a sequence of {e lane codes} 0..3 (['a'] = 0, ['c'] = 1,
    ['g'] = 2, ['t'] = 3 — i.e. {!Dna.Alphabet} codes shifted down by one,
    with the sentinel excluded) at four lanes per byte: lane [i] lives in
    byte [i / 4] at bit offset [(i mod 4) * 2], least significant bits
    first.  This is exactly the byte layout of the on-disk index payload
    (every format version), so persistence is a flat copy — or, for
    format v4, no copy at all: {!of_storage} adopts an mmap'd section in
    place.

    Unused lanes in the final byte are always zero — builders guarantee
    it and the adopting constructors enforce it — so word/byte-parallel
    population counts over whole bytes never see garbage lanes. *)

type t

val empty : t

val length : t -> int
(** Number of lanes (bases). *)

val get : t -> int -> int
(** [get t i] is the lane code (0..3) at position [i].
    Raises [Invalid_argument] when out of range. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check. *)

val init : int -> (int -> int) -> t
(** [init n f] packs lane codes [f 0 .. f (n-1)]; each must be in 0..3
    (raises [Invalid_argument] otherwise). *)

val of_string : string -> t
(** Pack a lowercase [acgt] string.  Raises [Invalid_argument] on any
    other character (including the sentinel and uppercase). *)

val to_string : t -> string
(** Unpack back to a lowercase [acgt] string. *)

val storage : t -> Storage.t
(** The underlying packed buffer, [ceil (length / 4)] bytes.  Shared,
    not copied: treat as read-only. *)

val payload_string : t -> string
(** The packed buffer copied out as a string (the on-disk section
    payload). *)

val of_storage : Storage.t -> len:int -> t
(** [of_storage data ~len] adopts a packed buffer — heap or mmap'd —
    holding [len] lanes, without copying.  Raises [Invalid_argument] if
    [data] is not exactly [ceil (len / 4)] bytes.  Trailing lanes of
    the final byte are cleared in place (copy-on-write for mapped
    storage), so a file whose padding bits are dirty still yields a
    canonical value. *)

val of_bytes : string -> len:int -> t
(** [of_bytes payload ~len] copies a packed payload string into a fresh
    heap buffer and adopts it; same contract as {!of_storage}. *)

val base_of_code : int -> char
(** [base_of_code d] is the base character of lane code [d] (0..3). *)

val code_of_base : char -> int option
(** Lane code of a base character; [None] for non-ACGT (case folded). *)
