(** The Burrows-Wheeler transform of a DNA text.

    We always transform [s ^ "$"] where [$] is the unique smallest
    terminator, so [BWT(s)] is a string of length [n+1] over [$acgt]. *)

val of_text : string -> string
(** [of_text s] computes BWT(s ^ "$") through the suffix array (SA-IS),
    using the paper's formula (3): [L[i] = $ if H[i] = 1 else s[H[i]-1]]. *)

val of_suffix_array : string -> int array -> string
(** Same, given a precomputed suffix array of [s] (without sentinel). *)

val packed_of_suffix_array : string -> int array -> Packed_text.t * int
(** [packed_of_suffix_array s sa] is the 2-bit packed BWT with its
    sentinel removed, paired with the sentinel's row index — the form the
    packed FM-index core consumes, built without materializing the
    byte-per-character BWT string. *)

val inverse : string -> string
(** [inverse l] recovers [s] from [l = BWT(s ^ "$")] by iterated
    LF-mapping.  Raises [Invalid_argument] if [l] does not contain exactly
    one sentinel. *)
