(* The [kmm serve] daemon and its wire protocol.

   Three layers, mirroring the failure model in lib/server/server.mli:

   - the JSON codec and frame parser in isolation (malformed, oversize,
     adversarial nesting -> typed rejections, never an exception);
   - a live in-process daemon poked over its Unix socket: protocol
     round-trips, typed error frames with the same codes the CLI exits
     with, limit enforcement, resync after garbage, and survival of a
     client killed mid-response;
   - byte-identity: hits served concurrently over the socket must render
     identically to a sequential [Kmismatch.run] on the same queries —
     including the headless serve-bench smoke (the CI load generator).  *)

module P = Kmm_server.Protocol
module S = Kmm_server.Server
module J = P.Json
module K = Core.Kmismatch

(* --- fixture -------------------------------------------------------- *)

let random_text ~st n =
  String.init n (fun _ -> "acgt".[Random.State.int st 4])

let text =
  let st = Random.State.make [| 0x5e7e |] in
  random_text ~st 12_000

let index = lazy (K.build_index text)

let mutate ~st s =
  let b = Bytes.of_string s in
  let i = Random.State.int st (Bytes.length b) in
  Bytes.set b i "acgt".[Random.State.int st 4];
  Bytes.to_string b

(* Patterns planted in [text] so queries actually hit. *)
let queries =
  let st = Random.State.make [| 0xbeef |] in
  List.init 64 (fun _ ->
      let len = 16 + Random.State.int st 24 in
      let pos = Random.State.int st (String.length text - len) in
      let p = String.sub text pos len in
      ((if Random.State.int st 2 = 0 then p else mutate ~st p), Random.State.int st 3))

let sequential_answers () =
  List.map
    (fun (pattern, k) ->
      P.render_hits (K.run (Lazy.force index) (K.Query.make ~engine:K.M_tree ~pattern ~k ())).K.Response.hits)
    queries

(* Each daemon test gets its own socket under a temp dir. *)
let with_server ?(limits = P.default_limits) ?(domains = 2) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kmm-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let cfg = { (S.default_config ~socket_path:path) with domains; batch_max = 8; limits } in
  let t = S.start cfg (Core.Corpus.mono (Lazy.force index)) in
  Fun.protect ~finally:(fun () -> S.stop t) (fun () -> f t path)

let rpc_exn c frame =
  match (S.Client.send_line c frame; S.Client.recv_line c) with
  | Some line -> line
  | None -> Alcotest.fail "connection closed unexpectedly"

(* --- protocol unit tests -------------------------------------------- *)

let json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.String "plain";
      J.String "esc \" \\ \n \t \x01 end";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj [ ("a", J.Int 1); ("b", J.List [ J.String "x" ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (match J.of_string s with Ok v' -> J.equal v v' | Error _ -> false);
      Alcotest.(check bool)
        ("no raw newline in " ^ s)
        false
        (String.contains s '\n'))
    cases;
  (* \uXXXX decoding (UTF-8 re-encoding) *)
  (match J.of_string {|"aéA"|} with
  | Ok (J.String s) -> Alcotest.(check string) "unicode escape" "a\xc3\xa9A" s
  | _ -> Alcotest.fail "unicode escape did not parse")

let json_rejects () =
  let bad =
    [
      "";
      "{";
      "nul";
      "{\"a\":}";
      "[1,]";
      "\"unterminated";
      "{} trailing";
      "1 2";
      String.concat "" (List.init 200 (fun _ -> "[")) (* past max_depth *);
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" (String.sub s 0 (min 16 (String.length s))))
        true
        (match J.of_string s with Error _ -> true | Ok _ -> false))
    bad

let is_bad_input = function
  | Error (_, Kmm_error.Bad_input _) -> true
  | _ -> false

let parse_request_frames () =
  let limits = { P.default_limits with max_pattern = 10; max_k = 3; max_frame = 128 } in
  (* the happy path, with defaults *)
  (match P.parse_request ~limits {|{"pattern":"acgt"}|} with
  | Ok
      {
        id = J.Null;
        body = P.Query { pattern = "acgt"; k = 0; engine = K.M_tree; deadline = None };
      } ->
      ()
  | _ -> Alcotest.fail "defaulted query frame");
  (match P.parse_request ~limits {|{"cmd":"ping","id":7}|} with
  | Ok { id = J.Int 7; body = P.Ping } -> ()
  | _ -> Alcotest.fail "ping frame");
  (* deadline: relative seconds, int or float, strictly positive *)
  (match P.parse_request ~limits {|{"pattern":"acgt","deadline":0.25}|} with
  | Ok { body = P.Query { deadline = Some d; _ }; _ } when d = 0.25 -> ()
  | _ -> Alcotest.fail "float deadline frame");
  (match P.parse_request ~limits {|{"pattern":"acgt","deadline":3}|} with
  | Ok { body = P.Query { deadline = Some d; _ }; _ } when d = 3.0 -> ()
  | _ -> Alcotest.fail "int deadline frame");
  (* typed rejections, with the id recovered when possible *)
  let reject name frame check_id =
    match P.parse_request ~limits frame with
    | Error (id, Kmm_error.Bad_input _) ->
        Alcotest.(check bool) (name ^ " id echoed") true (check_id id)
    | _ -> Alcotest.fail (name ^ ": expected Bad_input")
  in
  reject "malformed json" "][ garbage" (J.equal J.Null);
  reject "not an object" "[1,2]" (J.equal J.Null);
  reject "missing pattern" {|{"cmd":"query","id":3}|} (J.equal (J.Int 3));
  reject "mistyped pattern" {|{"pattern":42,"id":4}|} (J.equal (J.Int 4));
  reject "unknown cmd" {|{"cmd":"evict","id":5}|} (J.equal (J.Int 5));
  reject "unknown engine" {|{"pattern":"acgt","engine":"warp"}|} (J.equal J.Null);
  reject "mistyped k" {|{"pattern":"acgt","k":"two"}|} (J.equal J.Null);
  reject "non-positive deadline" {|{"pattern":"acgt","deadline":0}|} (J.equal J.Null);
  reject "negative deadline" {|{"pattern":"acgt","deadline":-1.5}|} (J.equal J.Null);
  reject "mistyped deadline" {|{"pattern":"acgt","deadline":"soon"}|}
    (J.equal J.Null);
  (* limits *)
  Alcotest.(check bool) "pattern over max_pattern" true
    (is_bad_input (P.parse_request ~limits {|{"pattern":"acgtacgtacgt"}|}));
  Alcotest.(check bool) "k over max_k" true
    (is_bad_input (P.parse_request ~limits {|{"pattern":"acgt","k":4}|}));
  Alcotest.(check bool) "k at max_k admitted" true
    (match P.parse_request ~limits {|{"pattern":"acgt","k":3}|} with
    | Ok _ -> true
    | Error _ -> false);
  let oversize =
    Printf.sprintf {|{"pattern":"ac","note":%S}|} (String.make 200 'x')
  in
  Alcotest.(check bool) "frame over max_frame" true
    (is_bad_input (P.parse_request ~limits oversize));
  (* engine-owned validation is NOT duplicated at the frame layer *)
  Alcotest.(check bool) "empty pattern admitted by frame layer" true
    (match P.parse_request ~limits {|{"pattern":""}|} with
    | Ok _ -> true
    | Error _ -> false)

let reply_roundtrip () =
  let hits = [ (12, 0); (40, 2); (77, 1) ] in
  (match P.parse_reply (P.ok_hits_response ~id:(J.Int 9) ~truncated:true hits) with
  | Ok (P.Hits { id = J.Int 9; hits = h; truncated = true }) ->
      Alcotest.(check string) "hits roundtrip" (P.render_hits hits) (P.render_hits h)
  | _ -> Alcotest.fail "hits reply");
  (match P.parse_reply (P.error_response ~id:J.Null (Kmm_error.Bad_input "nope")) with
  | Ok (P.Error_reply { code = 2; _ }) -> ()
  | _ -> Alcotest.fail "error reply carries exit code");
  match P.parse_reply "<html>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage reply must not parse"

(* --- live daemon ---------------------------------------------------- *)

let server_roundtrip () =
  with_server (fun _t path ->
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      (match S.Client.command c "ping" with
      | Ok (P.Ok_obj _) -> ()
      | _ -> Alcotest.fail "ping");
      (match S.Client.command c "info" with
      | Ok (P.Ok_obj { fields; _ }) ->
          Alcotest.(check bool) "info reports length" true
            (match List.assoc_opt "length" fields with
            | Some (J.Int n) -> n = String.length text
            | _ -> false)
      | _ -> Alcotest.fail "info");
      let pattern, k = List.nth queries 0 in
      let expected =
        P.render_hits
          (K.run (Lazy.force index) (K.Query.make ~engine:K.M_tree ~pattern ~k ())).K.Response.hits
      in
      match S.Client.query c ~pattern ~k () with
      | Ok (P.Hits { hits; truncated = false; _ }) ->
          Alcotest.(check string) "wire hits = sequential" expected (P.render_hits hits)
      | _ -> Alcotest.fail "query")

let server_typed_errors () =
  with_server (fun _t path ->
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      let expect_code name frame code =
        match P.parse_reply (rpc_exn c frame) with
        | Ok (P.Error_reply { code = c'; _ }) ->
            Alcotest.(check int) (name ^ " code") code c'
        | _ -> Alcotest.fail (name ^ ": expected error reply")
      in
      (* engine-owned validation surfaces over the wire as Bad_input *)
      expect_code "empty pattern" {|{"pattern":""}|} 2;
      expect_code "invalid base" {|{"pattern":"acgx"}|} 2;
      expect_code "negative k" {|{"pattern":"acgt","k":-1}|} 2;
      (* frame-layer admission *)
      expect_code "malformed json" "][ nope" 2;
      expect_code "unknown cmd" {|{"cmd":"evict"}|} 2;
      (* ...and the connection still works after every rejection *)
      match S.Client.command c "ping" with
      | Ok (P.Ok_obj _) -> ()
      | _ -> Alcotest.fail "connection must survive rejected frames")

let server_limits () =
  let limits = { P.max_pattern = 20; max_k = 2; max_hits = 3; max_frame = 256 } in
  with_server ~limits (fun _t path ->
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      let expect_reject name frame =
        match P.parse_reply (rpc_exn c frame) with
        | Ok (P.Error_reply { code = 2; _ }) -> ()
        | _ -> Alcotest.fail (name ^ ": expected a code-2 rejection")
      in
      expect_reject "pattern over limit"
        (P.query_request ~pattern:(String.make 21 'a') ~k:0 ());
      expect_reject "k over limit" (P.query_request ~pattern:"acgt" ~k:3 ());
      (* oversized frame: rejected, then the connection resyncs *)
      expect_reject "oversize frame"
        (P.query_request ~pattern:"acgt" ~k:0
           ~id:(J.String (String.make 300 'x')) ());
      (* a short pattern matches everywhere: hits must be truncated at 3 *)
      (match S.Client.query c ~pattern:"acgt" ~k:2 () with
      | Ok (P.Hits { hits; truncated = true; _ }) ->
          Alcotest.(check int) "hits cut at max_hits" 3 (List.length hits)
      | _ -> Alcotest.fail "expected a truncated hit list");
      match S.Client.command c "ping" with
      | Ok (P.Ok_obj _) -> ()
      | _ -> Alcotest.fail "connection must survive limit rejections")

let server_resync_and_truncated () =
  with_server (fun _t path ->
      (* A client that closes mid-frame must not hurt the daemon... *)
      let dirty = S.Client.connect path in
      S.Client.send_line dirty {|{"pattern":"acg|} |> ignore;
      S.Client.close dirty;
      (* ...nor may one that sends binary garbage. *)
      let garbage = S.Client.connect path in
      S.Client.send_line garbage "\x00\xff\xfe not json";
      (match P.parse_reply (Option.get (S.Client.recv_line garbage)) with
      | Ok (P.Error_reply { code = 2; _ }) -> ()
      | _ -> Alcotest.fail "garbage line: expected typed rejection");
      S.Client.close garbage;
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      match S.Client.command c "ping" with
      | Ok (P.Ok_obj _) -> ()
      | _ -> Alcotest.fail "daemon must keep serving after dirty disconnects")

let server_client_killed_mid_response () =
  with_server (fun t path ->
      (* Fire a wide query and slam the connection without reading the
         answer: the write side sees EPIPE/ECONNRESET, which must stay a
         per-connection event. *)
      for _ = 1 to 4 do
        let victim = S.Client.connect path in
        S.Client.send_line victim (P.query_request ~pattern:"acgt" ~k:2 ());
        S.Client.close victim
      done;
      (* give the handler threads time to hit the dead sockets *)
      Thread.delay 0.2;
      Alcotest.(check bool) "daemon not stopping" false (S.stopping t);
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      let pattern, k = List.nth queries 1 in
      let expected =
        P.render_hits
          (K.run (Lazy.force index) (K.Query.make ~engine:K.M_tree ~pattern ~k ())).K.Response.hits
      in
      match S.Client.query c ~pattern ~k () with
      | Ok (P.Hits { hits; _ }) ->
          Alcotest.(check string) "daemon still answers correctly" expected
            (P.render_hits hits)
      | _ -> Alcotest.fail "daemon must survive clients killed mid-response")

let server_concurrent_identity () =
  let expected = Array.of_list (sequential_answers ()) in
  with_server ~domains:3 (fun _t path ->
      let n = List.length queries in
      let got = Array.make n "" in
      let failure = Atomic.make None in
      let qarr = Array.of_list queries in
      let clients = 6 in
      let threads =
        List.init clients (fun ci ->
            Thread.create
              (fun () ->
                try
                  let c = S.Client.connect path in
                  Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
                  let i = ref ci in
                  while !i < n do
                    let pattern, k = qarr.(!i) in
                    (match S.Client.query c ~pattern ~k () with
                    | Ok (P.Hits { hits; _ }) -> got.(!i) <- P.render_hits hits
                    | Ok _ | Error _ -> failwith "bad reply");
                    i := !i + clients
                  done
                with e -> Atomic.set failure (Some e))
              ())
      in
      List.iter Thread.join threads;
      (match Atomic.get failure with
      | Some e -> Alcotest.fail ("client thread failed: " ^ Printexc.to_string e)
      | None -> ());
      Array.iteri
        (fun i exp ->
          Alcotest.(check string) (Printf.sprintf "query %d byte-identical" i) exp got.(i))
        expected)

let server_socket_path_too_long () =
  (* AF_UNIX sun_path holds 108 bytes including the NUL; a longer path
     must be refused up front as a typed Bad_input naming the limit, not
     surface as a raw Unix_error (or worse, bind to a silently truncated
     path). *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (String.make (S.max_socket_path + 1) 'x' ^ ".sock")
  in
  let cfg = { (S.default_config ~socket_path:path) with domains = 1 } in
  match S.start cfg (Core.Corpus.mono (Lazy.force index)) with
  | exception Kmm_error.Error (Kmm_error.Bad_input msg) ->
      Alcotest.(check bool) "message names the 107-byte limit" true
        (let needle = "107" in
         let n = String.length msg and l = String.length needle in
         let rec scan i = i + l <= n && (String.sub msg i l = needle || scan (i + 1)) in
         scan 0)
  | exception e ->
      Alcotest.fail ("expected typed Bad_input, got " ^ Printexc.to_string e)
  | t ->
      S.stop t;
      Alcotest.fail "over-long socket path accepted"

let server_shutdown_command () =
  with_server (fun t path ->
      let c = S.Client.connect path in
      (match S.Client.command c "shutdown" with
      | Ok (P.Ok_obj _) -> ()
      | _ -> Alcotest.fail "shutdown ack");
      S.Client.close c;
      (* drain must complete promptly *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while not (S.stopping t) && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done;
      Alcotest.(check bool) "stop requested over the wire" true (S.stopping t))

let server_drain_answers_then_refuses () =
  (* The SIGTERM path (request_stop is exactly what the signal handler
     calls): queries admitted before the stop are answered, frames
     arriving after it get typed Overloaded refusals — never a silent
     close — and the socket file is gone once [stop] returns. *)
  with_server (fun t path ->
      let c = S.Client.connect path in
      Fun.protect ~finally:(fun () -> S.Client.close c) @@ fun () ->
      let pattern, k = List.nth queries 2 in
      (* Admitted before the stop: answered with real hits.  The
         round-trip also leaves the handler freshly blocked in read, so
         the refusal frame below cannot race a drain-side close. *)
      (match S.Client.query c ~pattern ~k () with
      | Ok (P.Hits _) -> ()
      | _ -> Alcotest.fail "pre-drain query must be answered");
      S.request_stop t;
      S.Client.send_line c (P.query_request ~id:(J.Int 99) ~pattern ~k ());
      (match S.Client.recv_line c with
      | Some line -> (
          match P.parse_reply line with
          | Ok (P.Error_reply { id = J.Int 99; code = 10; message }) ->
              Alcotest.(check bool) "refusal says it is draining" true
                (let needle = "shutting down" in
                 let n = String.length message and l = String.length needle in
                 let rec scan i =
                   i + l <= n && (String.sub message i l = needle || scan (i + 1))
                 in
                 scan 0)
          | _ -> Alcotest.fail "late frame: expected a code-10 Overloaded refusal")
      | None -> Alcotest.fail "late frame: expected a refusal before the close");
      (* After the refusal the connection is hung up at the frame
         boundary... *)
      (match S.Client.recv_line c with
      | None -> ()
      | Some _ -> Alcotest.fail "connection must close after the drain refusal");
      (* ...and a full stop removes the socket file. *)
      S.stop t;
      Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path))

(* The CI serve-bench smoke: a headless end-to-end load run on a tiny
   index with 2 connections, raising on any divergence from sequential. *)
let bench_smoke () = Serve_bench.smoke ()

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "json rejects" `Quick json_rejects;
          Alcotest.test_case "request frames" `Quick parse_request_frames;
          Alcotest.test_case "reply roundtrip" `Quick reply_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "roundtrip" `Quick server_roundtrip;
          Alcotest.test_case "typed errors" `Quick server_typed_errors;
          Alcotest.test_case "limits" `Quick server_limits;
          Alcotest.test_case "resync after garbage" `Quick server_resync_and_truncated;
          Alcotest.test_case "client killed mid-response" `Quick
            server_client_killed_mid_response;
          Alcotest.test_case "concurrent = sequential" `Quick server_concurrent_identity;
          Alcotest.test_case "shutdown command" `Quick server_shutdown_command;
          Alcotest.test_case "drain answers then refuses" `Quick
            server_drain_answers_then_refuses;
          Alcotest.test_case "socket path over sun_path" `Quick server_socket_path_too_long;
        ] );
      ("bench", [ Alcotest.test_case "serve bench smoke" `Quick bench_smoke ]);
    ]
