(** Brute-force exact matching; the reference oracle for every other
    matcher. *)

val find_all : pattern:string -> text:string -> int list
(** All starting positions of [pattern] in [text], ascending.  The empty
    pattern matches at every position [0 .. n]. *)
