open Suffix

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let int_array = Alcotest.(array int)

(* ------------------------------------------------------------------ *)
(* Suffix arrays                                                       *)

let test_sa_paper_example () =
  (* The paper's running example s = acagaca (Fig. 1 uses acagaca$; without
     the sentinel the suffix order is the same minus the sentinel row). *)
  let s = "acagaca" in
  check int_array "against naive" (Suffix_array.build_naive s) (Suffix_array.build s)

let test_sa_known_banana_like () =
  (* mississippi restricted to DNA letters is not possible; use a string
     with heavy repetition instead and validate directly. *)
  let s = "aaaaaaaaaa" in
  let sa = Suffix_array.build s in
  check int_array "descending positions" [| 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 |] sa

let test_sa_empty_and_single () =
  check int_array "empty" [||] (Suffix_array.build "");
  check int_array "single" [| 0 |] (Suffix_array.build "g")

let test_sa_valid_on_corpus () =
  let st = Random.State.make [| 17 |] in
  for _ = 1 to 30 do
    let n = 1 + Random.State.int st 300 in
    let s = Test_util.random_dna st n in
    if not (Suffix_array.is_valid s (Suffix_array.build s)) then
      Alcotest.failf "invalid SA for %s" s
  done

let prop_sais_equals_doubling =
  Test_util.qtest ~count:300 "SA-IS = doubling" (Test_util.dna_gen ~hi:400 ())
    (fun s -> Suffix_array.build s = Suffix_array.build_doubling s)

let prop_sais_valid =
  Test_util.qtest ~count:300 "SA-IS valid" (Test_util.dna_gen ~hi:300 ())
    (fun s -> Suffix_array.is_valid s (Suffix_array.build s))

let test_sa_large_random () =
  (* Exercise at least two levels of SA-IS recursion. *)
  let st = Random.State.make [| 23 |] in
  let s = Test_util.random_dna st 100_000 in
  let sa = Suffix_array.build s in
  check int_array "large: equals doubling" (Suffix_array.build_doubling s) sa

let test_sa_periodic () =
  (* Highly periodic inputs stress LMS naming (many equal LMS substrings). *)
  let reps pat k =
    String.concat "" (List.init k (fun _ -> pat))
  in
  List.iter
    (fun s ->
      check int_array
        ("periodic " ^ String.sub s 0 (min 12 (String.length s)))
        (Suffix_array.build_doubling s) (Suffix_array.build s))
    [ reps "acg" 50; reps "at" 100; reps "aacg" 33; reps "a" 64; reps "gacgt" 20 ]

let test_rank_of () =
  let sa = Suffix_array.build "acagaca" in
  let rank = Suffix_array.rank_of sa in
  Array.iteri (fun i p -> check int "inverse" i rank.(p)) sa

(* ------------------------------------------------------------------ *)
(* LCP                                                                 *)

let naive_lcp_array s sa =
  Array.mapi
    (fun i _ -> if i = 0 then 0 else Lcp.naive_lcp s sa.(i - 1) sa.(i))
    sa

let prop_kasai =
  Test_util.qtest ~count:300 "Kasai = naive" (Test_util.dna_gen ~hi:300 ())
    (fun s ->
      let sa = Suffix_array.build s in
      Lcp.of_suffix_array s sa = naive_lcp_array s sa)

let test_lcp_repetitive () =
  let s = "aaaaacaaaac" in
  let sa = Suffix_array.build s in
  check int_array "repetitive lcp" (naive_lcp_array s sa) (Lcp.of_suffix_array s sa)

(* ------------------------------------------------------------------ *)
(* RMQ                                                                 *)

let test_rmq_exhaustive () =
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int st 60 in
    let a = Array.init n (fun _ -> Random.State.int st 100) in
    let t = Rmq.make a in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let expect = Array.fold_left min max_int (Array.sub a i (j - i + 1)) in
        check int "range min" expect (Rmq.min_in t i j)
      done
    done
  done

let test_rmq_bad_range () =
  let t = Rmq.make [| 1; 2; 3 |] in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Rmq.min_in t 2 1);
  expect_invalid (fun () -> Rmq.min_in t 0 3);
  expect_invalid (fun () -> Rmq.min_in t (-1) 0)

(* ------------------------------------------------------------------ *)
(* LCE                                                                 *)

let prop_lce =
  Test_util.qtest ~count:200 "LCE = naive"
    QCheck2.Gen.(pair (Test_util.dna_gen ~lo:1 ~hi:150 ()) (pair small_nat small_nat))
    (fun (s, (i, j)) ->
      let n = String.length s in
      let i = i mod n and j = j mod n in
      let t = Lce.make s in
      Lce.lce t i j = Lcp.naive_lcp s i j)

let prop_lce_pair =
  Test_util.qtest ~count:200 "cross-string LCE = naive"
    QCheck2.Gen.(
      tup4 (Test_util.dna_gen ~lo:1 ~hi:100 ()) (Test_util.dna_gen ~lo:1 ~hi:100 ())
        small_nat small_nat)
    (fun (a, b, i, j) ->
      let i = i mod String.length a and j = j mod String.length b in
      let p = Lce.make_pair a b in
      let naive =
        let rec go d =
          if i + d < String.length a && j + d < String.length b && a.[i + d] = b.[j + d]
          then go (d + 1)
          else d
        in
        go 0
      in
      Lce.lce_pair p i j = naive)

let test_lce_self () =
  let t = Lce.make "acgtacgt" in
  check int "full self" 8 (Lce.lce t 0 0);
  check int "shifted by period" 4 (Lce.lce t 0 4);
  check int "no common" 0 (Lce.lce t 0 1)

(* ------------------------------------------------------------------ *)
(* Suffix-array search (Manber-Myers)                                  *)

let prop_sa_search =
  Test_util.qtest ~count:300 "sa search = naive"
    QCheck2.Gen.(pair (Test_util.dna_gen ~hi:250 ()) (Test_util.dna_gen ~lo:1 ~hi:8 ()))
    (fun (text, pattern) ->
      let t = Sa_search.build text in
      Sa_search.find_all t pattern = Stringmatch.Naive.find_all ~pattern ~text)

let test_sa_search_basics () =
  let t = Sa_search.build "acagaca" in
  check int "count aca" 2 (Sa_search.count t "aca");
  check (Alcotest.list int) "positions" [ 0; 4 ] (Sa_search.find_all t "aca");
  check int "absent" 0 (Sa_search.count t "tt");
  check int "empty pattern" 7 (Sa_search.count t "");
  check bool "range none" true (Sa_search.range t "gg" = None)

let test_sa_search_wrap_validation () =
  match Sa_search.of_suffix_array "acgt" [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched array accepted"

(* ------------------------------------------------------------------ *)
(* Suffix tree                                                         *)

let test_st_contains_all_substrings () =
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let n = 1 + Random.State.int st 80 in
    let s = Test_util.random_dna st n in
    let t = Suffix_tree.build s in
    for i = 0 to n - 1 do
      let j = i + 1 + Random.State.int st (n - i) in
      if not (Suffix_tree.contains t (String.sub s i (j - i))) then
        Alcotest.failf "missing substring %s of %s" (String.sub s i (j - i)) s
    done;
    (* A string with a character not in s is never contained. *)
    check bool "absent" false (Suffix_tree.contains t (s ^ "n"))
  done

let test_st_leaf_count_and_indices () =
  let st = Random.State.make [| 37 |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int st 120 in
    let s = Test_util.random_dna st n in
    let t = Suffix_tree.build s in
    let leaves = Suffix_tree.leaves_below t (Suffix_tree.root t) in
    (* One leaf per suffix of s^"$" : n+1 leaves, indices 0..n. *)
    check int "leaf count" (n + 1) (List.length leaves);
    check bool "indices are 0..n" true
      (List.sort compare leaves = List.init (n + 1) (fun i -> i))
  done

let test_st_find_occurrences () =
  (* Walking the pattern from the root and collecting leaves below gives
     exactly the naive occurrence set. *)
  let st = Random.State.make [| 41 |] in
  for _ = 1 to 20 do
    let n = 20 + Random.State.int st 200 in
    let s = Test_util.random_dna st n in
    let t = Suffix_tree.build s in
    let text = Suffix_tree.text t in
    let m = 1 + Random.State.int st 6 in
    let pat = Test_util.random_dna st m in
    (* Walk pat from the root. *)
    let rec walk node i =
      if i >= m then Some node
      else
        match Suffix_tree.find_child t node pat.[i] with
        | None -> None
        | Some child ->
            let start, len = Suffix_tree.edge t child in
            let rec scan d =
              if d >= len || i + d >= m then Some (i + d)
              else if text.[start + d] = pat.[i + d] then scan (d + 1)
              else None
            in
            ( match scan 0 with
            | None -> None
            | Some i' -> if i' >= m then Some child else walk child i' )
    in
    let found =
      match walk (Suffix_tree.root t) 0 with
      | None -> []
      | Some node -> List.sort compare (Suffix_tree.leaves_below t node)
    in
    let expect =
      List.sort compare
        (List.filter (fun p -> p + m <= n)
           (Stringmatch.Naive.find_all ~pattern:pat ~text:s))
    in
    check (Alcotest.list int) "occurrences" expect found
  done

let test_st_rejects_sentinel () =
  match Suffix_tree.build "ac$gt" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_st_node_count_linear () =
  (* A suffix tree on n+1 leaves has at most 2(n+1) nodes. *)
  let st = Random.State.make [| 43 |] in
  for _ = 1 to 10 do
    let n = 1 + Random.State.int st 500 in
    let s = Test_util.random_dna st n in
    let t = Suffix_tree.build s in
    check bool "node bound" true (Suffix_tree.count_nodes t <= 2 * (n + 1))
  done

let () =
  Alcotest.run "suffix"
    [
      ( "suffix_array",
        [
          Alcotest.test_case "paper example" `Quick test_sa_paper_example;
          Alcotest.test_case "all-equal string" `Quick test_sa_known_banana_like;
          Alcotest.test_case "empty and single" `Quick test_sa_empty_and_single;
          Alcotest.test_case "valid on corpus" `Quick test_sa_valid_on_corpus;
          Alcotest.test_case "periodic strings" `Quick test_sa_periodic;
          Alcotest.test_case "large random" `Slow test_sa_large_random;
          Alcotest.test_case "rank_of inverse" `Quick test_rank_of;
          prop_sais_equals_doubling;
          prop_sais_valid;
        ] );
      ( "lcp",
        [
          Alcotest.test_case "repetitive" `Quick test_lcp_repetitive;
          prop_kasai;
        ] );
      ( "rmq",
        [
          Alcotest.test_case "exhaustive small" `Quick test_rmq_exhaustive;
          Alcotest.test_case "bad ranges" `Quick test_rmq_bad_range;
        ] );
      ( "lce",
        [
          Alcotest.test_case "self" `Quick test_lce_self;
          prop_lce;
          prop_lce_pair;
        ] );
      ( "sa_search",
        [
          Alcotest.test_case "basics" `Quick test_sa_search_basics;
          Alcotest.test_case "wrap validation" `Quick test_sa_search_wrap_validation;
          prop_sa_search;
        ] );
      ( "suffix_tree",
        [
          Alcotest.test_case "contains all substrings" `Quick test_st_contains_all_substrings;
          Alcotest.test_case "leaf count and indices" `Quick test_st_leaf_count_and_indices;
          Alcotest.test_case "occurrences" `Quick test_st_find_occurrences;
          Alcotest.test_case "rejects sentinel" `Quick test_st_rejects_sentinel;
          Alcotest.test_case "node count linear" `Quick test_st_node_count_linear;
        ] );
    ]
