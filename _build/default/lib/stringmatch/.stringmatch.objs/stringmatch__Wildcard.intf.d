lib/stringmatch/wildcard.mli:
