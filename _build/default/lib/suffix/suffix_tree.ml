(* Ukkonen's algorithm.  The construction follows the classic active-point
   formulation: one phase per text position, each phase inserting the
   pending suffixes (tracked by [remainder]) until a suffix is found to be
   already present.  Leaf edges share a global end that is frozen after the
   last phase. *)

type node = {
  id : int;
  mutable start : int;
  mutable last : int;  (* inclusive end; [global_end] while building a leaf *)
  children : (char, node) Hashtbl.t;
  mutable slink : node option;
  mutable suffix_index : int;  (* -1 on internal nodes *)
}

type t = { s : string; root_node : node; node_count : int }

let global_end = max_int

let build input =
  if String.contains input '$' then
    invalid_arg "Suffix_tree.build: input must not contain '$'";
  let s = input ^ "$" in
  let n = String.length s in
  let next_id = ref 0 in
  let new_node start last =
    let node =
      {
        id = !next_id;
        start;
        last;
        children = Hashtbl.create 4;
        slink = None;
        suffix_index = -1;
      }
    in
    incr next_id;
    node
  in
  let root = new_node (-1) (-1) in
  let active_node = ref root in
  let active_edge = ref 0 in
  let active_length = ref 0 in
  let remainder = ref 0 in
  let leaf_end = ref (-1) in
  let edge_length node =
    (if node.last = global_end then !leaf_end else node.last) - node.start + 1
  in
  let extend i =
    leaf_end := i;
    incr remainder;
    let last_new = ref None in
    let link_pending target =
      (match !last_new with Some u -> u.slink <- Some target | None -> ());
      last_new := None
    in
    let finished = ref false in
    while !remainder > 0 && not !finished do
      if !active_length = 0 then active_edge := i;
      match Hashtbl.find_opt !active_node.children s.[!active_edge] with
      | None ->
          let leaf = new_node i global_end in
          Hashtbl.replace !active_node.children s.[!active_edge] leaf;
          link_pending !active_node;
          decr remainder;
          if !active_node == root && !active_length > 0 then begin
            decr active_length;
            active_edge := i - !remainder + 1
          end
          else if !active_node != root then
            active_node :=
              (match !active_node.slink with Some u -> u | None -> root)
      | Some next ->
          let el = edge_length next in
          if !active_length >= el then begin
            (* Walk down; does not consume a suffix. *)
            active_edge := !active_edge + el;
            active_length := !active_length - el;
            active_node := next
          end
          else if s.[next.start + !active_length] = s.[i] then begin
            (* Suffix already present: end the phase. *)
            link_pending !active_node;
            incr active_length;
            finished := true
          end
          else begin
            let split = new_node next.start (next.start + !active_length - 1) in
            Hashtbl.replace !active_node.children s.[!active_edge] split;
            let leaf = new_node i global_end in
            Hashtbl.replace split.children s.[i] leaf;
            next.start <- next.start + !active_length;
            Hashtbl.replace split.children s.[next.start] next;
            (match !last_new with Some u -> u.slink <- Some split | None -> ());
            last_new := Some split;
            decr remainder;
            if !active_node == root && !active_length > 0 then begin
              decr active_length;
              active_edge := i - !remainder + 1
            end
            else if !active_node != root then
              active_node :=
                (match !active_node.slink with Some u -> u | None -> root)
          end
    done
  in
  for i = 0 to n - 1 do
    extend i
  done;
  (* Freeze leaf ends and assign suffix indices by depth-first traversal. *)
  let rec finalize node depth =
    if node.last = global_end then node.last <- n - 1;
    let len = if node == root then 0 else node.last - node.start + 1 in
    let depth = depth + len in
    if Hashtbl.length node.children = 0 then node.suffix_index <- n - depth
    else Hashtbl.iter (fun _ child -> finalize child depth) node.children
  in
  finalize root 0;
  { s; root_node = root; node_count = !next_id }

let text t = t.s
let root t = t.root_node
let is_leaf _t node = Hashtbl.length node.children = 0

let suffix_index _t node =
  if node.suffix_index < 0 then
    invalid_arg "Suffix_tree.suffix_index: internal node";
  node.suffix_index

let edge t node =
  if node == t.root_node then (0, 0) else (node.start, node.last - node.start + 1)

let children _t node =
  Hashtbl.fold (fun c child acc -> (c, child) :: acc) node.children []
  |> List.sort (fun (a, _) (b, _) -> Char.compare a b)

let find_child _t node c = Hashtbl.find_opt node.children c

let leaves_below t node =
  let acc = ref [] in
  let rec go u =
    if is_leaf t u then acc := u.suffix_index :: !acc
    else Hashtbl.iter (fun _ v -> go v) u.children
  in
  go node;
  !acc

let count_nodes t = t.node_count

let contains t pat =
  let s = t.s in
  let m = String.length pat in
  let rec walk node i =
    if i >= m then true
    else
      match Hashtbl.find_opt node.children pat.[i] with
      | None -> false
      | Some child ->
          let len = child.last - child.start + 1 in
          let rec scan d =
            if d >= len || i + d >= m then d
            else if s.[child.start + d] = pat.[i + d] then scan (d + 1)
            else -1
          in
          let d = scan 0 in
          if d < 0 then false
          else if i + d >= m then true
          else walk child (i + d)
  in
  walk t.root_node 0
