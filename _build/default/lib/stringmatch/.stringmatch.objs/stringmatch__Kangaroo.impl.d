lib/stringmatch/kangaroo.ml: List String Suffix
