lib/suffix/sa_search.ml: Array Char List String Suffix_array
