(** Boyer-Moore exact matching (paper §II): bad-character and good-suffix
    shift tables, right-to-left window comparison. *)

val find_all : pattern:string -> text:string -> int list
