exception Injected of string

type plan =
  | Enospc_after of int
  | Crash_after of int
  | Short_write of int
  | Bit_flip of { offset : int; bit : int }
  | Truncate_at of int

let plan_to_string = function
  | Enospc_after n -> Printf.sprintf "enospc-after-%d" n
  | Crash_after n -> Printf.sprintf "crash-after-%d" n
  | Short_write n -> Printf.sprintf "short-write-at-%d" n
  | Bit_flip { offset; bit } -> Printf.sprintf "bit-flip-%d.%d" offset bit
  | Truncate_at n -> Printf.sprintf "truncate-at-%d" n

let flip_byte s ~offset ~bit =
  let b = Bytes.of_string s in
  Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

(* Split [chunk] around the absolute stream boundary [limit], given that
   [written] bytes went before it: the part that still fits, and whether
   the chunk crosses the boundary. *)
let prefix_upto ~written ~limit chunk =
  if written >= limit then ("", String.length chunk > 0)
  else if written + String.length chunk <= limit then (chunk, false)
  else (String.sub chunk 0 (limit - written), true)

let wrap plan (base : Fmindex.Fm_index.sink) : Fmindex.Fm_index.sink =
  let written = ref 0 in
  let lost = ref false in
  let write_counted s =
    base.Fmindex.Fm_index.sink_write s;
    written := !written + String.length s
  in
  match plan with
  | Enospc_after limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then raise (Injected "ENOSPC"));
        sink_flush = base.sink_flush;
      }
  | Crash_after limit ->
      {
        sink_write =
          (fun chunk ->
            if !lost then raise (Injected "crash");
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then begin
              lost := true;
              raise (Injected "crash")
            end);
        sink_flush =
          (fun () -> if !lost then raise (Injected "crash") else base.sink_flush ());
      }
  | Short_write limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, overflow = prefix_upto ~written:!written ~limit chunk in
            write_counted keep;
            if overflow then lost := true);
        sink_flush =
          (fun () ->
            base.sink_flush ();
            if !lost then raise (Injected "short write"));
      }
  | Bit_flip { offset; bit } ->
      {
        sink_write =
          (fun chunk ->
            let start = !written in
            let chunk =
              if offset >= start && offset < start + String.length chunk then
                flip_byte chunk ~offset:(offset - start) ~bit
              else chunk
            in
            write_counted chunk);
        sink_flush = base.sink_flush;
      }
  | Truncate_at limit ->
      {
        sink_write =
          (fun chunk ->
            let keep, _ = prefix_upto ~written:!written ~limit chunk in
            base.Fmindex.Fm_index.sink_write keep;
            (* count the bytes the writer believes it wrote *)
            written := !written + String.length chunk);
        sink_flush = base.sink_flush;
      }

let corrupt_string plan s =
  let len = String.length s in
  match plan with
  | Bit_flip { offset; bit } ->
      if len = 0 then s
      else flip_byte s ~offset:(((offset mod len) + len) mod len) ~bit:(bit land 7)
  | Enospc_after n | Crash_after n | Short_write n | Truncate_at n ->
      String.sub s 0 (max 0 (min n len))

let corrupt_file plan path =
  let image =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (corrupt_string plan image))

(* --- socket faults -------------------------------------------------- *)

module Socket = struct
  type c = { fd : Unix.file_descr; buf : Buffer.t }

  let connect path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    { fd; buf = Buffer.create 256 }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let fd c = c.fd

  let send c s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write c.fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let send_line c s = send c (s ^ "\n")

  let dribble ?(chunk = 1) ?(delay = 0.002) c s =
    if chunk < 1 then invalid_arg "Fault.Socket.dribble: chunk must be >= 1";
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      let len = min chunk (n - !off) in
      send c (String.sub s !off len);
      off := !off + len;
      if !off < n && delay > 0. then
        (try Unix.sleepf delay
         with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done

  let send_partial c s ~len =
    if len < 0 || len > String.length s then
      invalid_arg "Fault.Socket.send_partial: len out of range";
    send c (String.sub s 0 len)

  (* A minimal line reader for asserting replies: enough for the chaos
     tests, which must not depend on the server library's own client
     (that would test the client with the client). *)
  let recv_line ?(timeout = 10.) c =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec extract () =
      match String.index_opt (Buffer.contents c.buf) '\n' with
      | Some i ->
          let all = Buffer.contents c.buf in
          let line = String.sub all 0 i in
          Buffer.clear c.buf;
          Buffer.add_string c.buf
            (String.sub all (i + 1) (String.length all - i - 1));
          Some line
      | None -> fill ()
    and fill () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then None
      else
        match Unix.select [ c.fd ] [] [] remaining with
        | [], _, _ -> None
        | _ -> (
            let b = Bytes.create 8192 in
            match Unix.read c.fd b 0 8192 with
            | 0 -> None
            | n ->
                Buffer.add_subbytes c.buf b 0 n;
                extract ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                None)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
    in
    extract ()
end
