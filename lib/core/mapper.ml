type hit = {
  read_id : int;
  pos : int;
  strand : [ `Forward | `Reverse ];
  distance : int;
}

type summary = {
  total : int;
  mapped : int;
  unique : int;
  ambiguous : int;
  skipped : (int * Kmm_error.t) list;
  stats : Stats.t;
  timings : (string * float) list;
}

let deterministic_summary s = { s with timings = [] }

let default_chunk_size = 16

type options = {
  engine : Kmismatch.engine;
  both_strands : bool;
  domains : int;
  chunk_size : int;
  obs : Obs.t;
  deadline : Deadline.t;
}

let default =
  {
    engine = Kmismatch.M_tree;
    both_strands = true;
    domains = 1;
    chunk_size = default_chunk_size;
    obs = Obs.noop;
    deadline = Deadline.none;
  }

(* What the mapper actually needs from the thing it maps against — a
   monolithic {!Kmismatch.index} or a sharded {!Corpus.t} — abstracted so
   the fan-out/merge machinery is written once.  [tgt_run] must be pure
   with respect to the target (safe to call from any domain) and report
   hits in the target's global coordinates. *)
type target = {
  tgt_length : int;  (** total reference length (reporting) *)
  tgt_max_read : int;  (** longest read the target can answer *)
  tgt_limit_msg : int -> string;  (** skip reason for an oversize read *)
  tgt_prepare : Kmismatch.engine -> unit;
      (** force shared derived state before fan-out *)
  tgt_run : Kmismatch.Query.t -> (Kmismatch.Response.t, Kmm_error.t) result;
  tgt_packed : unit -> Fmindex.Packed_text.t option;
      (** the packed text hits can be re-checked against, when the
          target has a single coordinate space ([None] for sharded
          corpora, whose global positions span shard boundaries) *)
}

let target_of_index index =
  let len = Kmismatch.length index in
  {
    tgt_length = len;
    tgt_max_read = len;
    tgt_limit_msg =
      (fun m ->
        Printf.sprintf "read of %d bp exceeds the %d bp reference" m len);
    tgt_prepare =
      (fun engine ->
        (* The memos under the derived index components are domain-safe,
           but forcing the ones the run needs before fan-out keeps the
           workers from serializing on the first force.  Each registry
           entry knows what its engine reads. *)
        (match Kmismatch.Engine_registry.find engine with
        | Some entry -> entry.Kmismatch.Engine_registry.prepare index
        | None -> ());
        (* Hit re-checking runs the packed kernel for every engine. *)
        ignore (Kmismatch.packed_text index));
    tgt_run = (fun q -> Kmismatch.try_run index q);
    tgt_packed = (fun () -> Some (Kmismatch.packed_text index));
  }

(* Classify a read the engines cannot process, so one bad record degrades
   to a [skipped] entry instead of an exception that aborts the batch.
   The checks mirror the engines' preconditions: nonempty, ACGT-only
   (case folded), and no longer than the target can answer. *)
let validate_read ~target sequence =
  let m = String.length sequence in
  if m = 0 then Error (Kmm_error.Bad_input "empty read")
  else begin
    let bad = ref None in
    String.iteri
      (fun i c ->
        if !bad = None && not (Dna.Alphabet.is_base c) then bad := Some (i, c))
      sequence;
    match !bad with
    | Some (i, c) ->
        Error
          (Kmm_error.Bad_input
             (Printf.sprintf "invalid base %C at offset %d" c i))
    | None ->
        if m > target.tgt_max_read then
          Error (Kmm_error.Bad_input (target.tgt_limit_msg m))
        else Ok ()
  end

(* A query the target refused after validation passed — surfaced as the
   read's own skip reason, never as a batch abort. *)
exception Skip of Kmm_error.t

(* Re-check an engine's hits against the packed text: every reported
   (position, distance) must agree with the word-parallel kernel.  An
   engine answer the kernel refutes is a bug, and it costs exactly this
   read — a typed [Internal] skip, never a batch abort.  One kernel
   call per hit (limit = the claimed distance, so refutation
   early-exits); re-checking effort lands in the same [verify.*]
   counters as the engines' own verification. *)
let recheck ~obs pt ~pattern hits =
  match hits with
  | [] -> ()
  | _ ->
      let vtele =
        Obs.enabled obs && Fmindex.Packed_text.Telemetry.is_enabled ()
      in
      let before =
        if vtele then Some (Fmindex.Packed_text.Telemetry.snapshot ())
        else None
      in
      let normalized = String.map Dna.Alphabet.normalize pattern in
      let pp = Fmindex.Packed_text.Pattern.make normalized in
      List.iter
        (fun (pos, distance) ->
          if Fmindex.Packed_text.hamming ~limit:distance pt pp ~pos <> distance
          then
            raise
              (Skip
                 (Kmm_error.Internal
                    (Printf.sprintf
                       "hit re-check: engine hit (pos %d, distance %d) \
                        disagrees with packed verification"
                       pos distance))))
        hits;
      match before with
      | None -> ()
      | Some since ->
          Kmismatch.flush_verify obs
            (Fmindex.Packed_text.Telemetry.diff ~since
               (Fmindex.Packed_text.Telemetry.snapshot ()))

(* Map one read: all forward hits, then all reverse-complement hits, in
   the order the engine reports them.  Pure with respect to the target,
   so reads can be fanned out across domains freely. *)
let map_one ~stats ~obs ~engine ~both_strands ~deadline target ~k
    (read_id, sequence) =
  let search strand pattern =
    match
      target.tgt_run (Kmismatch.Query.make ~obs ~deadline ~engine ~pattern ~k ())
    with
    | Error e -> raise (Skip e)
    | Ok r ->
        Stats.merge ~into:stats r.Kmismatch.Response.stats;
        (match target.tgt_packed () with
        | Some pt -> recheck ~obs pt ~pattern r.Kmismatch.Response.hits
        | None -> ());
        List.map
          (fun (pos, distance) -> { read_id; pos; strand; distance })
          r.Kmismatch.Response.hits
  in
  let fwd = search `Forward sequence in
  let rev =
    if both_strands then begin
      let rc =
        Dna.Sequence.to_string
          (Dna.Sequence.revcomp (Dna.Sequence.of_string sequence))
      in
      (* A palindromic read would report each site twice. *)
      if rc = sequence then [] else search `Reverse rc
    end
    else []
  in
  fwd @ rev

let run_target opts target ~reads ~k =
  let { engine; both_strands; domains; chunk_size; obs; deadline } = opts in
  if domains < 1 then invalid_arg "Mapper.run: domains must be >= 1";
  if chunk_size < 1 then invalid_arg "Mapper.run: chunk_size must be >= 1";
  let t0 = Obs.Clock.now_ns () in
  let reads = Array.of_list reads in
  let n = Array.length reads in
  let bounds = Work_pool.chunks ~total:n ~chunk_size in
  (* Never keep more domains than there are chunks of work. *)
  let domains = max 1 (min domains (Array.length bounds)) in
  (* Force shared derived state (suffix tree, unpacked text) before the
     fan-out so workers don't serialize on its first use. *)
  if domains > 1 then target.tgt_prepare engine;
  (* Per-domain counters and sinks, merged in worker-index order at the
     end, so the reported totals match a sequential run exactly.
     ([Obs.fork] of the noop sink is noop: observability off costs one
     branch per read.) *)
  let worker_stats = Array.init domains (fun _ -> Stats.create ()) in
  let worker_obs = Array.init domains (fun _ -> Obs.fork obs) in
  (* Slot [i] receives read [i]'s hits — or its skip reason — no matter
     which domain computed them: the merge (and therefore the skipped
     list) is deterministic by construction.  A fault in one read never
     reaches the pool: it is caught here, recorded in the read's own
     slot, and the rest of the batch proceeds — so the byte-identical
     seq≡par guarantee holds for the surviving reads. *)
  let per_read = Array.make n [] in
  let skip_slot = Array.make n None in
  (* [touched.(i)] distinguishes "processed, zero hits" from "never
     reached": the pool's [cancel] skips whole chunk bodies once the
     batch deadline expires, and the post-pass below turns every
     untouched read into a typed [Timeout] skip. *)
  let touched = Array.make n false in
  let expired_msg = "batch deadline expired before this read was searched" in
  let t1 = Obs.Clock.now_ns () in
  Work_pool.with_pool ~domains (fun pool ->
      match
        Work_pool.run
          ~cancel:(fun () -> Deadline.expired deadline)
          ~obs:worker_obs pool ~tasks:(Array.length bounds)
          (fun ~worker ~task ->
            let stats = worker_stats.(worker) in
            let o = worker_obs.(worker) in
            let start, len = bounds.(task) in
            for i = start to start + len - 1 do
              touched.(i) <- true;
              let _, sequence = reads.(i) in
              (* Coarse per-read checkpoint: a read started after expiry
                 sheds immediately; one already in flight is cut by the
                 engine polls through the query's own deadline. *)
              if Deadline.expired deadline then begin
                skip_slot.(i) <- Some (Kmm_error.Timeout expired_msg);
                Obs.incr o "map.reads_skipped"
              end
              else
                match validate_read ~target sequence with
                | Error e ->
                    skip_slot.(i) <- Some e;
                    Obs.incr o "map.reads_skipped"
                | Ok () -> (
                    let map () =
                      map_one ~stats ~obs:o ~engine ~both_strands ~deadline
                        target ~k reads.(i)
                    in
                    match
                      if Obs.enabled o then Obs.time o "map.read" map
                      else map ()
                    with
                    | hits ->
                        per_read.(i) <- hits;
                        if Obs.enabled o then begin
                          Obs.incr o "map.reads";
                          (* Hit multiplicity is a function of the input
                             alone — the histogram merges bit-for-bit
                             across any domain count. *)
                          Obs.record o "map.read_hits" (List.length hits)
                        end
                    | exception Skip e ->
                        (* The target refused the query after validation —
                           the read's own typed skip, not a batch abort. *)
                        Obs.incr o "map.reads_skipped";
                        skip_slot.(i) <- Some e
                    | exception e ->
                        (* An engine exception on a validated read is a
                           bug, but it still only costs this one read. *)
                        Obs.incr o "map.reads_failed";
                        skip_slot.(i) <-
                          Some (Kmm_error.Internal (Printexc.to_string e)))
            done)
      with
      | () -> ()
      | exception Work_pool.Cancelled ->
          (* Chunks skipped by the cancel poll: their reads were never
             touched and become Timeout skips below. *)
          ());
  for i = 0 to n - 1 do
    if not touched.(i) then
      skip_slot.(i) <- Some (Kmm_error.Timeout expired_msg)
  done;
  let t2 = Obs.Clock.now_ns () in
  let stats = Stats.create () in
  Array.iter (fun s -> Stats.merge ~into:stats s) worker_stats;
  (* Worker-index order: deterministic merge of deterministic metrics. *)
  Array.iter (fun o -> Obs.merge ~into:obs o) worker_obs;
  let mapped = ref 0 and unique = ref 0 and ambiguous = ref 0 in
  Array.iteri
    (fun i hits ->
      match (skip_slot.(i), hits) with
      | Some _, _ | None, [] -> ()
      | None, [ _ ] ->
          incr mapped;
          incr unique
      | None, _ :: _ :: _ ->
          incr mapped;
          incr ambiguous)
    per_read;
  let skipped = ref [] in
  for i = n - 1 downto 0 do
    match skip_slot.(i) with
    | Some e -> skipped := (fst reads.(i), e) :: !skipped
    | None -> ()
  done;
  let hits =
    List.sort
      (fun a b -> compare (a.read_id, a.pos, a.strand) (b.read_id, b.pos, b.strand))
      (List.concat (Array.to_list per_read))
  in
  let t3 = Obs.Clock.now_ns () in
  let s ns = float_of_int ns *. 1e-9 in
  let timings =
    [ ("prepare", s (t1 - t0)); ("search", s (t2 - t1)); ("merge", s (t3 - t2)) ]
  in
  if Obs.enabled obs then begin
    Obs.record obs "map.prepare_ns" (t1 - t0);
    Obs.record obs "map.search_ns" (t2 - t1);
    Obs.record obs "map.merge_ns" (t3 - t2)
  end;
  ( hits,
    {
      total = n;
      mapped = !mapped;
      unique = !unique;
      ambiguous = !ambiguous;
      skipped = !skipped;
      stats;
      timings;
    } )

let run opts index ~reads ~k = run_target opts (target_of_index index) ~reads ~k

let map_reads ?(engine = Kmismatch.M_tree) ?(both_strands = true) ?(domains = 1)
    ?(chunk_size = default_chunk_size) ?stats index ~reads ~k =
  if domains < 1 then invalid_arg "Mapper.map_reads: domains must be >= 1";
  if chunk_size < 1 then invalid_arg "Mapper.map_reads: chunk_size must be >= 1";
  let hits, summary =
    run { default with engine; both_strands; domains; chunk_size } index ~reads
      ~k
  in
  (match stats with
  | Some into -> Stats.merge ~into summary.stats
  | None -> ());
  (hits, summary)

let best_hits hits =
  let best = Hashtbl.create 64 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt best h.read_id with
      | Some d when d <= h.distance -> ()
      | _ -> Hashtbl.replace best h.read_id h.distance)
    hits;
  List.filter (fun h -> Hashtbl.find best h.read_id = h.distance) hits

let to_tsv hits =
  let buf = Buffer.create 256 in
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%c\t%d\n" h.read_id h.pos
           (match h.strand with `Forward -> '+' | `Reverse -> '-')
           h.distance))
    hits;
  Buffer.contents buf
