(** String matching with k errors (paper SS:II): Levenshtein distance
    instead of Hamming, i.e. substitutions, insertions and deletions all
    cost one.

    Implemented as the classic Sellers dynamic programme over one column
    per text character (O(mn) worst case, the complexity the paper quotes
    for this family). *)

val distance : string -> string -> int
(** Plain edit distance between two strings. *)

val search_ends : pattern:string -> text:string -> k:int -> (int * int) list
(** All [(end_position, distance)] pairs — [end_position] exclusive —
    such that some substring of [text] ending there is within edit
    distance [k] of [pattern]; for each end the minimal distance is
    reported.  Ascending.  Raises [Invalid_argument] on an empty pattern
    or negative [k]. *)

val occurs : pattern:string -> text:string -> k:int -> bool
(** Whether the pattern occurs anywhere with at most [k] errors. *)
