(* 2-bit packed DNA text.  Lane i lives in byte (i lsr 2) at bit offset
   (i land 3) * 2, LSB first — the byte layout shared by the in-memory
   rank blocks and the on-disk payload of both index formats. *)

type t = { data : Bytes.t; len : int }

let empty = { data = Bytes.empty; len = 0 }
let length t = t.len
let nbytes len = (len + 3) / 4

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.data (i lsr 2)) lsr ((i land 3) * 2) land 3

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed_text.get: index out of range";
  unsafe_get t i

let init n f =
  if n < 0 then invalid_arg "Packed_text.init: negative length";
  let data = Bytes.make (nbytes n) '\000' in
  for i = 0 to n - 1 do
    let d = f i in
    if d < 0 || d > 3 then invalid_arg "Packed_text.init: lane code out of range";
    let b = i lsr 2 in
    Bytes.unsafe_set data b
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get data b) lor (d lsl ((i land 3) * 2))))
  done;
  { data; len = n }

let code_of_base c =
  match c with
  | 'a' | 'A' -> Some 0
  | 'c' | 'C' -> Some 1
  | 'g' | 'G' -> Some 2
  | 't' | 'T' -> Some 3
  | _ -> None

let base_of_code d =
  match d with
  | 0 -> 'a'
  | 1 -> 'c'
  | 2 -> 'g'
  | 3 -> 't'
  | _ -> invalid_arg "Packed_text.base_of_code: lane code out of range"

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | 'a' -> 0
      | 'c' -> 1
      | 'g' -> 2
      | 't' -> 3
      | c ->
          invalid_arg
            (Printf.sprintf "Packed_text.of_string: %C is not a lowercase base" c))

let to_string t = String.init t.len (fun i -> base_of_code (unsafe_get t i))

let bytes t = t.data

let of_bytes payload ~len =
  if len < 0 then invalid_arg "Packed_text.of_bytes: negative length";
  if String.length payload <> nbytes len then
    invalid_arg "Packed_text.of_bytes: payload size does not match length";
  let data = Bytes.of_string payload in
  (* Clear padding lanes of the last byte so byte-parallel counts stay
     exact even on dirty input. *)
  (if len land 3 <> 0 then
     let last = Bytes.length data - 1 in
     let keep = (1 lsl ((len land 3) * 2)) - 1 in
     Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep)));
  { data; len }
