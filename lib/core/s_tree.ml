module Fm = Fmindex.Fm_index

(* Feeding pattern characters left to right into backward extensions of
   FM(rev s) matches prefixes of the pattern against windows of s: after j
   steps the interval covers exactly the occurrences (reversed) of the
   j-character path string in s. *)

let delta_heuristic fm ~pattern =
  let m = String.length pattern in
  let delta = Array.make (m + 2) 0 in
  (* absent_end.(i) = smallest 1-based j >= i such that r[i..j] does not
     occur in s, or 0 when r[i..m] occurs entirely. *)
  for i = m downto 1 do
    let rec extend j iv =
      if j > m then 0
      else
        match Fm.extend fm (Dna.Alphabet.code pattern.[j - 1]) iv with
        | None -> j
        | Some iv' -> extend (j + 1) iv'
    in
    let j = extend i (Fm.whole fm) in
    delta.(i) <- (if j = 0 then 0 else 1 + delta.(j + 1))
  done;
  delta

let search ?(use_delta = true) ?stats ?(obs = Obs.noop) fm ~pattern ~k =
  if pattern = "" then invalid_arg "S_tree.search: empty pattern";
  if k < 0 then invalid_arg "S_tree.search: negative k";
  String.iter
    (fun c ->
      if not (Dna.Alphabet.is_base c && c = Dna.Alphabet.normalize c) then
        invalid_arg "S_tree.search: pattern must be lowercase acgt")
    pattern;
  let m = String.length pattern in
  let k = min k m in
  (* budgets beyond m behave exactly like k = m *)
  let n = Fm.length fm in
  let bump (f : Stats.t -> unit) = match stats with Some s -> f s | None -> () in
  if m > n then []
  else begin
    let delta =
      if use_delta then
        Obs.span obs "stree.delta" (fun () -> delta_heuristic fm ~pattern)
      else [||]
    in
    let pat_codes = Array.init m (fun i -> Dna.Alphabet.code pattern.[i]) in
    let results = ref [] in
    let locate_buf = ref [||] in
    let report ((lo, hi) as iv) q =
      let cnt = hi - lo in
      if Array.length !locate_buf < cnt then locate_buf := Array.make cnt 0;
      let buf = !locate_buf in
      Fm.locate_into fm iv buf;
      for i = 0 to cnt - 1 do
        results := (n - Array.unsafe_get buf i - m, q) :: !results
      done
    in
    (* Depth-first over the S-tree; j = characters matched, q = mismatches
       spent.  Branches for all four characters come from one rank-all
       pass over the interval boundaries. *)
    let rec expand iv j q =
      Deadline.poll ();
      if j = m then begin
        bump (fun s -> s.leaves <- s.leaves + 1);
        report iv q
      end
      else begin
        let los = Array.make 5 0 and his = Array.make 5 0 in
        bump (fun s -> s.rank_calls <- s.rank_calls + 2);
        Fm.extend_all fm iv ~los ~his;
        let died = ref true in
        for c = 1 to 4 do
          let lo = los.(c) and hi = his.(c) in
          if lo < hi then begin
            let q' = if c = pat_codes.(j) then q else q + 1 in
            if q' <= k && ((not use_delta) || k - q' >= delta.(j + 2)) then begin
              died := false;
              bump (fun s -> s.nodes <- s.nodes + 1);
              expand (lo, hi) (j + 1) q'
            end
          end
        done;
        if !died then bump (fun s -> s.leaves <- s.leaves + 1)
      end
    in
    Obs.span obs "stree.explore" (fun () -> expand (Fm.whole fm) 0 0);
    List.sort Hit.compare !results
  end
