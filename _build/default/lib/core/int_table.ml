type 'a t = {
  mutable keys : int array;  (* -1 = empty *)
  mutable vals : 'a array;
  mutable size : int;
  mutable mask : int;  (* capacity - 1, capacity a power of two *)
  dummy : 'a;
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ~dummy cap =
  let cap = pow2 (max cap 8) 8 in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap dummy;
    size = 0;
    mask = cap - 1;
    dummy;
  }

(* Multiplicative hashing, folding in the high bits so that consecutive
   packed keys spread instead of clustering under linear probing. *)
let slot t key =
  let h = key * 0x2545F4914F6CDD1D in
  ((h lsr 32) lxor h) land t.mask

let rec probe keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = -1 then i else probe keys mask key ((i + 1) land mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t.keys t.mask k (slot t k) in
        Array.unsafe_set t.keys j k;
        Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
      end)
    old_keys

let find t key =
  if key < 0 then invalid_arg "Int_table.find: negative key";
  let i = probe t.keys t.mask key (slot t key) in
  if Array.unsafe_get t.keys i = key then Some (Array.unsafe_get t.vals i)
  else None

let replace t key v =
  if key < 0 then invalid_arg "Int_table.replace: negative key";
  let i = probe t.keys t.mask key (slot t key) in
  if Array.unsafe_get t.keys i <> key then begin
    Array.unsafe_set t.keys i key;
    Array.unsafe_set t.vals i v;
    t.size <- t.size + 1;
    (* Keep the load factor at or below one half. *)
    if t.size * 2 > t.mask + 1 then grow t
  end
  else Array.unsafe_set t.vals i v

let length t = t.size
