(* Quickstart: index a small target and run a k-mismatch query with every
   engine, reproducing the paper's running example (§IV.A).

     dune exec examples/quickstart.exe                                   *)

let () =
  let target = "acagaca" in
  let pattern = "tcaca" in
  let k = 2 in
  Printf.printf "target  = %s\npattern = %s\nk       = %d\n\n" target pattern k;

  (* One index serves every engine. *)
  let index = Core.Kmismatch.build_index target in

  (* The BWT array the index is built on (the paper transforms the
     *reverse* of the target so the pattern can be matched left to
     right). *)
  Printf.printf "BWT(target$)     = %s\n" (Fmindex.Bwt.of_text target);
  Printf.printf "BWT(rev target$) = %s\n\n"
    (Fmindex.Fm_index.bwt (Core.Kmismatch.fm_rev index));

  List.iter
    (fun engine ->
      let stats = Core.Stats.create () in
      let hits = Core.Kmismatch.search ~stats index ~engine ~pattern ~k in
      Printf.printf "%-16s" (Core.Kmismatch.engine_name engine);
      List.iter (fun (pos, d) -> Printf.printf " (pos=%d, mismatches=%d)" pos d) hits;
      print_newline ())
    (Core.Kmismatch.all_engines ());

  (* The two occurrences cover s[0..4] = acaga and s[2..6] = agaca, each
     differing from tcaca in exactly two positions — the paper's P1/P2. *)
  print_newline ();
  List.iter
    (fun (pos, d) ->
      Printf.printf "window at %d: %s vs %s (%d mismatches)\n" pos
        (String.sub target pos (String.length pattern))
        pattern d)
    (Core.Kmismatch.search index ~engine:Core.Kmismatch.M_tree ~pattern ~k)

(* The literal mismatching tree of the paper's Fig. 7: collapsed <-, 0>
   match runs with <char, position> mismatch nodes, and the per-path
   mismatch arrays B_l of Fig. 3. *)
let () =
  let index = Core.Kmismatch.build_index "acagaca" in
  let tree =
    Core.Mismatch_tree.build (Core.Kmismatch.fm_rev index) ~pattern:"tcaca" ~k:2
  in
  Format.printf "@.mismatching tree (paper Fig. 7):@.%a@." Core.Mismatch_tree.pp
    tree.Core.Mismatch_tree.root;
  List.iter
    (fun p ->
      Format.printf "B = [%s]%s@."
        (String.concat "; "
           (List.map string_of_int p.Core.Mismatch_tree.mismatches))
        (if p.Core.Mismatch_tree.complete then
           Printf.sprintf " -> occurrence(s) at %s"
             (String.concat ", "
                (List.map string_of_int p.Core.Mismatch_tree.occurrences))
         else " (dead path)"))
    tree.Core.Mismatch_tree.paths
