let z_array s =
  let n = String.length s in
  let z = Array.make n 0 in
  if n > 0 then begin
    z.(0) <- n;
    let l = ref 0 and r = ref 0 in
    for i = 1 to n - 1 do
      if i < !r then z.(i) <- min (!r - i) z.(i - !l);
      while i + z.(i) < n && s.[z.(i)] = s.[i + z.(i)] do
        z.(i) <- z.(i) + 1
      done;
      if i + z.(i) > !r then begin
        l := i;
        r := i + z.(i)
      end
    done
  end;
  z

let find_all ~pattern ~text =
  let m = String.length pattern in
  if m = 0 then List.init (String.length text + 1) (fun i -> i)
  else begin
    let z = z_array (pattern ^ "\001" ^ text) in
    let acc = ref [] in
    for i = String.length text - 1 downto 0 do
      if z.(m + 1 + i) >= m then acc := i :: !acc
    done;
    !acc
  end
