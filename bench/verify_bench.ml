(* Verification-kernel benchmark: the word-parallel SWAR Hamming kernel
   ([Packed_text.hamming] over 28-lane words) against the byte-scan
   reference ([Hamming.distance_at]) that every filter-and-verify hot
   path used before this kernel existed.

   A verification call is "distance of pattern vs the window at [pos],
   capped at [k]" — what Hybrid runs per surviving candidate, Kangaroo
   per window on its packed fallback, Amir per filtered position and the
   mapper per reported hit.  Its cost splits into two regimes with very
   different profiles, so they are planted and timed separately instead
   of being averaged into one flattering number:

     full-scan    the window really is within distance k (a true hit):
                  no early exit is possible and both sides must touch
                  all m bases.  This is where the word-parallel claim
                  lives — the acceptance regime for the speedup.
     early-exit   a random window vs an unrelated pattern (~0.75·m
                  expected mismatches): both sides bail after roughly
                  k+1 mismatches, so calls are short and dominated by
                  per-call overhead.  Reported separately and honestly —
                  speedups here say little about the kernel.

   Full-scan windows are planted: each (m, k) config gets [nslots]
   disjoint slots spread across the whole text (one per stride block, so
   a 128 Mbp run really pays 128 Mbp cache behavior), the pattern is
   copied in and exactly min(k, m) bases are then flipped — the planted
   distance is known, <= k, and forces a complete scan on both sides.

   Every row cross-checks the two implementations call by call on the
   accept/reject verdict and the accepted distance (the early-exit
   contract allows different over-limit values, so only accepted
   distances must be byte-identical), plus [hamming_le] against the
   byte-scan verdict.  Any disagreement fails the run.

   One JSON record per run is appended to --out (default
   BENCH_verify.json). *)

module Packed_text = Fmindex.Packed_text
module Pattern = Packed_text.Pattern
module Hamming = Stringmatch.Hamming

let default_sizes = [ 1_000_000; 32_000_000; 128_000_000 ]
let pattern_lengths = [ 16; 64; 128; 512 ]
let budgets = [ 0; 1; 4; 16 ]
let default_nslots = 128 (* planted windows per (m, k) config *)
let nrandom = 100_000 (* random windows per early-exit row *)

(* Best-of-N wall time after one untimed warmup pass, as in
   rank_locate: deterministic kernels, so the minimum is the low-noise
   estimator, and both sides go through the same harness. *)
let timing_passes = 5

let time_best f =
  f ();
  let best = ref infinity in
  for _ = 1 to timing_passes do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Workload construction                                               *)

type config = {
  m : int;
  k : int;
  pattern : string;
  planted : int array;  (* slot positions; distance there = min k m *)
}

let bases = "acgt"

let random_pattern st m =
  String.init m (fun _ -> bases.[Random.State.int st 4])

(* Flip [d] distinct bases of the freshly blitted window so its distance
   to [pattern] is exactly [d]. *)
let plant_mismatches st text ~pattern ~pos ~d =
  let m = String.length pattern in
  let chosen = Array.make (max d 1) (-1) in
  let filled = ref 0 in
  while !filled < d do
    let j = Random.State.int st m in
    if not (Array.exists (fun x -> x = j) chosen) then begin
      chosen.(!filled) <- j;
      incr filled;
      let keep = pattern.[j] in
      let rec flip () =
        let b = bases.[Random.State.int st 4] in
        if b = keep then flip () else b
      in
      Bytes.set text (pos + j) (flip ())
    end
  done

(* Random genome with every (m, k) config's slots planted into disjoint
   regions: slot [j] of config [i] lives at [j * stride + offset_i],
   where the offsets lay the configs out back to back inside each stride
   block.  Returns the final text (string and packed) and the configs. *)
let setup ~st ~nslots size =
  let text = Bytes.of_string (Dna.Sequence.to_string (Dna.Sequence.random ~state:st size)) in
  let pairs =
    List.concat_map (fun m -> List.map (fun k -> (m, k)) budgets) pattern_lengths
  in
  let block = List.fold_left (fun acc (m, _) -> acc + m) 0 pairs in
  let nslots = min nslots (size / block) in
  if nslots < 1 then
    invalid_arg "verify bench: text too small to plant one window per config";
  let stride = size / nslots in
  let pats = List.map (fun m -> (m, random_pattern st m)) pattern_lengths in
  let configs, _ =
    List.fold_left
      (fun (acc, off) (m, k) ->
        let pattern = List.assoc m pats in
        let planted = Array.init nslots (fun j -> (j * stride) + off) in
        Array.iter
          (fun pos ->
            Bytes.blit_string pattern 0 text pos m;
            plant_mismatches st text ~pattern ~pos ~d:(min k m))
          planted;
        ({ m; k; pattern; planted } :: acc, off + m))
      ([], 0) pairs
  in
  let text = Bytes.unsafe_to_string text in
  (text, Packed_text.of_string text, nslots, List.rev configs)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

type row = {
  size : int;
  m : int;
  k : int;
  regime : string;  (* "full-scan" | "early-exit" *)
  ops : int;
  packed_s : float;
  byte_s : float;
  agree : bool;
}

let speedup r = r.byte_s /. r.packed_s
let ns_per_op s ops = s *. 1e9 /. float_of_int ops

(* Cross-check one call under the shared early-exit contract: the
   accept/reject verdict must match, accepted distances must be
   byte-identical, and [hamming_le] must agree with the byte-scan. *)
let calls_agree pt pp ~pattern ~text ~k pos =
  let dp = Packed_text.hamming ~limit:k pt pp ~pos in
  let db = Hamming.distance_at ~limit:k ~pattern ~text pos in
  dp <= k = (db <= k)
  && (db > k || dp = db)
  && Packed_text.hamming_le pt pp ~pos ~k = (db <= k)

let measure ~size ~regime pt pp ~pattern ~text ~k ~reps positions =
  let npos = Array.length positions in
  let agree = ref true in
  Array.iter
    (fun pos -> if not (calls_agree pt pp ~pattern ~text ~k pos) then agree := false)
    positions;
  (* Accepted calls contribute their distance, rejections a fixed k + 1:
     a deterministic accumulator both sides must reproduce exactly. *)
  let acc_p = ref 0 in
  let packed_s =
    time_best (fun () ->
        acc_p := 0;
        for _ = 1 to reps do
          for i = 0 to npos - 1 do
            let pos = Array.unsafe_get positions i in
            let d = Packed_text.hamming ~limit:k pt pp ~pos in
            acc_p := !acc_p + (if d <= k then d else k + 1)
          done
        done)
  in
  let acc_b = ref 0 in
  let byte_s =
    time_best (fun () ->
        acc_b := 0;
        for _ = 1 to reps do
          for i = 0 to npos - 1 do
            let pos = Array.unsafe_get positions i in
            let d = Hamming.distance_at ~limit:k ~pattern ~text pos in
            acc_b := !acc_b + (if d <= k then d else k + 1)
          done
        done)
  in
  {
    size;
    m = String.length pattern;
    k;
    regime;
    ops = npos * reps;
    packed_s;
    byte_s;
    agree = !agree && !acc_p = !acc_b;
  }

let bench_size ~seed size =
  let st = Random.State.make [| seed; size |] in
  let (text, pt, nslots, configs), setup_s =
    Bench_util.time (fun () -> setup ~st ~nslots:default_nslots size)
  in
  Bench_util.note "%s bp genome planted and packed in %s (%d slots per config)"
    (Bench_util.fmt_count size) (Bench_util.fmt_time setup_s) nslots;
  List.concat_map
    (fun c ->
      let pp = Pattern.make c.pattern in
      (* Keep byte-scan work per pass roughly constant across pattern
         lengths by looping the planted slots. *)
      let reps = max 1 (8_000_000 / c.m / nslots) in
      let full =
        measure ~size ~regime:"full-scan" pt pp ~pattern:c.pattern ~text ~k:c.k
          ~reps c.planted
      in
      let random_pos =
        Array.init nrandom (fun _ -> Random.State.int st (size - c.m + 1))
      in
      let early =
        measure ~size ~regime:"early-exit" pt pp ~pattern:c.pattern ~text ~k:c.k
          ~reps:1 random_pos
      in
      [ full; early ])
    configs

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let run ?(obs = Obs.noop) ?(out = "BENCH_verify.json") ?size ?(seed = 42) () =
  let sizes = match size with Some s -> [ s ] | None -> default_sizes in
  Bench_util.section "verify: word-parallel SWAR kernel vs byte-scan Hamming";
  Bench_util.note
    "full-scan rows verify planted true hits (distance <= k, no early exit \
     possible); early-exit rows verify random windows (~0.75m mismatches, \
     dominated by per-call overhead).  Every call cross-checked against the \
     byte-scan reference";
  let rows =
    Obs.span obs "bench.verify" (fun () ->
        List.concat_map (fun n -> bench_size ~seed n) sizes)
  in
  Bench_util.table
    ~header:
      [ "size"; "m"; "k"; "regime"; "ops"; "packed ns/op"; "byte ns/op"; "speedup"; "agree" ]
    (List.map
       (fun r ->
         [
           Bench_util.fmt_count r.size;
           string_of_int r.m;
           string_of_int r.k;
           r.regime;
           Bench_util.fmt_count r.ops;
           Printf.sprintf "%.1f" (ns_per_op r.packed_s r.ops);
           Printf.sprintf "%.1f" (ns_per_op r.byte_s r.ops);
           Printf.sprintf "%.2fx" (speedup r);
           (if r.agree then "yes" else "NO(BUG)");
         ])
       rows);
  List.iter
    (fun r ->
      let label =
        Printf.sprintf "bench.verify.%d.m%d.k%d.%s" r.size r.m r.k r.regime
      in
      Obs.record obs (label ^ ".packed_ns_per_op")
        (int_of_float (ns_per_op r.packed_s r.ops));
      Obs.record obs (label ^ ".byte_ns_per_op")
        (int_of_float (ns_per_op r.byte_s r.ops)))
    rows;
  List.iter
    (fun r ->
      if not r.agree then
        failwith
          (Printf.sprintf
             "verify bench: packed and byte-scan diverge at size %d m %d k %d (%s)"
             r.size r.m r.k r.regime))
    rows;
  let json =
    Printf.sprintf
      "{\"bench\":\"verify\",\"meta\":%s,\"seed\":%d,\"word_lanes\":%d,\
       \"slots_per_config\":%d,\"results\":[%s]}"
      (Bench_meta.to_json ()) seed Packed_text.word_lanes default_nslots
      (String.concat ","
         (List.map
            (fun r ->
              Printf.sprintf
                "{\"size\":%d,\"m\":%d,\"k\":%d,\"regime\":\"%s\",\"ops\":%d,\
                 \"packed_ns_per_op\":%.1f,\"byte_ns_per_op\":%.1f,\
                 \"speedup\":%.3f,\"agree\":%b}"
                r.size r.m r.k r.regime r.ops (ns_per_op r.packed_s r.ops)
                (ns_per_op r.byte_s r.ops) (speedup r) r.agree)
            rows))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  output_string oc (json ^ "\n");
  close_out oc;
  Bench_util.note "record appended to %s" out

(* ------------------------------------------------------------------ *)
(* Headless parity smoke for [dune runtest] and [kmm bench verify
   --smoke]: build the planted workload on a small genome and replay
   every cross-check — no timing, no output, no JSON.  Also asserts the
   harness itself: a planted slot's distance must be exactly min(k, m),
   or the "full-scan regime" label would be a lie. *)

let parity_smoke ?(size = 60_000) ?(seed = 7) () =
  let st = Random.State.make [| seed; size |] in
  let text, pt, _, configs = setup ~st ~nslots:8 size in
  List.iter
    (fun c ->
      let pp = Pattern.make c.pattern in
      let check pos =
        if not (calls_agree pt pp ~pattern:c.pattern ~text ~k:c.k pos) then
          failwith
            (Printf.sprintf
               "verify parity: packed and byte-scan diverge at pos %d (m %d, k %d)"
               pos c.m c.k)
      in
      Array.iter
        (fun pos ->
          check pos;
          let d = Hamming.distance_at ~pattern:c.pattern ~text pos in
          if d <> min c.k c.m then
            failwith
              (Printf.sprintf
                 "verify parity: planted slot at %d has distance %d, wanted %d"
                 pos d (min c.k c.m)))
        c.planted;
      for _ = 1 to 1_000 do
        check (Random.State.int st (size - c.m + 1))
      done)
    configs
