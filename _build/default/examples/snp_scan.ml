(* SNP scanning: find where a probe sequence matches the reference with a
   small number of single-nucleotide differences, and report each
   difference — the "disease diagnosis" use case from the paper's
   introduction.

   The scan combines two parts of the library: Algorithm A to locate the
   k-mismatch occurrences, and the kangaroo LCE structure to pin down the
   exact mismatch offsets of every reported site in O(k) per site.

     dune exec examples/snp_scan.exe                                     *)

let () =
  (* A reference with a duplicated gene-like region. *)
  let gene = "acgtacgattacagattacagcatgcatgg" in
  let reference =
    let filler seed len =
      Dna.Sequence.to_string (Dna.Sequence.random ~state:(Random.State.make [| seed |]) len)
    in
    filler 1 50 ^ gene ^ filler 2 40
    ^ (* paralog with two SNPs *)
    "acgtacgataacagattacagcgtgcatgg"
    ^ filler 3 50
  in
  let probe = gene in
  let k = 3 in

  Printf.printf "reference: %d bp, probe: %d bp, k = %d\n\n" (String.length reference)
    (String.length probe) k;

  let index = Core.Kmismatch.build_index reference in
  let sites = Core.Kmismatch.search index ~engine:Core.Kmismatch.M_tree ~pattern:probe ~k in

  let lce = Stringmatch.Kangaroo.make ~pattern:probe ~text:reference in
  List.iter
    (fun (pos, d) ->
      Printf.printf "site at %d: %d difference(s)\n" pos d;
      let offsets = Stringmatch.Kangaroo.mismatches_at lce ~pos ~limit:k in
      List.iter
        (fun off ->
          Printf.printf "  SNP at reference %d: %c -> %c\n" (pos + off)
            probe.[off] reference.[pos + off])
        offsets)
    sites;

  if sites = [] then print_endline "no sites found"
  else Printf.printf "\n%d site(s) found\n" (List.length sites)
