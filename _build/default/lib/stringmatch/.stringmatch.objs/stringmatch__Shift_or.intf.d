lib/stringmatch/shift_or.mli:
