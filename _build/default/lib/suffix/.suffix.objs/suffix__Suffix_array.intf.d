lib/suffix/suffix_array.mli:
