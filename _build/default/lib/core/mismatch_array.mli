(** Mismatch information within a pattern (paper §IV.B).

    [R_i] records where the pattern disagrees with itself at relative shift
    [i]: the first [k+2] positions [x] (1-based) such that
    [r[x] <> r[i+x]], where both sides range over the overlap
    [r[1 .. m-i]] versus [r[i+1 .. m]].  Keeping [k+2] rather than [k+1]
    entries is the paper's provision for exact merging.

    All positions in this module are 1-based, matching the paper; arrays
    are exactly as long as the number of mismatches found (no 0-padding —
    absence is conveyed by the array ending). *)

type t = {
  r : string;  (** the pattern *)
  k : int;
  tables : int array array;
      (** [tables.(i)] is [R_i] for [1 <= i <= m-1]; [tables.(0)] is the
          empty [R_0]. *)
  lce : Suffix.Lce.t;  (** self-LCE over [r], reused for direct queries *)
}

val build : string -> k:int -> t
(** Precompute [R_1 .. R_{m-1}] for pattern [r], each holding at most
    [k+2] entries.  O(km) total via kangaroo jumps (the paper quotes
    O(m log m) for its construction; ours is not worse for k = O(log m)).
    Raises [Invalid_argument] if [r] is empty or [k < 0]. *)

val shift_table : t -> int -> int array
(** [shift_table t i] is [R_i].  Raises [Invalid_argument] outside
    [0 .. m-1]. *)

val naive_pairwise : string -> string -> limit:int -> int array
(** First [limit] mismatch positions (1-based) between two equal-length
    strings; the test oracle.  Raises [Invalid_argument] on length
    mismatch. *)

val merge :
  a1:int array ->
  a2:int array ->
  beta:(int -> char) ->
  gamma:(int -> char) ->
  limit:int ->
  int array
(** The paper's [merge(A1, A2, beta, gamma)] (§IV.B): [a1] holds the
    mismatch positions of [alpha] vs [beta], [a2] those of [alpha] vs
    [gamma]; the result holds the mismatch positions of [beta] vs [gamma].
    Positions present in both inputs are resolved by comparing
    [beta]/[gamma] directly (their 1-based character accessors).  At most
    [limit] entries are produced.  Inputs must be strictly increasing. *)

val derive : t -> i:int -> j:int -> int array
(** [derive t ~i ~j] is [R_ij]: the first [k+2] mismatch positions between
    [r[i+1 ..]] and [r[j+1 ..]] over their common overlap (length
    [m - max i j]), obtained by merging [R_i] and [R_j] exactly as
    Algorithm A does.  Requires [0 <= i < j <= m-1]. *)

val pairwise_lce : t -> i:int -> j:int -> limit:int -> int array
(** Same quantity as {!derive} but computed directly with self-LCE kangaroo
    jumps; exact for any [limit].  Used as the oracle for {!derive} and as
    the default inner loop of the M-tree engine. *)
