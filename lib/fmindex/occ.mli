(** Rank ("rankall") structure over a BWT string.

    This is the paper's Fig. 2 device: for each character [x], [A_x.(k)] is
    the number of occurrences of [x] in [L[0 .. k)].  Storing every value
    costs too much, so checkpoints are kept every [rate] positions and the
    remainder is counted on the fly — the paper's "rankalls for part of the
    elements to reduce the space overhead, at the cost of some more
    searches". *)

type t

val make : ?rate:int -> string -> t
(** [make l] preprocesses the BWT string [l] (over [$acgt]).  [rate]
    (default 16) is the checkpoint spacing; must be positive. *)

val rank : t -> int -> int -> int
(** [rank t c i] is the number of occurrences of character code [c] in
    [l[0 .. i)].  O(rate) worst case, O(1) amortized for scanning use. *)

val rate : t -> int
val length : t -> int

val space_bytes : t -> int
(** Estimated heap footprint of the whole rank structure — checkpoint
    tables {e plus} the per-position code byte table scanned between
    checkpoints — for the index-size experiment. *)

val rank_all : t -> int -> int array -> unit
(** [rank_all t i dst] writes [rank t c i] into [dst.(c)] for every
    character code in one block scan.  [dst] must have length [sigma]. *)
