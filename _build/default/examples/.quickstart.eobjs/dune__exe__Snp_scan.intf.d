examples/snp_scan.mli:
