(** Monotonic deadlines with an ambient, per-domain cancellation point.

    A deadline is an absolute instant on {!Obs.Clock}'s monotonic clock
    (immune to wall-clock steps).  It travels with a request — computed
    once at admission from the client's relative budget — and is
    enforced {e cooperatively}: code that may run long installs the
    deadline with {!with_ambient} and sprinkles {!poll} through its hot
    loops; [poll] raises {!Expired} once the instant has passed.

    The design constraint is the taps-off cost.  Engine hot loops poll
    per node/window, millions of times per query, so:

    - with no ambient deadline (the default — every batch entry point
      that isn't handed one), {!poll} is a domain-local load and one
      compare against [max_int]; no clock read, no allocation;
    - with a deadline installed, the clock is read only every
      {!poll_stride} polls (fuel counting), bounding both the overhead
      and the detection latency (stride × per-poll work).

    The ambient slot is per-domain ([Domain.DLS]), so a {!Work_pool}
    worker inherits nothing from its spawner: callers that fan out must
    install the deadline inside each task (see [Work_pool.run ?cancel]
    and [Mapper]). *)

type t
(** An absolute monotonic instant, or {!none}. *)

val none : t
(** The absent deadline: never expires, and {!with_ambient} [none] makes
    {!poll} free (well, one compare). *)

val after : float -> t
(** [after seconds] is the instant [seconds] from now ([seconds <= 0.]
    is an already-expired deadline, not [none]). *)

val of_ns : int -> t
(** An absolute instant in {!Obs.Clock.now_ns} nanoseconds. *)

val is_none : t -> bool

val expired : t -> bool
(** Has the instant passed?  Reads the clock (unless [is_none]). *)

val remaining_ns : t -> int
(** Nanoseconds until expiry: negative once expired, [max_int] for
    {!none}. *)

val remaining_s : t -> float
(** {!remaining_ns} in seconds ([infinity] for {!none}). *)

exception Expired
(** Raised by {!poll} (and {!check}) when the ambient deadline has
    passed.  Catchers translate it to [Kmm_error.Timeout]; partial work
    is discarded. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient d f] runs [f] with [d] installed as the current
    domain's ambient deadline, restoring the previous one on exit
    (normal or exceptional), so nesting composes.  Installing {!none}
    explicitly shields [f] from an outer deadline. *)

val ambient : unit -> t
(** The currently installed deadline ({!none} outside {!with_ambient}).
    Fan-out code reads it here to re-install inside worker tasks. *)

val poll : unit -> unit
(** The cancellation point.  Raises {!Expired} if the ambient deadline
    has passed; otherwise returns.  Reads the clock at most once per
    {!poll_stride} calls. *)

val check : unit -> unit
(** Like {!poll} but reads the clock on every call (no fuel): for
    coarse checkpoints — per read, per shard — where immediate
    detection matters more than per-call cost. *)

val poll_stride : int
(** Polls between clock reads when a deadline is installed (256). *)
