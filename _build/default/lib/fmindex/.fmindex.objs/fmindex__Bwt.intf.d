lib/fmindex/bwt.mli:
