let find_all ?(wildcard = 'n') ~pattern ~text () =
  let m = String.length pattern and n = String.length text in
  let acc = ref [] in
  for i = n - m downto 0 do
    let rec same j =
      j >= m
      || ((pattern.[j] = wildcard || text.[i + j] = wildcard
          || pattern.[j] = text.[i + j])
         && same (j + 1))
    in
    if same 0 then acc := i :: !acc
  done;
  !acc

let find_all_single_gap ?(wildcard = 'n') ~pattern ~text () =
  if String.contains text wildcard then
    invalid_arg "Wildcard.find_all_single_gap: text contains wildcards";
  let m = String.length pattern and n = String.length text in
  if m = 0 then List.init (n + 1) (fun i -> i)
  else begin
    match String.index_opt pattern wildcard with
    | None -> Kmp.find_all ~pattern ~text
    | Some first ->
        let last =
          match String.rindex_opt pattern wildcard with
          | Some l -> l
          | None -> assert false
        in
        for j = first to last do
          if pattern.[j] <> wildcard then
            invalid_arg "Wildcard.find_all_single_gap: scattered wildcards"
        done;
        let left = String.sub pattern 0 first in
        let right = String.sub pattern (last + 1) (m - last - 1) in
        let starts_ok =
          if left = "" then fun i -> i >= 0 && i + m <= n
          else begin
            let hits = Array.make (n + 1) false in
            List.iter (fun p -> hits.(p) <- true) (Kmp.find_all ~pattern:left ~text);
            fun i -> i >= 0 && i + m <= n && hits.(i)
          end
        in
        let candidates =
          if right = "" then
            (* Any window whose left flank matches. *)
            List.filter starts_ok (List.init (max 0 (n - m + 1)) (fun i -> i))
          else
            List.filter_map
              (fun p ->
                (* right flank occurrence at p implies window start: *)
                let i = p - last - 1 in
                if starts_ok i then Some i else None)
              (Kmp.find_all ~pattern:right ~text)
        in
        List.sort_uniq Int.compare candidates
  end
