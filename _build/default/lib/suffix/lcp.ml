let naive_lcp s i j =
  let n = String.length s in
  let rec go d = if i + d < n && j + d < n && s.[i + d] = s.[j + d] then go (d + 1) else d in
  go 0

let of_suffix_array s sa =
  let n = String.length s in
  let h = Array.make n 0 in
  if n > 0 then begin
    let rank = Suffix_array.rank_of sa in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if rank.(i) > 0 then begin
        let j = sa.(rank.(i) - 1) in
        while i + !k < n && j + !k < n && s.[i + !k] = s.[j + !k] do
          incr k
        done;
        h.(rank.(i)) <- !k;
        if !k > 0 then decr k
      end
      else k := 0
    done
  end;
  h
