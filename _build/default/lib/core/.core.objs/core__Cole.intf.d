lib/core/cole.mli: Stats Suffix
