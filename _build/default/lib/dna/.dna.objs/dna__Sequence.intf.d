lib/dna/sequence.mli: Format Random
