test/test_fmindex.mli:
