test/test_util.ml: Array QCheck2 QCheck_alcotest Random String
