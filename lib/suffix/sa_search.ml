type t = { text : string; sa : int array }

let of_suffix_array text sa =
  if Array.length sa <> String.length text then
    invalid_arg "Sa_search.of_suffix_array: array does not match text";
  { text; sa }

let build text = { text; sa = Suffix_array.build text }

(* Compare the pattern against the suffix starting at [pos]: negative if
   the suffix sorts before the pattern, 0 if the pattern is its prefix. *)
let compare_at t pat pos =
  let n = String.length t.text and m = String.length pat in
  let rec go i =
    if i >= m then 0
    else if pos + i >= n then -1 (* shorter suffix sorts first *)
    else begin
      let c = Char.compare t.text.[pos + i] pat.[i] in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let range t pat =
  let n = Array.length t.sa in
  if pat = "" then Some (0, n)
  else begin
    (* First suffix >= pat (as a prefix-match), i.e. lowest index whose
       suffix does not sort strictly before pat. *)
    let rec lower lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if compare_at t pat t.sa.(mid) < 0 then lower (mid + 1) hi else lower lo mid
      end
    in
    (* First suffix that sorts strictly after every pat-prefixed one. *)
    let rec upper lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if compare_at t pat t.sa.(mid) <= 0 then upper (mid + 1) hi else upper lo mid
      end
    in
    let lo = lower 0 n in
    let hi = upper lo n in
    if lo < hi then Some (lo, hi) else None
  end

let count t pat =
  match range t pat with
  | None -> 0
  | Some (lo, hi) -> hi - lo

let find_all t pat =
  match range t pat with
  | None -> []
  | Some (lo, hi) ->
      List.sort Int.compare (List.init (hi - lo) (fun i -> t.sa.(lo + i)))
