test/test_suffix.ml: Alcotest Array Lce Lcp List QCheck2 Random Rmq Sa_search String Stringmatch Suffix Suffix_array Suffix_tree Test_util
