(* Shared helpers for the test suites. *)

let dna_gen_char = QCheck2.Gen.oneofl [ 'a'; 'c'; 'g'; 't' ]

(* Random DNA string with length in [lo, hi]. *)
let dna_gen ?(lo = 0) ~hi () =
  QCheck2.Gen.(string_size ~gen:dna_gen_char (int_range lo hi))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let random_dna st n =
  String.init n (fun _ -> [| 'a'; 'c'; 'g'; 't' |].(Random.State.int st 4))
