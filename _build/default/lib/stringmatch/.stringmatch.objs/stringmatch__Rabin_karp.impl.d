lib/stringmatch/rabin_karp.ml: Array Char Hashtbl List Option String
