let failure p =
  let m = String.length p in
  let f = Array.make (max m 1) 0 in
  let k = ref 0 in
  for i = 1 to m - 1 do
    while !k > 0 && p.[!k] <> p.[i] do
      k := f.(!k - 1)
    done;
    if p.[!k] = p.[i] then incr k;
    f.(i) <- !k
  done;
  if m = 0 then [||] else f

let period p =
  let m = String.length p in
  if m = 0 then 0 else m - (failure p).(m - 1)

let find_all ~pattern ~text =
  let m = String.length pattern and n = String.length text in
  if m = 0 then List.init (n + 1) (fun i -> i)
  else begin
    let f = failure pattern in
    let acc = ref [] in
    let k = ref 0 in
    for i = 0 to n - 1 do
      while !k > 0 && pattern.[!k] <> text.[i] do
        k := f.(!k - 1)
      done;
      if pattern.[!k] = text.[i] then incr k;
      if !k = m then begin
        acc := (i - m + 1) :: !acc;
        k := f.(m - 1)
      end
    done;
    List.rev !acc
  end
